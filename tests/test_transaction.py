"""Accounts, split-balance gas accounting, and nonce tracking."""

from repro.chain.transaction import (
    Account, NonceTracker, Transaction, call, payment,
)
from repro.scilla.values import uint


# -- transactions --------------------------------------------------------------

def test_call_constructor():
    tx = call("0xaa", "0xcc", "Transfer", {"amount": uint(1)}, nonce=3)
    assert tx.is_contract_call
    assert tx.transition == "Transfer"
    assert tx.args_dict()["amount"] == uint(1)
    assert tx.nonce == 3


def test_payment_constructor():
    tx = payment("0xaa", "0xbb", amount=10, nonce=1)
    assert not tx.is_contract_call
    assert tx.amount == 10


def test_tx_ids_unique():
    a, b = payment("0xaa", "0xbb", 1), payment("0xaa", "0xbb", 1)
    assert a.tx_id != b.tx_id


# -- split-balance accounts -------------------------------------------------------

def test_split_preserves_total():
    acct = Account("0xaa", balance=1000)
    acct.split_across(4, home_shard=2)
    assert sum(acct.shard_portions.values()) == 1000


def test_home_shard_gets_largest_portion():
    acct = Account("0xaa", balance=1000)
    acct.split_across(4, home_shard=2)
    assert acct.shard_portions[2] == max(acct.shard_portions.values())


def test_ds_portion_exists():
    acct = Account("0xaa", balance=1000)
    acct.split_across(3, home_shard=0)
    assert -1 in acct.shard_portions


def test_charge_respects_portion():
    acct = Account("0xaa", balance=1000)
    acct.split_across(4, home_shard=0)
    small_shard = 1
    portion = acct.shard_portions[small_shard]
    assert not acct.charge(small_shard, portion + 1)
    assert acct.charge(small_shard, portion)
    assert acct.shard_portions[small_shard] == 0
    assert acct.balance == 1000 - portion


def test_credit_updates_total_and_portion():
    acct = Account("0xaa", balance=0)
    acct.split_across(2, home_shard=0)
    acct.credit(50, shard=1)
    assert acct.balance == 50
    assert acct.shard_portions[1] == 50


# -- nonce tracking -----------------------------------------------------------------

def test_relaxed_allows_gaps_within_lane():
    t = NonceTracker(strict=False)
    assert t.try_accept("a", 1, lane=0)
    assert t.try_accept("a", 5, lane=0)     # gap is fine
    assert not t.try_accept("a", 3, lane=0)  # but not going backwards


def test_relaxed_lanes_are_independent():
    """Nonces {1,3,5} in one shard and {2,4} in another can proceed in
    parallel — the paper's Sec. 4.2.1 example."""
    t = NonceTracker(strict=False)
    for n in (1, 3, 5):
        assert t.try_accept("a", n, lane=0)
    for n in (2, 4):
        assert t.try_accept("a", n, lane=1)


def test_replay_rejected_across_lanes():
    t = NonceTracker(strict=False)
    assert t.try_accept("a", 7, lane=0)
    assert not t.try_accept("a", 7, lane=1)


def test_strict_requires_gap_free_sequence():
    t = NonceTracker(strict=True)
    assert t.try_accept("a", 1, lane=0)
    assert not t.try_accept("a", 3, lane=0)  # gap refused
    assert t.try_accept("a", 2, lane=1)      # exact successor, any lane
    assert t.try_accept("a", 3, lane=0)


def test_senders_tracked_independently():
    t = NonceTracker()
    assert t.try_accept("a", 1, lane=0)
    assert t.try_accept("b", 1, lane=0)
