"""Acceptance oracle for resident shard workers: every Fig. 14
workload, run through long-lived lane workers holding resident shard
state, must end byte-identical to the fault-free serial run — state
fingerprints *and* the deterministic telemetry snapshot — for the
thread and the process executor, with zero whole-epoch fallbacks.

The faulted half re-runs the battery under an injected hung worker and
an injected killed worker: the supervisor must reinstall the affected
replicas from authoritative state mid-run and still converge to the
same bytes.  Vacuity guards assert the resident path really engaged
(installs, sync pushes) and that faults really forced reinstalls.
"""

from __future__ import annotations

import json

import pytest

from repro.chain.faults import FaultEvent, FaultKind, FaultPlan
from repro.chain.network import Network
from repro.chain.recovery import network_fingerprint
from repro.obs.metrics import MetricsRegistry
from repro.workloads.generators import ALL_WORKLOADS

N_SHARDS = 4
EPOCHS = 4
DEADLINE_S = 0.5

# One hung worker and one killed worker, placed mid-run so the
# resident replicas are already installed and synced when the faults
# hit — the recovery is a true mid-run reinstall, not a first install.
WORKER_FAULT_PLAN = [FaultEvent(2, FaultKind.HANG_WORKER, 1),
                     FaultEvent(3, FaultKind.KILL_WORKER, 0)]

_serial_cache: dict[str, tuple[dict[str, str], str]] = {}


def _run(workload_cls, executor: str, plan: FaultPlan | None,
         registry: MetricsRegistry) -> Network:
    net = Network(N_SHARDS, use_signatures=True, fault_plan=plan,
                  executor=executor, lane_deadline_s=DEADLINE_S,
                  metrics=registry, resident=(executor != "serial"))
    workload = workload_cls(n_users=16, txns_per_epoch=24, seed=11)
    workload.setup(net)
    for epoch in range(EPOCHS):
        net.process_epoch(workload.transactions(epoch))
    return net


def _serial_baseline(workload_cls) -> tuple[dict[str, str], str]:
    key = workload_cls.__name__
    if key not in _serial_cache:
        registry = MetricsRegistry()
        net = _run(workload_cls, "serial", None, registry)
        _serial_cache[key] = (
            network_fingerprint(net),
            json.dumps(registry.deterministic_snapshot(),
                       sort_keys=True),
        )
    return _serial_cache[key]


def _resident_counters(registry: MetricsRegistry) -> dict[str, int]:
    counters = registry.snapshot()["counters"]
    return {name: payload["value"] for name, payload in counters.items()
            if name.startswith("lane.resident.")}


@pytest.mark.parametrize("executor", ("thread", "process"))
@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS,
                         ids=[c.__name__ for c in ALL_WORKLOADS])
def test_resident_matches_serial(workload_cls, executor):
    registry = MetricsRegistry()
    net = _run(workload_cls, executor, None, registry)

    fingerprint, telemetry = _serial_baseline(workload_cls)
    assert network_fingerprint(net) == fingerprint
    assert json.dumps(registry.deterministic_snapshot(),
                      sort_keys=True) == telemetry
    assert net.executor_fallbacks == 0

    # Vacuity guard: the lanes really ran resident — one install per
    # lane, then delta syncs instead of fresh payloads.
    resident = _resident_counters(registry)
    assert resident["lane.resident.installs"] >= N_SHARDS
    assert resident["lane.resident.sync_pushes"] > 0
    assert resident["lane.resident.reinstalls"] == 0


@pytest.mark.parametrize("executor", ("thread", "process"))
@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS,
                         ids=[c.__name__ for c in ALL_WORKLOADS])
def test_resident_survives_worker_faults(workload_cls, executor):
    registry = MetricsRegistry()
    plan = FaultPlan(list(WORKER_FAULT_PLAN))
    net = _run(workload_cls, executor, plan, registry)

    fingerprint, telemetry = _serial_baseline(workload_cls)
    assert network_fingerprint(net) == fingerprint
    assert json.dumps(registry.deterministic_snapshot(),
                      sort_keys=True) == telemetry
    assert net.executor_fallbacks == 0

    counters = registry.snapshot()["counters"]
    failures = sum(v["value"] for k, v in counters.items()
                   if k.startswith("supervise.failures."))
    assert failures >= 2
    # The killed/hung replicas were thrown away and reinstalled from
    # authoritative state, not resumed from whatever was left behind.
    resident = _resident_counters(registry)
    assert resident["lane.resident.reinstalls"] >= 1
    if executor == "process":
        assert counters["supervise.pool_rebuilds"]["value"] >= 1
