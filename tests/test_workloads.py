"""Workload generator tests."""

import pytest

from repro.chain.network import Network
from repro.workloads.generators import (
    ALL_WORKLOADS, CFDonate, FTFund, FTTransfer, NFTMint, NFTTransfer,
    ProofIPFSRegister, UDBestow, UDConfig, workload_by_name,
)


def run_one_epoch(cls, n_shards=3, use_signatures=True, n=40):
    kwargs = {"txns_per_epoch": n}
    if cls is not CFDonate:
        kwargs["n_users"] = 30
    workload = cls(**kwargs)
    net = Network(n_shards, use_signatures=use_signatures)
    workload.setup(net)
    block = net.process_epoch(workload.transactions(0), unlimited=True)
    return workload, net, block


@pytest.mark.parametrize("cls", ALL_WORKLOADS)
def test_workload_commits_all_offered(cls):
    _, _, block = run_one_epoch(cls)
    failed = [r for r in block.all_receipts if not r.success]
    assert not failed, [(r.tx.transition, r.error) for r in failed[:3]]


@pytest.mark.parametrize("cls", ALL_WORKLOADS)
def test_workload_deterministic_across_runs(cls):
    w1, _, b1 = run_one_epoch(cls)
    w2, _, b2 = run_one_epoch(cls)
    t1 = [(t.sender, t.transition, t.nonce) for t in w1.transactions(1)]
    t2 = [(t.sender, t.transition, t.nonce) for t in w2.transactions(1)]
    assert t1 == t2


def test_ft_fund_single_sender():
    workload, _, _ = run_one_epoch(FTFund)
    senders = {t.sender for t in workload.transactions(1)}
    assert len(senders) == 1


def test_ft_transfer_many_senders():
    workload, _, _ = run_one_epoch(FTTransfer)
    senders = {t.sender for t in workload.transactions(1)}
    assert len(senders) > 5


def test_ft_fund_pins_to_one_shard():
    _, net, block = run_one_epoch(FTFund, n_shards=4)
    shards = {r.shard for r in block.all_receipts}
    assert len(shards) == 1


def test_ft_transfer_spreads_across_shards():
    _, net, block = run_one_epoch(FTTransfer, n_shards=4)
    shards = {r.shard for r in block.all_receipts if r.shard != -1}
    assert len(shards) == 4


def test_nft_mint_spreads_despite_single_sender():
    _, net, block = run_one_epoch(NFTMint, n_shards=4)
    shards = {r.shard for r in block.all_receipts if r.shard != -1}
    assert len(shards) == 4


def test_proof_ipfs_mostly_ds_bound():
    _, net, block = run_one_epoch(ProofIPFSRegister, n_shards=4)
    ds = sum(1 for r in block.all_receipts if r.shard == -1)
    assert ds > len(block.all_receipts) / 2


def test_cf_donors_are_fresh_each_epoch():
    workload, net, _ = run_one_epoch(CFDonate)
    donors_next = {t.sender for t in workload.transactions(1)}
    block = net.process_epoch(
        [t for t in workload.transactions(2)], unlimited=True)
    assert all(r.success for r in block.all_receipts)


def test_nft_transfer_tracks_ownership():
    workload, net, block = run_one_epoch(NFTTransfer)
    # After an epoch of transfers the generator's view matches state.
    state = net.contracts[workload.contract_addr].state
    owners = state.fields["token_owners"].entries
    for token, owner in list(workload.token_owner.items())[:10]:
        from repro.scilla.values import IntVal
        from repro.scilla import types as ty
        key = IntVal(token, ty.PrimType("Uint256"))
        assert owners[key].hex.endswith(owner[2:].lower())


def test_ud_config_owners_update_their_nodes():
    workload, net, block = run_one_epoch(UDConfig)
    assert all(r.success for r in block.all_receipts)


def test_workload_by_name():
    assert workload_by_name("FT transfer") is FTTransfer
    with pytest.raises(KeyError):
        workload_by_name("nope")


def test_baseline_mode_deploys_without_signature():
    workload, net, _ = run_one_epoch(UDBestow, use_signatures=False)
    assert net.contracts[workload.contract_addr].signature is None


def test_payments_scale_with_shards_without_signatures():
    """Sec. 1's baseline: plain payments shard by sender address even
    with CoSplit disabled."""
    from repro.workloads.generators import Payments
    workload = Payments(n_users=30, txns_per_epoch=60)
    net = Network(4, use_signatures=False)
    workload.setup(net)
    block = net.process_epoch(workload.transactions(0), unlimited=True)
    assert block.n_committed == 60
    shards = {r.shard for r in block.all_receipts}
    assert shards <= {0, 1, 2, 3}
    assert len(shards) == 4


def test_payments_conserve_total_balance():
    from repro.workloads.generators import Payments
    workload = Payments(n_users=20, txns_per_epoch=40)
    net = Network(3)
    workload.setup(net)
    total_before = sum(a.balance for a in net.accounts.values())
    net.process_epoch(workload.transactions(0), unlimited=True)
    total_after = sum(a.balance for a in net.accounts.values())
    # Only gas fees leave the user accounts.
    fees = 40 * 50  # PAYMENT_GAS per committed payment
    assert total_before - total_after == fees
