"""Parser tests: expressions, statements, types, and whole modules."""

import pytest

from repro.scilla import ast
from repro.scilla.errors import ParseError
from repro.scilla.parser import (
    parse_expression, parse_module, parse_type_str,
)
from repro.scilla.types import (
    ADTType, FunType, MapType, PrimType, TypeVar, UINT128,
)


# -- types -----------------------------------------------------------------

def test_parse_prim_type():
    assert parse_type_str("Uint128") == UINT128


def test_parse_map_type():
    t = parse_type_str("Map ByStr20 Uint128")
    assert t == MapType(PrimType("ByStr20"), UINT128)


def test_parse_nested_map_type():
    t = parse_type_str("Map ByStr20 (Map ByStr20 Uint128)")
    assert isinstance(t.value, MapType)


def test_parse_arrow_type_right_assoc():
    t = parse_type_str("Uint128 -> Uint128 -> Bool")
    assert isinstance(t, FunType)
    assert isinstance(t.ret, FunType)


def test_parse_adt_type_with_args():
    t = parse_type_str("Option Uint128")
    assert t == ADTType("Option", (UINT128,))


def test_parse_type_variable():
    assert parse_type_str("'A") == TypeVar("'A")


# -- expressions -------------------------------------------------------------

def test_parse_int_literal():
    e = parse_expression("Uint128 42")
    assert isinstance(e, ast.Literal)
    assert e.value == 42


def test_out_of_range_literal_rejected():
    with pytest.raises(ParseError):
        parse_expression("Uint32 4294967296")


def test_negative_uint_literal_rejected():
    with pytest.raises(ParseError):
        parse_expression("Uint128 -1")


def test_negative_int_literal_accepted():
    e = parse_expression("Int64 -5")
    assert e.value == -5


def test_parse_bnum_literal():
    e = parse_expression("BNum 100")
    assert e.typ == PrimType("BNum")


def test_parse_let_in():
    e = parse_expression("let x = Uint128 1 in x")
    assert isinstance(e, ast.Let)
    assert isinstance(e.body, ast.Var)


def test_parse_fun():
    e = parse_expression("fun (x: Uint128) => x")
    assert isinstance(e, ast.Fun)
    assert e.param_type == UINT128


def test_parse_tfun():
    e = parse_expression("tfun 'A => fun (x: 'A) => x")
    assert isinstance(e, ast.TFun)


def test_parse_builtin():
    e = parse_expression("builtin add a b")
    assert isinstance(e, ast.Builtin)
    assert e.name == "add"
    assert len(e.args) == 2


def test_parse_application():
    e = parse_expression("f a b")
    assert isinstance(e, ast.App)
    assert [a.name for a in e.args] == ["a", "b"]


def test_bare_identifier_is_var():
    e = parse_expression("f")
    assert isinstance(e, ast.Var)


def test_parse_constructor_with_type_args():
    e = parse_expression("Cons {Uint128} x xs")
    assert isinstance(e, ast.Constr)
    assert e.constructor == "Cons"
    assert e.type_args == (UINT128,)


def test_parse_nullary_constructor():
    e = parse_expression("True")
    assert isinstance(e, ast.Constr)
    assert e.args == ()


def test_parse_match_expression():
    e = parse_expression(
        "match x with | Some v => v | None => Uint128 0 end")
    assert isinstance(e, ast.MatchExpr)
    assert len(e.clauses) == 2
    some_pat = e.clauses[0][0]
    assert isinstance(some_pat, ast.ConstructorPat)
    assert isinstance(some_pat.args[0], ast.BinderPat)


def test_match_without_clauses_rejected():
    with pytest.raises(ParseError):
        parse_expression("match x with end")


def test_parse_message_expression():
    e = parse_expression('{ _tag : "Hi"; _recipient : to; _amount : a }')
    assert isinstance(e, ast.MessageExpr)
    assert [name for name, _ in e.fields] == ["_tag", "_recipient",
                                              "_amount"]


def test_parse_emp():
    e = parse_expression("Emp ByStr20 Uint128")
    assert isinstance(e, ast.Literal)
    assert isinstance(e.typ, MapType)


def test_parse_type_application():
    e = parse_expression("@list_length Uint128")
    assert isinstance(e, ast.TApp)
    assert e.type_args == (UINT128,)


# -- statements and modules ---------------------------------------------------

MINIMAL = """
scilla_version 0

library Minimal

let zero = Uint128 0

contract Minimal (owner: ByStr20)

field count : Uint128 = Uint128 0
field table : Map ByStr20 Uint128 = Emp ByStr20 Uint128

transition Bump (amount: Uint128)
  c <- count;
  new_c = builtin add c amount;
  count := new_c
end

transition Touch (key: ByStr20)
  present <- exists table[key];
  match present with
  | True =>
    delete table[key]
  | False =>
    table[key] := zero
  end
end

procedure Check ()
  blk <- & BLOCKNUMBER;
  accept
end

transition UseCheck ()
  Check;
  e = { _eventname : "Used" };
  event e
end
"""


def test_parse_minimal_module():
    m = parse_module(MINIMAL, "minimal")
    assert m.contract.name == "Minimal"
    assert len(m.contract.fields) == 2
    assert len(m.contract.transitions) == 3
    assert len(m.contract.procedures) == 1


def test_statement_kinds():
    m = parse_module(MINIMAL)
    bump = m.contract.component("Bump")
    assert isinstance(bump.body[0], ast.Load)
    assert isinstance(bump.body[1], ast.Bind)
    assert isinstance(bump.body[2], ast.Store)
    touch = m.contract.component("Touch")
    assert isinstance(touch.body[0], ast.MapGetExists)
    match = touch.body[1]
    assert isinstance(match, ast.MatchStmt)
    assert isinstance(match.clauses[0][1][0], ast.MapDelete)
    assert isinstance(match.clauses[1][1][0], ast.MapUpdate)


def test_procedure_call_statement():
    m = parse_module(MINIMAL)
    use = m.contract.component("UseCheck")
    assert isinstance(use.body[0], ast.CallProc)
    assert use.body[0].proc == "Check"


def test_blockchain_read_statement():
    m = parse_module(MINIMAL)
    check = m.contract.component("Check")
    assert isinstance(check.body[0], ast.ReadBlockchain)
    assert check.body[0].entry == "BLOCKNUMBER"
    assert isinstance(check.body[1], ast.Accept)


def test_unknown_blockchain_entry_rejected():
    bad = MINIMAL.replace("BLOCKNUMBER", "GASPRICE")
    with pytest.raises(ParseError):
        parse_module(bad)


def test_contract_params_parsed():
    m = parse_module(MINIMAL)
    assert [p.name for p in m.contract.params] == ["owner"]


def test_library_entries_parsed():
    m = parse_module(MINIMAL)
    assert m.library is not None
    assert m.library.entries[0].name == "zero"


def test_user_defined_adt():
    src = """
    scilla_version 0
    library L
    type Shade =
    | Red
    | Green of Uint32
    contract C (o: ByStr20)
    transition T ()
    end
    """
    m = parse_module(src)
    typedef = m.library.entries[0]
    assert typedef.name == "Shade"
    assert typedef.constructors[0] == ("Red", ())
    assert typedef.constructors[1][0] == "Green"


def test_nested_map_statement_keys():
    src = MINIMAL.replace(
        "table[key] := zero", "table[key] := zero")
    m = parse_module(src)
    touch = m.contract.component("Touch")
    update = touch.clauses if False else touch.body[1].clauses[1][1][0]
    assert isinstance(update, ast.MapUpdate)
    assert len(update.keys) == 1


def test_trailing_garbage_rejected():
    with pytest.raises(ParseError):
        parse_module(MINIMAL + "\nnonsense")
