"""End-to-end coverage of user-defined algebraic data types: library
``type`` declarations flow through the typechecker, the interpreter,
the CoSplit analysis and the sharded chain."""

import pytest

from repro.chain import Network, call
from repro.core import run_pipeline
from repro.core.domain import ParamKey, PseudoField
from repro.core.constraints import Owns
from repro.core.joins import JoinKind
from repro.scilla.interpreter import Interpreter, TxContext
from repro.scilla.parser import parse_module
from repro.scilla.values import ADTVal, IntVal, addr, uint
from repro.scilla import types as ty

ORDER_BOOK = """
scilla_version 0

library OrderBook

type OrderStatus =
| Placed
| Shipped of ByStr20
| Delivered

let placed = Placed

contract OrderBook (seller: ByStr20)

field orders : Map Uint64 OrderStatus = Emp Uint64 OrderStatus
field completed : Uint64 = Uint64 0

transition Place (order_id: Uint64)
  taken <- exists orders[order_id];
  match taken with
  | True =>
    e = { _exception : "OrderExists" };
    throw e
  | False =>
    orders[order_id] := placed
  end
end

transition Ship (order_id: Uint64, courier: ByStr20)
  is_seller = builtin eq _sender seller;
  match is_seller with
  | False =>
    e = { _exception : "NotSeller" };
    throw e
  | True =>
    status_opt <- orders[order_id];
    match status_opt with
    | None =>
      e = { _exception : "NoSuchOrder" };
      throw e
    | Some status =>
      match status with
      | Placed =>
        shipped = Shipped courier;
        orders[order_id] := shipped
      | Shipped c =>
        e = { _exception : "AlreadyShipped" };
        throw e
      | Delivered =>
        e = { _exception : "AlreadyDelivered" };
        throw e
      end
    end
  end
end

transition ConfirmDelivery (order_id: Uint64)
  status_opt <- orders[order_id];
  match status_opt with
  | None =>
    e = { _exception : "NoSuchOrder" };
    throw e
  | Some status =>
    match status with
    | Shipped courier =>
      done = Delivered;
      orders[order_id] := done;
      n <- completed;
      one = Uint64 1;
      new_n = builtin add n one;
      completed := new_n
    | _ =>
      e = { _exception : "NotShipped" };
      throw e
    end
  end
end
"""

SELLER = "0x" + "5e" * 20
BUYER = "0x" + "b1" * 20
COURIER = "0x" + "c5" * 20


def oid(n: int) -> IntVal:
    return IntVal(n, ty.UINT64)


@pytest.fixture
def book():
    module = parse_module(ORDER_BOOK, "OrderBook")
    interp = Interpreter(module)
    state = interp.deploy("0xc0", {"seller": addr(SELLER)})
    return interp, state


def test_typechecks_with_user_adt():
    result = run_pipeline(ORDER_BOOK, "OrderBook")
    assert result.warnings == []
    assert set(result.summaries) == {"Place", "Ship", "ConfirmDelivery"}


def test_state_machine_lifecycle(book):
    interp, state = book
    r = interp.run_transition(state, "Place", {"order_id": oid(1)},
                              TxContext(sender=BUYER))
    assert r.success
    status = state.fields["orders"].entries[oid(1)]
    assert isinstance(status, ADTVal) and status.constructor == "Placed"

    # Only the seller may ship.
    r = interp.run_transition(
        state, "Ship", {"order_id": oid(1), "courier": addr(COURIER)},
        TxContext(sender=BUYER))
    assert not r.success
    r = interp.run_transition(
        state, "Ship", {"order_id": oid(1), "courier": addr(COURIER)},
        TxContext(sender=SELLER))
    assert r.success
    status = state.fields["orders"].entries[oid(1)]
    assert status.constructor == "Shipped"
    assert status.args == (addr(COURIER),)

    # Double shipping refused; delivery completes and counts.
    r = interp.run_transition(
        state, "Ship", {"order_id": oid(1), "courier": addr(COURIER)},
        TxContext(sender=SELLER))
    assert not r.success
    r = interp.run_transition(state, "ConfirmDelivery",
                              {"order_id": oid(1)},
                              TxContext(sender=BUYER))
    assert r.success
    assert state.fields["completed"] == IntVal(1, ty.UINT64)


def test_cannot_deliver_unshipped(book):
    interp, state = book
    interp.run_transition(state, "Place", {"order_id": oid(2)},
                          TxContext(sender=BUYER))
    r = interp.run_transition(state, "ConfirmDelivery",
                              {"order_id": oid(2)},
                              TxContext(sender=BUYER))
    assert not r.success
    assert "NotShipped" in r.error


def test_adt_match_induces_condition_and_ownership():
    """Matching on the order status is genuine data-dependent control
    flow — the analysis must require ownership of the entry."""
    result = run_pipeline(ORDER_BOOK, "OrderBook")
    sig = result.signature(("Place", "Ship", "ConfirmDelivery"))
    pf = PseudoField("orders", (ParamKey("order_id"),))
    assert Owns(pf) in sig.constraints["Ship"]
    assert Owns(pf) in sig.constraints["ConfirmDelivery"]
    # The ADT-valued writes are overwrites; the counter is additive.
    assert sig.joins["orders"] is JoinKind.OWN_OVERWRITE
    assert sig.joins["completed"] is JoinKind.INT_MERGE


def test_order_book_shards_by_order_id():
    net = Network(4)
    net.create_account(SELLER)
    net.create_account(BUYER)
    net.deploy(ORDER_BOOK, "0xc0", {"seller": addr(SELLER)},
               sharded_transitions=("Place", "Ship", "ConfirmDelivery"))
    placements = [call(BUYER, "0xc0", "Place", {"order_id": oid(i)},
                       nonce=i + 1) for i in range(24)]
    block = net.process_epoch(placements, unlimited=True)
    assert block.n_committed == 24
    shards_used = {r.shard for r in block.all_receipts}
    assert len(shards_used) == 4  # spread by order id

    ships = [call(SELLER, "0xc0", "Ship",
                  {"order_id": oid(i), "courier": addr(COURIER)},
                  nonce=i + 1) for i in range(24)]
    block = net.process_epoch(ships, unlimited=True)
    assert block.n_committed == 24
    orders = net.contracts[_pad("0xc0")].state.fields["orders"].entries
    assert all(v.constructor == "Shipped" for v in orders.values())


def _pad(address: str) -> str:
    body = address[2:]
    return "0x" + body.rjust(40, "0").lower()
