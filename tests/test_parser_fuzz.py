"""Parser robustness: arbitrary input must raise clean errors, never
crash, and valid modules must survive whitespace/comment mutations."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.contracts import CORPUS
from repro.scilla.errors import LexError, ParseError
from repro.scilla.lexer import tokenize
from repro.scilla.parser import parse_expression, parse_module

from .helpers import mutate_one_char


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=200))
def test_tokenizer_total_over_text(source):
    """tokenize either succeeds or raises LexError — nothing else."""
    try:
        tokens = tokenize(source)
        assert tokens[-1].kind == "eof"
    except LexError:
        pass


_token_soup = st.lists(
    st.sampled_from([
        "let", "in", "fun", "match", "with", "end", "builtin",
        "transition", "contract", "field", ":=", "<-", "=>", "=", "|",
        "(", ")", "[", "]", "{", "}", ";", "x", "Some", "None",
        "Uint128", "42", '"s"', "0xab", "'A", "@", "&", "_",
    ]),
    max_size=30,
).map(" ".join)


@settings(max_examples=200, deadline=None)
@given(_token_soup)
def test_parser_total_over_token_soup(source):
    """Well-lexed garbage must yield ParseError, never crash."""
    try:
        parse_module(source)
    except (ParseError, LexError):
        pass


@settings(max_examples=200, deadline=None)
@given(_token_soup)
def test_expression_parser_total(source):
    try:
        parse_expression(source)
    except (ParseError, LexError):
        pass


@pytest.mark.parametrize("name", ["FungibleToken", "Multisig"])
def test_comment_insertion_is_neutral(name):
    """Sprinkling comments between lines does not change the parse."""
    source = CORPUS[name]
    commented = "\n".join(
        line + "  (* noise (* nested *) *)" if line.strip() else line
        for line in source.splitlines())
    original = parse_module(source)
    mutated = parse_module(commented)
    assert [t.name for t in original.contract.transitions] == \
        [t.name for t in mutated.contract.transitions]


def test_whitespace_collapse_is_neutral():
    """Scilla is whitespace-insensitive apart from token separation."""
    source = CORPUS["HelloWorld"]
    squeezed = " ".join(source.split())
    original = parse_module(source)
    mutated = parse_module(squeezed)
    assert [t.name for t in original.contract.transitions] == \
        [t.name for t in mutated.contract.transitions]


@pytest.mark.parametrize("seed", range(25))
def test_parser_total_over_mutated_corpus(seed):
    """One-character corruption of a real contract never crashes the
    frontend — it parses, or raises a clean Lex/ParseError."""
    mutated = mutate_one_char(CORPUS["FungibleToken"], seed)
    try:
        parse_module(mutated)
    except (ParseError, LexError):
        pass


def test_error_messages_carry_locations():
    bad = "scilla_version 0\ncontract C (o: ByStr20)\ntransition T ()\n  x = ,\nend"
    with pytest.raises(ParseError) as exc:
        parse_module(bad)
    assert "4:" in str(exc.value)  # line number of the broken statement
