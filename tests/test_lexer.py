"""Tokenizer tests."""

import pytest

from repro.scilla.errors import LexError
from repro.scilla.lexer import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


def test_empty_input_yields_only_eof():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind == "eof"


def test_keywords_vs_identifiers():
    toks = tokenize("let letx transition Transfer")
    assert [(t.kind, t.value) for t in toks[:-1]] == [
        ("keyword", "let"), ("id", "letx"),
        ("keyword", "transition"), ("cid", "Transfer"),
    ]


def test_underscore_identifiers_are_ids():
    toks = tokenize("_sender _amount _tag")
    assert all(t.kind == "id" for t in toks[:-1])


def test_lone_underscore_is_wildcard_symbol():
    tok = tokenize("_")[0]
    assert (tok.kind, tok.value) == ("sym", "_")


def test_type_variable():
    tok = tokenize("'A")[0]
    assert (tok.kind, tok.value) == ("tvar", "'A")


def test_integer_literal():
    tok = tokenize("42")[0]
    assert (tok.kind, tok.value) == ("int", "42")


def test_negative_integer_literal():
    tok = tokenize("-17")[0]
    assert (tok.kind, tok.value) == ("int", "-17")


def test_hex_literal_lowercased():
    tok = tokenize("0xAbCd")[0]
    assert (tok.kind, tok.value) == ("hex", "0xabcd")


def test_string_literal_with_escapes():
    tok = tokenize(r'"a\"b\nc"')[0]
    assert tok.kind == "string"
    assert tok.value == 'a"b\nc'


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize('"unterminated')


def test_nested_comments():
    toks = tokenize("a (* outer (* inner *) still outer *) b")
    assert values("a (* outer (* inner *) still outer *) b") == ["a", "b"]


def test_unterminated_comment_raises():
    with pytest.raises(LexError):
        tokenize("(* never closed")


def test_multichar_symbols_greedy():
    assert values("x := y <- f => t -> u") == [
        "x", ":=", "y", "<-", "f", "=>", "t", "->", "u"]


def test_colon_vs_assign():
    # ``:`` alone must not swallow the next char when it is ``:=``.
    assert values("a : b := c") == ["a", ":", "b", ":=", "c"]


def test_locations_track_lines_and_columns():
    toks = tokenize("ab\n  cd")
    assert (toks[0].loc.line, toks[0].loc.col) == (1, 1)
    assert (toks[1].loc.line, toks[1].loc.col) == (2, 3)


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("a # b")


def test_map_access_brackets():
    assert values("m[k1][k2]") == ["m", "[", "k1", "]", "[", "k2", "]"]
