"""The paper's core soundness property (DESIGN.md invariant 1).

Executing transactions sharded — dispatched by a CoSplit signature,
run in parallel lanes against the epoch-start state, merged with the
per-field join operations — must be equivalent to *some* sequential
order consistent with the per-lane orders.  Concretely: replaying the
successfully-committed transactions sequentially in lane-concatenation
order (shard 0, shard 1, …, DS) on a fresh contract state must
reproduce the sharded final state exactly.

A second determinism property: for workloads whose transactions always
succeed, the final state is independent of the number of shards.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.chain import Network, call
from repro.contracts import CORPUS
from repro.scilla.interpreter import Interpreter, TxContext
from repro.scilla.values import (
    BNumVal, IntVal, StringVal, addr, canonical, uint,
)
from repro.scilla import types as ty

TOKEN = "0x" + "c0" * 20
ADMIN = "0x" + "ad" * 20
USERS = ["0x" + f"{i:040x}" for i in range(1, 13)]

FT_PARAMS = {
    "contract_owner": addr(ADMIN), "name": StringVal("T"),
    "symbol": StringVal("T"), "decimals": IntVal(6, ty.UINT32),
    "init_supply": uint(0),
}


def state_snapshot(state) -> dict:
    snap = {name: canonical(value) for name, value in state.fields.items()}
    snap["_balance"] = state.balance
    return snap


def run_sharded(source, params, selection, epochs, n_shards):
    """Run the given epochs sharded; return (final snapshot,
    lane-ordered successful transactions, blocks).

    Transactions within one epoch all execute against the epoch-start
    state, so scenarios with data dependencies (mint before transfer)
    must put the dependent transactions in a later epoch — exactly as
    on the real chain.
    """
    net = Network(n_shards)
    net.create_account(ADMIN)
    for u in USERS:
        net.create_account(u)
    net.deploy(source, TOKEN, params, sharded_transitions=selection)
    committed = []
    blocks = []
    for txns in epochs:
        block = net.process_epoch(list(txns), unlimited=True)
        blocks.append(block)
        for mb in block.microblocks:
            committed.extend(r.tx for r in mb.receipts if r.success)
        committed.extend(r.tx for r in block.ds_receipts if r.success)
    return state_snapshot(net.contracts[TOKEN].state), committed, blocks


def replay_sequentially(source, params, txns):
    """Apply transactions one by one on a fresh state."""
    from repro.scilla.parser import parse_module
    interp = Interpreter(parse_module(source, "replay"))
    state = interp.deploy(TOKEN, dict(params))
    for tx in txns:
        result = interp.run_transition(
            state, tx.transition, tx.args_dict(),
            TxContext(sender=tx.sender, amount=tx.amount, block_number=1))
        assert result.success, (
            f"replay diverged: {tx} failed with {result.error}")
        state.balance += sum(  # mirror the chain's payout handling
            -m.amount for m in result.messages if m.amount > 0)
    return state_snapshot(state)


def ft_mints_and_transfers():
    mints = [
        call(ADMIN, TOKEN, "Mint",
             {"recipient": addr(u), "amount": uint(1000)}, nonce=i + 1)
        for i, u in enumerate(USERS)
    ]
    transfers = []
    for i, u in enumerate(USERS):
        transfers.append(call(u, TOKEN, "Transfer",
                              {"to": addr(USERS[(i + 3) % len(USERS)]),
                               "amount": uint(10 + i)}, nonce=1))
        transfers.append(call(u, TOKEN, "Transfer",
                              {"to": addr(USERS[(i + 5) % len(USERS)]),
                               "amount": uint(7)}, nonce=2))
    return [mints, transfers]


@pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
def test_ft_sharded_equals_sequential_replay(n_shards):
    epochs = ft_mints_and_transfers()
    total = sum(len(e) for e in epochs)
    sharded, committed, _ = run_sharded(
        CORPUS["FungibleToken"], FT_PARAMS,
        ("Mint", "Transfer", "TransferFrom"), epochs, n_shards)
    assert len(committed) == total  # nothing fails in this scenario
    replayed = replay_sequentially(CORPUS["FungibleToken"], FT_PARAMS,
                                   committed)
    assert sharded == replayed


def test_ft_final_state_independent_of_shard_count():
    epochs = ft_mints_and_transfers()
    total = sum(len(e) for e in epochs)
    snapshots = []
    for n_shards in (1, 2, 4, 6):
        snap, committed, _ = run_sharded(
            CORPUS["FungibleToken"], FT_PARAMS,
            ("Mint", "Transfer", "TransferFrom"), epochs, n_shards)
        assert len(committed) == total
        snapshots.append(snap)
    assert all(s == snapshots[0] for s in snapshots)


def test_concurrent_adds_to_same_entry_merge_correctly():
    """Many senders transfer to ONE recipient: every shard contributes
    an IntMerge delta to the same balance entry."""
    target = USERS[0]
    mints = [call(ADMIN, TOKEN, "Mint",
                  {"recipient": addr(u), "amount": uint(100)},
                  nonce=i + 1)
             for i, u in enumerate(USERS)]
    transfers = [call(u, TOKEN, "Transfer",
                      {"to": addr(target), "amount": uint(25)}, nonce=1)
                 for u in USERS[1:]]
    sharded, committed, _ = run_sharded(
        CORPUS["FungibleToken"], FT_PARAMS,
        ("Mint", "Transfer", "TransferFrom"), [mints, transfers], 4)
    assert len(committed) == len(mints) + len(transfers)
    replayed = replay_sequentially(CORPUS["FungibleToken"], FT_PARAMS,
                                   committed)
    assert sharded == replayed
    # And the target's balance is the sum of all contributions.
    net_balances = sharded["balances"]["v"]
    target_entry = [v for k, v in net_balances
                    if addr(target).hex in k]
    assert target_entry[0]["v"] == 100 + 25 * (len(USERS) - 1)


def test_failed_transactions_leave_no_trace():
    mints = [call(ADMIN, TOKEN, "Mint",
                  {"recipient": addr(USERS[0]), "amount": uint(10)},
                  nonce=1)]
    # Overdrafts from several users who have no tokens at all.
    overdrafts = [call(u, TOKEN, "Transfer",
                       {"to": addr(USERS[0]), "amount": uint(999)},
                       nonce=1)
                  for u in USERS[1:6]]
    sharded, committed, _ = run_sharded(
        CORPUS["FungibleToken"], FT_PARAMS,
        ("Mint", "Transfer", "TransferFrom"), [mints, overdrafts], 3)
    assert len(committed) == 1
    replayed = replay_sequentially(CORPUS["FungibleToken"], FT_PARAMS,
                                   committed)
    assert sharded == replayed


# -- NFT: ownership-strategy equivalence ---------------------------------------

NFT_PARAMS = {
    "contract_owner": addr(ADMIN),
    "name": StringVal("N"), "symbol": StringVal("N"),
}


@pytest.mark.parametrize("n_shards", [2, 4])
def test_nft_mint_and_transfer_equivalence(n_shards):
    mints = [call(ADMIN, TOKEN, "Mint",
                  {"to": addr(USERS[i % len(USERS)]),
                   "token_id": IntVal(i, ty.PrimType("Uint256"))},
                  nonce=i + 1)
             for i in range(20)]
    transfers = []
    owner_nonces: dict[str, int] = {}
    for i in range(20):
        owner = USERS[i % len(USERS)]
        owner_nonces[owner] = owner_nonces.get(owner, 0) + 1
        transfers.append(call(owner, TOKEN, "Transfer",
                              {"token_owner": addr(owner),
                               "to": addr(USERS[(i + 1) % len(USERS)]),
                               "token_id": IntVal(i, ty.PrimType("Uint256"))},
                              nonce=owner_nonces[owner]))
    sharded, committed, _ = run_sharded(
        CORPUS["NonfungibleToken"], NFT_PARAMS, ("Mint", "Transfer"),
        [mints, transfers], n_shards)
    assert len(committed) == len(mints) + len(transfers)
    replayed = replay_sequentially(CORPUS["NonfungibleToken"],
                                   NFT_PARAMS, committed)
    assert sharded == replayed


# -- property-based: random FT workloads ------------------------------------------

_ops = st.lists(
    st.tuples(
        st.sampled_from(["mint", "transfer", "allow", "transfer_from"]),
        st.integers(0, len(USERS) - 1),
        st.integers(0, len(USERS) - 1),
        st.integers(1, 50),
    ),
    min_size=1, max_size=25,
)


@settings(max_examples=25, deadline=None)
@given(_ops, st.sampled_from([2, 3, 5]))
def test_random_ft_workload_equivalence(ops, n_shards):
    txns = []
    nonces: dict[str, int] = {}

    def next_nonce(sender):
        nonces[sender] = nonces.get(sender, 0) + 1
        return nonces[sender]

    # Give everyone something to move around in an earlier epoch.
    setup = [call(ADMIN, TOKEN, "Mint",
                  {"recipient": addr(u), "amount": uint(200)},
                  nonce=next_nonce(ADMIN))
             for u in USERS]
    for op, i, j, amount in ops:
        a, b = USERS[i], USERS[j]
        if op == "mint":
            txns.append(call(ADMIN, TOKEN, "Mint",
                             {"recipient": addr(a),
                              "amount": uint(amount)},
                             nonce=next_nonce(ADMIN)))
        elif op == "transfer" and a != b:
            txns.append(call(a, TOKEN, "Transfer",
                             {"to": addr(b), "amount": uint(amount)},
                             nonce=next_nonce(a)))
        elif op == "allow":
            txns.append(call(a, TOKEN, "IncreaseAllowance",
                             {"spender": addr(b), "amount": uint(amount)},
                             nonce=next_nonce(a)))
        elif op == "transfer_from" and a != b:
            txns.append(call(b, TOKEN, "TransferFrom",
                             {"from": addr(a), "to": addr(b),
                              "amount": uint(amount)},
                             nonce=next_nonce(b)))
    sharded, committed, _ = run_sharded(
        CORPUS["FungibleToken"], FT_PARAMS,
        ("Mint", "Transfer", "TransferFrom"), [setup, txns], n_shards)
    replayed = replay_sequentially(CORPUS["FungibleToken"], FT_PARAMS,
                                   committed)
    assert sharded == replayed
