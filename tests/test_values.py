"""Runtime-value tests, including canonicalisation properties."""

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.scilla.errors import EvalError
from repro.scilla import types as ty
from repro.scilla.values import (
    ADTVal, BNumVal, ByStrVal, Env, IntVal, MapVal, StringVal, addr,
    bool_val, canonical, cons, list_to_value, nil, none, pair, some,
    type_of_value, uint, value_to_list, values_equal,
)


def test_int_bounds_enforced_at_construction():
    with pytest.raises(EvalError):
        IntVal(-1, ty.UINT128)
    with pytest.raises(EvalError):
        IntVal(2**32, ty.UINT32)


def test_addr_pads_and_lowercases():
    a = addr("0xAB")
    assert a.hex == "0x" + "0" * 38 + "ab"
    assert a.nbytes == 20


def test_bool_helpers():
    assert bool_val(True).constructor == "True"
    assert bool_val(False).constructor == "False"


def test_option_and_list_builders():
    v = some(uint(5), ty.UINT128)
    assert v.constructor == "Some"
    assert none(ty.UINT128).constructor == "None"
    lst = list_to_value([uint(1), uint(2)], ty.UINT128)
    assert value_to_list(lst) == [uint(1), uint(2)]
    assert value_to_list(nil(ty.UINT128)) == []


def test_type_of_value():
    assert type_of_value(uint(1)) == ty.UINT128
    assert type_of_value(StringVal("x")) == ty.STRING
    assert type_of_value(BNumVal(3)) == ty.BNUM
    assert type_of_value(some(uint(1), ty.UINT128)) == \
        ty.ADTType("Option", (ty.UINT128,))
    m = MapVal(ty.BYSTR20, ty.UINT128)
    assert type_of_value(m) == ty.MapType(ty.BYSTR20, ty.UINT128)


def test_values_equal_on_maps_ignores_insertion_order():
    a = MapVal(ty.STRING, ty.UINT128,
               {StringVal("x"): uint(1), StringVal("y"): uint(2)})
    b = MapVal(ty.STRING, ty.UINT128,
               {StringVal("y"): uint(2), StringVal("x"): uint(1)})
    assert values_equal(a, b)
    b.entries[StringVal("y")] = uint(3)
    assert not values_equal(a, b)


def test_env_lookup_walks_parents():
    env = Env().bind("a", uint(1)).bind("b", uint(2))
    assert env.lookup("a") == uint(1)
    assert env.lookup("b") == uint(2)
    assert env.lookup("c") is None


def test_env_shadowing():
    env = Env().bind("a", uint(1)).bind("a", uint(2))
    assert env.lookup("a") == uint(2)


# -- canonicalisation: total on storable values, stable, injective-ish ----------

_prim_values = st.one_of(
    st.integers(0, 2**64).map(uint),
    st.text(max_size=8).map(StringVal),
    st.integers(0, 10**9).map(BNumVal),
    st.integers(0, 2**80).map(lambda n: addr(hex(n))),
    st.booleans().map(bool_val),
)


@given(_prim_values)
def test_canonical_is_deterministic(v):
    assert canonical(v) == canonical(v)


@given(_prim_values, _prim_values)
def test_canonical_distinguishes_unequal_values(a, b):
    if not values_equal(a, b):
        assert canonical(a) != canonical(b)


@given(st.lists(st.integers(0, 100), max_size=6))
def test_canonical_map_is_order_insensitive(keys):
    a = MapVal(ty.UINT128, ty.UINT128)
    b = MapVal(ty.UINT128, ty.UINT128)
    for k in keys:
        a.entries[uint(k)] = uint(k * 2)
    for k in reversed(keys):
        b.entries[uint(k)] = uint(k * 2)
    assert canonical(a) == canonical(b)


def test_canonical_nested_structures():
    inner = pair(uint(1), StringVal("x"), ty.UINT128, ty.STRING)
    lst = cons(inner, nil(ty.UINT128), ty.UINT128)
    c = canonical(lst)
    assert c["c"] == "Cons"
    assert c["a"][0]["c"] == "Pair"


def test_canonical_rejects_closures():
    from repro.scilla.values import Closure
    from repro.scilla.ast import Var
    closure = Closure("x", ty.UINT128, Var("x"), Env())
    with pytest.raises(EvalError):
        canonical(closure)
