"""Write-ahead log tests: framing, recovery, torn tails, segments."""

import os
from pathlib import Path

import pytest

from repro.chain.wal import (
    WALCorruption, WALError, WALRecord, WriteAheadLog, _encode,
    _segment_files, read_wal,
)


def write_records(data_dir, n=5, fsync="commit") -> list[dict]:
    wal = WriteAheadLog(data_dir, fsync=fsync)
    datas = [{"i": i, "payload": "x" * (i * 3)} for i in range(n)]
    for data in datas:
        wal.append("test", data)
    wal.barrier()
    wal.close()
    return datas


def only_segment(data_dir) -> Path:
    (path,) = _segment_files(Path(data_dir))
    return path


# -- basics -------------------------------------------------------------------

def test_append_read_roundtrip(tmp_path):
    datas = write_records(tmp_path, n=5)
    records = read_wal(tmp_path)
    assert [r.data for r in records] == datas
    assert [r.seq for r in records] == [1, 2, 3, 4, 5]
    assert all(r.type == "test" for r in records)


def test_reopen_continues_sequence(tmp_path):
    write_records(tmp_path, n=3)
    wal = WriteAheadLog(tmp_path)
    assert [r.seq for r in wal.recovered] == [1, 2, 3]
    assert wal.append("more", {}) == 4
    wal.close()
    assert [r.seq for r in read_wal(tmp_path)] == [1, 2, 3, 4]


def test_read_missing_dir_is_empty(tmp_path):
    assert read_wal(tmp_path / "nope") == []


def test_unknown_fsync_policy_rejected(tmp_path):
    with pytest.raises(ValueError, match="fsync policy"):
        WriteAheadLog(tmp_path, fsync="sometimes")


def test_closed_wal_refuses_appends(tmp_path):
    wal = WriteAheadLog(tmp_path)
    wal.close()
    with pytest.raises(WALError):
        wal.append("x", {})
    with pytest.raises(WALError):
        wal.barrier()


# -- corruption ---------------------------------------------------------------

def test_interior_corruption_rejected(tmp_path):
    write_records(tmp_path, n=5)
    path = only_segment(tmp_path)
    blob = bytearray(path.read_bytes())
    # Flip a payload byte in the middle of the file: an interior CRC
    # mismatch is corruption, not a torn tail.
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(WALCorruption):
        read_wal(tmp_path)
    with pytest.raises(WALCorruption):
        WriteAheadLog(tmp_path)


def test_sequence_gap_rejected(tmp_path):
    path = Path(tmp_path) / "wal-0000000001.log"
    frames = (_encode(WALRecord(1, "a", {})) +
              _encode(WALRecord(3, "b", {})) +   # 2 is missing
              _encode(WALRecord(4, "c", {})))
    path.write_bytes(frames)
    with pytest.raises(WALCorruption, match="sequence gap"):
        read_wal(tmp_path)


def test_tail_sequence_gap_is_torn_write(tmp_path):
    path = Path(tmp_path) / "wal-0000000001.log"
    path.write_bytes(_encode(WALRecord(1, "a", {})) +
                     _encode(WALRecord(5, "b", {})))
    assert [r.seq for r in read_wal(tmp_path)] == [1]


# -- torn tails ---------------------------------------------------------------

def test_torn_tail_truncated_at_every_byte_offset(tmp_path):
    """The satellite property test: however much of the final record
    reached the disk, replay recovers exactly the preceding prefix —
    no exception, no partial record applied."""
    datas = write_records(tmp_path / "ref", n=4)
    path = only_segment(tmp_path / "ref")
    blob = path.read_bytes()
    frames = [_encode(WALRecord(i + 1, "test", data))
              for i, data in enumerate(datas)]
    assert blob == b"".join(frames)
    prefix_len = sum(len(f) for f in frames[:3])
    target_dir = tmp_path / "cut"
    target_dir.mkdir()
    target = target_dir / path.name
    for cut in range(prefix_len, len(blob)):
        target.write_bytes(blob[:cut])
        records = read_wal(target_dir)
        assert [r.data for r in records] == datas[:3], f"cut at {cut}"


def test_recovery_truncates_torn_tail_and_reuses_seq(tmp_path):
    write_records(tmp_path, n=3)
    path = only_segment(tmp_path)
    blob = path.read_bytes()
    path.write_bytes(blob[:-4])  # tear the last record

    wal = WriteAheadLog(tmp_path)
    assert [r.seq for r in wal.recovered] == [1, 2]
    assert path.stat().st_size < len(blob) - 4  # physically truncated
    # The torn record's sequence number is reused, keeping the log
    # contiguous.
    assert wal.append("replacement", {}) == 3
    wal.close()
    assert [(r.seq, r.type) for r in read_wal(tmp_path)] == \
        [(1, "test"), (2, "test"), (3, "replacement")]


def test_unterminated_tail_record_is_torn(tmp_path):
    write_records(tmp_path, n=2)
    path = only_segment(tmp_path)
    path.write_bytes(path.read_bytes()[:-1])  # strip the newline only
    assert [r.seq for r in read_wal(tmp_path)] == [1]


def test_garbage_only_tail_segment(tmp_path):
    write_records(tmp_path, n=2)
    path = only_segment(tmp_path)
    path.write_bytes(path.read_bytes() + b"###garbage")
    assert [r.seq for r in read_wal(tmp_path)] == [1, 2]
    wal = WriteAheadLog(tmp_path)
    assert wal.last_seq == 2
    wal.close()


# -- segments, rotation, compaction -------------------------------------------

def test_rotate_starts_new_segment(tmp_path):
    wal = WriteAheadLog(tmp_path)
    wal.append("a", {})
    wal.rotate()
    wal.append("b", {})
    wal.close()
    names = [p.name for p in _segment_files(Path(tmp_path))]
    assert names == ["wal-0000000001.log", "wal-0000000002.log"]
    assert [r.seq for r in read_wal(tmp_path)] == [1, 2]


def test_compact_drops_only_covered_segments(tmp_path):
    wal = WriteAheadLog(tmp_path)
    for chunk in range(3):
        for _ in range(2):
            wal.append("x", {"chunk": chunk})
        wal.rotate()
    # Segments: [1,2], [3,4], [5,6] plus the empty active one at 7.
    deleted = wal.compact(keep_from_seq=4)
    assert deleted == ["wal-0000000001.log"]
    assert [r.seq for r in read_wal(tmp_path)] == [3, 4, 5, 6]
    # The active segment is never deleted, whatever the argument.
    deleted = wal.compact(keep_from_seq=10**9)
    assert "wal-0000000007.log" not in deleted
    wal.append("y", {})
    wal.close()
    assert [r.seq for r in read_wal(tmp_path)] == [7]


def test_malformed_segment_name_rejected(tmp_path):
    from repro.chain.wal import _first_seq_of
    (Path(tmp_path) / "wal-oops.log").write_bytes(b"")
    with pytest.raises(WALError, match="malformed segment name"):
        _first_seq_of(Path(tmp_path) / "wal-oops.log")


def test_fsync_always_and_never_both_readable(tmp_path):
    for policy in ("always", "never"):
        d = tmp_path / policy
        write_records(d, n=3, fsync=policy)
        assert [r.seq for r in read_wal(d)] == [1, 2, 3]
