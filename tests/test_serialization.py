"""Wire-format round-trip tests (values, deltas, txns, signatures).

Round trips must be *byte-identical*, not merely equal: WAL replay and
snapshot digests hash the serialised form, so any canonicalisation
drift between a write and a later re-write would read as corruption.
"""

import json

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.chain.delta import DeltaEntry, StateDelta
from repro.chain.serialization import (
    delta_from_json, delta_to_json, signature_from_json,
    signature_to_json, signature_to_obj, state_from_obj, state_to_obj,
    transaction_from_obj, transaction_from_json, transaction_to_json,
    transaction_to_obj, value_from_json, value_to_json,
)
from repro.chain.transaction import call, payment
from repro.core.joins import JoinKind
from repro.core.pipeline import run_pipeline
from repro.core.signature import signatures_equal
from repro.contracts import CORPUS, EVAL_CONTRACTS
from repro.scilla.state import MISSING
from repro.scilla import types as ty
from repro.scilla.values import (
    ADTVal, BNumVal, IntVal, MapVal, StringVal, addr, bool_val, none,
    pair, sint, some, type_of_value, uint, values_equal,
)

VALUES = [
    uint(0),
    uint(2**127),
    StringVal("hello\nworld"),
    BNumVal(123),
    addr("0xab"),
    bool_val(True),
    some(uint(5), ty.UINT128),
    none(ty.UINT128),
    pair(uint(1), StringVal("x"), ty.UINT128, ty.STRING),
]


@pytest.mark.parametrize("value", VALUES, ids=str)
def test_value_roundtrip(value):
    assert value_from_json(value_to_json(value)) == value


def test_map_value_roundtrip():
    m = MapVal(ty.BYSTR20, ty.UINT128,
               {addr("0x01"): uint(1), addr("0x02"): uint(2)})
    out = value_from_json(value_to_json(m))
    assert out.entries == m.entries
    assert out.key_type == m.key_type


def test_nested_map_roundtrip():
    inner = MapVal(ty.STRING, ty.UINT128, {StringVal("a"): uint(1)})
    outer = MapVal(ty.BYSTR20, ty.MapType(ty.STRING, ty.UINT128),
                   {addr("0x01"): inner})
    out = value_from_json(value_to_json(outer))
    assert out.entries[addr("0x01")].entries == inner.entries


@given(st.integers(0, 2**128 - 1))
def test_value_roundtrip_property(n):
    assert value_from_json(value_to_json(uint(n))) == uint(n)


# -- arbitrary value shapes (hypothesis) --------------------------------------

def _wire_bytes(value):
    return json.dumps(value_to_json(value), sort_keys=True)


_scalars = st.one_of(
    st.integers(0, 2**128 - 1).map(uint),
    st.integers(-2**31, 2**31 - 1).map(lambda n: sint(n, 32)),
    st.text(max_size=12).map(StringVal),
    st.integers(0, 2**64).map(BNumVal),
    st.integers(0, 2**160 - 1).map(lambda n: addr(f"0x{n:040x}")),
    st.booleans().map(bool_val),
)


def _compound(children):
    def to_map(payload):
        keys, value = payload
        out = MapVal(ty.BYSTR20, type_of_value(value))
        for n in sorted(keys):
            out.entries[addr(f"0x{n:040x}")] = value
        return out
    return st.one_of(
        children.map(lambda v: some(v, type_of_value(v))),
        children.map(lambda v: none(type_of_value(v))),
        st.tuples(children, children).map(
            lambda ab: pair(ab[0], ab[1], type_of_value(ab[0]),
                            type_of_value(ab[1]))),
        st.tuples(st.sets(st.integers(0, 2**32), max_size=3),
                  children).map(to_map),
    )


arbitrary_values = st.recursive(_scalars, _compound, max_leaves=8)


@given(arbitrary_values)
def test_any_value_shape_roundtrips_byte_identical(value):
    wire = _wire_bytes(value)
    back = value_from_json(json.loads(wire))
    assert values_equal(back, value)
    assert _wire_bytes(back) == wire


@given(st.lists(st.tuples(st.integers(0, 2**32),
                          st.integers(-10**6, 10**6),
                          st.booleans()), max_size=6))
def test_delta_roundtrip_byte_identical(entries):
    delta = StateDelta("0xc0", 1, [
        DeltaEntry(("bal", (addr(f"0x{k:040x}"),)),
                   JoinKind.INT_MERGE if merge else JoinKind.OWN_OVERWRITE,
                   int_diff=diff if merge else 0,
                   template=uint(0) if merge else None,
                   new_value=MISSING if (not merge and diff < 0)
                   else uint(abs(diff)))
        for k, diff, merge in entries])
    wire = delta_to_json(delta)
    back = delta_from_json(wire)
    assert back.entries == delta.entries
    assert delta_to_json(back) == wire


@given(st.integers(0, 2**64), st.integers(0, 2**32),
       st.integers(0, 2**160 - 1))
def test_transaction_obj_roundtrip_preserves_tx_id(amount, nonce, to):
    """WAL replay routes unconstrained calls by ``tx_id % n_shards``,
    so the persisted form must carry the id through exactly."""
    tx = call("0xaa", f"0x{to:040x}", "Transfer",
              {"to": addr("0xbb"), "amount": uint(amount)},
              nonce=nonce, amount=amount)
    obj = json.loads(json.dumps(transaction_to_obj(tx)))
    back = transaction_from_obj(obj)
    assert back.tx_id == tx.tx_id
    assert transaction_to_obj(back) == transaction_to_obj(tx)


def test_delta_roundtrip():
    delta = StateDelta("0xc0", 2, [
        DeltaEntry(("bal", (addr("0x01"),)), JoinKind.INT_MERGE,
                   int_diff=-5, template=uint(10)),
        DeltaEntry(("owners", (uint(7),)), JoinKind.OWN_OVERWRITE,
                   new_value=addr("0x02")),
        DeltaEntry(("owners", (uint(8),)), JoinKind.OWN_OVERWRITE,
                   new_value=MISSING),  # deletion
    ])
    out = delta_from_json(delta_to_json(delta))
    assert out.contract == delta.contract
    assert out.shard == delta.shard
    assert out.entries == delta.entries


def test_transaction_roundtrip_call():
    tx = call("0xaa", "0xc0", "Transfer",
              {"to": addr("0xbb"), "amount": uint(5)}, nonce=7,
              amount=3)
    out = transaction_from_json(transaction_to_json(tx))
    assert out.sender == tx.sender
    assert out.transition == tx.transition
    assert out.args_dict() == tx.args_dict()
    assert out.nonce == 7 and out.amount == 3


def test_transaction_roundtrip_payment():
    tx = payment("0xaa", "0xbb", amount=9, nonce=2)
    out = transaction_from_json(transaction_to_json(tx))
    assert not out.is_contract_call
    assert out.amount == 9


@pytest.mark.parametrize("name", sorted(EVAL_CONTRACTS))
def test_signature_roundtrip_eval_contracts(name):
    """The signature a deployer submits over the wire is exactly the
    one the miner validates."""
    result = run_pipeline(CORPUS[name], name)
    sig = result.signature(EVAL_CONTRACTS[name])
    out = signature_from_json(signature_to_json(sig))
    assert signatures_equal(sig, out)
    assert out.weak_reads == sig.weak_reads
    # Byte-identical: a re-serialised signature hashes the same.
    assert json.dumps(signature_to_obj(out), sort_keys=True) == \
        json.dumps(signature_to_obj(sig), sort_keys=True)


def test_signature_roundtrip_with_bot():
    result = run_pipeline(CORPUS["NonfungibleToken"], "NFT")
    sig = result.signature(("Approve",))
    out = signature_from_json(signature_to_json(sig))
    assert signatures_equal(sig, out)


def test_real_epoch_deltas_roundtrip():
    """Deltas produced by an actual sharded epoch survive the wire."""
    from repro.chain import Network, call
    net = Network(3)
    admin = "0x" + "ad" * 20
    users = ["0x" + f"{i:040x}" for i in range(1, 9)]
    net.create_account(admin)
    for u in users:
        net.create_account(u)
    net.deploy(CORPUS["FungibleToken"], "0x" + "c0" * 20, {
        "contract_owner": addr(admin), "name": StringVal("T"),
        "symbol": StringVal("T"),
        "decimals": IntVal(6, ty.UINT32),
        "init_supply": uint(0),
    }, sharded_transitions=EVAL_CONTRACTS["FungibleToken"])
    block = net.process_epoch([
        call(admin, "0x" + "c0" * 20, "Mint",
             {"recipient": addr(u), "amount": uint(7)}, nonce=i + 1)
        for i, u in enumerate(users)
    ], unlimited=True)
    for mb in block.microblocks:
        for delta in mb.deltas:
            wire = delta_to_json(delta)
            assert delta_from_json(wire).entries == delta.entries

    # The post-epoch contract state (the durable snapshot payload)
    # must round-trip byte-identically, including its fingerprint.
    from repro.chain.recovery import state_fingerprint
    state = net.contracts["0x" + "c0" * 20].state
    obj = json.loads(json.dumps(state_to_obj(state)))
    back = state_from_obj(obj)
    assert state_fingerprint(back) == state_fingerprint(state)
    assert json.dumps(state_to_obj(back), sort_keys=True) == \
        json.dumps(state_to_obj(state), sort_keys=True)
    assert back.field_types == state.field_types
