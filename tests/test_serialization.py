"""Wire-format round-trip tests (values, deltas, txns, signatures)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.chain.delta import DeltaEntry, StateDelta
from repro.chain.serialization import (
    delta_from_json, delta_to_json, signature_from_json,
    signature_to_json, transaction_from_json, transaction_to_json,
    value_from_json, value_to_json,
)
from repro.chain.transaction import call, payment
from repro.core.joins import JoinKind
from repro.core.pipeline import run_pipeline
from repro.core.signature import signatures_equal
from repro.contracts import CORPUS, EVAL_CONTRACTS
from repro.scilla.state import MISSING
from repro.scilla import types as ty
from repro.scilla.values import (
    ADTVal, BNumVal, IntVal, MapVal, StringVal, addr, bool_val, none,
    pair, some, uint,
)

VALUES = [
    uint(0),
    uint(2**127),
    StringVal("hello\nworld"),
    BNumVal(123),
    addr("0xab"),
    bool_val(True),
    some(uint(5), ty.UINT128),
    none(ty.UINT128),
    pair(uint(1), StringVal("x"), ty.UINT128, ty.STRING),
]


@pytest.mark.parametrize("value", VALUES, ids=str)
def test_value_roundtrip(value):
    assert value_from_json(value_to_json(value)) == value


def test_map_value_roundtrip():
    m = MapVal(ty.BYSTR20, ty.UINT128,
               {addr("0x01"): uint(1), addr("0x02"): uint(2)})
    out = value_from_json(value_to_json(m))
    assert out.entries == m.entries
    assert out.key_type == m.key_type


def test_nested_map_roundtrip():
    inner = MapVal(ty.STRING, ty.UINT128, {StringVal("a"): uint(1)})
    outer = MapVal(ty.BYSTR20, ty.MapType(ty.STRING, ty.UINT128),
                   {addr("0x01"): inner})
    out = value_from_json(value_to_json(outer))
    assert out.entries[addr("0x01")].entries == inner.entries


@given(st.integers(0, 2**128 - 1))
def test_value_roundtrip_property(n):
    assert value_from_json(value_to_json(uint(n))) == uint(n)


def test_delta_roundtrip():
    delta = StateDelta("0xc0", 2, [
        DeltaEntry(("bal", (addr("0x01"),)), JoinKind.INT_MERGE,
                   int_diff=-5, template=uint(10)),
        DeltaEntry(("owners", (uint(7),)), JoinKind.OWN_OVERWRITE,
                   new_value=addr("0x02")),
        DeltaEntry(("owners", (uint(8),)), JoinKind.OWN_OVERWRITE,
                   new_value=MISSING),  # deletion
    ])
    out = delta_from_json(delta_to_json(delta))
    assert out.contract == delta.contract
    assert out.shard == delta.shard
    assert out.entries == delta.entries


def test_transaction_roundtrip_call():
    tx = call("0xaa", "0xc0", "Transfer",
              {"to": addr("0xbb"), "amount": uint(5)}, nonce=7,
              amount=3)
    out = transaction_from_json(transaction_to_json(tx))
    assert out.sender == tx.sender
    assert out.transition == tx.transition
    assert out.args_dict() == tx.args_dict()
    assert out.nonce == 7 and out.amount == 3


def test_transaction_roundtrip_payment():
    tx = payment("0xaa", "0xbb", amount=9, nonce=2)
    out = transaction_from_json(transaction_to_json(tx))
    assert not out.is_contract_call
    assert out.amount == 9


@pytest.mark.parametrize("name", sorted(EVAL_CONTRACTS))
def test_signature_roundtrip_eval_contracts(name):
    """The signature a deployer submits over the wire is exactly the
    one the miner validates."""
    result = run_pipeline(CORPUS[name], name)
    sig = result.signature(EVAL_CONTRACTS[name])
    out = signature_from_json(signature_to_json(sig))
    assert signatures_equal(sig, out)
    assert out.weak_reads == sig.weak_reads


def test_signature_roundtrip_with_bot():
    result = run_pipeline(CORPUS["NonfungibleToken"], "NFT")
    sig = result.signature(("Approve",))
    out = signature_from_json(signature_to_json(sig))
    assert signatures_equal(sig, out)


def test_real_epoch_deltas_roundtrip():
    """Deltas produced by an actual sharded epoch survive the wire."""
    from repro.chain import Network, call
    net = Network(3)
    admin = "0x" + "ad" * 20
    users = ["0x" + f"{i:040x}" for i in range(1, 9)]
    net.create_account(admin)
    for u in users:
        net.create_account(u)
    net.deploy(CORPUS["FungibleToken"], "0x" + "c0" * 20, {
        "contract_owner": addr(admin), "name": StringVal("T"),
        "symbol": StringVal("T"),
        "decimals": IntVal(6, ty.UINT32),
        "init_supply": uint(0),
    }, sharded_transitions=EVAL_CONTRACTS["FungibleToken"])
    block = net.process_epoch([
        call(admin, "0x" + "c0" * 20, "Mint",
             {"recipient": addr(u), "amount": uint(7)}, nonce=i + 1)
        for i, u in enumerate(users)
    ], unlimited=True)
    for mb in block.microblocks:
        for delta in mb.deltas:
            wire = delta_to_json(delta)
            assert delta_from_json(wire).entries == delta.entries
