"""Property tests for ``repro.obs`` (Hypothesis).

Three laws the observability layer's correctness arguments lean on:

* histogram merging is associative and commutative with counts
  preserved — that is what makes "merge worker registries in shard
  order" equal to "record inline serially";
* span trees always nest: every child interval lies within its
  parent's, and every span is reachable from exactly one root;
* ``snapshot() → JSON → from_snapshot()`` is exact, which is what lets
  durable network snapshots carry telemetry across a crash.
"""

import json

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.obs import MetricsRegistry, Tracer
from repro.obs.metrics import Histogram

BOUNDS = (10, 100, 1_000, 10_000)

values = st.lists(
    st.integers(min_value=0, max_value=100_000), max_size=30)


def _hist(observations) -> Histogram:
    import threading
    h = Histogram("h", BOUNDS, deterministic=True,
                  lock=threading.RLock())
    for v in observations:
        h.observe(v)
    return h


def _state(h: Histogram):
    return (tuple(h.counts), h.count, h.sum)


class TestHistogramMergeLaws:
    @settings(max_examples=100, deadline=None)
    @given(values, values)
    def test_commutative(self, xs, ys):
        ab = _hist(xs)
        ab.merge_from(_hist(ys))
        ba = _hist(ys)
        ba.merge_from(_hist(xs))
        assert _state(ab) == _state(ba)

    @settings(max_examples=100, deadline=None)
    @given(values, values, values)
    def test_associative(self, xs, ys, zs):
        left = _hist(xs)
        left.merge_from(_hist(ys))
        left.merge_from(_hist(zs))
        yz = _hist(ys)
        yz.merge_from(_hist(zs))
        right = _hist(xs)
        right.merge_from(yz)
        assert _state(left) == _state(right)

    @settings(max_examples=100, deadline=None)
    @given(values, values)
    def test_counts_preserved(self, xs, ys):
        merged = _hist(xs)
        merged.merge_from(_hist(ys))
        assert merged.count == len(xs) + len(ys)
        assert merged.sum == sum(xs) + sum(ys)
        assert sum(merged.counts) == merged.count

    @settings(max_examples=100, deadline=None)
    @given(values, values)
    def test_merge_equals_union(self, xs, ys):
        merged = _hist(xs)
        merged.merge_from(_hist(ys))
        assert _state(merged) == _state(_hist(xs + ys))


# --------------------------------------------------------------------------
# Span nesting.
# --------------------------------------------------------------------------

# A tree shape: each entry is a (small) number of grandchildren under
# a sequence of children.
tree_shapes = st.recursive(
    st.just([]),
    lambda inner: st.lists(inner, max_size=4),
    max_leaves=20)


def _run_spans(tracer, shape, depth=0):
    for i, child in enumerate(shape):
        with tracer.span(f"s{depth}.{i}"):
            _run_spans(tracer, child, depth + 1)


def _check_nesting(span, seen):
    assert id(span) not in seen, "span reachable from two parents"
    seen.add(id(span))
    assert span.end_ns >= span.start_ns
    for child in span.children:
        assert span.start_ns <= child.start_ns
        assert child.end_ns <= span.end_ns
        _check_nesting(child, seen)


def _count(shape) -> int:
    return sum(1 + _count(child) for child in shape)


class TestSpanNesting:
    @settings(max_examples=60, deadline=None)
    @given(tree_shapes)
    def test_children_nest_within_parents(self, shape):
        tracer = Tracer()
        _run_spans(tracer, shape)
        seen: set[int] = set()
        for root in tracer.roots:
            _check_nesting(root, seen)
        # Every opened span is finished and reachable exactly once.
        assert len(seen) == _count(shape)

    @settings(max_examples=60, deadline=None)
    @given(tree_shapes)
    def test_single_root_when_wrapped(self, shape):
        tracer = Tracer()
        with tracer.span("root"):
            _run_spans(tracer, shape)
        assert len(tracer.roots) == 1


# --------------------------------------------------------------------------
# Snapshot round-trips.
# --------------------------------------------------------------------------

names = st.text(
    alphabet="abcdefgh.xyz_0123456789", min_size=1, max_size=12)


@st.composite
def registries(draw) -> MetricsRegistry:
    reg = MetricsRegistry()
    for name in draw(st.lists(names, max_size=5, unique=True)):
        reg.counter("c." + name, draw(st.booleans())) \
            .inc(draw(st.integers(min_value=0, max_value=10**9)))
    for name in draw(st.lists(names, max_size=3, unique=True)):
        g = reg.gauge("g." + name, draw(st.booleans()))
        if draw(st.booleans()):
            g.set(draw(st.integers(min_value=-10**6, max_value=10**6)))
    for name in draw(st.lists(names, max_size=3, unique=True)):
        h = reg.histogram("h." + name, BOUNDS, draw(st.booleans()))
        for v in draw(values):
            h.observe(v)
    return reg


class TestSnapshotRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(registries())
    def test_snapshot_json_restore_is_exact(self, reg):
        snap = reg.snapshot()
        restored = MetricsRegistry.from_snapshot(
            json.loads(json.dumps(snap)))
        assert restored.snapshot() == snap

    @settings(max_examples=80, deadline=None)
    @given(registries())
    def test_reset_to_own_snapshot_is_identity(self, reg):
        snap = reg.snapshot()
        reg.reset_to(snap)
        assert reg.snapshot() == snap

    @settings(max_examples=50, deadline=None)
    @given(registries(), registries())
    def test_merge_into_empty_equals_source(self, a, b):
        # Merging two registries into an empty one equals merging the
        # second into the first (counter/histogram addition, gauge
        # last-set-wins with unset sources skipped).
        empty = MetricsRegistry()
        empty.merge_snapshot(a.snapshot())
        empty.merge_snapshot(b.snapshot())
        a.merge_snapshot(b.snapshot())
        assert empty.snapshot() == a.snapshot()
