"""Snapshot store tests: round-trips, atomicity, digests, retention."""

import json

import pytest

from repro.chain import Network, call
from repro.chain.faults import FaultEvent, FaultKind, FaultPlan
from repro.chain.recovery import network_fingerprint
from repro.chain.store import (
    SnapshotError, SnapshotStore, network_from_snapshot,
    snapshot_network,
)
from repro.contracts import CORPUS
from repro.scilla.values import IntVal, StringVal, addr, uint
from repro.scilla import types as ty

TOKEN = "0x" + "c0" * 20
ADMIN = "0x" + "ad" * 20
USERS = ["0x" + f"{i:040x}" for i in range(1, 13)]


def ft_network(**kwargs) -> Network:
    net = Network(3, **kwargs)
    net.create_account(ADMIN)
    for u in USERS:
        net.create_account(u)
    net.deploy(CORPUS["FungibleToken"], TOKEN, {
        "contract_owner": addr(ADMIN), "name": StringVal("T"),
        "symbol": StringVal("T"), "decimals": IntVal(6, ty.UINT32),
        "init_supply": uint(0),
    }, sharded_transitions=("Mint", "Transfer", "TransferFrom"))
    txns = [call(ADMIN, TOKEN, "Mint",
                 {"recipient": addr(u), "amount": uint(1000)},
                 nonce=i + 1)
            for i, u in enumerate(USERS)]
    net.process_epoch(txns, unlimited=True)
    return net


def transfer_round(nonce=1):
    return [call(u, TOKEN, "Transfer",
                 {"to": addr(USERS[(i + 5) % len(USERS)]),
                  "amount": uint(i + 1)}, nonce=nonce)
            for i, u in enumerate(USERS)]


# -- network <-> snapshot object ----------------------------------------------

def test_snapshot_roundtrip_preserves_state_and_future():
    net = ft_network()
    net.process_epoch(transfer_round())
    obj = json.loads(json.dumps(snapshot_network(net, wal_seq=42)))
    restored = network_from_snapshot(obj)

    assert restored.epoch == net.epoch
    assert network_fingerprint(restored) == network_fingerprint(net)
    assert restored.accounts.keys() == net.accounts.keys()
    for a in net.accounts:
        assert restored.accounts[a].balance == net.accounts[a].balance
        assert restored.accounts[a].shard_portions == \
            net.accounts[a].shard_portions
    assert restored.nonces.last_global == net.nonces.last_global

    # The decisive property: both networks process the *same* next
    # epoch identically.
    nxt = transfer_round(nonce=2)
    net.process_epoch(nxt)
    restored.process_epoch(
        [tx for tx in nxt])
    assert network_fingerprint(restored) == network_fingerprint(net)


def test_snapshot_carries_backlog_dead_letter_and_counters():
    from repro.chain.consensus import CostModel
    tiny = CostModel(shard_gas_limit=150, ds_gas_limit=150)
    net = ft_network(cost_model=tiny, carry_backlog=True, max_retries=1)
    net.process_epoch(transfer_round())
    for _ in range(6):
        if not net.backlog:
            break
        net.process_epoch([])
    assert net.dead_letter
    net.executor_fallback_details.append("thread: RuntimeError: boom")
    net.epoch_tags["measure"] = 3

    restored = network_from_snapshot(
        json.loads(json.dumps(snapshot_network(net, wal_seq=1))))
    assert [tx.tx_id for tx in restored.dead_letter] == \
        [tx.tx_id for tx in net.dead_letter]
    assert [(e.tx.tx_id, e.retries, e.not_before)
            for e in restored.backlog] == \
        [(e.tx.tx_id, e.retries, e.not_before) for e in net.backlog]
    assert restored.executor_fallback_details == \
        net.executor_fallback_details
    assert restored.epoch_tags == net.epoch_tags


def test_snapshot_carries_fault_plan_and_injector_counters():
    plan = FaultPlan([FaultEvent(2, FaultKind.CRASH_SHARD, 0)], seed=9)
    net = ft_network(fault_plan=plan)
    net.process_epoch(transfer_round())
    assert net.blocks[-1].excluded_lanes  # the fault fired

    restored = network_from_snapshot(
        json.loads(json.dumps(snapshot_network(net, wal_seq=1))))
    assert restored.injector is not None
    assert restored.injector.plan.seed == 9
    assert restored.injector.plan.events == plan.events
    assert restored.injector.injected == net.injector.injected
    assert restored.injector.skipped == net.injector.skipped


def test_snapshot_version_guard():
    net = ft_network()
    obj = snapshot_network(net, wal_seq=0)
    obj["version"] = 99
    with pytest.raises(SnapshotError, match="version"):
        network_from_snapshot(obj)


# -- durable storage ----------------------------------------------------------

def test_store_save_load_newest(tmp_path):
    net = ft_network()
    store = SnapshotStore(tmp_path)
    store.save(snapshot_network(net, wal_seq=10))
    net.process_epoch(transfer_round())
    store.save(snapshot_network(net, wal_seq=20))

    obj = store.load_newest()
    assert obj["wal_seq"] == 20
    assert obj["epoch"] == net.epoch
    assert len(store.paths()) == 2


def test_store_skips_tampered_snapshot(tmp_path):
    net = ft_network()
    store = SnapshotStore(tmp_path)
    store.save(snapshot_network(net, wal_seq=10))
    net.process_epoch(transfer_round())
    newest = store.save(snapshot_network(net, wal_seq=20))

    body = json.loads(newest.read_text())
    body["snapshot"]["epoch"] += 1  # tamper without fixing the digest
    newest.write_text(json.dumps(body))
    obj = store.load_newest()
    assert obj["wal_seq"] == 10  # fell back to the older valid one

    newest.write_text("not json at all")
    assert store.load_newest()["wal_seq"] == 10


def test_store_no_snapshot_returns_none(tmp_path):
    assert SnapshotStore(tmp_path).load_newest() is None


def test_store_save_leaves_no_temp_files(tmp_path):
    net = ft_network()
    store = SnapshotStore(tmp_path)
    store.save(snapshot_network(net, wal_seq=1))
    assert not [p for p in tmp_path.iterdir()
                if p.name.endswith(".tmp")]


def test_store_retention(tmp_path):
    net = ft_network()
    store = SnapshotStore(tmp_path, keep=2)
    for seq in (1, 2, 3, 4):
        store.save(snapshot_network(net, wal_seq=seq))
    deleted = store.compact()
    assert len(deleted) == 2
    remaining = store.paths()
    assert len(remaining) == 2
    assert store.load_newest()["wal_seq"] == 4


def test_store_keep_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        SnapshotStore(tmp_path, keep=0)
