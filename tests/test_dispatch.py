"""Lookup-node dispatch tests: constraint resolution at runtime."""

import pytest

from repro.chain.dispatch import (
    DS, DeployedSignature, Dispatcher, key_token, shard_hash,
)
from repro.chain.transaction import call, payment
from repro.core.pipeline import run_pipeline
from repro.contracts import CORPUS
from repro.scilla.values import IntVal, StringVal, addr, uint
from repro.scilla import types as ty

TOKEN = "0x" + "c0" * 20
ADMIN = "0x" + "ad" * 20


def ft_dispatcher(n_shards: int = 4,
                  selection=("Mint", "Transfer", "TransferFrom")):
    result = run_pipeline(CORPUS["FungibleToken"], "FT")
    sig = result.signature(selection)
    d = Dispatcher(n_shards)
    d.register_contract(DeployedSignature(TOKEN, sig, {
        "contract_owner": addr(ADMIN),
    }))
    return d


def test_payment_goes_to_sender_home_shard():
    d = ft_dispatcher()
    tx = payment("0xaa", "0xbb", 5, nonce=1)
    decision = d.dispatch(tx)
    assert decision.shard == d.home_shard(tx.sender)


def test_unknown_contract_goes_to_ds():
    d = ft_dispatcher()
    tx = call("0xaa", "0x" + "ff" * 20, "Transfer", {}, nonce=1)
    assert d.dispatch(tx).is_ds


def test_unselected_transition_goes_to_ds():
    d = ft_dispatcher()
    tx = call("0xaa", TOKEN, "Pause", {}, nonce=1)
    assert d.dispatch(tx).is_ds


def test_transfer_owned_by_sender_component():
    d = ft_dispatcher()
    tx = call("0xaa", TOKEN, "Transfer",
              {"to": addr("0xbb"), "amount": uint(1)}, nonce=1)
    decision = d.dispatch(tx)
    assert not decision.is_ds
    # Same sender always lands in the same shard...
    tx2 = call("0xaa", TOKEN, "Transfer",
               {"to": addr("0xcc"), "amount": uint(2)}, nonce=2)
    assert d.dispatch(tx2).shard == decision.shard


def test_transfer_distributes_by_sender():
    d = ft_dispatcher(n_shards=4)
    shards = {
        d.dispatch(call(f"0x{i:040x}", TOKEN, "Transfer",
                        {"to": addr("0xbb"), "amount": uint(1)},
                        nonce=1)).shard
        for i in range(1, 60)
    }
    assert len(shards) == 4  # all shards receive work


def test_self_transfer_aliases_to_ds():
    """NoAliases(_sender, to): transferring to yourself aliases the
    two map keys, so the transaction must be serialised in the DS."""
    d = ft_dispatcher()
    me = "0x" + "77" * 20
    tx = call(me, TOKEN, "Transfer", {"to": addr(me), "amount": uint(1)},
              nonce=1)
    assert d.dispatch(tx).is_ds


def test_transfer_to_contract_goes_to_ds():
    """UserAddr(to): the zero-fund notification message must not hit a
    contract, so such transfers are serialised."""
    d = ft_dispatcher()
    other_contract = "0x" + "c1" * 20
    d.register_contract(DeployedSignature(other_contract, None, {}))
    tx = call("0xaa", TOKEN, "Transfer",
              {"to": addr(other_contract), "amount": uint(1)}, nonce=1)
    assert d.dispatch(tx).is_ds


def test_transfer_from_colocates_allowance_and_balance():
    """Owns(balances[from]) and Owns(allowances[from][_sender]) hash by
    the same first key, so TransferFrom dispatches to a single shard."""
    d = ft_dispatcher()
    tx = call("0xaa", TOKEN, "TransferFrom",
              {"from": addr("0x11"), "to": addr("0x22"),
               "amount": uint(1)}, nonce=1)
    decision = d.dispatch(tx)
    assert not decision.is_ds
    # ... and it is the shard owning the *from* account's components.
    transfer_by_from = call("0x11", TOKEN, "Transfer",
                            {"to": addr("0x33"), "amount": uint(1)},
                            nonce=1)
    assert d.dispatch(transfer_by_from).shard == decision.shard


def test_mint_unconstrained_round_robins():
    d = ft_dispatcher()
    shards = {
        d.dispatch(call(ADMIN, TOKEN, "Mint",
                        {"recipient": addr(f"0x{i:040x}"),
                         "amount": uint(1)}, nonce=i)).shard
        for i in range(1, 40)
    }
    assert len(shards) == 4


def test_no_signature_uses_default_strategy():
    d = Dispatcher(4, use_signatures=True)
    d.register_contract(DeployedSignature(TOKEN, None, {}))
    # Find a sender co-located with the contract and one that is not.
    colocated = ds_bound = None
    for i in range(1, 100):
        sender = f"0x{i:040x}"
        if d.home_shard(sender) == d.home_shard(TOKEN):
            colocated = sender
        else:
            ds_bound = sender
        if colocated and ds_bound:
            break
    assert not d.dispatch(
        call(colocated, TOKEN, "Transfer", {}, nonce=1)).is_ds
    assert d.dispatch(
        call(ds_bound, TOKEN, "Transfer", {}, nonce=1)).is_ds


def test_bot_transition_always_ds():
    result = run_pipeline(CORPUS["NonfungibleToken"], "NFT")
    sig = result.signature(("Approve",))
    d = Dispatcher(4)
    d.register_contract(DeployedSignature(TOKEN, sig, {}))
    tx = call("0xaa", TOKEN, "Approve",
              {"to": addr("0xbb"),
               "token_id": IntVal(1, ty.PrimType("Uint256"))}, nonce=1)
    assert d.dispatch(tx).is_ds


def test_nft_transfer_constraints_all_keyed_by_token():
    result = run_pipeline(CORPUS["NonfungibleToken"], "NFT")
    sig = result.signature(("Mint", "Transfer"))
    d = Dispatcher(4)
    nft = "0x" + "c2" * 20
    d.register_contract(DeployedSignature(nft, sig, {}))
    token_id = IntVal(77, ty.PrimType("Uint256"))
    mint = call(ADMIN, nft, "Mint",
                {"to": addr("0x11"), "token_id": token_id}, nonce=1)
    transfer = call("0x11", nft, "Transfer",
                    {"token_owner": addr("0x11"), "to": addr("0x22"),
                     "token_id": token_id}, nonce=1)
    d_mint, d_tr = d.dispatch(mint), d.dispatch(transfer)
    assert not d_mint.is_ds and not d_tr.is_ds
    assert d_mint.shard == d_tr.shard  # both follow the token id


def test_key_token_formats():
    assert key_token(uint(5)) == "Uint128|5"
    assert key_token(StringVal("x")) == "String|x"
    assert key_token(addr("0xaa")).startswith("ByStr20|0x")


def test_shard_hash_stable_and_in_range():
    for n in (1, 3, 7):
        h = shard_hash("token", n)
        assert 0 <= h < n
        assert h == shard_hash("token", n)
