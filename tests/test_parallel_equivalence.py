"""Differential oracle: parallel lane execution == serial execution.

The parallel epoch executors (``Network(executor="thread"|"process")``)
must be *observationally identical* to the serial loop: same final
state fingerprints, same per-epoch EpochStats, same receipts, same
fault log — for every workload of the throughput evaluation, with and
without injected faults.  Any divergence means lane isolation leaked.

Receipts are compared modulo ``tx_id`` (a process-global counter, so
two independently generated transaction streams never share ids).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.chain.faults import FaultPlan
from repro.chain.network import EXECUTOR_STRATEGIES, Network
from repro.chain.recovery import network_fingerprint
from repro.workloads.generators import ALL_WORKLOADS

N_SHARDS = 4
EPOCHS = 3
PARALLEL = tuple(s for s in EXECUTOR_STRATEGIES if s != "serial")


def _workload(cls):
    return cls(n_users=16, txns_per_epoch=24, seed=11)


def _receipt_key(receipt):
    """Everything observable about a receipt except the global tx_id."""
    tx = receipt.tx
    return (tx.sender, tx.to, tx.nonce, tx.amount, tx.transition, tx.args,
            receipt.success, receipt.gas_used, receipt.shard, receipt.error,
            tuple(repr(e) for e in receipt.events))


def _observe(workload_cls, executor: str, fault_seed: int | None):
    """Run one workload end-to-end and collect every observable."""
    plan = (FaultPlan.random(fault_seed, epochs=EPOCHS, n_shards=N_SHARDS)
            if fault_seed is not None else None)
    net = Network(N_SHARDS, use_signatures=True, fault_plan=plan,
                  executor=executor)
    workload = _workload(workload_cls)
    workload.setup(net)
    blocks = [net.process_epoch(workload.transactions(epoch))
              for epoch in range(EPOCHS)]
    observation = {
        "fingerprint": network_fingerprint(net),
        "stats": [dataclasses.asdict(b.stats) for b in blocks],
        "fault_log": [b.fault_log for b in blocks],
        "excluded": [b.excluded_lanes for b in blocks],
        "receipts": [[_receipt_key(r) for r in b.all_receipts]
                     for b in blocks],
        "merged": [b.merged_locations for b in blocks],
        "balances": {a: (acc.balance, dict(sorted(acc.shard_portions.items())))
                     for a, acc in sorted(net.accounts.items())},
    }
    return observation, net


@pytest.mark.parametrize("executor", PARALLEL)
@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS,
                         ids=[c.__name__ for c in ALL_WORKLOADS])
def test_parallel_matches_serial(workload_cls, executor):
    serial, _ = _observe(workload_cls, "serial", fault_seed=None)
    parallel, net = _observe(workload_cls, executor, fault_seed=None)
    assert parallel == serial
    # The whole point: these epochs actually ran through the pool
    # (fault-free, no workload here triggers the serial fallback).
    assert net.executor == executor
    assert net.executor_fallbacks == 0


@pytest.mark.parametrize("executor", PARALLEL)
@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS,
                         ids=[c.__name__ for c in ALL_WORKLOADS])
def test_parallel_matches_serial_under_faults(workload_cls, executor):
    serial, _ = _observe(workload_cls, "serial", fault_seed=11)
    parallel, _ = _observe(workload_cls, executor, fault_seed=11)
    assert parallel == serial


def test_fault_plan_actually_injects_faults():
    """Guard the oracle against vacuity: the seeded plan fires."""
    serial, _ = _observe(ALL_WORKLOADS[0], "serial", fault_seed=11)
    assert any(serial["fault_log"])
