"""Precision tests for the analysis on higher-order and library code.

Pins down where the analysis is exact (first- and second-order library
functions, option peels) and where it is deliberately conservative
(native folds, unknown functions, control-flow-dependent writes) —
the precision/soundness trade-offs of Sec. 3.4.
"""

from repro.core.domain import Card, FieldSource, ParamKey, PseudoField
from repro.core.signature import derive_signature, is_commutative_write
from repro.core.summary import analyze_module
from repro.core.joins import JoinKind
from repro.scilla.parser import parse_module

PF = PseudoField


def summary_of(lib: str, fields: str, body: str, params: str = ""):
    src = f"""
    scilla_version 0
    library P
    let zero = Uint128 0
    {lib}
    contract P (owner: ByStr20)
    {fields}
    transition Go ({params})
      {body}
    end
    """
    return analyze_module(parse_module(src))["Go"]


BAL = "field bal : Map ByStr20 Uint128 = Emp ByStr20 Uint128"


def self_contrib(summary, pf):
    (write,) = [w for w in summary.writes() if w.pf == pf]
    return write, write.contrib.get(FieldSource(pf))


def test_library_add_function_stays_linear():
    """A library wrapper around `add` keeps cardinality 1 — the
    first-order EFun substitution is exact."""
    s = summary_of(
        lib="let add_one_to = fun (x: Uint128) => fun (y: Uint128) =>"
            " builtin add x y",
        fields=BAL,
        body="b_opt <- bal[who];\n"
             " b = match b_opt with | Some v => v | None => zero end;\n"
             " nb = add_one_to b amt;\n"
             " bal[who] := nb",
        params="who: ByStr20, amt: Uint128")
    write, contrib = self_contrib(s, PF("bal", (ParamKey("who"),)))
    assert contrib.card == Card.ONE
    assert contrib.ops == frozenset({"add"})
    assert is_commutative_write(write)


def test_library_double_function_detected_nonlinear():
    """x + x through a library function must surface cardinality ω."""
    s = summary_of(
        lib="let double = fun (x: Uint128) => builtin add x x",
        fields=BAL,
        body="b_opt <- bal[who];\n"
             " b = match b_opt with | Some v => v | None => zero end;\n"
             " nb = double b;\n"
             " bal[who] := nb",
        params="who: ByStr20")
    write, contrib = self_contrib(s, PF("bal", (ParamKey("who"),)))
    assert contrib.card == Card.MANY
    assert not is_commutative_write(write)


def test_second_order_application_degrades_conservatively():
    """Passing a *function* as an argument exceeds the precision our
    contribution types track through sums: the result degrades to ⊤,
    the write is not commutative, and the transition is not sharded —
    conservative but sound (the paper supports "up to second-order"
    with type-level deferral; we keep the simpler, safe behaviour)."""
    from repro.core.domain import TopContrib
    s = summary_of(
        lib="let apply_fn = fun (f: Uint128 -> Uint128) =>"
            " fun (x: Uint128) => f x\n"
            "let bump = fun (v: Uint128) =>"
            " let one = Uint128 1 in builtin add v one",
        fields=BAL,
        body="b_opt <- bal[who];\n"
             " b = match b_opt with | Some v => v | None => zero end;\n"
             " nb = apply_fn bump b;\n"
             " bal[who] := nb",
        params="who: ByStr20")
    (write,) = s.writes()
    assert isinstance(write.contrib, TopContrib)
    assert not is_commutative_write(write)


def test_native_fold_is_conservative():
    """Values produced by native folds scale arguments by ω inexactly:
    a write computed from a fold must never be marked commutative."""
    s = summary_of(
        lib="",
        fields="field total : Uint128 = Uint128 0",
        body="t <- total;\n"
             " nil = Nil {Uint128};\n"
             " l = Cons {Uint128} t nil;\n"
             " f = fun (acc: Uint128) => fun (x: Uint128) =>"
             " builtin add acc x;\n"
             " folder = @list_foldl Uint128 Uint128;\n"
             " nt = folder f zero l;\n"
             " total := nt")
    write, contrib = self_contrib(s, PF("total"))
    assert not is_commutative_write(write)


def test_conditional_write_value_not_commutative():
    """A write whose value depends on a branch over the field itself
    has a Cond (or inexact) contribution and must not be IntMerged."""
    s = summary_of(
        lib="",
        fields="field n : Uint128 = Uint128 0",
        body="x <- n;\n"
             " big = builtin lt zero x;\n"
             " nv = match big with\n"
             "      | True => builtin add x amt\n"
             "      | False => zero\n"
             "      end;\n"
             " n := nv",
        params="amt: Uint128")
    write, contrib = self_contrib(s, PF("n"))
    assert not is_commutative_write(write)


def test_mul_by_constant_not_commutative():
    """x * k does not commute with x + k' — ops outside {add,sub}
    disqualify even exact linear writes."""
    s = summary_of(
        lib="",
        fields="field n : Uint128 = Uint128 0",
        body="x <- n;\n"
             " two = Uint128 2;\n"
             " nv = builtin mul x two;\n"
             " n := nv")
    write, _ = self_contrib(s, PF("n"))
    assert not is_commutative_write(write)


def test_swap_via_two_fields_needs_ownership_of_both():
    src_summary = summary_of(
        lib="",
        fields="field a : Uint128 = Uint128 0\n"
              "field b : Uint128 = Uint128 0",
        body="x <- a;\n y <- b;\n a := y;\n b := x")
    sig = derive_signature("C", {"Go": src_summary}, ("Go",))
    from repro.core.constraints import Owns
    assert Owns(PF("a")) in sig.constraints["Go"]
    assert Owns(PF("b")) in sig.constraints["Go"]
    assert sig.joins["a"] is JoinKind.OWN_OVERWRITE


def test_add_then_sub_same_field_twice_not_commutative():
    """Reading once but writing the field into itself twice (x+x-x
    pattern) must be rejected despite ops ⊆ {add, sub}."""
    s = summary_of(
        lib="",
        fields="field n : Uint128 = Uint128 0",
        body="x <- n;\n"
             " y = builtin add x x;\n"
             " z = builtin sub y x;\n"
             " n := z")
    write, contrib = self_contrib(s, PF("n"))
    assert contrib.card == Card.MANY
    assert not is_commutative_write(write)


def test_exists_guard_keeps_ownership_but_allows_overwrite_sharding():
    """The one-donation-per-backer pattern: exists + overwrite shards
    per entry (OwnOverwrite), not commutatively."""
    s = summary_of(
        lib="",
        fields=BAL,
        body="seen <- exists bal[_sender];\n"
             " match seen with\n"
             " | True => throw\n"
             " | False => bal[_sender] := amt\n"
             " end",
        params="amt: Uint128")
    sig = derive_signature("C", {"Go": s}, ("Go",))
    from repro.core.constraints import Owns
    assert Owns(PF("bal", (ParamKey("_sender"),))) in sig.constraints["Go"]
    assert sig.joins["bal"] is JoinKind.OWN_OVERWRITE
