"""Crash torture: SIGKILL real subprocesses at WAL barriers and verify
resumed runs end byte-identical to uninterrupted ones.

These tests spawn ``python -m repro run`` subprocesses (see
repro.eval.chaos.run_crash_torture), so they are the slowest tier-1
tests; the parameters are deliberately tiny.
"""

import pytest

from repro.eval.chaos import (
    format_torture_report, run_crash_torture,
)
from repro.workloads.generators import ALL_WORKLOADS

TINY = dict(kills=1, epochs=2, users=8, txns=6, shards=3)


@pytest.mark.parametrize("workload",
                         [cls.name for cls in ALL_WORKLOADS])
def test_torture_all_workloads_fault_free(workload):
    outcome = run_crash_torture(workload, **TINY, rng_seed=11)
    assert outcome.passed, format_torture_report([outcome])
    assert outcome.kills + outcome.completed_early >= 1


def test_torture_under_fault_plan():
    outcome = run_crash_torture("FT transfer", kills=2, epochs=3,
                                users=10, txns=8, shards=3,
                                fault_seed=5, rng_seed=3)
    assert outcome.passed, format_torture_report([outcome])


def test_torture_thread_executor():
    outcome = run_crash_torture("NFT mint", **TINY, executor="thread",
                                rng_seed=7)
    assert outcome.passed, format_torture_report([outcome])


def test_torture_process_executor():
    outcome = run_crash_torture("UD bestow", **TINY,
                                executor="process", rng_seed=5)
    assert outcome.passed, format_torture_report([outcome])


def test_torture_torn_writes():
    """Force the torn-tail path specifically (mid-record SIGKILL)."""
    outcome = run_crash_torture("FT fund", **TINY, rng_seed=1,
                                torn_ratio=1.0)
    assert outcome.passed, format_torture_report([outcome])
