"""Contract-state and write-log tests, with property-based rollback."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.scilla.state import ContractState, MISSING, WriteLog, _Missing
from repro.scilla import types as ty
from repro.scilla.values import MapVal, StringVal, uint


def fresh_state() -> ContractState:
    return ContractState(
        address="0x01",
        fields={
            "n": uint(0),
            "m": MapVal(ty.STRING, ty.UINT128),
            "nested": MapVal(ty.STRING, ty.MapType(ty.STRING, ty.UINT128)),
        },
        field_types={
            "n": ty.UINT128,
            "m": ty.MapType(ty.STRING, ty.UINT128),
            "nested": ty.MapType(ty.STRING,
                                 ty.MapType(ty.STRING, ty.UINT128)),
        },
    )


def snapshot(state: ContractState):
    from repro.scilla.values import canonical
    return {k: canonical(v) for k, v in state.fields.items()}


def test_read_write_whole_field():
    s = fresh_state()
    s.write(("n", ()), uint(5))
    assert s.read(("n", ())) == uint(5)


def test_map_get_missing():
    s = fresh_state()
    assert isinstance(s.read(("m", (StringVal("x"),))), _Missing)


def test_map_put_and_delete():
    s = fresh_state()
    key = ("m", (StringVal("x"),))
    s.write(key, uint(1))
    assert s.read(key) == uint(1)
    s.write(key, MISSING)
    assert isinstance(s.read(key), _Missing)


def test_nested_map_autovivifies():
    s = fresh_state()
    key = ("nested", (StringVal("a"), StringVal("b")))
    s.write(key, uint(9))
    assert s.read(key) == uint(9)
    # The intermediate map exists now.
    assert StringVal("a") in s.fields["nested"].entries


def test_copy_is_deep_for_maps():
    s = fresh_state()
    s.write(("m", (StringVal("x"),)), uint(1))
    c = s.copy()
    c.write(("m", (StringVal("x"),)), uint(2))
    assert s.read(("m", (StringVal("x"),))) == uint(1)


def test_writelog_rollback_scalar():
    s = fresh_state()
    log = WriteLog()
    log.record(s, ("n", ()), uint(7))
    s.write(("n", ()), uint(7))
    log.rollback(s)
    assert s.read(("n", ())) == uint(0)


def test_writelog_rollback_restores_overwritten_entry():
    s = fresh_state()
    key = ("m", (StringVal("x"),))
    s.write(key, uint(1))
    log = WriteLog()
    log.record(s, key, uint(2))
    s.write(key, uint(2))
    log.rollback(s)
    assert s.read(key) == uint(1)


def test_writelog_rollback_removes_created_nested_prefix():
    s = fresh_state()
    key = ("nested", (StringVal("a"), StringVal("b")))
    log = WriteLog()
    log.record(s, key, uint(1))
    s.write(key, uint(1))
    log.rollback(s)
    assert not s.fields["nested"].entries


def test_writelog_first_undo_wins():
    s = fresh_state()
    key = ("n", ())
    log = WriteLog()
    for v in (1, 2, 3):
        log.record(s, key, uint(v))
        s.write(key, uint(v))
    log.rollback(s)
    assert s.read(key) == uint(0)


# -- property: arbitrary write sequences roll back exactly --------------------

_keys = st.sampled_from(["a", "b", "c"])
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("scalar"), st.integers(0, 100)),
        st.tuples(st.just("put"), st.tuples(_keys, st.integers(0, 100))),
        st.tuples(st.just("del"), _keys),
        st.tuples(st.just("nest"), st.tuples(_keys, _keys,
                                             st.integers(0, 100))),
    ),
    max_size=20,
)


@settings(max_examples=60, deadline=None)
@given(_ops)
def test_rollback_restores_exact_state(ops):
    s = fresh_state()
    # Seed some pre-existing entries so deletes/overwrites are exercised.
    s.write(("m", (StringVal("a"),)), uint(10))
    s.write(("nested", (StringVal("a"), StringVal("a"))), uint(20))
    before = snapshot(s)
    log = WriteLog()
    for op, payload in ops:
        if op == "scalar":
            key, value = ("n", ()), uint(payload)
        elif op == "put":
            k, v = payload
            key, value = ("m", (StringVal(k),)), uint(v)
        elif op == "del":
            key, value = ("m", (StringVal(payload),)), MISSING
        else:
            k1, k2, v = payload
            key, value = ("nested", (StringVal(k1), StringVal(k2))), uint(v)
        log.record(s, key, value)
        s.write(key, value)
    log.rollback(s)
    assert snapshot(s) == before
