"""State-delta and three-way-merge tests, with the PCM laws
property-checked (invariant 2 of DESIGN.md)."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.joins import JoinKind, MergeConflict
from repro.chain.delta import (
    DeltaEntry, StateDelta, compute_delta, merge_deltas,
)
from repro.scilla.state import ContractState, MISSING
from repro.scilla import types as ty
from repro.scilla.values import MapVal, StringVal, uint


def token_state(**balances) -> ContractState:
    m = MapVal(ty.STRING, ty.UINT128)
    for k, v in balances.items():
        m.entries[StringVal(k)] = uint(v)
    return ContractState(
        "0xc", {"bal": m, "supply": uint(sum(balances.values()))},
        {"bal": ty.MapType(ty.STRING, ty.UINT128), "supply": ty.UINT128})


JOINS = {"bal": JoinKind.INT_MERGE, "supply": JoinKind.INT_MERGE}
OVERWRITE = {"bal": JoinKind.OWN_OVERWRITE,
             "supply": JoinKind.OWN_OVERWRITE}


def delta_between(base, final, joins, shard=0, keys=None):
    if keys is None:
        keys = {("bal", (k,))
                for k in set(base.fields["bal"].entries)
                | set(final.fields["bal"].entries)}
        keys.add(("supply", ()))
    return compute_delta("0xc", shard, base, final, keys, joins)


def test_compute_delta_int_diffs():
    base = token_state(a=10, b=5)
    final = base.copy()
    final.write(("bal", (StringVal("a"),)), uint(7))
    final.write(("bal", (StringVal("c"),)), uint(3))
    d = delta_between(base, final, JOINS)
    diffs = {e.key: e.int_diff for e in d.entries}
    assert diffs[("bal", (StringVal("a"),))] == -3
    assert diffs[("bal", (StringVal("c"),))] == 3
    # Untouched entries produce no delta entries.
    assert ("bal", (StringVal("b"),)) not in diffs


def test_zero_diff_entries_omitted():
    base = token_state(a=10)
    final = base.copy()
    d = delta_between(base, final, JOINS)
    assert len(d) == 0


def test_merge_sums_int_deltas_from_multiple_shards():
    base = token_state(a=10)
    f1 = base.copy()
    f1.write(("bal", (StringVal("a"),)), uint(14))   # +4 in shard 0
    f2 = base.copy()
    f2.write(("bal", (StringVal("a"),)), uint(13))   # +3 in shard 1
    d1 = delta_between(base, f1, JOINS, shard=0)
    d2 = delta_between(base, f2, JOINS, shard=1)
    merged, changed = merge_deltas(base, [d1, d2])
    assert merged.read(("bal", (StringVal("a"),))) == uint(17)
    assert changed == 2


def test_merge_creates_absent_entries():
    base = token_state()
    f1 = base.copy()
    f1.write(("bal", (StringVal("x"),)), uint(5))
    d1 = delta_between(base, f1, JOINS)
    merged, _ = merge_deltas(base, [d1])
    assert merged.read(("bal", (StringVal("x"),))) == uint(5)


def test_merge_overwrite_and_delete():
    base = token_state(a=1, b=2)
    f1 = base.copy()
    f1.write(("bal", (StringVal("a"),)), uint(9))
    f1.write(("bal", (StringVal("b"),)), MISSING)
    d1 = delta_between(base, f1, OVERWRITE)
    merged, _ = merge_deltas(base, [d1])
    assert merged.read(("bal", (StringVal("a"),))) == uint(9)
    assert merged.read(("bal", (StringVal("b"),))) is MISSING


def test_conflicting_overwrites_detected():
    base = token_state(a=1)
    f1, f2 = base.copy(), base.copy()
    f1.write(("bal", (StringVal("a"),)), uint(2))
    f2.write(("bal", (StringVal("a"),)), uint(3))
    d1 = delta_between(base, f1, OVERWRITE, shard=0)
    d2 = delta_between(base, f2, OVERWRITE, shard=1)
    with pytest.raises(MergeConflict) as ei:
        merge_deltas(base, [d1, d2])
    # The conflict is structured: it names the contract, the state
    # location, and the shards that clashed.
    assert ei.value.contract == "0xc"
    assert ei.value.key == ("bal", (StringVal("a"),))
    assert set(ei.value.shards) == {0, 1}


def test_overwrite_vs_intmerge_same_key_detected():
    base = token_state(a=1)
    d1 = StateDelta("0xc", 0, [DeltaEntry(
        ("bal", (StringVal("a"),)), JoinKind.OWN_OVERWRITE,
        new_value=uint(5))])
    d2 = StateDelta("0xc", 1, [DeltaEntry(
        ("bal", (StringVal("a"),)), JoinKind.INT_MERGE, int_diff=1,
        template=uint(1))])
    with pytest.raises(MergeConflict) as ei:
        merge_deltas(base, [d1, d2])
    assert ei.value.contract == "0xc"
    assert set(ei.value.shards) == {0, 1}
    with pytest.raises(MergeConflict) as ei:
        merge_deltas(base, [d2, d1])
    assert ei.value.key == ("bal", (StringVal("a"),))
    assert set(ei.value.shards) == {0, 1}


def test_merge_leaves_base_untouched():
    base = token_state(a=1)
    f1 = base.copy()
    f1.write(("bal", (StringVal("a"),)), uint(6))
    merged, _ = merge_deltas(base, [delta_between(base, f1, JOINS)])
    assert base.read(("bal", (StringVal("a"),))) == uint(1)
    assert merged is not base


# -- PCM laws: merge is commutative and associative -----------------------------

_shard_writes = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]),
    st.integers(-5, 50),
    max_size=4,
)


def _apply_shard(base, writes, shard):
    final = base.copy()
    for k, dv in writes.items():
        key = ("bal", (StringVal(k),))
        old = base.read(key)
        old_v = old.value if old is not MISSING and not isinstance(
            old, type(MISSING)) else 0
        new_v = max(0, old_v + dv)
        final.write(key, uint(new_v))
    return delta_between(base, final, JOINS, shard=shard,
                         keys={("bal", (StringVal(k),)) for k in writes})


@settings(max_examples=50, deadline=None)
@given(_shard_writes, _shard_writes, _shard_writes)
def test_merge_order_independent(w1, w2, w3):
    """⊎ is commutative and associative: any delta ordering merges to
    the same state (invariant 2)."""
    base = token_state(a=20, b=20, c=20, d=20)
    deltas = [_apply_shard(base, w, i)
              for i, w in enumerate((w1, w2, w3))]
    import itertools
    results = []
    for perm in itertools.permutations(deltas):
        merged, _ = merge_deltas(base, list(perm))
        results.append({
            str(k): v.value
            for k, v in merged.fields["bal"].entries.items()})
    assert all(r == results[0] for r in results)
