"""Durability integration tests: logged runs, resume, replay checks.

The in-process half of the crash-safety story (the out-of-process
SIGKILL half lives in tests/test_crash_torture.py): a durable network
must behave exactly like a plain one, a closed data dir must resume
into an equivalent network, and replay must refuse logs that do not
reproduce their recorded commits.
"""

import json
from pathlib import Path

import pytest

from repro.chain import Network, call
from repro.chain.faults import FaultPlan
from repro.chain.recovery import network_fingerprint
from repro.chain.store import SnapshotStore
from repro.chain.wal import (
    WALError, WALRecord, WriteAheadLog, _encode, _segment_files,
    read_wal,
)
from repro.contracts import CORPUS
from repro.scilla.values import IntVal, StringVal, addr, uint
from repro.scilla import types as ty
from repro.workloads.generators import workload_by_name

TOKEN = "0x" + "c0" * 20
ADMIN = "0x" + "ad" * 20
USERS = ["0x" + f"{i:040x}" for i in range(1, 13)]


def build_and_run(epochs=3, data_dir=None, net_kwargs=None,
                  **durable_kwargs) -> Network:
    net = Network(3, **(net_kwargs or {}),
                  **({"data_dir": str(data_dir), **durable_kwargs}
                     if data_dir is not None else {}))
    net.create_account(ADMIN)
    for u in USERS:
        net.create_account(u)
    net.deploy(CORPUS["FungibleToken"], TOKEN, {
        "contract_owner": addr(ADMIN), "name": StringVal("T"),
        "symbol": StringVal("T"), "decimals": IntVal(6, ty.UINT32),
        "init_supply": uint(0),
    }, sharded_transitions=("Mint", "Transfer", "TransferFrom"))
    net.process_epoch(
        [call(ADMIN, TOKEN, "Mint",
              {"recipient": addr(u), "amount": uint(1000)}, nonce=i + 1)
         for i, u in enumerate(USERS)], unlimited=True)
    for e in range(epochs):
        net.process_epoch(transfer_round(nonce=e + 1),
                          wal_tag="measure")
    return net


def transfer_round(nonce=1):
    return [call(u, TOKEN, "Transfer",
                 {"to": addr(USERS[(i + 5) % len(USERS)]),
                  "amount": uint(i + 1)}, nonce=nonce)
            for i, u in enumerate(USERS)]


# -- durability off by default ------------------------------------------------

def test_data_dir_none_touches_no_disk_and_matches(tmp_path):
    plain = build_and_run()
    assert plain.wal is None and plain.store is None
    durable = build_and_run(data_dir=tmp_path)
    assert network_fingerprint(durable) == network_fingerprint(plain)
    assert durable.epoch == plain.epoch
    durable.close()
    assert _segment_files(Path(tmp_path))  # the log really exists


def test_fresh_dir_guard(tmp_path):
    build_and_run(data_dir=tmp_path).close()
    with pytest.raises(WALError, match="use Network.resume"):
        Network(3, data_dir=str(tmp_path))


def test_resume_empty_dir_fails(tmp_path):
    with pytest.raises(WALError, match="nothing to resume"):
        Network.resume(str(tmp_path))


# -- clean-close resume -------------------------------------------------------

def test_resume_clean_close_equivalent_and_continues(tmp_path):
    reference = build_and_run(epochs=4)

    build_and_run(epochs=2, data_dir=tmp_path).close()
    net = Network.resume(str(tmp_path))
    assert net.epoch_tags == {"epoch": 1, "measure": 2}
    for e in range(2, 4):
        net.process_epoch(transfer_round(nonce=e + 1),
                          wal_tag="measure")
    assert network_fingerprint(net) == network_fingerprint(reference)
    net.close()

    # A second resume replays the continued log too.
    again = Network.resume(str(tmp_path))
    assert network_fingerprint(again) == network_fingerprint(reference)
    again.close()


def test_resume_from_snapshot_plus_wal_suffix(tmp_path):
    reference = build_and_run(epochs=4)
    net = build_and_run(epochs=2, data_dir=tmp_path,
                        snapshot_every=10**9)
    net.snapshot()  # snapshot now …
    net.process_epoch(transfer_round(nonce=3), wal_tag="measure")
    net.process_epoch(transfer_round(nonce=4), wal_tag="measure")
    net.close()     # … leaving two epochs only in the WAL

    resumed = Network.resume(str(tmp_path))
    assert network_fingerprint(resumed) == \
        network_fingerprint(reference)
    assert resumed.epoch_tags == {"epoch": 1, "measure": 4}
    resumed.close()


def test_resume_from_wal_only_after_snapshots_deleted(tmp_path):
    reference = build_and_run(epochs=3)
    net = build_and_run(epochs=3, data_dir=tmp_path,
                        snapshot_every=10**9)
    net.close()
    for snap in SnapshotStore(tmp_path).paths():
        snap.unlink()
    resumed = Network.resume(str(tmp_path))
    assert network_fingerprint(resumed) == \
        network_fingerprint(reference)
    resumed.close()


def test_snapshot_compacts_wal_and_bounds_replay(tmp_path):
    net = build_and_run(epochs=6, data_dir=tmp_path, snapshot_every=2,
                        keep_snapshots=2)
    net.close()
    store = SnapshotStore(tmp_path)
    assert len(store.paths()) == 2  # retention held
    newest = store.load_newest()
    # Every surviving WAL record is at or past the newest snapshot's
    # horizon minus one segment (compaction never splits a segment).
    segments = _segment_files(Path(tmp_path))
    assert segments
    records = read_wal(tmp_path)
    if records:
        assert records[-1].seq >= newest["wal_seq"]
    resumed = Network.resume(str(tmp_path))
    assert network_fingerprint(resumed) == network_fingerprint(net)
    resumed.close()


def test_resume_respects_executor_override(tmp_path):
    build_and_run(epochs=2, data_dir=tmp_path).close()
    net = Network.resume(str(tmp_path), executor="thread")
    assert net.executor == "thread"
    net.close()


def test_wal_notes_survive_resume(tmp_path):
    net = build_and_run(epochs=1, data_dir=tmp_path)
    net.wal_note({"kind": "marker", "n": 1})
    net.snapshot()
    net.wal_note({"kind": "marker", "n": 2})
    net.close()
    resumed = Network.resume(str(tmp_path))
    markers = [n for n in resumed.wal_notes
               if isinstance(n, dict) and n.get("kind") == "marker"]
    assert markers == [{"kind": "marker", "n": 1},
                       {"kind": "marker", "n": 2}]
    resumed.close()


def test_resume_under_fault_plan_matches(tmp_path):
    plan = FaultPlan.random(3, epochs=6, n_shards=3)
    reference = build_and_run(epochs=4,
                              net_kwargs={"fault_plan": plan})
    net = build_and_run(epochs=2, data_dir=tmp_path,
                        net_kwargs={"fault_plan": plan})
    net.close()
    resumed = Network.resume(str(tmp_path))
    for e in range(2, 4):
        resumed.process_epoch(transfer_round(nonce=e + 1),
                              wal_tag="measure")
    assert network_fingerprint(resumed) == \
        network_fingerprint(reference)
    resumed.close()


# -- torn tails and divergence detection --------------------------------------

def test_resume_after_torn_tail_drops_the_torn_epoch(tmp_path):
    net = build_and_run(epochs=2, data_dir=tmp_path,
                        snapshot_every=10**9)
    net.close()
    # Tear the last record (the final commit) in half.
    (segment,) = _segment_files(Path(tmp_path))
    blob = segment.read_bytes()
    records = read_wal(tmp_path)
    last_frame = _encode(records[-1])
    assert blob.endswith(last_frame)
    segment.write_bytes(blob[:-len(last_frame) // 2])

    resumed = Network.resume(str(tmp_path))
    # The commit record was torn but the epoch's inputs were already
    # durable — replay re-executed them, losing nothing.
    assert resumed.epoch_tags == {"epoch": 1, "measure": 2}
    assert network_fingerprint(resumed) == network_fingerprint(net)
    resumed.close()


def test_replay_rejects_divergent_commit_digest(tmp_path):
    net = build_and_run(epochs=2, data_dir=tmp_path,
                        snapshot_every=10**9)
    net.close()
    # Rewrite the final commit record with a forged digest (correctly
    # framed and CRC'd, so only the semantic check can catch it).
    (segment,) = _segment_files(Path(tmp_path))
    blob = segment.read_bytes()
    last = read_wal(tmp_path)[-1]
    assert last.type == "commit"
    forged = WALRecord(last.seq, "commit",
                       {**last.data, "digest": "0" * 64})
    segment.write_bytes(blob[:-len(_encode(last))] + _encode(forged))

    with pytest.raises(WALError, match="diverged"):
        Network.resume(str(tmp_path))


def test_replay_rejects_out_of_step_epoch_record(tmp_path):
    net = build_and_run(epochs=1, data_dir=tmp_path,
                        snapshot_every=10**9)
    net.close()
    (segment,) = _segment_files(Path(tmp_path))
    records = read_wal(tmp_path)
    rewritten = []
    for r in records:
        if r.type == "epoch":
            r = WALRecord(r.seq, "epoch",
                          {**r.data, "epoch": r.data["epoch"] + 7})
        rewritten.append(r)
    segment.write_bytes(b"".join(_encode(r) for r in rewritten))
    with pytest.raises(WALError, match="out of step"):
        Network.resume(str(tmp_path))


def test_replay_rejects_unknown_record_type(tmp_path):
    net = build_and_run(epochs=1, data_dir=tmp_path)
    net.wal.append("mystery", {})
    net.close()
    with pytest.raises(WALError, match="unknown WAL record type"):
        Network.resume(str(tmp_path))


# -- lane-pool observability (satellite: no silent fallbacks) -----------------

def test_pool_failure_detail_recorded(monkeypatch):
    # resident=False: this exercises the legacy shared-pool acquisition
    # path; the resident pool failure has its own test below.
    net = build_and_run(epochs=0, net_kwargs={"executor": "thread",
                                              "resident": False})

    def boom(*args, **kwargs):
        raise RuntimeError("pool exploded")
    monkeypatch.setattr("repro.core.parallel.shared_thread_pool", boom)
    net.process_epoch(transfer_round())
    assert net.executor_fallbacks == 1
    assert net.executor_fallback_details == \
        ["supervise: thread: RuntimeError: RuntimeError('pool exploded')"]


def test_resident_pool_failure_detail_recorded(monkeypatch):
    net = build_and_run(epochs=0, net_kwargs={"executor": "thread",
                                              "resident": True})

    def boom(*args, **kwargs):
        raise RuntimeError("resident pool exploded")
    monkeypatch.setattr("repro.core.parallel.get_resident_pool", boom)
    net.process_epoch(transfer_round())
    assert net.executor_fallbacks == 1
    assert net.executor_fallback_details == \
        ["supervise: thread: RuntimeError: "
         "RuntimeError('resident pool exploded')"]


def test_corpus_analysis_fallback_error_recorded(monkeypatch):
    from repro.core import parallel as par
    monkeypatch.setattr(par, "shared_thread_pool",
                        lambda workers: (_ for _ in ()).throw(
                            RuntimeError("no threads today")))
    out = par.analyze_corpus(
        {f"c{i}": CORPUS["FungibleToken"] + f"\n(* {i} *)"
         for i in range(3)},
        executor="thread", workers=2, cache=par.SummaryCache())
    assert out.fell_back
    assert out.fallback_error == \
        "RuntimeError: RuntimeError('no threads today')"
    assert out.n_contracts == 3


# -- typed durability errors (injected disk failures) -------------------------

def test_wal_append_oserror_raises_walerror_and_poisons_log(tmp_path):
    wal = WriteAheadLog(tmp_path)
    wal.append("note", {"n": 1})
    wal.barrier()

    class FailingHandle:
        def write(self, data):
            raise OSError(28, "No space left on device")

        def flush(self):
            pass

        def close(self):
            pass
    wal._handle = FailingHandle()
    with pytest.raises(WALError, match="append failed.*OSError"):
        wal.append("note", {"n": 2})
    # The log is poisoned: every later call fails cleanly.
    with pytest.raises(WALError, match="closed"):
        wal.append("note", {"n": 3})
    with pytest.raises(WALError, match="closed"):
        wal.barrier()
    # The on-disk log is intact up to the last complete record.
    assert [r.data for r in read_wal(tmp_path)] == [{"n": 1}]


def test_wal_barrier_fsync_oserror_raises_walerror(tmp_path,
                                                   monkeypatch):
    wal = WriteAheadLog(tmp_path)
    wal.append("note", {"n": 1})
    import os as os_mod

    def failing_fsync(fd):
        raise OSError(5, "Input/output error")
    monkeypatch.setattr(os_mod, "fsync", failing_fsync)
    with pytest.raises(WALError, match="barrier fsync failed"):
        wal.barrier()
    monkeypatch.undo()
    assert [r.data for r in read_wal(tmp_path)] == [{"n": 1}]


def test_snapshot_save_oserror_raises_storeerror(tmp_path,
                                                 monkeypatch):
    from repro.chain.store import StoreError
    store = SnapshotStore(tmp_path)
    good = {"epoch": 1, "wal_seq": 5, "payload": "ok"}
    store.save({"epoch": 1, "wal_seq": 5, "payload": "ok"})

    import os as os_mod

    def failing_replace(src, dst):
        raise OSError(28, "No space left on device")
    monkeypatch.setattr(os_mod, "replace", failing_replace)
    with pytest.raises(StoreError, match="snapshot write failed"):
        store.save({"epoch": 2, "wal_seq": 9, "payload": "doomed"})
    monkeypatch.undo()
    # No temp litter; the previous snapshot set is intact and loadable.
    assert not list(tmp_path.glob("*.tmp"))
    assert [p.name for p in store.paths()] \
        == [store._path(1, 5).name]
    assert store.load_newest() == good


def test_network_survives_snapshot_disk_failure_and_resumes(
        tmp_path, monkeypatch):
    from repro.chain.store import SnapshotError, StoreError
    net = build_and_run(epochs=1, data_dir=tmp_path, snapshot_every=1)

    import os as os_mod
    real_fsync = os_mod.fsync

    def failing_fsync(fd):
        raise OSError(28, "No space left on device")
    monkeypatch.setattr(os_mod, "fsync", failing_fsync)
    with pytest.raises(SnapshotError):
        net.snapshot()
    monkeypatch.setattr(os_mod, "fsync", real_fsync)

    # The epoch had already committed to the WAL: a fresh process
    # resumes to the same state despite the failed snapshot.
    expected = network_fingerprint(net)
    net.close()
    resumed = Network.resume(str(tmp_path))
    assert network_fingerprint(resumed) == expected
    resumed.close()
