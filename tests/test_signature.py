"""Sharding-signature derivation tests (Algorithm 3.1 / Fig. 9)."""

import pytest

from repro.core.constraints import (
    Bot, ContractShard, NoAliases, Owns, SenderShard, UserAddr, is_bot,
)
from repro.core.domain import ParamKey, PseudoField
from repro.core.joins import JoinKind
from repro.core.signature import (
    StaleReadsRejected, derive_signature, is_commutative_write,
    signature_for, signatures_equal,
)
from repro.core.summary import analyze_module
from repro.contracts import CORPUS
from repro.scilla import parse_module

PF = PseudoField


def derive(source: str, selected, **kwargs):
    summaries = analyze_module(parse_module(source))
    return derive_signature("C", summaries, tuple(selected), **kwargs)


def wrap(fields: str, transitions: str) -> str:
    return f"""
    scilla_version 0
    library S
    let zero = Uint128 0
    contract C (owner: ByStr20)
    {fields}
    {transitions}
    """


TOKENISH = wrap(
    "field bal : Map ByStr20 Uint128 = Emp ByStr20 Uint128",
    """
    transition Pay (to: ByStr20, amount: Uint128)
      b_opt <- bal[_sender];
      b = match b_opt with | Some v => v | None => zero end;
      short = builtin lt b amount;
      match short with
      | True => throw
      | False =>
        nb = builtin sub b amount;
        bal[_sender] := nb;
        t_opt <- bal[to];
        nt = match t_opt with
             | Some v => builtin add v amount
             | None => amount
             end;
        bal[to] := nt
      end
    end
    """)


def test_commutative_writes_get_intmerge_join():
    sig = derive(TOKENISH, ("Pay",))
    assert sig.joins["bal"] is JoinKind.INT_MERGE


def test_spurious_read_removed_recipient_needs_no_ownership():
    sig = derive(TOKENISH, ("Pay",))
    constraints = sig.constraints["Pay"]
    assert Owns(PF("bal", (ParamKey("_sender"),))) in constraints
    assert Owns(PF("bal", (ParamKey("to"),))) not in constraints


def test_noaliases_emitted_for_distinct_keys():
    sig = derive(TOKENISH, ("Pay",))
    assert NoAliases("_sender", "to") in sig.constraints["Pay"]


def test_stale_reads_gate():
    """Reading balances of an IntMerge field needs user acceptance."""
    with pytest.raises(StaleReadsRejected) as exc:
        derive(TOKENISH, ("Pay",), weak_reads=set())
    assert exc.value.needed == {"bal"}
    # Accepting exactly the needed field succeeds.
    sig = derive(TOKENISH, ("Pay",), weak_reads={"bal"})
    assert sig.weak_reads == frozenset({"bal"})


def test_ownership_only_fallback():
    sig = signature_for("C", analyze_module(parse_module(TOKENISH)),
                        ("Pay",), weak_reads=set())
    assert sig is not None
    assert sig.joins["bal"] is JoinKind.OWN_OVERWRITE
    # Without commutativity both entries must be owned.
    assert Owns(PF("bal", (ParamKey("to"),))) in sig.constraints["Pay"]


def test_constant_field_reads_dropped():
    src = wrap(
        "field config : Uint128 = Uint128 1\n"
        "field data : Map ByStr20 Uint128 = Emp ByStr20 Uint128",
        """
        transition Use (k: ByStr20)
          c <- config;
          data[k] := c
        end
        transition Admin (v: Uint128)
          config := v
        end
        """)
    # Alone, Use treats config as constant: no ownership of it.
    sig = derive(src, ("Use",))
    assert Owns(PF("config")) not in sig.constraints["Use"]
    # Selected together with its writer, the read needs ownership.
    sig2 = derive(src, ("Use", "Admin"))
    assert Owns(PF("config")) in sig2.constraints["Use"]
    assert Owns(PF("config")) in sig2.constraints["Admin"]


def test_join_consolidation_demotes_mixed_field():
    """A field written commutatively by one transition and overwritten
    by another cannot get IntMerge; the commutative write then needs
    ownership again."""
    src = wrap(
        "field n : Uint128 = Uint128 0",
        """
        transition Inc (v: Uint128)
          x <- n;
          y = builtin add x v;
          n := y
        end
        transition Reset ()
          n := zero
        end
        """)
    alone = derive(src, ("Inc",))
    assert alone.joins["n"] is JoinKind.INT_MERGE
    assert Owns(PF("n")) not in alone.constraints["Inc"]
    both = derive(src, ("Inc", "Reset"))
    assert both.joins["n"] is JoinKind.OWN_OVERWRITE
    assert Owns(PF("n")) in both.constraints["Inc"]
    assert Owns(PF("n")) in both.constraints["Reset"]


def test_accept_gives_sender_shard():
    src = wrap("field pot : Uint128 = Uint128 0",
               """
               transition Put ()
                 accept;
                 p <- pot;
                 q = builtin add p _amount;
                 pot := q
               end
               """)
    sig = derive(src, ("Put",))
    assert SenderShard() in sig.constraints["Put"]


def test_fund_bearing_send_gives_contract_shard():
    src = wrap("", """
               transition Out (to: ByStr20, amount: Uint128)
                 m = { _tag : "pay"; _recipient : to; _amount : amount };
                 ms = one_msg m;
                 send ms
               end
               """)
    sig = derive(src, ("Out",))
    cs = sig.constraints["Out"]
    assert ContractShard() in cs
    assert UserAddr("to") in cs


def test_zero_fund_send_needs_only_useraddr():
    src = wrap("", """
               transition Notify (to: ByStr20)
                 m = { _tag : "hi"; _recipient : to; _amount : zero };
                 ms = one_msg m;
                 send ms
               end
               """)
    sig = derive(src, ("Notify",))
    cs = sig.constraints["Notify"]
    assert ContractShard() not in cs
    assert UserAddr("to") in cs


def test_unknown_recipient_is_bot():
    src = wrap("field target : ByStr20 = owner",
               """
               transition Fwd ()
                 t <- target;
                 m = { _tag : "x"; _recipient : t; _amount : zero };
                 ms = one_msg m;
                 send ms
               end
               """)
    sig = derive(src, ("Fwd",))
    assert is_bot(sig.constraints["Fwd"])


def test_top_effect_is_bot():
    src = wrap("field m : Map ByStr32 Uint128 = Emp ByStr32 Uint128",
               """
               transition Weird (s: String)
                 k = builtin sha256hash s;
                 m[k] := zero
               end
               """)
    sig = derive(src, ("Weird",))
    assert is_bot(sig.constraints["Weird"])


def test_delete_needs_ownership():
    src = wrap("field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128",
               """
               transition Drop (k: ByStr20)
                 delete m[k]
               end
               """)
    sig = derive(src, ("Drop",))
    assert Owns(PF("m", (ParamKey("k"),))) in sig.constraints["Drop"]
    assert sig.joins["m"] is JoinKind.OWN_OVERWRITE


def test_is_commutative_write_rejects_delete_and_constants():
    summaries = analyze_module(parse_module(TOKENISH))
    writes = {w.pf: w for w in summaries["Pay"].writes()}
    assert is_commutative_write(writes[PF("bal", (ParamKey("to"),))])
    assert is_commutative_write(writes[PF("bal", (ParamKey("_sender"),))])

    src = wrap("field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128",
               """
               transition Set (k: ByStr20, v: Uint128)
                 m[k] := v
               end
               """)
    s2 = analyze_module(parse_module(src))
    (w,) = s2["Set"].writes()
    assert not is_commutative_write(w)  # constant overwrite


def test_signature_equality_for_validation():
    summaries = analyze_module(parse_module(TOKENISH))
    a = derive_signature("C", summaries, ("Pay",))
    b = derive_signature("C", summaries, ("Pay",))
    assert signatures_equal(a, b)
    ownership_only = derive_signature("C", summaries, ("Pay",),
                                      allow_commutativity=False)
    assert not signatures_equal(a, ownership_only)


def test_fungible_token_paper_signature():
    """The TransferFrom constraints of the real corpus contract: both
    ownership constraints are keyed by ``from``, so a single shard can
    satisfy them — the paper's Fig. 3 co-location."""
    summaries = analyze_module(parse_module(CORPUS["FungibleToken"]))
    sig = derive_signature("FT", summaries,
                           ("Mint", "Transfer", "TransferFrom"))
    cs = sig.constraints["TransferFrom"]
    assert Owns(PF("balances", (ParamKey("from"),))) in cs
    assert Owns(PF("allowances", (ParamKey("from"), ParamKey("_sender")))) \
        in cs
    assert sig.joins["balances"] is JoinKind.INT_MERGE
    assert sig.joins["allowances"] is JoinKind.INT_MERGE
    # Mint is fully unconstrained: parallel from any shard.
    assert sig.constraints["Mint"] == frozenset()
