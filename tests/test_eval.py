"""Evaluation-harness tests: every figure/table regenerator runs and
produces data with the paper's qualitative shape (scaled down)."""

import pytest

from repro.contracts import CORPUS
from repro.eval.ablation import format_ablation, run_ablation
from repro.eval.analysis_perf import format_fig12, run_fig12
from repro.eval.ethereum_breakdown import format_fig1, run_fig1
from repro.eval.ge_stats import format_fig13, run_fig13
from repro.eval.overheads import format_overheads, run_overheads
from repro.eval.tables import format_contract_stats, run_contract_stats
from repro.eval.throughput import (
    Config, FIG14_COST_MODEL, format_fig14, run_fig14,
)
from repro.workloads.generators import (
    FTFund, FTTransfer, NFTMint, ProofIPFSRegister,
)

SMALL_CORPUS = {name: CORPUS[name]
                for name in ("HelloWorld", "FirstContract", "Voting",
                             "Crowdfunding")}


def test_fig1_breakdown_shape():
    result = run_fig1(n_blocks=400, bin_size=2_000_000,
                      txns_per_block=40)
    bins = sorted(result.breakdown)
    assert len(bins) >= 4
    first, last = result.breakdown[bins[0]], result.breakdown[bins[-1]]
    # Transfers decline; single-contract calls rise (Fig. 1 left).
    assert first["transfer"] > last["transfer"]
    assert first["single-call"] < last["single-call"]
    # ERC20 dominates recent single calls (Fig. 1 right).
    assert result.single_call_split[bins[-1]]["erc20-single-call"] > 50
    assert "Fig. 1" in format_fig1(result)


def test_fig12_pipeline_times():
    result = run_fig12(repetitions=2, contracts=SMALL_CORPUS)
    assert len(result.rows) == len(SMALL_CORPUS)
    for row in result.rows:
        assert row.parse_us > 0
        assert row.typecheck_us > 0
        assert row.analysis_us > 0
    assert 0 < result.analysis_overhead < 5
    assert "deployment pipeline times" in format_fig12(result)


def test_fig13_ge_statistics():
    result = run_fig13(contracts=SMALL_CORPUS)
    assert len(result.reports) == len(SMALL_CORPUS)
    hist = result.transition_histogram()
    assert sum(hist.values()) == len(SMALL_CORPUS)
    for n_trans, largest in result.largest_ge_points():
        assert 0 <= largest <= n_trans
    assert "good-enough signatures" in format_fig13(result)


def test_contract_stats_table_matches_paper():
    result = run_contract_stats()
    assert len(result.rows) == 5
    for row in result.rows:
        assert row.matches_paper, (
            f"{row.contract}: got ({row.n_transitions}, "
            f"{row.largest_ges}, {row.n_maximal_ges}), paper says "
            f"{row.paper[1:]}")
    assert "✓" in format_contract_stats(result)


@pytest.mark.slow
def test_fig14_throughput_shape():
    configs = (Config("Baseline 3 shards", 3, False),
               Config("CoSplit 3 shards", 3, True),
               Config("CoSplit 5 shards", 5, True))
    result = run_fig14(epochs=2, txns_per_epoch=220, configs=configs,
                       workload_classes=[FTFund, FTTransfer, NFTMint,
                                         ProofIPFSRegister],
                       n_users=80)
    # FT transfer scales with shards.
    ft = result.series("FT transfer")
    assert ft[1] > ft[0] * 1.3      # CoSplit beats baseline
    assert ft[2] > ft[1] * 1.05     # more shards help further
    # FT fund does not scale (single owner).
    fund = result.series("FT fund")
    assert fund[2] < fund[0] * 1.2
    # NFT mint scales despite the single sender (Sec. 4.2 revisions).
    mint = result.series("NFT mint")
    assert mint[1] > mint[0] * 1.5
    # ProofIPFS register does not scale but does not collapse either.
    pipfs = result.series("ProofIPFS register")
    assert pipfs[2] > pipfs[0] * 0.5
    assert "Fig. 14" in format_fig14(result)


def test_overheads_direction_matches_paper():
    result = run_overheads(n_dispatch=300, n_entries=300)
    # Signature dispatch costs more than the default strategy.
    assert result.dispatch_signature_us > result.dispatch_default_us
    # Join-aware merging costs more per field than plain application...
    assert result.merge_per_field_joins_us > 0
    # ...but merging stays far cheaper than re-execution.
    assert result.merge_speedup_vs_execution > 3
    assert "overheads" in format_overheads(result)


@pytest.mark.slow
def test_ablation_strategies():
    result = run_ablation(epochs=2, txns_per_epoch=150, n_shards=4,
                          n_users=60)
    # Commutativity carries FT transfers.
    assert result.tps("FT transfer", "full CoSplit") > \
        result.tps("FT transfer", "ownership only") * 1.2
    # Ownership alone carries UD record updates.
    ud_own = result.tps("UD config", "ownership only")
    ud_full = result.tps("UD config", "full CoSplit")
    assert ud_own > ud_full * 0.8
    # Relaxed nonces carry single-sender mints.
    assert result.tps("NFT mint", "relaxed nonces") > \
        result.tps("NFT mint", "strict nonces") * 1.5
    assert "ablations" in format_ablation(result)


def test_full_report_selected_sections(tmp_path):
    from repro.eval.report import run_full_report
    out = tmp_path / "report.txt"
    text = run_full_report(output=out, only={"E6"})
    assert "E6 / Sec. 5.2 table" in text
    assert "FungibleToken" in text
    assert out.read_text().strip() == text.strip()
    # Sections not requested are absent.
    assert "Fig. 14" not in text


def test_fig14_index_and_series_preserve_config_order():
    """The (workload, config) index must behave exactly like the old
    linear scans: KeyError on unknown pairs, and series() returning
    one TPS per config in config *insertion* order."""
    from repro.eval.throughput import Fig14Cell, Fig14Result

    result = Fig14Result(epochs=1, txns_per_epoch=10)
    # Deliberately non-alphabetical config order, two workloads.
    for config, tps in (("zeta", 1.0), ("alpha", 2.0), ("mid", 3.0)):
        result.add(Fig14Cell("W1", config, tps, 1, 1, 0.0))
        result.add(Fig14Cell("W2", config, tps * 10, 1, 1, 0.0))

    assert result.config_order == ["zeta", "alpha", "mid"]
    assert result.series("W1") == [1.0, 2.0, 3.0]
    assert result.series("W2") == [10.0, 20.0, 30.0]
    assert result.tps("W1", "mid") == 3.0
    with pytest.raises(KeyError):
        result.tps("W1", "nope")
    with pytest.raises(KeyError):
        result.tps("nope", "alpha")
    # A workload missing one config skips it without misaligning.
    result.add(Fig14Cell("W3", "alpha", 7.0, 1, 1, 0.0))
    assert result.series("W3") == [7.0]

    # Cells passed to the constructor are indexed too.
    rebuilt = Fig14Result(epochs=1, txns_per_epoch=10, cells=result.cells)
    assert rebuilt.series("W1") == [1.0, 2.0, 3.0]
    assert rebuilt.config_order == result.config_order
