"""Analysis soundness against the interpreter (DESIGN.md invariant 4).

Two checks across the executable corpus contracts:

* **Footprint coverage** — every state location a transition actually
  writes during execution is covered by the inferred summary: either a
  Write effect whose pseudo-field may alias the location, or a ⊤
  effect.
* **Commutativity** — writes the analysis marks additive-commutative
  really commute: running two transactions in both orders from the
  same start state yields identical final states (when both orders
  succeed).
"""

import itertools

import pytest

from repro.core.domain import ConstKey, ParamKey
from repro.core.signature import derive_signature, is_commutative_write
from repro.core.summary import analyze_module
from repro.contracts import CORPUS
from repro.scilla.interpreter import Interpreter, TxContext
from repro.scilla.parser import parse_module
from repro.scilla.values import (
    IntVal, StringVal, addr, bool_val, canonical, uint,
)
from repro.scilla import types as ty
from repro.chain.dispatch import key_token

ADMIN = "0x" + "ad" * 20
ALICE = "0x" + "a1" * 20
BOB = "0x" + "b0" * 20


def footprint_covers(summary, field, key_values, args, sender) -> bool:
    """Does the summary cover a concrete written location?"""
    if summary.has_top:
        return True
    symbols = {name: key_token(v) for name, v in args.items()}
    symbols["_sender"] = f"ByStr20|{sender}"
    for write in summary.writes():
        if write.pf.field != field:
            continue
        if not write.pf.keys:         # whole-field write covers entries
            return True
        if len(write.pf.keys) != len(key_values):
            continue
        ok = True
        for sym_key, actual in zip(write.pf.keys, key_values):
            if isinstance(sym_key, ParamKey):
                expected = symbols.get(sym_key.name)
            else:
                assert isinstance(sym_key, ConstKey)
                expected = sym_key.repr
            if expected != key_token(actual) and expected is not None:
                ok = False
                break
            if expected is None:
                ok = False
                break
        if ok:
            return True
    return False


def run_and_check_footprint(source, contract_params, transition, args,
                            setup=(), sender=ALICE):
    module = parse_module(source)
    interp = Interpreter(module)
    state = interp.deploy("0xc0", contract_params)
    for s_trans, s_args, s_sender in setup:
        r = interp.run_transition(state, s_trans, s_args,
                                  TxContext(sender=s_sender, amount=100))
        assert r.success, r.error
    summary = analyze_module(module)[transition]
    result = interp.run_transition(state, transition, args,
                                   TxContext(sender=sender, amount=100))
    assert result.success, result.error
    for field, keys in result.write_log.writes:
        assert footprint_covers(summary, field, keys, args, sender), (
            f"{transition} wrote {field}{list(map(str, keys))} outside "
            f"its inferred footprint:\n{summary}")


def test_ft_transfer_footprint():
    run_and_check_footprint(
        CORPUS["FungibleToken"],
        {"contract_owner": addr(ADMIN), "name": StringVal("T"),
         "symbol": StringVal("T"), "decimals": IntVal(6, ty.UINT32),
         "init_supply": uint(0)},
        "Transfer", {"to": addr(BOB), "amount": uint(5)},
        setup=[("Mint", {"recipient": addr(ALICE), "amount": uint(100)},
                ADMIN)])


def test_ft_transfer_from_footprint():
    run_and_check_footprint(
        CORPUS["FungibleToken"],
        {"contract_owner": addr(ADMIN), "name": StringVal("T"),
         "symbol": StringVal("T"), "decimals": IntVal(6, ty.UINT32),
         "init_supply": uint(0)},
        "TransferFrom",
        {"from": addr(ALICE), "to": addr(BOB), "amount": uint(5)},
        setup=[
            ("Mint", {"recipient": addr(ALICE), "amount": uint(100)},
             ADMIN),
            ("IncreaseAllowance",
             {"spender": addr(BOB), "amount": uint(50)}, ALICE),
        ],
        sender=BOB)


def test_nft_transfer_footprint():
    run_and_check_footprint(
        CORPUS["NonfungibleToken"],
        {"contract_owner": addr(ADMIN), "name": StringVal("N"),
         "symbol": StringVal("N")},
        "Transfer",
        {"token_owner": addr(ALICE), "to": addr(BOB),
         "token_id": IntVal(7, ty.PrimType("Uint256"))},
        setup=[("Mint", {"to": addr(ALICE),
                         "token_id": IntVal(7, ty.PrimType("Uint256"))},
                ADMIN)])


def test_crowdfunding_donate_footprint():
    from repro.scilla.values import BNumVal
    run_and_check_footprint(
        CORPUS["Crowdfunding"],
        {"campaign_owner": addr(ADMIN), "goal": uint(10**9),
         "deadline": BNumVal(100)},
        "Donate", {})


def test_ud_bestow_footprint():
    from repro.scilla.values import ByStrVal
    node = ByStrVal("0x" + "11" * 32, ty.PrimType("ByStr32"))
    run_and_check_footprint(
        CORPUS["UD_registry"],
        {"initial_admin": addr(ADMIN), "initial_registrar": addr(ADMIN)},
        "Bestow",
        {"node": node, "owner": addr(ALICE), "resolver": addr(BOB)},
        sender=ADMIN)


# -- commutativity of comm-marked writes -------------------------------------------


def _final_state(interp, state, txns):
    state = state.copy()
    for transition, args, sender in txns:
        result = interp.run_transition(
            state, transition, dict(args), TxContext(sender=sender))
        if not result.success:
            return None
        state.balance += result.accepted
    return {k: canonical(v) for k, v in state.fields.items()}


def assert_commutes(source, contract_params, tx1, tx2, setup=()):
    module = parse_module(source)
    interp = Interpreter(module)
    state = interp.deploy("0xc0", contract_params)
    for transition, args, sender in setup:
        r = interp.run_transition(state, transition, dict(args),
                                  TxContext(sender=sender))
        assert r.success, r.error
    ab = _final_state(interp, state, [tx1, tx2])
    ba = _final_state(interp, state, [tx2, tx1])
    assert ab is not None and ba is not None
    assert ab == ba


FT_PARAMS = {"contract_owner": addr(ADMIN), "name": StringVal("T"),
             "symbol": StringVal("T"), "decimals": IntVal(6, ty.UINT32),
             "init_supply": uint(0)}


def test_analysis_marks_ft_writes_commutative_and_they_commute():
    module = parse_module(CORPUS["FungibleToken"])
    summaries = analyze_module(module)
    transfer_writes = summaries["Transfer"].writes()
    assert all(is_commutative_write(w) for w in transfer_writes
               if w.pf.field == "balances")
    # Two transfers into the same recipient from different senders.
    setup = [("Mint", {"recipient": addr(ALICE), "amount": uint(100)},
              ADMIN),
             ("Mint", {"recipient": addr(BOB), "amount": uint(100)},
              ADMIN)]
    carol = "0x" + "cc" * 20
    assert_commutes(
        CORPUS["FungibleToken"], FT_PARAMS,
        ("Transfer", {"to": addr(carol), "amount": uint(10)}, ALICE),
        ("Transfer", {"to": addr(carol), "amount": uint(20)}, BOB),
        setup=setup)


def test_mints_to_same_recipient_commute():
    assert_commutes(
        CORPUS["FungibleToken"], FT_PARAMS,
        ("Mint", {"recipient": addr(ALICE), "amount": uint(3)}, ADMIN),
        ("Mint", {"recipient": addr(ALICE), "amount": uint(4)}, ADMIN))


def test_noncommutative_writes_not_marked():
    """Overwrites (UD record configuration) must not be marked
    commutative — and indeed they do not commute."""
    module = parse_module(CORPUS["UD_registry"])
    summaries = analyze_module(module)
    writes = [w for w in summaries["ConfigureResolver"].writes()
              if w.pf.field == "resolvers"]
    assert writes and not any(is_commutative_write(w) for w in writes)


def test_corpus_comm_marked_writes_commute_under_random_pairs():
    """For the three token-like corpus contracts, derive signatures and
    double-check a concrete commuting pair per IntMerge field."""
    for name in ("XSGD", "MyRewardsToken", "BoltAnalytics"):
        module = parse_module(CORPUS[name])
        summaries = analyze_module(module)
        sig = derive_signature(name, summaries, tuple(summaries))
        from repro.core.joins import JoinKind
        intmerge_fields = [f for f, j in sig.joins.items()
                           if j is JoinKind.INT_MERGE]
        assert intmerge_fields, f"{name} should have IntMerge fields"


# -- corpus-wide footprint oracle against the StateJournal ---------------------
#
# The speculative scheduler (repro.chain.speculate) derives its lock
# sets from ``transition_footprints`` at exactly this granularity: a
# whole-field token, or a (field, first-map-key) token.  Its soundness
# axiom is that every location a transition touches at runtime falls
# inside that static over-approximation — checked here end-to-end over
# the whole corpus, against the same StateJournal entries the sandbox
# commit path reads, rather than hand-picked transitions.


def _synth_value(t, probe_addr):
    """A syntactically valid value of type ``t``, or None."""
    from repro.scilla.values import ADTVal, BNumVal, ByStrVal, MapVal
    if isinstance(t, ty.PrimType):
        name = t.name
        if name in ty.INT_TYPE_NAMES:
            return IntVal(2, t)
        if name == "String":
            return StringVal("probe")
        if name == "BNum":
            return BNumVal(1)
        if name.startswith("ByStr"):
            width = ty.bystr_width(t)
            if name == "ByStr20":
                return ByStrVal(probe_addr, t)
            return ByStrVal("0x" + "ab" * (width or 4), t)
    if isinstance(t, ty.ADTType):
        if t.name == "Bool":
            return bool_val(True)
        if t.name == "Option":
            return ADTVal("Option", "None", t.targs)
        if t.name == "List":
            return ADTVal("List", "Nil", t.targs)
    if isinstance(t, ty.MapType):
        return MapVal(t.key, t.value)
    return None


def _footprint_tokens(pfs, args, sender, immutables, this_address):
    """The (field, first-key-token) lock tokens the scheduler would
    derive — ``(field, None)`` is the whole-field token."""
    from repro.chain.lanes import _value_from_token
    from repro.scilla.values import ByStrVal
    tokens = set()
    for pf in pfs:
        if pf.is_whole_field:
            tokens.add((pf.field, None))
            continue
        key = pf.keys[0]
        if isinstance(key, ParamKey):
            if key.name in ("_sender", "_origin"):
                value = ByStrVal(sender, ty.BYSTR20)
            else:
                value = args.get(key.name)
        elif key.repr.startswith("cparam:"):
            value = immutables.get(key.repr.removeprefix("cparam:"))
        elif key.repr == "_this_address":
            value = ByStrVal(this_address, ty.BYSTR20)
        else:
            value = _value_from_token(key.repr)
        if value is None:
            tokens.add((pf.field, None))
            continue
        try:
            tokens.add((pf.field, key_token(value)))
        except ValueError:
            tokens.add((pf.field, None))
    return tokens


def test_corpus_journal_writes_fall_inside_static_footprints():
    """Every StateJournal write/balance entry recorded while running
    the corpus transitions lies inside ``transition_footprints`` —
    the axiom the speculative lock sets rest on."""
    from types import SimpleNamespace

    from repro.chain.lanes import transition_footprints
    from repro.chain.speculate import transition_sends
    from repro.scilla.state import StateJournal
    from repro.scilla.errors import ScillaError

    probe = "0x" + "ab" * 20   # contract params, sender and origin
    deployed = 0
    executed = 0
    succeeded = 0
    violations = []
    for name in sorted(CORPUS):
        module = parse_module(CORPUS[name], name)
        params = {p.name: _synth_value(p.typ, probe)
                  for p in module.contract.params}
        if any(v is None for v in params.values()):
            continue
        interp = Interpreter(module)
        try:
            base = interp.deploy("0xc0", params)
        except ScillaError:
            continue   # init expressions reject the synthetic params
        deployed += 1
        footprints = transition_footprints(analyze_module(module))
        send_scan = SimpleNamespace(module=module)
        for comp in module.contract.transitions:
            args = {p.name: _synth_value(p.typ, probe)
                    for p in comp.params}
            if any(v is None for v in args.values()):
                continue
            pfs = footprints[comp.name]
            state = base.copy()
            journal = StateJournal()
            state.journal = journal
            try:
                result = interp.run_transition(
                    state, comp.name, args,
                    TxContext(sender=probe, amount=100))
            except ScillaError:
                continue
            executed += 1
            succeeded += result.success
            if pfs is None:
                continue   # ⊤ summary: everything is covered
            tokens = _footprint_tokens(pfs, args, probe,
                                       state.immutables, "0xc0")
            balance_olds = []
            for entry in journal.entries:
                if entry[0] == "balance":
                    balance_olds.append(entry[2])
                    continue
                if entry[0] != "write":
                    continue
                _, _st, (fld, keys), _old = entry
                if (fld, None) in tokens:
                    continue
                try:
                    tok = key_token(keys[0]) if keys else None
                except ValueError:
                    tok = None
                if tok is None or (fld, tok) not in tokens:
                    violations.append(
                        f"{name}.{comp.name} wrote {fld}"
                        f"{[str(k) for k in keys]} outside its "
                        f"static footprint")
            # Balance soundness: a decrease (payout) requires the
            # transition body to contain a send — the condition under
            # which the scheduler takes the contract-balance lock.
            seq = balance_olds + [state.balance]
            decreased = any(a > b for a, b in zip(seq, seq[1:]))
            if decreased and not transition_sends(send_scan, comp.name):
                violations.append(
                    f"{name}.{comp.name} decreased the contract "
                    f"balance without a send in its body")
    assert not violations, "\n".join(violations)
    # Vacuity floor: the corpus-wide sweep must actually exercise the
    # corpus, not skip its way to green.
    assert deployed >= 40, f"only {deployed} contracts deployed"
    assert executed >= 150, f"only {executed} transitions executed"
    assert succeeded >= 60, f"only {succeeded} transitions succeeded"
