"""Cross-module integration tests: several contracts on one network,
payments interleaved with contract calls, epoch boundaries, and the
end-to-end developer workflow of Fig. 11."""

import pytest

from repro.chain import Network, call, payment
from repro.contracts import CORPUS, EVAL_CONTRACTS
from repro.core.pipeline import run_pipeline, validate_signature
from repro.scilla.values import (
    BNumVal, ByStrVal, IntVal, StringVal, addr, uint,
)
from repro.scilla import types as ty

ADMIN = "0x" + "ad" * 20
USERS = ["0x" + f"{i:040x}" for i in range(1, 17)]
TOKEN = "0x" + "c0" * 20
NFT = "0x" + "c1" * 20
NOTARY = "0x" + "c2" * 20


@pytest.fixture
def multinet():
    net = Network(n_shards=4)
    net.create_account(ADMIN)
    for u in USERS:
        net.create_account(u)
    net.deploy(CORPUS["FungibleToken"], TOKEN, {
        "contract_owner": addr(ADMIN), "name": StringVal("T"),
        "symbol": StringVal("T"), "decimals": IntVal(6, ty.UINT32),
        "init_supply": uint(0),
    }, sharded_transitions=EVAL_CONTRACTS["FungibleToken"])
    net.deploy(CORPUS["NonfungibleToken"], NFT, {
        "contract_owner": addr(ADMIN), "name": StringVal("N"),
        "symbol": StringVal("N"),
    }, sharded_transitions=EVAL_CONTRACTS["NonfungibleToken"])
    net.deploy(CORPUS["ProofIPFS"], NOTARY,
               {"initial_admin": addr(ADMIN)},
               sharded_transitions=EVAL_CONTRACTS["ProofIPFS"])
    return net


def test_mixed_epoch_across_three_contracts(multinet):
    net = multinet
    txns = []
    # Token mints, NFT mints, notarisations and payments in one epoch.
    for i, u in enumerate(USERS):
        txns.append(call(ADMIN, TOKEN, "Mint",
                         {"recipient": addr(u), "amount": uint(100)},
                         nonce=i + 1))
    for i, u in enumerate(USERS[:8]):
        txns.append(call(ADMIN, NFT, "Mint",
                         {"to": addr(u),
                          "token_id": IntVal(i, ty.PrimType("Uint256"))},
                         nonce=len(USERS) + i + 1))
    for i, u in enumerate(USERS[:6]):
        h = ByStrVal("0x" + f"{i:064x}", ty.PrimType("ByStr32"))
        txns.append(call(u, NOTARY, "Register", {"ipfs_hash": h},
                         nonce=1))
    txns.append(payment(USERS[0], USERS[1], amount=42, nonce=2))
    block = net.process_epoch(txns, unlimited=True)
    assert block.n_committed == len(txns)

    # Deltas were computed per contract and merged independently.
    token_state = net.contracts[TOKEN].state
    nft_state = net.contracts[NFT].state
    notary_state = net.contracts[NOTARY].state
    assert token_state.fields["total_supply"] == uint(100 * len(USERS))
    assert nft_state.fields["total_tokens"] == uint(8)
    assert len(notary_state.fields["registry"].entries) == 6


def test_epoch_boundary_visibility(multinet):
    """Epoch N+1 transactions see epoch N's merged state."""
    net = multinet
    net.process_epoch([call(ADMIN, TOKEN, "Mint",
                            {"recipient": addr(USERS[0]),
                             "amount": uint(50)}, nonce=1)],
                      unlimited=True)
    # The transfer sees the minted balance in the next epoch.
    block = net.process_epoch([call(USERS[0], TOKEN, "Transfer",
                                    {"to": addr(USERS[1]),
                                     "amount": uint(50)}, nonce=1)],
                              unlimited=True)
    assert block.n_committed == 1
    entries = net.contracts[TOKEN].state.fields["balances"].entries
    assert entries[addr(USERS[1])] == uint(50)


def test_contract_isolation(multinet):
    """A failed NFT transaction cannot disturb token state."""
    net = multinet
    before = net.contracts[TOKEN].state.copy()
    block = net.process_epoch([
        call(USERS[0], NFT, "Transfer",
             {"token_owner": addr(USERS[0]), "to": addr(USERS[1]),
              "token_id": IntVal(999, ty.PrimType("Uint256"))},
             nonce=1)],
        unlimited=True)
    (receipt,) = block.all_receipts
    assert not receipt.success
    assert net.contracts[TOKEN].state.fields == before.fields


def test_full_developer_workflow():
    """Fig. 11 end to end: analyse offline, pick a maximal signature,
    validate it miner-side, deploy it, and run traffic against it."""
    source = CORPUS["Crowdfunding"]
    # Offline: the developer explores signatures.
    deployment = run_pipeline(source, "CF")
    report = deployment.solver().report()
    selection = report.maximal_ge[0]
    signature = deployment.signature(selection)
    # Miner-side: the submitted signature validates.
    assert validate_signature(source, signature)
    # On-chain: deployment + traffic.
    net = Network(3)
    for u in USERS:
        net.create_account(u)
    net.create_account(ADMIN)
    deployed = net.deploy(source, "0x" + "cf" * 20, {
        "campaign_owner": addr(ADMIN), "goal": uint(10**9),
        "deadline": BNumVal(100)}, sharded_transitions=selection)
    assert deployed.signature is not None
    block = net.process_epoch([
        call(u, deployed.address, "Donate", {}, nonce=1, amount=10)
        for u in USERS])
    assert block.n_committed == len(USERS)
    assert net.contracts[deployed.address].state.fields["raised"] == \
        uint(10 * len(USERS))


def test_interleaved_payments_and_calls_respect_nonces(multinet):
    """One sender alternates payments and contract calls; relaxed
    nonces let them flow through different lanes."""
    net = multinet
    sender = USERS[2]
    net.process_epoch([call(ADMIN, TOKEN, "Mint",
                            {"recipient": addr(sender),
                             "amount": uint(100)}, nonce=1)],
                      unlimited=True)
    txns = [
        payment(sender, USERS[3], amount=5, nonce=1),
        call(sender, TOKEN, "Transfer",
             {"to": addr(USERS[4]), "amount": uint(5)}, nonce=2),
        payment(sender, USERS[5], amount=5, nonce=3),
        call(sender, TOKEN, "Transfer",
             {"to": addr(USERS[6]), "amount": uint(5)}, nonce=4),
    ]
    block = net.process_epoch(txns, unlimited=True)
    assert block.n_committed == 4


def test_full_node_loop_with_lookup_and_backlog():
    """The complete node loop: users submit to a lookup node, packets
    feed capacity-limited epochs, deferred transactions retry from the
    mempool, and everything eventually commits."""
    from repro.chain import LookupNode, packets_to_epoch
    from repro.chain.consensus import CostModel
    tiny = CostModel(shard_gas_limit=800, ds_gas_limit=800)
    net = Network(3, cost_model=tiny, carry_backlog=True)
    net.create_account(ADMIN)
    for u in USERS:
        net.create_account(u)
    net.deploy(CORPUS["FungibleToken"], TOKEN, {
        "contract_owner": addr(ADMIN), "name": StringVal("T"),
        "symbol": StringVal("T"), "decimals": IntVal(6, ty.UINT32),
        "init_supply": uint(0),
    }, sharded_transitions=EVAL_CONTRACTS["FungibleToken"])

    lookup = LookupNode(net.dispatcher)
    for i, u in enumerate(USERS * 3):
        lookup.submit(call(ADMIN, TOKEN, "Mint",
                           {"recipient": addr(u), "amount": uint(5)},
                           nonce=i + 1))
    offered = lookup.submitted
    epoch_txns = packets_to_epoch(lookup.build_packets())

    committed = 0
    block = net.process_epoch(epoch_txns)
    committed += block.n_committed
    for _ in range(30):
        if not net.backlog:
            break
        committed += net.process_epoch([]).n_committed
    assert committed == offered
    supply = net.contracts[TOKEN].state.fields["total_supply"]
    assert supply == uint(5 * offered)
    assert net.average_tps() > 0
    assert net.average_tps(last_n=1) >= 0
