"""Behavioural tests for the application corpus: each contract's core
business rules are exercised through the interpreter."""

import pytest

from repro.contracts import CORPUS
from repro.scilla.interpreter import Interpreter, TxContext
from repro.scilla.parser import parse_module
from repro.scilla.values import (
    BNumVal, ByStrVal, IntVal, StringVal, addr, bool_val, uint,
)
from repro.scilla import types as ty

ADMIN = "0x" + "ad" * 20
ALICE = "0x" + "a1" * 20
BOB = "0x" + "b0" * 20


def fresh(name, params):
    interp = Interpreter(parse_module(CORPUS[name], name))
    return interp, interp.deploy("0xc0", params)


def run(interp, state, transition, args, sender=ALICE, amount=0,
        block=1):
    return interp.run_transition(
        state, transition, args,
        TxContext(sender=sender, amount=amount, block_number=block))


def h32(n: int) -> ByStrVal:
    return ByStrVal("0x" + f"{n:064x}", ty.PrimType("ByStr32"))


def test_xsgd_blacklist_blocks_transfers():
    interp, state = fresh("XSGD", {"initial_issuer": addr(ADMIN)})
    assert run(interp, state, "Issue",
               {"to": addr(ALICE), "amount": uint(100)},
               sender=ADMIN).success
    assert run(interp, state, "Blacklist", {"target": addr(ALICE)},
               sender=ADMIN).success
    r = run(interp, state, "Transfer",
            {"to": addr(BOB), "amount": uint(10)}, sender=ALICE)
    assert not r.success and "Blacklisted" in r.error
    assert run(interp, state, "Unblacklist", {"target": addr(ALICE)},
               sender=ADMIN).success
    assert run(interp, state, "Transfer",
               {"to": addr(BOB), "amount": uint(10)},
               sender=ALICE).success


def test_superplayer_fee_accrues_to_house():
    interp, state = fresh("Superplayer_token",
                          {"house": addr(ADMIN),
                           "init_supply": uint(1000)})
    # The house funds Alice first (pays the flat fee of 2).
    assert run(interp, state, "Transfer",
               {"to": addr(ALICE), "amount": uint(100)},
               sender=ADMIN).success
    assert state.fields["house_cut"] == uint(2)
    assert run(interp, state, "CollectHouseCut", {},
               sender=ADMIN).success
    assert state.fields["house_cut"] == uint(0)
    assert state.fields["balances"].entries[addr(ADMIN)] == \
        uint(1000 - 102 + 2)


def test_ots200_lock_expires_with_blocks():
    interp, state = fresh("OTS200", {"admin": addr(ADMIN)})
    assert run(interp, state, "Grant",
               {"to": addr(ALICE), "amount": uint(50),
                "lock_until": BNumVal(10)}, sender=ADMIN).success
    r = run(interp, state, "Transfer",
            {"to": addr(BOB), "amount": uint(5)}, block=5)
    assert not r.success and "Locked" in r.error
    assert run(interp, state, "Transfer",
               {"to": addr(BOB), "amount": uint(5)}, block=11).success


def test_hybrid_euro_reserve_ratio():
    interp, state = fresh("Hybrid_Euro",
                          {"treasurer": addr(ADMIN),
                           "reserve_ratio": uint(50)})
    assert run(interp, state, "DepositReserves", {}, sender=ADMIN,
               amount=100).success
    # Supply of 200 needs 100 reserves at 50%: exactly met.
    assert run(interp, state, "MintEuro",
               {"to": addr(ALICE), "amount": uint(200)},
               sender=ADMIN).success
    # One more euro breaks the ratio.
    r = run(interp, state, "MintEuro",
            {"to": addr(ALICE), "amount": uint(2)}, sender=ADMIN)
    assert not r.success and "Reserves" in r.error


def test_dps_token_hub_pools():
    interp, state = fresh("DPSTokenHub", {"game_master": addr(ADMIN)})
    assert run(interp, state, "FundPool",
               {"pool_name": StringVal("gold"), "amount": uint(30)},
               sender=ADMIN).success
    assert run(interp, state, "AwardPlayer",
               {"pool_name": StringVal("gold"), "player": addr(ALICE),
                "amount": uint(20)}, sender=ADMIN).success
    r = run(interp, state, "AwardPlayer",
            {"pool_name": StringVal("gold"), "player": addr(BOB),
             "amount": uint(20)}, sender=ADMIN)
    assert not r.success and "Exhausted" in r.error


def test_bonding_curve_price_rises_with_supply():
    interp, state = fresh("SimpleBondingCurve",
                          {"creator": addr(ADMIN),
                           "base_price": uint(10)})
    assert run(interp, state, "Buy", {}, amount=10).success
    # Price is now base + supply = 11; paying 10 fails.
    r = run(interp, state, "Buy", {}, amount=10, sender=BOB)
    assert not r.success and "PriceNotMet" in r.error
    assert run(interp, state, "Buy", {}, amount=11, sender=BOB).success


def test_luy_daily_cap():
    interp, state = fresh("LUY_Cambodia",
                          {"central_agent": addr(ADMIN),
                           "daily_cap": uint(100)})
    assert run(interp, state, "IssueLUY",
               {"agent": addr(ALICE), "amount": uint(500)},
               sender=ADMIN).success
    assert run(interp, state, "Remit",
               {"to": addr(BOB), "amount": uint(80)}).success
    r = run(interp, state, "Remit", {"to": addr(BOB),
                                     "amount": uint(30)})
    assert not r.success and "DailyCap" in r.error
    # Reset opens the corridor again.
    assert run(interp, state, "ResetDay", {"agent": addr(ALICE)},
               sender=ADMIN).success
    assert run(interp, state, "Remit",
               {"to": addr(BOB), "amount": uint(30)}).success


def test_blackjack_payout_doubles_bet():
    interp, state = fresh("Blackjack", {"dealer": addr(ADMIN)})
    assert run(interp, state, "FundBank", {}, sender=ADMIN,
               amount=1000).success
    assert run(interp, state, "PlaceBet", {}, amount=50).success
    r = run(interp, state, "Payout",
            {"player": addr(ALICE), "won": bool_val(True)},
            sender=ADMIN)
    assert r.success
    (msg,) = r.messages
    assert msg.amount == 100
    # The round is closed; paying out twice fails.
    r = run(interp, state, "Payout",
            {"player": addr(ALICE), "won": bool_val(True)},
            sender=ADMIN)
    assert not r.success


def test_swap_contract_atomic_exchange():
    interp, state = fresh("SwapContract", {"operator": addr(ADMIN)})
    assert run(interp, state, "MakeOffer", {"ask_amount": uint(70)},
               sender=ALICE, amount=100).success
    # Underpaying the ask fails.
    r = run(interp, state, "TakeOffer", {"maker": addr(ALICE)},
            sender=BOB, amount=60)
    assert not r.success and "AskNotMet" in r.error
    r = run(interp, state, "TakeOffer", {"maker": addr(ALICE)},
            sender=BOB, amount=70)
    assert r.success
    amounts = sorted(m.amount for m in r.messages)
    assert amounts == [70, 100]  # maker gets the ask, taker the asset


def test_dbond_coupons_and_redemption():
    interp, state = fresh("DBond", {
        "issuer": addr(ADMIN), "coupon": uint(2),
        "maturity": BNumVal(100)})
    assert run(interp, state, "Subscribe", {}, amount=50).success
    assert run(interp, state, "PayCoupon", {"holder": addr(ALICE)},
               sender=ADMIN).success
    r = run(interp, state, "Redeem", {}, block=50)
    assert not r.success and "NotMatured" in r.error
    r = run(interp, state, "Redeem", {}, block=200)
    assert r.success
    (msg,) = r.messages
    assert msg.amount == 50 + 50 * 2  # principal + accrued coupons


def test_quizbot_rewards_correct_answer():
    import repro.scilla.builtins as bi
    answer = StringVal("42")
    digest = bi.get_builtin("sha256hash").impl([answer])
    interp, state = fresh("Quizbot", {"quizmaster": addr(ADMIN)})
    qid = IntVal(1, ty.UINT32)
    assert run(interp, state, "PostQuestion",
               {"qid": qid, "answer_hash": digest},
               sender=ADMIN, amount=500).success
    r = run(interp, state, "SubmitAnswer",
            {"qid": qid, "answer": StringVal("41")})
    assert not r.success and "Wrong" in r.error
    r = run(interp, state, "SubmitAnswer", {"qid": qid, "answer": answer})
    assert r.success
    (msg,) = r.messages
    assert msg.amount == 500
    # Nobody can win twice.
    r = run(interp, state, "SubmitAnswer", {"qid": qid, "answer": answer},
            sender=BOB)
    assert not r.success


def test_soundario_royalties_flow():
    interp, state = fresh("Soundario", {
        "platform": addr(ADMIN), "royalty_per_play": uint(3)})
    track = h32(9)
    assert run(interp, state, "PublishTrack", {"track_id": track},
               sender=ALICE).success
    # Platform credits the rightful holder only.
    r = run(interp, state, "RecordPlay",
            {"track_id": track, "rights_holder": addr(BOB)},
            sender=ADMIN)
    assert not r.success and "WrongRightsHolder" in r.error
    for _ in range(4):
        assert run(interp, state, "RecordPlay",
                   {"track_id": track, "rights_holder": addr(ALICE)},
                   sender=ADMIN).success
    r = run(interp, state, "ClaimRoyalties", {}, sender=ALICE)
    assert r.success
    (msg,) = r.messages
    assert msg.amount == 12


def test_gofundmi_milestones():
    interp, state = fresh("GoFundMi", {
        "project_owner": addr(ADMIN), "milestone_amount": uint(100)})
    assert run(interp, state, "Contribute", {}, amount=150).success
    assert run(interp, state, "ReleaseMilestone", {},
               sender=ADMIN).success
    r = run(interp, state, "ReleaseMilestone", {}, sender=ADMIN)
    assert not r.success and "NotEnoughRaised" in r.error


def test_proxy_contract_forwards_with_counter():
    interp, state = fresh("ProxyContract", {
        "proxy_admin": addr(ADMIN), "initial_impl": addr(BOB)})
    r = run(interp, state, "Forward", {"tag": StringVal("DoThing")},
            amount=5)
    assert r.success
    (msg,) = r.messages
    assert msg.tag == "ProxiedCall"
    assert state.fields["forwarded"] == uint(1)
    assert run(interp, state, "Upgrade", {"new_impl": addr(ALICE)},
               sender=ADMIN).success
    assert state.fields["implementation"] == addr(ALICE)


def test_ud_escrow_release_and_refund():
    interp, state = fresh("UD_escrow", {"arbiter": addr(ADMIN)})
    node = h32(3)
    assert run(interp, state, "ListDomain",
               {"node": node, "price": uint(100)}, sender=ALICE).success
    assert run(interp, state, "DepositPayment", {"node": node},
               sender=BOB, amount=100).success
    r = run(interp, state, "ReleaseToSeller", {"node": node},
            sender=ADMIN)
    assert r.success
    (msg,) = r.messages
    assert msg.amount == 100
    assert msg.recipient == addr(ALICE).hex
    # Everything cleaned up: refunding now fails.
    r = run(interp, state, "RefundBuyer", {"node": node}, sender=ADMIN)
    assert not r.success


def test_oceanrumble_crate_receipts():
    interp, state = fresh("OceanRumble_crate", {
        "game_server": addr(ADMIN), "crate_price": uint(10)})
    assert run(interp, state, "BuyCrate", {}, amount=10).success
    receipt = h32(1)
    sig = h32(2)
    assert run(interp, state, "OpenCrate",
               {"receipt_id": receipt, "signature": sig}).success
    # Receipt replay and empty inventory both fail.
    r = run(interp, state, "OpenCrate",
            {"receipt_id": receipt, "signature": sig})
    assert not r.success and "ReceiptUsed" in r.error
    r = run(interp, state, "OpenCrate",
            {"receipt_id": h32(5), "signature": sig})
    assert not r.success and "NoCrates" in r.error


def test_map_cornercases_reset_and_copy():
    interp, state = fresh("Map_cornercases", {"admin": addr(ADMIN)})
    assert run(interp, state, "PutShallow",
               {"key": addr(ALICE), "value": uint(9)}).success
    assert run(interp, state, "CopyEntry",
               {"from_key": addr(ALICE), "to_key": addr(BOB)}).success
    assert state.fields["scratch"].entries[addr(BOB)] == uint(9)
    assert run(interp, state, "ResetScratch", {}, sender=ADMIN).success
    assert not state.fields["scratch"].entries
    assert run(interp, state, "PutNested",
               {"key": addr(ALICE), "subkey": StringVal("s"),
                "value": uint(1)}).success
    assert run(interp, state, "DeleteNested",
               {"key": addr(ALICE), "subkey": StringVal("s")}).success
    r = run(interp, state, "DeleteNested",
            {"key": addr(ALICE), "subkey": StringVal("s")})
    assert not r.success


def test_xsgd_compliance_lifecycle():
    """The expanded 18-transition stablecoin: freezes, wipes, limits."""
    interp, state = fresh("XSGD", {"initial_issuer": addr(ADMIN)})
    assert run(interp, state, "Issue",
               {"to": addr(ALICE), "amount": uint(1000)},
               sender=ADMIN).success
    # Transfer limit enforcement.
    assert run(interp, state, "SetTransferLimit", {"limit": uint(100)},
               sender=ADMIN).success
    r = run(interp, state, "Transfer",
            {"to": addr(BOB), "amount": uint(500)}, sender=ALICE)
    assert not r.success and "OverTransferLimit" in r.error
    # Freeze blocks outgoing transfers; unfreeze restores them.
    assert run(interp, state, "FreezeAccount", {"target": addr(ALICE)},
               sender=ADMIN).success
    r = run(interp, state, "Transfer",
            {"to": addr(BOB), "amount": uint(10)}, sender=ALICE)
    assert not r.success and "Frozen" in r.error
    assert run(interp, state, "UnfreezeAccount", {"target": addr(ALICE)},
               sender=ADMIN).success
    assert run(interp, state, "Transfer",
               {"to": addr(BOB), "amount": uint(10)},
               sender=ALICE).success
    # Law-enforcement wipe burns a blacklisted holder's funds.
    assert run(interp, state, "Blacklist", {"target": addr(ALICE)},
               sender=ADMIN).success
    assert run(interp, state, "WipeBlacklistedFunds",
               {"target": addr(ALICE)}, sender=ADMIN).success
    assert addr(ALICE) not in state.fields["balances"].entries
    assert state.fields["supply"] == uint(10)  # only Bob's remain


def test_xsgd_role_separation():
    interp, state = fresh("XSGD", {"initial_issuer": addr(ADMIN)})
    # Hand compliance to Bob; the issuer can no longer blacklist.
    assert run(interp, state, "SetComplianceOfficer",
               {"officer": addr(BOB)}, sender=ADMIN).success
    r = run(interp, state, "Blacklist", {"target": addr(ALICE)},
            sender=ADMIN)
    assert not r.success
    assert run(interp, state, "Blacklist", {"target": addr(ALICE)},
               sender=BOB).success


def test_xsgd_pause_blocks_everything():
    interp, state = fresh("XSGD", {"initial_issuer": addr(ADMIN)})
    assert run(interp, state, "Pause", {}, sender=ADMIN).success
    r = run(interp, state, "Issue",
            {"to": addr(ALICE), "amount": uint(1)}, sender=ADMIN)
    assert not r.success and "Paused" in r.error
    assert run(interp, state, "Unpause", {}, sender=ADMIN).success
    assert run(interp, state, "Issue",
               {"to": addr(ALICE), "amount": uint(1)},
               sender=ADMIN).success


def test_superplayer_staking_roundtrip():
    interp, state = fresh("Superplayer_token",
                          {"house": addr(ADMIN),
                           "init_supply": uint(1000)})
    assert run(interp, state, "Mint",
               {"to": addr(ALICE), "amount": uint(100)},
               sender=ADMIN).success
    assert run(interp, state, "Stake", {"amount": uint(60)}).success
    assert state.fields["total_staked"] == uint(60)
    r = run(interp, state, "Unstake", {"amount": uint(100)})
    assert not r.success and "NotEnoughStaked" in r.error
    assert run(interp, state, "Unstake", {"amount": uint(60)}).success
    assert state.fields["balances"].entries[addr(ALICE)] == uint(100)
    assert state.fields["total_staked"] == uint(0)


def test_superplayer_bonus_points_respect_rate():
    interp, state = fresh("Superplayer_token",
                          {"house": addr(ADMIN),
                           "init_supply": uint(1000)})
    assert run(interp, state, "SetManager", {"new_manager": addr(BOB)},
               sender=ADMIN).success
    assert run(interp, state, "SetBonusRate", {"rate": uint(3)},
               sender=BOB).success
    assert run(interp, state, "AwardBonus",
               {"player": addr(ALICE), "points": uint(5)},
               sender=BOB).success
    assert state.fields["reward_points"].entries[addr(ALICE)] == uint(15)
    assert run(interp, state, "RedeemPoints", {"points": uint(15)},
               sender=ALICE).success
    assert state.fields["balances"].entries[addr(ALICE)] == uint(15)


def test_superplayer_pause_gates_game_ops():
    interp, state = fresh("Superplayer_token",
                          {"house": addr(ADMIN),
                           "init_supply": uint(1000)})
    assert run(interp, state, "Mint",
               {"to": addr(ALICE), "amount": uint(50)},
               sender=ADMIN).success
    assert run(interp, state, "PauseGame", {}, sender=ADMIN).success
    r = run(interp, state, "Stake", {"amount": uint(10)})
    assert not r.success and "Paused" in r.error
    assert run(interp, state, "UnpauseGame", {}, sender=ADMIN).success
    assert run(interp, state, "Stake", {"amount": uint(10)}).success


def test_bookstore_store_credit_flow():
    interp, state = fresh("Bookstore", {"store_owner": addr(ADMIN)})
    isbn = StringVal("978-1")
    assert run(interp, state, "Stock",
               {"isbn": isbn, "count": uint(2), "price": uint(40)},
               sender=ADMIN).success
    assert run(interp, state, "GrantStoreCredit",
               {"customer": addr(ALICE), "amount": uint(50)},
               sender=ADMIN).success
    assert run(interp, state, "BuyWithCredit", {"isbn": isbn}).success
    assert state.fields["store_credit"].entries[addr(ALICE)] == uint(10)
    r = run(interp, state, "BuyWithCredit", {"isbn": isbn})
    assert not r.success and "InsufficientCredit" in r.error


def test_bookstore_clerks_and_closing():
    interp, state = fresh("Bookstore", {"store_owner": addr(ADMIN)})
    isbn = StringVal("978-2")
    # Clerks may stock; strangers may not.
    r = run(interp, state, "Stock",
            {"isbn": isbn, "count": uint(1), "price": uint(10)},
            sender=BOB)
    assert not r.success
    assert run(interp, state, "AddClerk", {"clerk": addr(BOB)},
               sender=ADMIN).success
    assert run(interp, state, "Stock",
               {"isbn": isbn, "count": uint(1), "price": uint(10)},
               sender=BOB).success
    # Closing the store blocks purchases.
    assert run(interp, state, "CloseStore", {}, sender=ADMIN).success
    r = run(interp, state, "Buy", {"isbn": isbn}, amount=10)
    assert not r.success and "Closed" in r.error
    assert run(interp, state, "OpenStore", {}, sender=ADMIN).success
    assert run(interp, state, "Buy", {"isbn": isbn}, amount=10).success


def test_bookstore_discount_applies():
    interp, state = fresh("Bookstore", {"store_owner": addr(ADMIN)})
    isbn = StringVal("978-3")
    assert run(interp, state, "Stock",
               {"isbn": isbn, "count": uint(1), "price": uint(30)},
               sender=ADMIN).success
    assert run(interp, state, "SetDiscount", {"amount": uint(5)},
               sender=ADMIN).success
    r = run(interp, state, "Buy", {"isbn": isbn}, amount=24)
    assert not r.success and "Underpaid" in r.error
    assert run(interp, state, "Buy", {"isbn": isbn}, amount=25).success
    assert state.fields["revenue"] == uint(25)
