"""Lookup-node packet tests (Fig. 10's entry point)."""

from repro.chain import Network, call, payment
from repro.chain.dispatch import DS
from repro.chain.lookup import LookupNode, TxPacket, packets_to_epoch
from repro.contracts import CORPUS
from repro.scilla.values import IntVal, StringVal, addr, uint
from repro.scilla import types as ty

ADMIN = "0x" + "ad" * 20
TOKEN = "0x" + "c0" * 20
USERS = ["0x" + f"{i:040x}" for i in range(1, 30)]


def token_network(n_shards=4):
    net = Network(n_shards)
    net.create_account(ADMIN)
    for u in USERS:
        net.create_account(u)
    net.deploy(CORPUS["FungibleToken"], TOKEN, {
        "contract_owner": addr(ADMIN), "name": StringVal("T"),
        "symbol": StringVal("T"), "decimals": IntVal(6, ty.UINT32),
        "init_supply": uint(10**12),
    }, sharded_transitions=("Mint", "Transfer", "TransferFrom"))
    return net


def test_packets_group_by_destination():
    net = token_network()
    lookup = LookupNode(net.dispatcher)
    for i, u in enumerate(USERS):
        lookup.submit(call(u, TOKEN, "Transfer",
                           {"to": addr(USERS[(i + 1) % len(USERS)]),
                            "amount": uint(1)}, nonce=1))
    packets = lookup.build_packets()
    destinations = [p.destination for p in packets]
    assert len(destinations) == len(set(destinations))  # one per lane
    assert sum(len(p) for p in packets) == len(USERS)
    assert lookup.pending() == 0


def test_packets_preserve_submission_order_within_lane():
    net = token_network(n_shards=1)
    lookup = LookupNode(net.dispatcher)
    sender = USERS[0]
    for nonce in range(1, 6):
        lookup.submit(payment(sender, USERS[1], amount=1, nonce=nonce))
    (packet,) = lookup.build_packets()
    assert [tx.nonce for tx in packet.txns] == [1, 2, 3, 4, 5]


def test_large_queue_splits_into_multiple_packets():
    net = token_network(n_shards=1)
    lookup = LookupNode(net.dispatcher, max_packet_size=4)
    for nonce in range(1, 11):
        lookup.submit(payment(USERS[0], USERS[1], amount=1, nonce=nonce))
    packets = lookup.build_packets()
    assert [len(p) for p in packets] == [4, 4, 2]
    assert all(p.destination == packets[0].destination for p in packets)


def test_ds_bound_transactions_get_ds_packet():
    net = token_network()
    lookup = LookupNode(net.dispatcher)
    me = USERS[3]
    # Self-transfer aliases → DS.
    lookup.submit(call(me, TOKEN, "Transfer",
                       {"to": addr(me), "amount": uint(1)}, nonce=1))
    (packet,) = lookup.build_packets()
    assert packet.is_ds
    assert packet.destination == DS


def test_packets_feed_an_epoch_end_to_end():
    net = token_network()
    lookup = LookupNode(net.dispatcher)
    for i, u in enumerate(USERS):
        lookup.submit(call(ADMIN, TOKEN, "Mint",
                           {"recipient": addr(u), "amount": uint(10)},
                           nonce=i + 1))
    packets = lookup.build_packets()
    block = net.process_epoch(packets_to_epoch(packets), unlimited=True)
    assert block.n_committed == len(USERS)
    assert lookup.submitted == len(USERS)
