"""Property-style tests for the content-addressed SummaryCache.

The cache is only sound if (1) a hit is indistinguishable from a fresh
analysis, (2) *any* change to the source changes the key, and (3) no
entry survives an analysis-version bump.  Each property gets tested
directly against the real pipeline over corpus contracts.
"""

import threading

import pytest

from repro.contracts import CORPUS
from repro.core.cache import ANALYSIS_VERSION, GLOBAL_CACHE, SummaryCache
from repro.core.pipeline import run_pipeline, run_pipeline_cached

from .helpers import mutate_one_char

SOURCE = CORPUS["FungibleToken"]


# -- property 1: hits equal fresh analysis ---------------------------------

def test_cached_result_equals_fresh_analysis():
    cache = SummaryCache()
    cached = cache.get_or_compute(SOURCE, "FT")
    fresh = run_pipeline(SOURCE, "FT")
    assert set(cached.summaries) == set(fresh.summaries)
    for name in fresh.summaries:
        assert str(cached.summaries[name]) == str(fresh.summaries[name])


def test_second_lookup_returns_identical_object():
    cache = SummaryCache()
    first = cache.get_or_compute(SOURCE)
    second = cache.get_or_compute(SOURCE)
    assert second is first
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1


@pytest.mark.parametrize("name", ["FungibleToken", "NonfungibleToken",
                                  "Crowdfunding"])
def test_cached_signature_validation_agrees(name):
    """validate_signature through the cache == straight pipeline."""
    source = CORPUS[name]
    fresh = run_pipeline(source, name)
    via_cache = run_pipeline_cached(source, name, cache=SummaryCache())
    for selection in ([], list(fresh.summaries)[:1], list(fresh.summaries)):
        sig_a = fresh.signature(tuple(selection))
        sig_b = via_cache.signature(tuple(selection))
        assert sig_a.describe() == sig_b.describe()


# -- property 2: any single-character mutation invalidates the key ---------

@pytest.mark.parametrize("seed", range(40))
def test_single_char_mutation_changes_key(seed):
    cache = SummaryCache()
    mutated = mutate_one_char(SOURCE, seed)
    assert mutated != SOURCE
    assert cache.key(mutated) != cache.key(SOURCE)


def test_mutated_source_misses_after_original_cached():
    cache = SummaryCache()
    cache.get_or_compute(SOURCE)
    for seed in range(10):
        assert cache.lookup(mutate_one_char(SOURCE, seed)) is None


def test_analysis_flag_is_part_of_the_key():
    cache = SummaryCache()
    assert cache.key(SOURCE, with_analysis=True) != \
        cache.key(SOURCE, with_analysis=False)


# -- property 3: version bumps flush stale entries -------------------------

def test_version_bump_flushes_stale_entries():
    cache = SummaryCache()
    cache.get_or_compute(SOURCE)
    cache.get_or_compute(CORPUS["HelloWorld"])
    assert len(cache) == 2

    purged = cache.set_version(ANALYSIS_VERSION + "-next")
    assert purged == 2
    assert len(cache) == 0
    assert cache.lookup(SOURCE) is None          # recomputation required
    fresh = cache.get_or_compute(SOURCE)
    assert cache.lookup(SOURCE) is fresh

    assert cache.set_version(cache.version) == 0  # no-op bump purges nothing


# -- mechanics: LRU bound, stats, concurrency ------------------------------

def test_lru_eviction_respects_maxsize():
    cache = SummaryCache(maxsize=2)
    names = ["HelloWorld", "FungibleToken", "Crowdfunding"]
    for name in names:
        cache.get_or_compute(CORPUS[name], name)
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    assert cache.lookup(CORPUS["HelloWorld"]) is None     # oldest evicted
    assert cache.lookup(CORPUS["Crowdfunding"]) is not None


def test_concurrent_get_or_compute_analyses_once():
    cache = SummaryCache()
    results = []
    barrier = threading.Barrier(4)

    def worker():
        barrier.wait()
        results.append(cache.get_or_compute(SOURCE))

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(results) == 4
    assert all(r is results[0] for r in results)
    assert cache.stats.misses == 1          # exactly one pipeline run
    assert cache.stats.hits == 3


def test_global_cache_serves_validate_signature():
    from repro.core.pipeline import validate_signature

    result = run_pipeline(SOURCE, "FT")
    sig = result.signature(tuple(result.summaries)[:1])
    before = GLOBAL_CACHE.stats.snapshot()
    assert validate_signature(SOURCE, sig)
    after = GLOBAL_CACHE.stats
    assert after.lookups > before.lookups   # went through the cache
