"""Type-representation tests: substitution, bounds, storability."""

import pytest

from repro.scilla import types as ty
from repro.scilla.types import (
    ADTType, FunType, MapType, PolyFun, PrimType, TypeVar, free_tvars,
    int_bounds, is_int_type, is_signed, is_storable, is_unsigned,
    substitute,
)


def test_int_type_predicates():
    assert is_int_type(ty.UINT128)
    assert is_unsigned(ty.UINT128)
    assert is_signed(ty.INT32)
    assert not is_int_type(ty.STRING)


def test_int_bounds():
    assert int_bounds(ty.UINT32) == (0, 2**32 - 1)
    assert int_bounds(ty.INT32) == (-(2**31), 2**31 - 1)
    assert int_bounds(ty.UINT256)[1] == 2**256 - 1


def test_int_bounds_rejects_non_int():
    with pytest.raises(ValueError):
        int_bounds(ty.STRING)


def test_bystr_width():
    assert ty.bystr_width(ty.BYSTR20) == 20
    assert ty.bystr_width(PrimType("ByStr")) is None


def test_type_rendering():
    t = MapType(ty.BYSTR20, MapType(ty.BYSTR20, ty.UINT128))
    assert str(t) == "Map ByStr20 (Map ByStr20 Uint128)"
    f = FunType(ty.UINT128, FunType(ty.UINT128, ty.BOOL))
    assert str(f) == "Uint128 -> Uint128 -> Bool"
    o = ADTType("Option", (ty.UINT128,))
    assert str(o) == "Option Uint128"


def test_substitute_in_adt_and_map():
    t = MapType(TypeVar("'A"), ADTType("Option", (TypeVar("'A"),)))
    out = substitute(t, {"'A": ty.UINT128})
    assert out == MapType(ty.UINT128, ADTType("Option", (ty.UINT128,)))


def test_substitute_respects_polyfun_shadowing():
    t = PolyFun("'A", FunType(TypeVar("'A"), TypeVar("'B")))
    out = substitute(t, {"'A": ty.UINT128, "'B": ty.STRING})
    # 'A is bound by the PolyFun; only 'B substitutes.
    assert out == PolyFun("'A", FunType(TypeVar("'A"), ty.STRING))


def test_free_tvars():
    t = FunType(TypeVar("'A"), PolyFun("'B", TypeVar("'B")))
    assert free_tvars(t) == {"'A"}


def test_storability():
    assert is_storable(ty.UINT128)
    assert is_storable(MapType(ty.BYSTR20, ty.UINT128))
    assert is_storable(ADTType("Option", (ty.UINT128,)))
    assert not is_storable(FunType(ty.UINT128, ty.UINT128))
    assert not is_storable(MapType(ty.BYSTR20,
                                   FunType(ty.UINT128, ty.UINT128)))
    assert not is_storable(ty.MESSAGE)
    assert not is_storable(TypeVar("'A"))


def test_builtin_adts_registered():
    assert set(ty.BUILTIN_ADTS) == {"Bool", "Option", "List", "Pair",
                                    "Nat"}
    assert ty.OPTION_ADT.constructor("Some").arg_types == \
        (TypeVar("'A"),)
    with pytest.raises(KeyError):
        ty.BOOL_ADT.constructor("Maybe")
