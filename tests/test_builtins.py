"""Builtin operation tests: checked arithmetic, maps, hashing."""

import pytest

from repro.scilla.builtins import (
    COMMUTATIVE_ADDITIVE, get_builtin, make_schnorr_signature,
)
from repro.scilla.errors import EvalError, OutOfBoundsError
from repro.scilla import types as ty
from repro.scilla.values import (
    ADTVal, BNumVal, ByStrVal, IntVal, MapVal, StringVal, bool_val,
    uint, sint, value_to_list,
)


def run(name, *args):
    return get_builtin(name).impl(list(args))


# -- integer arithmetic ------------------------------------------------------

def test_add():
    assert run("add", uint(2), uint(3)) == uint(5)


def test_add_overflow_uint32():
    a = IntVal(2**32 - 1, ty.UINT32)
    with pytest.raises(OutOfBoundsError):
        run("add", a, IntVal(1, ty.UINT32))


def test_sub_underflow_unsigned():
    with pytest.raises(OutOfBoundsError):
        run("sub", uint(1), uint(2))


def test_sub_signed_allows_negative():
    assert run("sub", sint(1), sint(2)) == sint(-1)


def test_signed_overflow_detected():
    top = IntVal(2**31 - 1, ty.INT32)
    with pytest.raises(OutOfBoundsError):
        run("add", top, IntVal(1, ty.INT32))


def test_mul():
    assert run("mul", uint(6), uint(7)) == uint(42)


def test_div_truncates_toward_zero():
    assert run("div", sint(-7), sint(2)) == sint(-3)


def test_div_by_zero():
    with pytest.raises(EvalError):
        run("div", uint(1), uint(0))


def test_rem_sign_follows_dividend():
    assert run("rem", sint(-7), sint(2)) == sint(-1)


def test_pow():
    assert run("pow", uint(2), IntVal(10, ty.UINT32)) == uint(1024)


def test_mixed_type_arithmetic_rejected():
    with pytest.raises(EvalError):
        run("add", uint(1), IntVal(1, ty.UINT32))


def test_lt():
    assert run("lt", uint(1), uint(2)) == bool_val(True)
    assert run("lt", uint(2), uint(2)) == bool_val(False)


def test_commutative_additive_set():
    assert COMMUTATIVE_ADDITIVE == {"add", "sub"}


# -- eq, strings, bystr --------------------------------------------------------

def test_eq_on_addresses():
    a = ByStrVal("0x" + "ab" * 20, ty.BYSTR20)
    b = ByStrVal("0x" + "ab" * 20, ty.BYSTR20)
    assert run("eq", a, b) == bool_val(True)


def test_eq_on_adts():
    assert run("eq", bool_val(True), bool_val(True)) == bool_val(True)
    assert run("eq", bool_val(True), bool_val(False)) == bool_val(False)


def test_concat_strings():
    assert run("concat", StringVal("foo"), StringVal("bar")) == \
        StringVal("foobar")


def test_concat_bystr_widths_add():
    a = ByStrVal("0x" + "00" * 20, ty.BYSTR20)
    out = run("concat", a, a)
    assert out.nbytes == 40


def test_strlen_substr():
    s = StringVal("hello")
    assert run("strlen", s) == IntVal(5, ty.UINT32)
    assert run("substr", s, IntVal(1, ty.UINT32),
               IntVal(3, ty.UINT32)) == StringVal("ell")


def test_substr_out_of_bounds():
    with pytest.raises(EvalError):
        run("substr", StringVal("hi"), IntVal(1, ty.UINT32),
            IntVal(5, ty.UINT32))


# -- hashing and signatures -----------------------------------------------------

def test_sha256_deterministic_and_typed():
    h1 = run("sha256hash", StringVal("data"))
    h2 = run("sha256hash", StringVal("data"))
    assert h1 == h2
    assert h1.typ == ty.PrimType("ByStr32")


def test_sha256_differs_on_different_input():
    assert run("sha256hash", StringVal("a")) != \
        run("sha256hash", StringVal("b"))


def test_schnorr_roundtrip():
    pubkey = ByStrVal("0x01", ty.PrimType("ByStr"))
    msg = ByStrVal("0x" + "11" * 32, ty.PrimType("ByStr32"))
    sig = make_schnorr_signature(pubkey, msg)
    assert run("schnorr_verify", pubkey, msg, sig) == bool_val(True)
    wrong = run("sha256hash", StringVal("nope"))
    assert run("schnorr_verify", pubkey, msg, wrong) == bool_val(False)


# -- block numbers ----------------------------------------------------------------

def test_blt_badd():
    assert run("blt", BNumVal(1), BNumVal(2)) == bool_val(True)
    assert run("badd", BNumVal(5), uint(3)) == BNumVal(8)


# -- conversions --------------------------------------------------------------------

def test_to_uint32_in_range():
    out = run("to_uint32", uint(7))
    assert out.constructor == "Some"
    assert out.args[0] == IntVal(7, ty.UINT32)


def test_to_uint32_out_of_range_gives_none():
    out = run("to_uint32", uint(2**40))
    assert out.constructor == "None"


def test_to_nat():
    out = run("to_nat", IntVal(2, ty.UINT32))
    assert out.constructor == "Succ"
    assert out.args[0].constructor == "Succ"


# -- pure map builtins -----------------------------------------------------------------

def _map(**entries):
    m = MapVal(ty.STRING, ty.UINT128)
    for k, v in entries.items():
        m.entries[StringVal(k)] = uint(v)
    return m


def test_put_is_persistent():
    m = _map(a=1)
    out = run("put", m, StringVal("b"), uint(2))
    assert StringVal("b") in out.entries
    assert StringVal("b") not in m.entries  # original untouched


def test_get_present_and_absent():
    m = _map(a=1)
    assert run("get", m, StringVal("a")).constructor == "Some"
    assert run("get", m, StringVal("zz")).constructor == "None"


def test_contains_and_size():
    m = _map(a=1, b=2)
    assert run("contains", m, StringVal("a")) == bool_val(True)
    assert run("size", m) == IntVal(2, ty.UINT32)


def test_remove_persistent():
    m = _map(a=1)
    out = run("remove", m, StringVal("a"))
    assert not out.entries
    assert m.entries


def test_to_list_sorted_pairs():
    m = _map(b=2, a=1)
    items = value_to_list(run("to_list", m))
    assert len(items) == 2
    assert all(isinstance(p, ADTVal) and p.constructor == "Pair"
               for p in items)
