"""Cross-cutting property-based tests: dispatch totality and
determinism, interpreter determinism, gas monotonicity."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.chain import Network, call
from repro.chain.dispatch import DS
from repro.contracts import CORPUS
from repro.scilla.interpreter import Interpreter, TxContext
from repro.scilla.parser import parse_module
from repro.scilla.values import IntVal, StringVal, addr, canonical, uint
from repro.scilla import types as ty

ADMIN = "0x" + "ad" * 20
TOKEN = "0x" + "c0" * 20


def _network(n_shards):
    net = Network(n_shards)
    net.create_account(ADMIN)
    net.deploy(CORPUS["FungibleToken"], TOKEN, {
        "contract_owner": addr(ADMIN), "name": StringVal("T"),
        "symbol": StringVal("T"), "decimals": IntVal(6, ty.UINT32),
        "init_supply": uint(10**9),
    }, sharded_transitions=("Mint", "Transfer", "TransferFrom"))
    return net


_NETS = {n: _network(n) for n in (1, 3, 5)}

_tx = st.builds(
    lambda s, t, amt, transition, nonce: call(
        f"0x{s:040x}", TOKEN, transition,
        ({"to": addr(f"0x{t:040x}"), "amount": uint(amt)}
         if transition in ("Transfer",) else
         {"recipient": addr(f"0x{t:040x}"), "amount": uint(amt)}
         if transition == "Mint" else
         {"from": addr(f"0x{t:040x}"),
          "to": addr(f"0x{(t % 97) + 1:040x}"), "amount": uint(amt)}),
        nonce=nonce),
    st.integers(1, 100), st.integers(1, 100), st.integers(0, 10**9),
    st.sampled_from(["Transfer", "Mint", "TransferFrom"]),
    st.integers(1, 1000),
)


@settings(max_examples=80, deadline=None)
@given(_tx, st.sampled_from([1, 3, 5]))
def test_dispatch_total_and_in_range(tx, n_shards):
    """Dispatch never crashes and always yields DS or a valid shard."""
    decision = _NETS[n_shards].dispatcher.dispatch(tx)
    assert decision.shard == DS or 0 <= decision.shard < n_shards


@settings(max_examples=40, deadline=None)
@given(_tx, st.sampled_from([3, 5]))
def test_dispatch_deterministic(tx, n_shards):
    d1 = _NETS[n_shards].dispatcher.dispatch(tx)
    d2 = _NETS[n_shards].dispatcher.dispatch(tx)
    assert d1.shard == d2.shard


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 50), st.integers(1, 10**6))
def test_interpreter_deterministic(recipient, amount):
    """Same transition + args + context ⇒ identical state and gas."""
    module = parse_module(CORPUS["FungibleToken"], "FT")
    interp = Interpreter(module)
    results = []
    for _ in range(2):
        state = interp.deploy(TOKEN, {
            "contract_owner": addr(ADMIN), "name": StringVal("T"),
            "symbol": StringVal("T"), "decimals": IntVal(6, ty.UINT32),
            "init_supply": uint(0)})
        r = interp.run_transition(
            state, "Mint",
            {"recipient": addr(f"0x{recipient:040x}"),
             "amount": uint(amount)},
            TxContext(sender=ADMIN))
        assert r.success
        results.append((r.gas_used,
                        {k: canonical(v) for k, v in state.fields.items()}))
    assert results[0] == results[1]


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 30))
def test_gas_grows_with_work(n_ops):
    """A transition doing more statements costs more gas."""
    def build(n):
        adds = ";\n".join(
            f"  x{i} = builtin add one one" for i in range(n))
        return f"""
        scilla_version 0
        library G
        let one = Uint128 1
        contract G (o: ByStr20)
        transition Work ()
        {adds}
        end
        """
    interp_small = Interpreter(parse_module(build(1)))
    interp_big = Interpreter(parse_module(build(n_ops + 1)))
    s1 = interp_small.deploy("0x01", {"o": addr(ADMIN)})
    s2 = interp_big.deploy("0x01", {"o": addr(ADMIN)})
    g1 = interp_small.run_transition(s1, "Work", {},
                                     TxContext(sender=ADMIN)).gas_used
    g2 = interp_big.run_transition(s2, "Work", {},
                                   TxContext(sender=ADMIN)).gas_used
    assert g2 > g1
