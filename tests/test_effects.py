"""Unit tests for the effect representations and Summary utilities."""

from repro.core.domain import (
    CT, Card, ConstSource, Contrib, FieldSource, ParamKey, PseudoField,
    TOP,
)
from repro.core.effects import (
    AcceptFunds, Condition, MsgInfo, RECIP_PARAM, Read, SendMsg,
    Summary, TopEffect, Write, condition_mentions,
)

PF = PseudoField


def field_ct(pf, card=Card.ONE, ops=frozenset()):
    return CT.of({FieldSource(pf): Contrib(card, ops)})


def test_summary_add_deduplicates():
    s = Summary("T", ())
    s.add(Read(PF("f")))
    s.add(Read(PF("f")))
    assert len(s.effects) == 1


def test_summary_accessors():
    s = Summary("T", ("x",))
    s.add(Read(PF("f")))
    s.add(Write(PF("g"), CT()))
    s.add(Condition(CT()))
    s.add(AcceptFunds())
    s.add(SendMsg((MsgInfo(RECIP_PARAM, "x", True),)))
    assert len(s.reads()) == 1
    assert len(s.writes()) == 1
    assert len(s.conditions()) == 1
    assert s.accepts_funds()
    assert len(s.sends()) == 1
    assert s.written_fields() == {"g"}


def test_has_top_variants():
    plain = Summary("T", ())
    plain.add(Read(PF("f")))
    assert not plain.has_top

    with_top_effect = Summary("T", ())
    with_top_effect.add(TopEffect("reason"))
    assert with_top_effect.has_top

    with_top_send = Summary("T", ())
    with_top_send.add(SendMsg(()))
    assert with_top_send.has_top

    with_top_write = Summary("T", ())
    with_top_write.add(Write(PF("f"), TOP))
    assert with_top_write.has_top


def test_sendmsg_is_top_only_when_empty():
    assert SendMsg(()).is_top
    assert not SendMsg((MsgInfo(),)).is_top


def test_condition_mentions_field():
    s = Summary("T", ())
    s.add(Condition(field_ct(PF("f", (ParamKey("x"),)))))
    assert condition_mentions(s, PF("f", (ParamKey("x"),)))
    assert condition_mentions(s, PF("f", (ParamKey("y"),)))  # may alias
    assert not condition_mentions(s, PF("g", (ParamKey("x"),)))


def test_condition_mentions_top_is_conservative():
    s = Summary("T", ())
    s.add(Condition(TOP))
    assert condition_mentions(s, PF("anything"))


def test_dedupe_keeps_distinct_conditions():
    s = Summary("T", ())
    s.add(Condition(field_ct(PF("f"))))
    s.add(Condition(field_ct(PF("g"))))
    s.dedupe_conditions()
    assert len(s.conditions()) == 2


def test_dedupe_drops_subset_condition():
    s = Summary("T", ())
    both = CT.of({
        FieldSource(PF("f")): Contrib(Card.ZERO, frozenset({"Cond"})),
        FieldSource(PF("g")): Contrib(Card.ZERO, frozenset({"Cond"})),
    })
    s.add(Condition(field_ct(PF("f"))))
    s.add(Condition(both))
    s.dedupe_conditions()
    assert len(s.conditions()) == 1
    (kept,) = s.conditions()
    assert kept.contrib == both


def test_dedupe_ignores_constant_only_differences():
    s = Summary("T", ())
    with_const = CT.of({
        FieldSource(PF("f")): Contrib(Card.ZERO, frozenset({"Cond"})),
        ConstSource("Uint128|0"): Contrib(Card.ZERO, frozenset({"Cond"})),
    })
    s.add(Condition(with_const))
    s.add(Condition(field_ct(PF("f"))))
    s.dedupe_conditions()
    assert len(s.conditions()) == 1


def test_effect_string_rendering():
    assert str(Read(PF("balances", (ParamKey("_sender"),)))) == \
        "Read(balances[_sender])"
    w = Write(PF("m", (ParamKey("k"),)), CT(), is_delete=True)
    assert str(w).startswith("Delete(")
    assert str(AcceptFunds()) == "AcceptFunds"
    assert "⊤" in str(SendMsg(()))
    assert "to=x" in str(SendMsg((MsgInfo(RECIP_PARAM, "x", True),)))
