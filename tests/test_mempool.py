"""Unit tests for the bounded admission-controlled mempool
(``repro.chain.mempool``): admission rules, capacity behaviour,
deterministic shedding, drain order, and the exactly-one-terminal
accounting partition."""

import pytest

from repro.chain.mempool import (
    AdmissionStatus, Mempool, MempoolConfig, PoolEntry, RejectReason,
    TerminalKind,
)
from repro.chain.transaction import Transaction

CONTRACT = "0x" + "c0" * 20


def tx(sender: str, nonce: int, gas_price: int = 1) -> Transaction:
    return Transaction(sender=sender, to=CONTRACT, nonce=nonce,
                       gas_price=gas_price)


def fill(pool: Mempool, sender: str, nonces) -> list:
    return [pool.submit(tx(sender, n)) for n in nonces]


def assert_partition(pool: Mempool) -> None:
    assert pool.accounted() == pool.counters["submitted"]


class TestAdmission:
    def test_contiguous_nonces_admit(self):
        pool = Mempool()
        receipts = fill(pool, "a", [5, 6, 7])
        assert all(r.admitted for r in receipts)
        assert pool.occupancy == 3
        assert pool.nonce_floor["a"] == 7
        assert_partition(pool)

    def test_first_submission_sets_the_floor(self):
        # The pool cannot know where an unseen sender's sequence
        # starts, so any first nonce is accepted and becomes the floor.
        pool = Mempool()
        assert pool.submit(tx("a", 42)).admitted
        assert pool.nonce_floor["a"] == 42

    def test_nonce_gap_rejected(self):
        pool = Mempool()
        fill(pool, "a", [1])
        r = pool.submit(tx("a", 3))
        assert r.status is AdmissionStatus.REJECTED
        assert r.reason is RejectReason.NONCE_GAP
        assert pool.occupancy == 1
        assert_partition(pool)

    def test_nonce_duplicate_rejected(self):
        pool = Mempool()
        fill(pool, "a", [1, 2])
        for stale in (2, 1, 0):
            r = pool.submit(tx("a", stale))
            assert r.reason is RejectReason.NONCE_DUPLICATE
        assert_partition(pool)

    def test_per_sender_cap(self):
        pool = Mempool(MempoolConfig(capacity=100, per_sender=2))
        fill(pool, "a", [1, 2])
        r = pool.submit(tx("a", 3))
        assert r.reason is RejectReason.SENDER_FULL
        # Other senders are unaffected.
        assert pool.submit(tx("b", 1)).admitted
        assert_partition(pool)


class TestCapacityAndPriority:
    def cfg(self):
        # high_water 1.0 disables backpressure so these tests exercise
        # the hard cap in isolation.
        return MempoolConfig(capacity=2, per_sender=8,
                             high_water=1.0, low_water=0.5)

    def test_full_pool_rejects_equal_priority(self):
        pool = Mempool(self.cfg())
        fill(pool, "a", [1])
        fill(pool, "b", [1])
        r = pool.submit(tx("c", 1, gas_price=1))
        assert r.reason is RejectReason.POOL_FULL
        assert_partition(pool)

    def test_full_pool_sheds_outranked_tail(self):
        pool = Mempool(self.cfg())
        pool.submit(tx("a", 1, gas_price=1))
        pool.submit(tx("b", 1, gas_price=5))
        r = pool.submit(tx("c", 1, gas_price=3))
        assert r.admitted
        # The cheapest tail ("a") was shed; the floor rolled back so
        # the client can resubmit the same nonce.
        assert pool.counters["shed"] == 1
        assert "a" not in pool.queues
        assert pool.nonce_floor["a"] == 0
        assert pool.submit(tx("a", 1, gas_price=9)).admitted
        assert pool.counters["shed"] == 2   # someone else paid
        assert pool.occupancy == 2
        assert_partition(pool)


class TestBackpressure:
    def test_hysteresis_and_retry_after(self):
        pool = Mempool(MempoolConfig(capacity=10, per_sender=10,
                                     high_water=0.8, low_water=0.5))
        fill(pool, "a", range(1, 9))        # occupancy 8 == high mark
        r = pool.submit(tx("b", 1))
        assert r.status is AdmissionStatus.BACKPRESSURE
        assert r.retry_after >= 1
        assert pool.backpressure_active
        # Draining to the low mark releases it.
        pool.drain(2)                        # occupancy 6 > low mark 5
        pool.update_backpressure()
        assert pool.backpressure_active
        pool.drain(1)                        # occupancy 5 == low mark
        pool.update_backpressure()
        assert not pool.backpressure_active
        assert pool.submit(tx("b", 1)).admitted
        assert_partition(pool)

    def test_backpressured_submissions_are_accounted(self):
        pool = Mempool(MempoolConfig(capacity=4, per_sender=8,
                                     high_water=0.5, low_water=0.25))
        fill(pool, "a", [1, 2])
        assert pool.submit(
            tx("b", 1)).status is AdmissionStatus.BACKPRESSURE
        assert pool.counters["backpressured"] == 1
        assert_partition(pool)


class TestDrainAndOutcomes:
    def test_drain_preserves_global_arrival_and_nonce_order(self):
        pool = Mempool()
        pool.submit(tx("a", 1))
        pool.submit(tx("b", 7))
        pool.submit(tx("a", 2))
        pool.submit(tx("b", 8))
        drained = pool.drain(10)
        assert [(t.sender, t.nonce) for t in drained] == [
            ("a", 1), ("b", 7), ("a", 2), ("b", 8)]
        assert pool.occupancy == 0
        assert len(pool.inflight) == 4
        assert_partition(pool)

    def test_drain_respects_batch_limit(self):
        pool = Mempool()
        fill(pool, "a", [1, 2, 3])
        assert [t.nonce for t in pool.drain(2)] == [1, 2]
        assert pool.occupancy == 1

    def test_resolve_and_leftovers_partition(self):
        pool = Mempool()
        fill(pool, "a", [1, 2])
        t1, t2 = pool.drain(2)
        assert pool.resolve(t1.tx_id, TerminalKind.COMMITTED)
        assert pool.resolve(t1.tx_id, TerminalKind.COMMITTED) is None
        leftovers = pool.resolve_leftover_inflight()
        assert [e.tx.tx_id for e in leftovers] == [t2.tx_id]
        assert pool.counters["committed"] == 1
        assert pool.counters["dropped"] == 1
        assert not pool.inflight
        assert_partition(pool)

    def test_readmit_goes_to_the_front(self):
        pool = Mempool()
        fill(pool, "a", [1, 2])
        (t1,) = pool.drain(1)
        pool.readmit(t1, deferrals=1)
        assert [t.nonce for t in pool.drain(2)] == [1, 2]
        assert pool.counters["readmitted"] == 1
        assert_partition(pool)

    def test_readmit_refuses_nonce_disorder(self):
        pool = Mempool()
        fill(pool, "a", [1, 2])
        t1, t2 = pool.drain(2)
        pool.readmit(t1, deferrals=1)
        with pytest.raises(ValueError):
            pool.readmit(t2, deferrals=1)   # head nonce 1 < 2

    def test_dead_letter_is_terminal(self):
        pool = Mempool()
        fill(pool, "a", [1])
        (t1,) = pool.drain(1)
        pool.dead_letter(t1, deferrals=5)
        assert pool.counters["dead-lettered"] == 1
        assert not pool.inflight
        assert_partition(pool)


class TestShedding:
    def test_shed_to_capacity_is_deterministic_and_tail_only(self):
        pool = Mempool(MempoolConfig(capacity=10, per_sender=10,
                                     high_water=1.0, low_water=0.5))
        fill(pool, "cheap", [1, 2, 3])
        [pool.submit(tx("rich", n, gas_price=9)) for n in (1, 2, 3)]
        # Readmissions bypass the cap; shrink it to force eviction.
        pool.config.capacity = 4
        shed = pool.shed_to_capacity()
        # Cheapest tails go first, youngest arrival breaking ties:
        # nonce 3 then nonce 2 of the cheap sender.
        assert [(e.tx.sender, e.tx.nonce) for e in shed] == [
            ("cheap", 3), ("cheap", 2)]
        # Remaining queue is still nonce-contiguous from its head.
        assert [e.tx.nonce for e in pool.queues["cheap"]] == [1]
        assert pool.nonce_floor["cheap"] == 1
        assert pool.occupancy == 4
        assert_partition(pool)

    def test_shed_prefers_most_deferred_on_price_ties(self):
        pool = Mempool(MempoolConfig(capacity=10, per_sender=10,
                                     high_water=1.0, low_water=0.5))
        fill(pool, "a", [1])
        fill(pool, "b", [1])
        (t_b,) = [e.tx for e in [pool.queues["b"][0]]]
        drained = pool.drain(10)
        pool.readmit(drained[0], deferrals=0)    # a, never deferred
        pool.readmit(t_b, deferrals=3)           # b, deferred 3 times
        pool.config.capacity = 1
        shed = pool.shed_to_capacity()
        assert [e.tx.sender for e in shed] == ["b"]
        assert_partition(pool)


class TestRestore:
    def test_snapshot_round_trip(self):
        pool = Mempool()
        pool.submit(tx("a", 1))
        pool.submit(tx("b", 4))
        pool.submit(tx("a", 2))
        obj = pool.to_obj()
        entries = [PoolEntry.from_obj(e, seq=i)
                   for i, e in enumerate(obj["entries"])]
        restored = Mempool()
        restored.restore(entries, nonce_floor={"a": 2, "b": 4})
        assert restored.occupancy == 3
        assert [t.nonce for t in restored.drain(10)
                if t.sender == "a"] == [1, 2]
        assert restored.nonce_floor == {"a": 2, "b": 4}
        assert_partition(restored)

    def test_restore_resorts_deferred_prepends(self):
        # A deferred re-admission is prepended live, so the flat
        # drain-order list can hold a sender's nonces out of order;
        # restore re-sorts each sender's slice by nonce.
        entries = [
            PoolEntry(tx("a", 2), seq=0),
            PoolEntry(tx("a", 1), seq=1, deferrals=1),
        ]
        pool = Mempool()
        pool.restore(entries)
        assert [e.tx.nonce for e in pool.queues["a"]] == [1, 2]
        assert pool.counters["submitted"] == 2
        assert_partition(pool)

    def test_pending_entries_matches_drain_order(self):
        pool = Mempool()
        for sender, nonce in [("a", 1), ("b", 9), ("a", 2), ("c", 5)]:
            pool.submit(tx(sender, nonce))
        pending_ids = [e.tx.tx_id for e in pool.pending_entries()]
        drained_ids = [t.tx_id for t in pool.drain(10)]
        assert pending_ids == drained_ids


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"capacity": 0},
        {"per_sender": 0},
        {"high_water": 0.0},
        {"high_water": 1.5},
        {"low_water": 0.9, "high_water": 0.8},
    ])
    def test_bad_configs_raise(self, kwargs):
        with pytest.raises(ValueError):
            MempoolConfig(**kwargs)

    def test_marks(self):
        cfg = MempoolConfig(capacity=100, high_water=0.85,
                            low_water=0.6)
        assert cfg.high_mark == 85
        assert cfg.low_mark == 60
