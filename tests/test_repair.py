"""Automated contract repair tests (Sec. 6 extension).

The NFT contract's Approve writes an index keyed by the owner read
from the state — exactly the unshardable pattern the paper describes.
The repair must (a) make the transition shardable, (b) preserve
semantics for callers supplying the correct owner, and (c) reject
callers supplying a stale/wrong owner.
"""

import pytest

from repro.contracts import CORPUS
from repro.core.pipeline import run_pipeline
from repro.core.repair import diagnose, repair_module, repair_transition
from repro.core.signature import derive_signature
from repro.core.summary import analyze_module
from repro.core.constraints import is_bot
from repro.scilla.interpreter import Interpreter, TxContext
from repro.scilla.parser import parse_module
from repro.scilla.pretty import pp_module
from repro.scilla.typechecker import typecheck_module
from repro.scilla.values import IntVal, StringVal, addr, uint
from repro.scilla import types as ty

ADMIN = "0x" + "ad" * 20
ALICE = "0x" + "a1" * 20
BOB = "0x" + "b0" * 20

NFT_PARAMS = {"contract_owner": addr(ADMIN), "name": StringVal("N"),
              "symbol": StringVal("N")}
T7 = IntVal(7, ty.PrimType("Uint256"))


def nft_module():
    return parse_module(CORPUS["NonfungibleToken"], "NFT")


def test_diagnose_finds_approve_pattern():
    diagnoses = {d.transition: d for d in diagnose(nft_module())}
    approve = diagnoses["Approve"]
    assert not approve.shardable
    assert "actual_owner" in approve.repairable_binders
    # The shardable transitions carry no repair candidates.
    assert diagnoses["Transfer"].shardable
    assert not diagnoses["Transfer"].repairable_binders


def test_repair_makes_approve_shardable():
    repaired, changes = repair_transition(nft_module(), "Approve")
    assert changes
    summaries = analyze_module(repaired)
    sig = derive_signature("NFT", summaries, ("Approve",))
    assert not is_bot(sig.constraints["Approve"])


def test_repaired_module_pretty_prints_and_typechecks():
    repaired, _ = repair_transition(nft_module(), "Approve")
    printed = pp_module(repaired)
    typecheck_module(parse_module(printed))


def _approve_setup(module):
    interp = Interpreter(module)
    state = interp.deploy("0xc0", dict(NFT_PARAMS))
    r = interp.run_transition(state, "Mint",
                              {"to": addr(ALICE), "token_id": T7},
                              TxContext(sender=ADMIN))
    assert r.success
    return interp, state


def test_repaired_approve_preserves_semantics():
    repaired, _ = repair_transition(nft_module(), "Approve")
    interp, state = _approve_setup(repaired)
    # The caller supplies the correct current owner: behaves like the
    # original transition.
    r = interp.run_transition(
        state, "Approve",
        {"to": addr(BOB), "token_id": T7,
         "expected_actual_owner": addr(ALICE)},
        TxContext(sender=ALICE))
    assert r.success, r.error
    approvals = state.fields["token_approvals"].entries
    assert approvals[T7] == addr(BOB)
    index = state.fields["approvals_index"].entries
    assert addr(ALICE) in index


def test_repaired_approve_rejects_wrong_expected_value():
    repaired, _ = repair_transition(nft_module(), "Approve")
    interp, state = _approve_setup(repaired)
    r = interp.run_transition(
        state, "Approve",
        {"to": addr(BOB), "token_id": T7,
         "expected_actual_owner": addr(BOB)},  # stale/wrong owner
        TxContext(sender=ALICE))
    assert not r.success
    assert "CompareAndSwap" in r.error
    assert not state.fields["approvals_index"].entries


def test_repair_improves_largest_ge():
    module = nft_module()
    before = run_pipeline(CORPUS["NonfungibleToken"]).solver().report()
    repaired, log = repair_module(module)
    assert "Approve" in log
    from repro.core.solver import ShardingSolver
    after = ShardingSolver("NFT", analyze_module(repaired)).report()
    assert after.largest_ge_size > before.largest_ge_size


def test_repair_is_idempotent_on_clean_transitions():
    module = parse_module(CORPUS["FungibleToken"], "FT")
    repaired, changes = repair_transition(module, "Transfer")
    assert changes == []
    assert repaired is module


def test_diagnose_ud_registry_transfer_points_at_procedure():
    """UD Transfer authorises via operators[owner][_sender] with the
    owner read from state, inside the RequireControl procedure.  The
    diagnosis must surface the pattern and its location; the mechanical
    repair is transition-local, so it leaves the module unchanged and
    the developer is pointed at the procedure."""
    module = parse_module(CORPUS["UD_registry"], "UD")
    diagnoses = {d.transition: d for d in diagnose(module)}
    transfer = diagnoses["Transfer"]
    assert not transfer.shardable
    assert any("RequireControl" in b for b in transfer.repairable_binders)
    _, changes = repair_transition(module, "Transfer")
    assert changes == []
