"""Pretty-printer tests: corpus-wide parse∘print round-trips."""

import pytest

from repro.contracts import CORPUS
from repro.core.summary import analyze_module
from repro.scilla import ast
from repro.scilla.parser import parse_expression, parse_module
from repro.scilla.pretty import pp_expr, pp_module, pp_stmt
from repro.scilla.typechecker import typecheck_module


def strip_locs(node):
    """Structural fingerprint of an AST node, ignoring locations."""
    if isinstance(node, (list, tuple)):
        return tuple(strip_locs(x) for x in node)
    if hasattr(node, "__dataclass_fields__"):
        cls = type(node).__name__
        fields = []
        for name in node.__dataclass_fields__:
            if name == "loc":
                continue
            fields.append((name, strip_locs(getattr(node, name))))
        return (cls, tuple(fields))
    return node


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_roundtrip_whole_corpus(name):
    """print(parse(src)) re-parses to a structurally identical module."""
    module = parse_module(CORPUS[name], name)
    printed = pp_module(module)
    reparsed = parse_module(printed, name + "-roundtrip")
    assert strip_locs(module.contract) == strip_locs(reparsed.contract)
    if module.library:
        assert strip_locs(module.library) == strip_locs(reparsed.library)


@pytest.mark.parametrize("name", ["FungibleToken", "UD_registry",
                                  "Multisig"])
def test_roundtrip_preserves_typability(name):
    printed = pp_module(parse_module(CORPUS[name], name))
    typecheck_module(parse_module(printed))


def test_roundtrip_preserves_analysis(name="FungibleToken"):
    """The analysis result is a function of structure only."""
    original = analyze_module(parse_module(CORPUS[name], name))
    printed = pp_module(parse_module(CORPUS[name], name))
    reprinted = analyze_module(parse_module(printed))
    assert {t: str(s) for t, s in original.items()} == \
        {t: str(s) for t, s in reprinted.items()}


@pytest.mark.parametrize("source", [
    "Uint128 42",
    "Int64 -3",
    '"hello \\"world\\""',
    "let x = Uint128 1 in builtin add x x",
    "fun (x: Uint128) => fun (y: Uint128) => builtin sub x y",
    "tfun 'A => fun (x: 'A) => x",
    "match o with | Some v => v | None => Uint128 0 end",
    "Cons {Uint128} h t",
    "{ _tag : \"T\"; _recipient : r; _amount : a }",
    "@list_length Uint128",
    "Emp ByStr20 (Map ByStr20 Uint128)",
])
def test_roundtrip_expressions(source):
    expr = parse_expression(source)
    printed = pp_expr(expr)
    assert strip_locs(parse_expression(printed)) == strip_locs(expr)


def test_statement_printing_shapes():
    module = parse_module(CORPUS["FungibleToken"])
    transfer = module.contract.component("Transfer")
    text = "\n".join(pp_stmt(s) for s in transfer.body)
    assert "ThrowIfPaused" in text
    assert "MoveBalance _sender to amount" in text
    assert "send msgs" in text
