"""Interpreter tests: expression evaluation, transition execution,
rollback, gas, messages, procedures, and the prelude."""

import pytest

from repro.scilla import parse_module
from repro.scilla.errors import ExecError, GasError
from repro.scilla.interpreter import Interpreter, TxContext
from repro.scilla.parser import parse_expression
from repro.scilla import types as ty
from repro.scilla.values import (
    ADTVal, BNumVal, IntVal, MapVal, StringVal, addr, bool_val, uint,
    value_to_list, Env,
)


def eval_expr(source: str):
    module = parse_module("""
    scilla_version 0
    contract Empty (o: ByStr20)
    transition Nop ()
    end
    """)
    interp = Interpreter(module)
    return interp.eval_expr(parse_expression(source), interp.lib_env)


# -- pure evaluation ----------------------------------------------------------

def test_literal():
    assert eval_expr("Uint128 5") == uint(5)


def test_let_and_builtin():
    assert eval_expr(
        "let a = Uint128 2 in let b = Uint128 3 in builtin add a b") == \
        uint(5)


def test_function_application():
    assert eval_expr(
        "let f = fun (x: Uint128) => builtin add x x in"
        " let two = Uint128 2 in f two") == uint(4)


def test_curried_application():
    assert eval_expr(
        "let f = fun (x: Uint128) => fun (y: Uint128) =>"
        " builtin sub x y in"
        " let a = Uint128 10 in let b = Uint128 4 in f a b") == uint(6)


def test_closure_captures_environment():
    assert eval_expr(
        "let k = Uint128 7 in"
        " let f = fun (x: Uint128) => builtin add x k in"
        " let one = Uint128 1 in f one") == uint(8)


def test_match_expression_peel():
    assert eval_expr(
        "let o = let v = Uint128 3 in Some {Uint128} v in"
        " match o with | Some x => x | None => Uint128 0 end") == uint(3)


def test_match_first_clause_wins():
    assert eval_expr(
        "let b = True in match b with | True => Uint128 1"
        " | _ => Uint128 2 end") == uint(1)


def test_type_function_instantiation():
    assert eval_expr(
        "let id = tfun 'A => fun (x: 'A) => x in"
        " let f = @id Uint128 in let v = Uint128 9 in f v") == uint(9)


def test_constructor_evaluation():
    v = eval_expr("let x = Uint128 1 in Some {Uint128} x")
    assert isinstance(v, ADTVal)
    assert v.constructor == "Some"
    assert v.args == (uint(1),)


def test_prelude_bool_helpers():
    assert eval_expr("let a = True in let b = False in andb a b") == \
        bool_val(False)
    assert eval_expr("let a = True in let b = False in orb a b") == \
        bool_val(True)
    assert eval_expr("let a = False in negb a") == bool_val(True)


def test_native_list_fold():
    assert eval_expr(
        "let nil = Nil {Uint128} in"
        " let one = Uint128 1 in let two = Uint128 2 in"
        " let l1 = Cons {Uint128} two nil in"
        " let l2 = Cons {Uint128} one l1 in"
        " let f = fun (acc: Uint128) => fun (x: Uint128) =>"
        "   builtin add acc x in"
        " let folder = @list_foldl Uint128 Uint128 in"
        " let zero = Uint128 0 in"
        " folder f zero l2") == uint(3)


def test_native_list_map_and_length():
    result = eval_expr(
        "let nil = Nil {Uint128} in"
        " let one = Uint128 1 in"
        " let l = Cons {Uint128} one nil in"
        " let f = fun (x: Uint128) => builtin add x x in"
        " let mapper = @list_map Uint128 Uint128 in"
        " mapper f l")
    assert value_to_list(result) == [uint(2)]


# -- transition execution ----------------------------------------------------------

COUNTER = """
scilla_version 0

library Counter

let one = Uint128 1

contract Counter (owner: ByStr20)

field count : Uint128 = Uint128 0
field log : Map ByStr20 Uint128 = Emp ByStr20 Uint128

transition Bump ()
  c <- count;
  new_c = builtin add c one;
  count := new_c;
  log[_sender] := new_c
end

transition BumpThenFail ()
  c <- count;
  new_c = builtin add c one;
  count := new_c;
  throw
end

transition PayMe ()
  accept;
  msg = { _tag : "Thanks"; _recipient : _sender; _amount : Uint128 0 };
  msgs = one_msg msg;
  send msgs;
  e = { _eventname : "Paid"; amount : _amount };
  event e
end
"""


@pytest.fixture
def counter():
    module = parse_module(COUNTER)
    interp = Interpreter(module)
    state = interp.deploy("0x01", {"owner": addr("0xaa")})
    return interp, state


def test_deploy_initialises_fields(counter):
    _, state = counter
    assert state.fields["count"] == uint(0)
    assert isinstance(state.fields["log"], MapVal)


def test_deploy_rejects_wrong_params():
    module = parse_module(COUNTER)
    interp = Interpreter(module)
    with pytest.raises(ExecError):
        interp.deploy("0x01", {"not_owner": addr("0xaa")})


def test_transition_mutates_state(counter):
    interp, state = counter
    result = interp.run_transition(state, "Bump", {},
                                   TxContext(sender="0xbb"))
    assert result.success
    assert state.fields["count"] == uint(1)
    assert len(state.fields["log"].entries) == 1


def test_failed_transition_rolls_back(counter):
    interp, state = counter
    result = interp.run_transition(state, "BumpThenFail", {},
                                   TxContext(sender="0xbb"))
    assert not result.success
    assert "thrown" in result.error
    assert state.fields["count"] == uint(0)


def test_unknown_transition_params_rejected(counter):
    interp, state = counter
    with pytest.raises(ExecError):
        interp.run_transition(state, "Bump", {"extra": uint(1)},
                              TxContext(sender="0xbb"))


def test_gas_metering_and_exhaustion(counter):
    interp, state = counter
    ok = interp.run_transition(state, "Bump", {}, TxContext(sender="0xbb"))
    assert ok.gas_used > 0
    result = interp.run_transition(state, "Bump", {},
                                   TxContext(sender="0xbb"), gas_limit=3)
    assert not result.success
    assert "gas" in result.error
    assert state.fields["count"] == uint(1)  # rolled back


def test_accept_and_messages(counter):
    interp, state = counter
    result = interp.run_transition(state, "PayMe", {},
                                   TxContext(sender="0xbb", amount=500))
    assert result.success
    assert result.accepted == 500
    assert state.balance == 500
    assert len(result.messages) == 1
    msg = result.messages[0]
    assert msg.tag == "Thanks"
    assert msg.amount == 0
    assert len(result.events) == 1


def test_no_accept_means_no_balance_change(counter):
    interp, state = counter
    interp.run_transition(state, "Bump", {},
                          TxContext(sender="0xbb", amount=500))
    assert state.balance == 0


def test_write_log_records_touched_keys(counter):
    interp, state = counter
    result = interp.run_transition(state, "Bump", {},
                                   TxContext(sender="0xbb"))
    keys = set(result.write_log.writes)
    assert ("count", ()) in keys
    assert any(k[0] == "log" and len(k[1]) == 1 for k in keys)


def test_sender_visible_as_implicit_param(counter):
    interp, state = counter
    interp.run_transition(state, "Bump", {}, TxContext(sender="0xbb"))
    (entry_key,) = state.fields["log"].entries
    assert entry_key.hex.endswith("bb")


PROC = """
scilla_version 0

library P

contract P (o: ByStr20)

field total : Uint128 = Uint128 0

procedure AddTwice (x: Uint128)
  t <- total;
  a = builtin add t x;
  b = builtin add a x;
  total := b
end

transition Go (v: Uint128)
  AddTwice v;
  AddTwice v
end
"""


def test_procedure_calls_share_state():
    module = parse_module(PROC)
    interp = Interpreter(module)
    state = interp.deploy("0x01", {"o": addr("0xaa")})
    result = interp.run_transition(state, "Go", {"v": uint(5)},
                                   TxContext(sender="0xbb"))
    assert result.success
    assert state.fields["total"] == uint(20)


def test_blocknumber_visible():
    src = """
    scilla_version 0
    contract B (o: ByStr20)
    field last : BNum = BNum 0
    transition Record ()
      blk <- & BLOCKNUMBER;
      last := blk
    end
    """
    module = parse_module(src)
    interp = Interpreter(module)
    state = interp.deploy("0x01", {"o": addr("0xaa")})
    interp.run_transition(state, "Record", {},
                          TxContext(sender="0xbb", block_number=42))
    assert state.fields["last"] == BNumVal(42)


def test_nested_map_create_and_rollback():
    src = """
    scilla_version 0
    contract N (o: ByStr20)
    field m : Map ByStr20 (Map ByStr20 Uint128) =
      Emp ByStr20 (Map ByStr20 Uint128)
    transition Put (a: ByStr20, b: ByStr20, v: Uint128)
      m[a][b] := v
    end
    transition PutThenFail (a: ByStr20, b: ByStr20, v: Uint128)
      m[a][b] := v;
      throw
    end
    """
    module = parse_module(src)
    interp = Interpreter(module)
    state = interp.deploy("0x01", {"o": addr("0xaa")})
    args = {"a": addr("0x01"), "b": addr("0x02"), "v": uint(7)}
    # Failure: intermediate map must vanish on rollback.
    result = interp.run_transition(state, "PutThenFail", dict(args),
                                   TxContext(sender="0xbb"))
    assert not result.success
    assert not state.fields["m"].entries
    # Success: nested entry created.
    result = interp.run_transition(state, "Put", dict(args),
                                   TxContext(sender="0xbb"))
    assert result.success
    assert state.fields["m"].entries[addr("0x01")].entries[addr("0x02")] \
        == uint(7)


def test_nested_constructor_patterns():
    """Patterns like ``Pair (Some x) y`` destructure in one match."""
    result = eval_expr(
        "let v = Uint128 5 in"
        " let o = Some {Uint128} v in"
        " let s = \"tag\" in"
        " let p = Pair {(Option Uint128)} {String} o s in"
        " match p with"
        " | Pair (Some x) label => x"
        " | Pair None label => Uint128 0"
        " end")
    assert result == uint(5)


def test_nested_pattern_falls_through_to_none_case():
    result = eval_expr(
        "let o = None {Uint128} in"
        " let s = \"tag\" in"
        " let p = Pair {(Option Uint128)} {String} o s in"
        " match p with"
        " | Pair (Some x) label => x"
        " | Pair None label => Uint128 7"
        " end")
    assert result == uint(7)


def test_wildcard_inside_constructor_pattern():
    result = eval_expr(
        "let v = Uint128 3 in"
        " let o = Some {Uint128} v in"
        " match o with"
        " | Some _ => Uint128 1"
        " | None => Uint128 0"
        " end")
    assert result == uint(1)


def test_list_pattern_destructuring():
    result = eval_expr(
        "let nil = Nil {Uint128} in"
        " let a = Uint128 10 in"
        " let b = Uint128 20 in"
        " let l1 = Cons {Uint128} b nil in"
        " let l2 = Cons {Uint128} a l1 in"
        " match l2 with"
        " | Cons head rest => head"
        " | Nil => Uint128 0"
        " end")
    assert result == uint(10)
