"""Differential oracles for service mode.

1. **Committed-replay equivalence**: a saturated ServiceLoop under
   FLOOD bursts, consumer stalls, gas deferrals, and load shedding
   commits a transaction stream whose serial, fault-free, unlimited-gas
   replay produces byte-identical contract state.  Ownership +
   commutativity analysis is exactly the licence for this claim — the
   overload machinery may reorder, defer, shed, and batch arbitrarily,
   but it must never change what the committed transactions compute.

2. **Crash + resume loses no admitted transaction**: admissions are
   WAL-journaled (``svc-admit``) before the epoch that drains them, so
   killing the process mid-service and resuming restores exactly the
   pending set, and finishing the run converges to the same state as a
   never-crashed twin.

3. **Overload soak**: at ~2x sustainable offered load the pool's
   occupancy stays bounded by its capacity, every submission still
   ends in exactly one terminal state, and the committed replay still
   matches.
"""

import os
import resource

import pytest

from repro.chain.consensus import CostModel
from repro.chain.mempool import MempoolConfig
from repro.chain.network import Network
from repro.chain.recovery import network_fingerprint
from repro.chain.service import ServiceConfig, ServiceLoop
from repro.eval.service import replay_committed, run_service
from repro.workloads import FTTransfer

TIGHT_COST = CostModel(gas_per_second=25_000.0, consensus_base_s=2.0,
                       consensus_per_node2_s=0.01,
                       shard_gas_limit=300, ds_gas_limit=300)


class TestCommittedReplay:
    def test_flood_and_stall_run_replays_byte_identical(self):
        run = run_service(population=2000, ticks=8, txns_per_tick=100,
                          capacity=350, shards=4, seed=11,
                          flood_rate=0.4, stall_rate=0.25,
                          fault_seed=3, record_committed=True)
        assert run.report.partition_ok
        assert run.report.stalled_ticks > 0
        assert run.report.committed > 0
        assert network_fingerprint(run.net) == replay_committed(run)

    def test_deferral_and_shed_run_replays_byte_identical(self):
        # Tight gas limits force heavy deferral; the small capacity
        # makes the re-admissions overflow, so the shed path runs too.
        run = run_service(population=150, ticks=8, txns_per_tick=60,
                          capacity=48, shards=2, seed=4,
                          cost_model=TIGHT_COST, max_deferrals=6,
                          record_committed=True, drain_ticks=96)
        r = run.report
        assert r.partition_ok
        assert r.readmitted > 0
        assert r.shed + r.dead_lettered > 0
        assert network_fingerprint(run.net) == replay_committed(run)

    def test_replay_requires_recording(self):
        run = run_service(population=100, ticks=2, txns_per_tick=10,
                          capacity=60, shards=2)
        with pytest.raises(ValueError, match="record_committed"):
            replay_committed(run)


def _service_net(data_dir=None, **kwargs):
    kwargs.setdefault("use_signatures", True)
    kwargs.setdefault("carry_backlog", False)
    # A huge snapshot interval keeps resume on the pure WAL-replay
    # path, which is the machinery under test here; snapshot-embedded
    # pools are covered by test_store's round-trip.
    return Network(2, data_dir=data_dir, snapshot_every=1000, **kwargs)


class TestCrashResume:
    def test_resume_restores_exact_pending_set_and_converges(self, tmp_path):
        # FTTransfer pre-funds its users in setup, so committed state
        # is a pure sum of transfers — insensitive to how the crash
        # re-partitions the epochs.
        seed = 5

        # Uninterrupted twin.
        twin_wl = FTTransfer(n_users=12, txns_per_epoch=20, seed=seed)
        twin = _service_net()
        twin_wl.setup(twin)
        twin_loop = ServiceLoop(
            twin, config=ServiceConfig(batch_max=8),
            pool_config=MempoolConfig(capacity=256, per_sender=128))
        twin_batches = [twin_wl.transactions(t) for t in (1, 2, 3)]
        for batch in twin_batches[:2]:
            for tx in batch:
                twin_loop.submit(tx)
            twin_loop.tick()
        for tx in twin_batches[2]:
            twin_loop.submit(tx)
        twin_loop.drain_remaining(max_ticks=64)

        # Crashed run: same traffic, killed after two ticks.
        wl = FTTransfer(n_users=12, txns_per_epoch=20, seed=seed)
        data_dir = str(tmp_path / "svc")
        net1 = _service_net(data_dir=data_dir)
        wl.setup(net1)
        loop1 = ServiceLoop(
            net1, config=ServiceConfig(batch_max=8),
            pool_config=MempoolConfig(capacity=256, per_sender=128))
        batches = [wl.transactions(t) for t in (1, 2, 3)]
        for batch in batches[:2]:
            for tx in batch:
                assert loop1.submit(tx).admitted
            loop1.tick()
        loop1.sync()
        pending_at_crash = [(e.tx.sender, e.tx.nonce)
                            for e in loop1.mempool.pending_entries()]
        assert pending_at_crash      # the crash interrupts real work
        del loop1, net1              # vanish without close()

        net2 = Network.resume(data_dir)
        assert net2.restored_mempool   # WAL recovered the pending set
        loop2 = ServiceLoop(
            net2, config=ServiceConfig(batch_max=8),
            pool_config=MempoolConfig(capacity=256, per_sender=128))
        restored = [(e.tx.sender, e.tx.nonce)
                    for e in loop2.mempool.pending_entries()]
        assert sorted(restored) == sorted(pending_at_crash)

        # Finish the interrupted life: same third batch, drain, close.
        for tx in batches[2]:
            receipt = loop2.submit(tx)
            assert receipt.admitted, receipt
        loop2.drain_remaining(max_ticks=64)
        pool = loop2.mempool
        assert pool.occupancy == 0 and not pool.inflight
        assert pool.accounted() == pool.counters["submitted"]
        assert network_fingerprint(net2) == network_fingerprint(twin)
        net2.close()

    def test_unsynced_admissions_ride_the_next_epoch_barrier(self, tmp_path):
        # No explicit sync(): admissions buffered at tick time are
        # journaled before the epoch record, whose barrier makes both
        # durable together.
        data_dir = str(tmp_path / "svc2")
        wl = FTTransfer(n_users=8, txns_per_epoch=12, seed=9)
        net1 = _service_net(data_dir=data_dir)
        wl.setup(net1)
        loop1 = ServiceLoop(
            net1, config=ServiceConfig(batch_max=6),
            pool_config=MempoolConfig(capacity=64, per_sender=64))
        for tx in wl.transactions(1):
            loop1.submit(tx)
        loop1.tick()        # drains 6; journals all 12 admissions
        pending = [(e.tx.sender, e.tx.nonce)
                   for e in loop1.mempool.pending_entries()]
        assert len(pending) == 6
        del loop1, net1

        net2 = Network.resume(data_dir)
        loop2 = ServiceLoop(net2)
        restored = [(e.tx.sender, e.tx.nonce)
                    for e in loop2.mempool.pending_entries()]
        assert sorted(restored) == sorted(pending)
        net2.close()


class TestOverloadSoak:
    def test_2x_overload_stays_bounded_and_exact(self):
        # The FIG14 cost model sustains on the order of 200 commits
        # per tick at 2 shards; offer ~2x that and cap the pool well
        # below the backlog the run accumulates.
        run = run_service(population=50_000, ticks=10,
                          txns_per_tick=400, capacity=300, shards=2,
                          seed=13, record_committed=True,
                          drain_ticks=96)
        r = run.report
        assert r.partition_ok
        assert r.max_occupancy <= 300            # pool memory bounded
        assert r.backpressured > 0               # the door pushed back
        assert r.committed > 0
        # The client's buffer is bounded too: everything offered is
        # accounted for — submitted, still buffered, or shed
        # client-side.  (Retries make submitted >= unique offered.)
        assert r.client_dropped + r.unsubmitted + r.submitted >= \
            r.generated
        assert network_fingerprint(run.net) == replay_committed(run)

        ceiling_mb = os.environ.get("REPRO_SOAK_RSS_MB")
        if ceiling_mb:
            rss_mb = resource.getrusage(
                resource.RUSAGE_SELF).ru_maxrss / 1024
            assert rss_mb < float(ceiling_mb), \
                f"soak RSS {rss_mb:.0f} MiB over ceiling {ceiling_mb}"
