"""Differential oracle: footprint-sliced lane payloads == full
snapshots.

``Network(slice_payloads=True)`` ships each parallel lane only the
state components the lane's dispatched footprints name (plus stubs for
untargeted contracts); ``False`` ships full CoW forks.  The two must
be *observationally identical* — same state fingerprints, stats,
receipts, balances — for every workload of the throughput evaluation
under every executor.  Any divergence means the slicer dropped a
component some transition actually touches (and the worker-side escape
check missed it).

The activation guard at the bottom protects the oracle from vacuity:
sliced payloads must actually be built (not silently fall back to full
states or to the serial loop).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.chain.network import EXECUTOR_STRATEGIES, Network
from repro.chain.recovery import network_fingerprint
from repro.obs.metrics import MetricsRegistry
from repro.workloads.generators import ALL_WORKLOADS

N_SHARDS = 4
EPOCHS = 3
PARALLEL = tuple(s for s in EXECUTOR_STRATEGIES if s != "serial")


def _workload(cls):
    return cls(n_users=16, txns_per_epoch=24, seed=11)


def _receipt_key(receipt):
    tx = receipt.tx
    return (tx.sender, tx.to, tx.nonce, tx.amount, tx.transition, tx.args,
            receipt.success, receipt.gas_used, receipt.shard, receipt.error,
            tuple(repr(e) for e in receipt.events))


def _observe(workload_cls, executor: str, sliced: bool):
    # resident=False: this file tests the per-epoch payload builder;
    # a resident install ships deliberately-unsliced payloads, which
    # would pollute the lane.payload.* accounting below.
    net = Network(N_SHARDS, use_signatures=True, executor=executor,
                  slice_payloads=sliced, resident=False)
    workload = _workload(workload_cls)
    workload.setup(net)
    blocks = [net.process_epoch(workload.transactions(epoch))
              for epoch in range(EPOCHS)]
    observation = {
        "fingerprint": network_fingerprint(net),
        "stats": [dataclasses.asdict(b.stats) for b in blocks],
        "receipts": [[_receipt_key(r) for r in b.all_receipts]
                     for b in blocks],
        "merged": [b.merged_locations for b in blocks],
        "balances": {a: (acc.balance, dict(sorted(acc.shard_portions.items())))
                     for a, acc in sorted(net.accounts.items())},
    }
    return observation, net


@pytest.mark.parametrize("executor", EXECUTOR_STRATEGIES)
@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS,
                         ids=[c.__name__ for c in ALL_WORKLOADS])
def test_sliced_matches_full_snapshot(workload_cls, executor):
    full, _ = _observe(workload_cls, executor, sliced=False)
    sliced, net = _observe(workload_cls, executor, sliced=True)
    assert sliced == full
    # No footprint escape forced a silent serial redo.
    assert net.executor_fallbacks == 0
    assert net.executor_fallback_details == []


@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS,
                         ids=[c.__name__ for c in ALL_WORKLOADS])
def test_slicing_actually_activates(workload_cls):
    """Vacuity guard: every workload builds sliced or stub payloads
    (never a full state) once its parallel lanes run."""
    registry = MetricsRegistry()
    net = Network(N_SHARDS, use_signatures=True, executor="thread",
                  slice_payloads=True, metrics=registry, resident=False)
    workload = _workload(workload_cls)
    workload.setup(net)
    for epoch in range(EPOCHS):
        net.process_epoch(workload.transactions(epoch))
    counters = registry.snapshot()["counters"]
    sliced = counters["lane.payload.states_sliced"]["value"]
    full = counters["lane.payload.states_full"]["value"]
    assert sliced > 0
    assert full == 0
    assert net.executor_fallback_details == []
