"""Property tests for the mempool (Hypothesis).

The safety arguments the service mode leans on, under *arbitrary*
interleavings of submissions, drains, outcome resolution, deferral
re-admission, and shedding:

* **Conservation / exactly-one-terminal**: every submitted transaction
  is, at every instant, in exactly one place — a terminal counter, the
  pending queues, or the inflight set — and the counters partition
  ``submitted`` exactly.  No transaction is ever lost or counted twice.
* **Per-sender nonce order**: each sender's pending queue is strictly
  ascending and contiguous in nonce, and drains preserve that order.
* **Capacity**: after settlement (``shed_to_capacity``) occupancy
  never exceeds the configured cap, and the shed choice is a function
  of pool state alone (re-running the same op sequence sheds the same
  transactions).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.chain.mempool import (
    Mempool, MempoolConfig, TerminalKind,
)
from repro.chain.transaction import Transaction

CONTRACT = "0x" + "c0" * 20
SENDERS = ["s0", "s1", "s2", "s3"]

# One op: (kind, sender index, offset/extra, gas price)
ops = st.lists(
    st.tuples(
        st.sampled_from(["submit", "submit_gap", "submit_dup",
                         "drain", "commit", "fail", "defer",
                         "drop_leftovers", "shed", "backpressure"]),
        st.integers(min_value=0, max_value=len(SENDERS) - 1),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=5),
    ),
    min_size=1, max_size=60,
)

configs = st.builds(
    MempoolConfig,
    capacity=st.integers(min_value=2, max_value=12),
    per_sender=st.integers(min_value=1, max_value=6),
    high_water=st.just(1.0),   # hard-cap focus; hysteresis is unit-tested
    low_water=st.just(0.5),
)


class Driver:
    """Replays one op sequence against a pool, tracking every tx id."""

    def __init__(self, config: MempoolConfig):
        self.pool = Mempool(config)
        self.admitted_ids: set[int] = set()
        self.terminal_ids: set[int] = set()
        self.drained: list = []     # inflight, in drain order

    def step(self, op) -> None:
        kind, s, extra, price = op
        pool = self.pool
        sender = SENDERS[s]
        if kind.startswith("submit"):
            floor = pool.nonce_floor.get(sender, 0)
            nonce = floor + 1
            if kind == "submit_gap":
                nonce = floor + 1 + extra
            elif kind == "submit_dup":
                nonce = max(floor - extra, 0)
            tx = Transaction(sender=sender, to=CONTRACT, nonce=nonce,
                             gas_price=price)
            before = {e.tx.tx_id for q in pool.queues.values()
                      for e in q}
            receipt = pool.submit(tx)
            if receipt.admitted:
                self.admitted_ids.add(tx.tx_id)
            # Priority admission may have shed an incumbent.
            after = {e.tx.tx_id for q in pool.queues.values()
                     for e in q}
            self.terminal_ids |= before - after - {tx.tx_id}
        elif kind == "drain":
            self.drained.extend(pool.drain(extra))
        elif kind in ("commit", "fail"):
            if self.drained:
                tx = self.drained.pop(0)
                outcome = (TerminalKind.COMMITTED if kind == "commit"
                           else TerminalKind.FAILED)
                if pool.resolve(tx.tx_id, outcome) is not None:
                    self.terminal_ids.add(tx.tx_id)
        elif kind == "defer":
            if self.drained:
                tx = self.drained.pop(0)
                entry = pool.inflight.get(tx.tx_id)
                if entry is None:
                    return
                head = pool.queues.get(tx.sender)
                if head and head[0].tx.nonce < tx.nonce:
                    return   # disorder readmit is unit-tested to raise
                pool.inflight.pop(tx.tx_id)
                pool.readmit(tx, entry.deferrals + 1)
        elif kind == "drop_leftovers":
            for entry in pool.resolve_leftover_inflight():
                self.terminal_ids.add(entry.tx.tx_id)
            self.drained.clear()
        elif kind == "shed":
            for entry in pool.shed_to_capacity():
                self.terminal_ids.add(entry.tx.tx_id)
        elif kind == "backpressure":
            pool.update_backpressure()

    def settle(self) -> None:
        for entry in self.pool.shed_to_capacity():
            self.terminal_ids.add(entry.tx.tx_id)

    # -- invariants --------------------------------------------------------

    def check_partition(self) -> None:
        pool = self.pool
        assert pool.accounted() == pool.counters["submitted"]
        assert pool.count == sum(len(q) for q in pool.queues.values())

    def check_no_tx_lost(self) -> None:
        pool = self.pool
        live = {e.tx.tx_id for q in pool.queues.values() for e in q}
        inflight = set(pool.inflight)
        # Exactly one place for every admitted transaction...
        assert live | inflight | self.terminal_ids >= self.admitted_ids
        # ...and never two at once.
        assert not (live & inflight)
        assert not (live & self.terminal_ids)
        assert not (inflight & self.terminal_ids)

    def check_nonce_order(self) -> None:
        for sender, queue in self.pool.queues.items():
            nonces = [e.tx.nonce for e in queue]
            assert nonces == list(range(nonces[0],
                                        nonces[0] + len(nonces))), \
                f"{sender}: non-contiguous pending nonces {nonces}"


@settings(max_examples=80, deadline=None)
@given(configs, ops)
def test_invariants_hold_under_arbitrary_interleavings(config, sequence):
    driver = Driver(config)
    for op in sequence:
        driver.step(op)
        driver.check_partition()
        driver.check_nonce_order()
        driver.check_no_tx_lost()
    driver.settle()
    assert driver.pool.occupancy <= config.capacity
    driver.check_partition()
    driver.check_no_tx_lost()


@settings(max_examples=40, deadline=None)
@given(configs, ops)
def test_shedding_is_deterministic(config, sequence):
    def run():
        driver = Driver(config)
        for op in sequence:
            driver.step(op)
        driver.settle()
        return (sorted(driver.terminal_ids),
                dict(driver.pool.counters),
                [(e.tx.sender, e.tx.nonce)
                 for e in driver.pool.pending_entries()])

    # tx_ids differ between runs (global counter), so compare shapes:
    # counters and the exact pending population must be identical.
    first, second = run(), run()
    assert first[1] == second[1]
    assert first[2] == second[2]


@settings(max_examples=60, deadline=None)
@given(ops)
def test_drain_order_is_per_sender_fifo(sequence):
    driver = Driver(MempoolConfig(capacity=64, per_sender=16,
                                  high_water=1.0, low_water=0.5))
    for op in sequence:
        driver.step(op)
    drained = driver.pool.drain(64)
    seen: dict[str, int] = {}
    for tx in drained:
        last = seen.get(tx.sender)
        assert last is None or tx.nonce > last
        seen[tx.sender] = tx.nonce
