"""Cross-contract call chains (DS committee only, atomic).

Zilliqa executes a transaction's full chain of contract calls
atomically; CoSplit routes any transaction that might call another
contract to the DS committee (the single-contract check of Sec. 4.3).
These tests cover the happy path, depth limits, fund flow, and the
all-or-nothing rollback."""

import pytest

from repro.chain import Network, call
from repro.chain.network import MAX_CALL_DEPTH
from repro.scilla.values import addr, uint

USER = "0x" + "11" * 20
RECEIVER_ADDR = "0x" + "aa" * 20
FORWARDER_ADDR = "0x" + "bb" * 20

RECEIVER = """
scilla_version 0
library Receiver
contract Receiver (owner: ByStr20)
field received : Uint128 = Uint128 0
field calls : Uint128 = Uint128 0

transition Ping (from: ByStr20)
  accept;
  r <- received;
  nr = builtin add r _amount;
  received := nr;
  c <- calls;
  one = Uint128 1;
  nc = builtin add c one;
  calls := nc
end

transition Reject (from: ByStr20)
  e = { _exception : "Nope" };
  throw e
end
"""

FORWARDER = """
scilla_version 0
library Forwarder
contract Forwarder (target: ByStr20)
field forwarded : Uint128 = Uint128 0

transition Fwd ()
  accept;
  f <- forwarded;
  nf = builtin add f _amount;
  forwarded := nf;
  msg = { _tag : "Ping"; _recipient : target; _amount : _amount;
          from : _sender };
  msgs = one_msg msg;
  send msgs
end

transition FwdToRejector ()
  accept;
  f <- forwarded;
  nf = builtin add f _amount;
  forwarded := nf;
  msg = { _tag : "Reject"; _recipient : target; _amount : Uint128 0;
          from : _sender };
  msgs = one_msg msg;
  send msgs
end

transition FwdLoop ()
  msg = { _tag : "FwdLoop"; _recipient : _this_address;
          _amount : Uint128 0 };
  msgs = one_msg msg;
  send msgs
end
"""


@pytest.fixture
def net():
    network = Network(3)
    network.create_account(USER)
    network.deploy(RECEIVER, RECEIVER_ADDR, {"owner": addr(USER)})
    network.deploy(FORWARDER, FORWARDER_ADDR,
                   {"target": addr(RECEIVER_ADDR)})
    return network


def receiver(net):
    return net.contracts["0x" + "aa" * 20]


def forwarder(net):
    return net.contracts["0x" + "bb" * 20]


def test_chain_moves_funds_through_two_contracts(net):
    block = net.process_epoch(
        [call(USER, FORWARDER_ADDR, "Fwd", {}, nonce=1, amount=500)],
        unlimited=True)
    (r,) = block.all_receipts
    assert r.success
    assert r.shard == -1  # DS committee
    assert receiver(net).state.fields["received"] == uint(500)
    assert receiver(net).state.balance == 500
    assert forwarder(net).state.balance == 0  # passed everything on


def test_failed_inner_call_rolls_back_whole_chain(net):
    before_fwd = forwarder(net).state.fields["forwarded"]
    block = net.process_epoch(
        [call(USER, FORWARDER_ADDR, "FwdToRejector", {}, nonce=1,
              amount=300)],
        unlimited=True)
    (r,) = block.all_receipts
    assert not r.success
    assert "Nope" in r.error
    # The forwarder's own write and accepted funds are undone too.
    assert forwarder(net).state.fields["forwarded"] == before_fwd
    assert forwarder(net).state.balance == 0
    assert receiver(net).state.fields["calls"] == uint(0)


def test_failed_chain_still_charges_gas(net):
    before = net._account(USER).balance
    block = net.process_epoch(
        [call(USER, FORWARDER_ADDR, "FwdToRejector", {}, nonce=1,
              amount=300)],
        unlimited=True)
    (r,) = block.all_receipts
    assert not r.success
    after = net._account(USER).balance
    assert after == before - r.gas_used  # gas paid, amount returned


def test_self_call_loop_hits_depth_limit(net):
    block = net.process_epoch(
        [call(USER, FORWARDER_ADDR, "FwdLoop", {}, nonce=1)],
        unlimited=True)
    (r,) = block.all_receipts
    assert not r.success
    assert "depth" in r.error
    assert MAX_CALL_DEPTH >= 2


def test_chain_gas_accumulates_across_calls(net):
    single = net.process_epoch(
        [call(USER, RECEIVER_ADDR, "Ping", {"from": addr(USER)},
              nonce=1, amount=10)],
        unlimited=True).all_receipts[0]
    chained = net.process_epoch(
        [call(USER, FORWARDER_ADDR, "Fwd", {}, nonce=2, amount=10)],
        unlimited=True).all_receipts[0]
    assert chained.gas_used > single.gas_used


def test_contract_call_from_shard_lane_fails_cleanly():
    """If a transaction that sends to a contract somehow ends up in a
    shard (mis-dispatch), it must fail rather than silently drop the
    inner call."""
    net = Network(3)
    net.create_account(USER)
    net.deploy(RECEIVER, RECEIVER_ADDR, {"owner": addr(USER)})
    net.deploy(FORWARDER, FORWARDER_ADDR, {"target": addr(RECEIVER_ADDR)})
    tx = call(USER, FORWARDER_ADDR, "Fwd", {}, nonce=1, amount=100)
    mb, _, _, _ = net._run_lane(0, [tx], gas_limit=10**9)
    (r,) = mb.receipts
    assert not r.success
    assert "DS committee" in r.error
