"""Shared test utilities (imported as ``from .helpers import ...``)."""

import random


def mutate_one_char(source: str, seed: int) -> str:
    """Deterministically replace exactly one character of ``source``.

    Used by the parser fuzz tests (a one-character mutation must never
    crash the parser) and by the summary-cache tests (it must change
    the cache's content address).
    """
    rng = random.Random(seed)
    i = rng.randrange(len(source))
    alphabet = "abcxyzXYZ01239_;()="
    replacement = rng.choice([c for c in alphabet if c != source[i]])
    return source[:i] + replacement + source[i + 1:]
