"""Unit tests for the observability layer (``repro.obs``)."""

import json

import pytest

from repro.obs import (
    GAS_BUCKETS, NS_BUCKETS, NULL_REGISTRY, NULL_TRACER, MetricsRegistry,
    NullRegistry, NullTracer, Tracer,
)


# --------------------------------------------------------------------------
# Instruments.
# --------------------------------------------------------------------------

class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")
        with pytest.raises(ValueError):
            reg.histogram("a", (1, 2))


class TestGauge:
    def test_set_flag(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        assert not g.set_
        g.set(7)
        assert g.set_ and g.value == 7

    def test_unset_gauge_does_not_transfer_on_merge(self):
        src, dst = MetricsRegistry(), MetricsRegistry()
        src.gauge("g")                       # registered, never set
        dst.gauge("g").set(42)
        dst.merge_snapshot(src.snapshot())
        assert dst.gauge("g").value == 42    # not stomped by the 0

    def test_set_gauge_transfers(self):
        src, dst = MetricsRegistry(), MetricsRegistry()
        src.gauge("g").set(3)
        dst.gauge("g").set(42)
        dst.merge_snapshot(src.snapshot())
        assert dst.gauge("g").value == 3


class TestHistogram:
    def test_bucketing(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", (10, 100))
        for v in (1, 10, 11, 1000):
            h.observe(v)
        # <=10 | <=100 | +Inf
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == 1022

    def test_unsorted_bounds_raise(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("h", (100, 10))
        with pytest.raises(ValueError):
            reg.histogram("h2", ())

    def test_bounds_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1, 2))
        with pytest.raises(ValueError):
            reg.histogram("h", (1, 2, 3))

    def test_merge_mismatched_bounds_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", (1, 2)).observe(1)
        b.histogram("h", (5, 6)).observe(5)
        with pytest.raises(ValueError):
            a.merge_snapshot(b.snapshot())

    def test_default_buckets_sorted(self):
        assert list(NS_BUCKETS) == sorted(NS_BUCKETS)
        assert list(GAS_BUCKETS) == sorted(GAS_BUCKETS)


# --------------------------------------------------------------------------
# Registry snapshots, merging, reset.
# --------------------------------------------------------------------------

class TestRegistry:
    def _filled(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("det").inc(3)
        reg.counter("wall", deterministic=False).inc(9)
        reg.gauge("size").set(2)
        reg.histogram("hist", (10, 100)).observe(50)
        return reg

    def test_snapshot_round_trip(self):
        reg = self._filled()
        snap = reg.snapshot()
        clone = MetricsRegistry.from_snapshot(
            json.loads(json.dumps(snap)))
        assert clone.snapshot() == snap

    def test_deterministic_snapshot_filters(self):
        snap = self._filled().deterministic_snapshot()
        assert "det" in snap["counters"]
        assert "wall" not in snap["counters"]

    def test_snapshot_is_sorted_and_json_stable(self):
        a = MetricsRegistry()
        a.counter("z").inc()
        a.counter("a").inc()
        b = MetricsRegistry()
        b.counter("a").inc()
        b.counter("z").inc()
        assert (json.dumps(a.snapshot(), sort_keys=True)
                == json.dumps(b.snapshot(), sort_keys=True))

    def test_merge_adds(self):
        a, b = self._filled(), self._filled()
        a.merge_snapshot(b.snapshot())
        assert a.counter("det").value == 6
        assert a.histogram("hist", (10, 100)).count == 2

    def test_reset_to_zeroes_missing_instruments(self):
        reg = self._filled()
        checkpoint = reg.snapshot()
        reg.counter("det").inc(100)
        reg.counter("new_since_checkpoint").inc(5)
        reg.reset_to(checkpoint)
        assert reg.counter("det").value == 3
        assert reg.counter("new_since_checkpoint").value == 0

    def test_to_text_mentions_every_instrument(self):
        text = self._filled().to_text()
        for name in ("det", "wall", "size", "hist"):
            assert name in text


class TestPrometheus:
    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("net.tx.committed").inc(7)
        reg.gauge("net.backlog.size").set(2)
        h = reg.histogram("lane.gas", (10, 100))
        h.observe(5)
        h.observe(50)
        h.observe(5000)
        out = reg.to_prometheus()
        assert "# TYPE repro_net_tx_committed counter" in out
        assert "repro_net_tx_committed 7" in out
        assert "repro_net_backlog_size 2" in out
        # Bucket counts are cumulative, with the +Inf total.
        assert 'repro_lane_gas_bucket{le="10"} 1' in out
        assert 'repro_lane_gas_bucket{le="100"} 2' in out
        assert 'repro_lane_gas_bucket{le="+Inf"} 3' in out
        assert "repro_lane_gas_count 3" in out
        assert out.endswith("\n")


# --------------------------------------------------------------------------
# Null implementations.
# --------------------------------------------------------------------------

class TestNullObjects:
    def test_null_registry_hands_out_shared_noop(self):
        c = NULL_REGISTRY.counter("x")
        assert c is NULL_REGISTRY.histogram("y", (1, 2))
        c.inc()
        c.observe(3)
        c.set(4)
        assert NULL_REGISTRY.snapshot() == \
            {"counters": {}, "gauges": {}, "histograms": {}}
        assert not NULL_REGISTRY.enabled
        assert isinstance(NULL_REGISTRY, NullRegistry)

    def test_null_tracer_span_is_shared_noop(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        with NULL_TRACER.span("a") as span:
            assert span is None
        assert NULL_TRACER.to_obj() == []
        assert NULL_TRACER.flame() == ""
        assert isinstance(NULL_TRACER, NullTracer)


# --------------------------------------------------------------------------
# Tracer.
# --------------------------------------------------------------------------

class TestTracer:
    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
            with tracer.span("sibling"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert [c.name for c in root.children] == ["child", "sibling"]
        for child in root.children:
            assert root.start_ns <= child.start_ns
            assert child.end_ns <= root.end_ns

    def test_to_obj_and_flame(self):
        tracer = Tracer()
        with tracer.span("epoch"):
            with tracer.span("lane 0"):
                pass
        (obj,) = tracer.to_obj()
        assert obj["name"] == "epoch"
        assert obj["children"][0]["name"] == "lane 0"
        assert obj["duration_ns"] >= obj["children"][0]["duration_ns"]
        flame = tracer.flame()
        assert "epoch" in flame and "lane 0" in flame

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                raise RuntimeError("boom")
        assert [r.name for r in tracer.roots] == ["root"]
        assert tracer.roots[0].end_ns >= tracer.roots[0].start_ns

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        tracer.clear()
        assert tracer.roots == []

    def test_threads_trace_independently(self):
        import threading

        tracer = Tracer()

        def work(name):
            with tracer.span(name):
                pass

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(4)]
        with tracer.span("main"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # Thread spans are their own roots, not children of "main".
        assert sorted(r.name for r in tracer.roots) == \
            ["main", "t0", "t1", "t2", "t3"]
