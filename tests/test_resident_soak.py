"""Resident-worker soak: a seeded 200-epoch randomized run.

Two networks process an identical, seeded mix of the four most
state-heavy workloads epoch by epoch: one through resident lane
workers **with a worker kill injected every ~20 epochs**, one through
legacy fresh-payload lanes with no faults.  After every single epoch
the two must agree byte-for-byte on contract state and block stats —
any resident replica that survives a kill with stale or corrupted
state shows up at the first divergent epoch, not as a mystery at the
end of the run.

Runtime is bounded: small populations, six transactions per epoch,
and kills (not hangs) as the injected fault, so no deadline waits
accumulate.  Marked ``chaos``: ran in the chaos CI job on both the
thread and the process executor.
"""

from __future__ import annotations

import dataclasses
import os
import random

import pytest

from repro.chain.faults import (
    FaultEvent, FaultInjector, FaultKind, FaultPlan,
)
from repro.chain.network import Network
from repro.chain.recovery import fingerprint_digest
from repro.obs.metrics import MetricsRegistry
from repro.workloads.generators import (
    CFDonate, FTTransfer, NFTTransfer, UDConfig,
)

N_SHARDS = 4
EPOCHS = 200
KILL_EVERY = 20
TXNS_PER_EPOCH = 6
N_USERS = 24
SEED = 1337

WORKLOAD_MIX = (FTTransfer, NFTTransfer, CFDonate, UDConfig)

EXECUTOR = os.environ.get("REPRO_EXECUTOR", "thread")


def _build_workloads():
    """One instance per mixed workload, each with its own contract
    address and admin (the stock classes share both), all driven by
    one merged nonce ledger so interleaving them is well-formed."""
    workloads = []
    for i, cls in enumerate(WORKLOAD_MIX):
        w = cls(n_users=N_USERS, txns_per_epoch=TXNS_PER_EPOCH,
                seed=SEED + i)
        w.contract_addr = "0x" + f"{0xc0 + i:02x}" * 20
        w.admin = "0x" + f"{0xad + i:02x}" * 20
        workloads.append(w)
    return workloads


def _setup(net: Network):
    workloads = _build_workloads()
    for w in workloads:
        w.setup(net)
    # The mixed run interleaves workloads that share user addresses;
    # merge their per-instance nonce counters into one shared ledger
    # so every generated nonce is globally fresh.
    shared: dict[str, int] = {}
    for w in workloads:
        for sender, n in w._nonces.items():
            shared[sender] = max(shared.get(sender, 0), n)
    for w in workloads:
        w._nonces = shared
    return workloads


def _kill_plan(first_epoch: int) -> FaultPlan:
    events = []
    for i, epoch in enumerate(range(first_epoch + KILL_EVERY,
                                    first_epoch + EPOCHS + 1,
                                    KILL_EVERY)):
        events.append(FaultEvent(epoch, FaultKind.KILL_WORKER,
                                 i % N_SHARDS))
    return FaultPlan(events)


@pytest.mark.chaos
def test_resident_soak_matches_fresh_epoch_by_epoch():
    if EXECUTOR == "serial":
        pytest.skip("soak needs a parallel executor")

    registry = MetricsRegistry()
    resident_net = Network(N_SHARDS, use_signatures=True,
                           executor=EXECUTOR, resident=True,
                           lane_deadline_s=2.0, metrics=registry)
    fresh_net = Network(N_SHARDS, use_signatures=True,
                        executor=EXECUTOR, resident=False)
    resident_workloads = _setup(resident_net)
    fresh_workloads = _setup(fresh_net)
    assert resident_net.epoch == fresh_net.epoch

    # Kills are armed only now, relative to the post-setup epoch, so
    # every replica is installed and synced before the first one dies.
    plan = _kill_plan(resident_net.epoch)
    n_kills = len(plan.events)
    resident_net.injector = FaultInjector(plan)

    mix = random.Random(SEED)
    for epoch in range(EPOCHS):
        idx = mix.randrange(len(WORKLOAD_MIX))
        resident_block = resident_net.process_epoch(
            resident_workloads[idx].transactions(epoch))
        fresh_block = fresh_net.process_epoch(
            fresh_workloads[idx].transactions(epoch))
        # Byte-for-byte agreement at *every* epoch boundary.
        assert fingerprint_digest(resident_net) \
            == fingerprint_digest(fresh_net), f"diverged at epoch {epoch}"
        assert dataclasses.asdict(resident_block.stats) \
            == dataclasses.asdict(fresh_block.stats), \
            f"stats diverged at epoch {epoch}"

    assert resident_net.executor_fallbacks == 0
    assert fresh_net.executor_fallbacks == 0

    counters = registry.snapshot()["counters"]
    resident = {k: v["value"] for k, v in counters.items()
                if k.startswith("lane.resident.")}
    # Vacuity: the resident path ran, the kills really landed, and
    # every kill forced a reinstall from authoritative state.
    assert resident["lane.resident.installs"] >= N_SHARDS
    assert resident["lane.resident.sync_pushes"] > 0
    assert resident["lane.resident.reinstalls"] >= n_kills >= 9
    failures = sum(v["value"] for k, v in counters.items()
                   if k.startswith("supervise.failures."))
    assert failures >= n_kills
