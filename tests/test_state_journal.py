"""Property tests for the state journal and copy-on-write forks.

Three laws the state engine rests on:

* **Journal identity** — for any write sequence, ``rollback_to(mark)``
  restores the exact pre-mark state, and releasing a committed mark
  truncates without disturbing outstanding older marks.
* **Nested marks** — inner rollbacks compose with outer ones: undoing
  to an inner mark then to an outer one equals undoing straight to the
  outer one.
* **CoW isolation** — writes through a fork never leak into the
  source (or vice versa), at any nesting depth, even though the fork
  is O(fields) and shares every entry dict at birth.

Plus the O(1)-take guard: marking the journal must not materialise a
single CoW copy nor touch any map entry.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

import pytest

from repro.scilla import types as ty, values as scilla_values
from repro.scilla.state import (
    ContractState, JournalError, MISSING, StateJournal,
)
from repro.scilla.values import MapVal, StringVal, canonical, uint


def fresh_state(journal: StateJournal | None = None) -> ContractState:
    state = ContractState(
        address="0x01",
        fields={
            "n": uint(0),
            "m": MapVal(ty.STRING, ty.UINT128),
            "nested": MapVal(ty.STRING, ty.MapType(ty.STRING, ty.UINT128)),
        },
        field_types={
            "n": ty.UINT128,
            "m": ty.MapType(ty.STRING, ty.UINT128),
            "nested": ty.MapType(ty.STRING,
                                 ty.MapType(ty.STRING, ty.UINT128)),
        },
    )
    state.journal = journal
    return state


def snapshot(state: ContractState):
    return ({k: canonical(v) for k, v in state.fields.items()},
            state.balance)


# One abstract operation: (kind, field/key path, value).
def _apply(state: ContractState, op) -> None:
    kind, key, value = op
    if kind == "field":
        state.write(("n", ()), uint(value))
    elif kind == "put":
        state.write(key, uint(value))
    elif kind == "delete":
        state.write(key, MISSING)
    else:  # balance
        state.balance = value


_KEYS = st.one_of(
    st.tuples(st.just("m"),
              st.tuples(st.sampled_from([StringVal(c) for c in "abcd"]))),
    st.tuples(st.just("nested"),
              st.tuples(st.sampled_from([StringVal(c) for c in "ab"]),
                        st.sampled_from([StringVal(c) for c in "xy"]))),
)

_OPS = st.one_of(
    st.tuples(st.just("field"), st.none(), st.integers(0, 50)),
    st.tuples(st.just("put"), _KEYS, st.integers(0, 50)),
    st.tuples(st.just("delete"), _KEYS, st.just(0)),
    st.tuples(st.just("balance"), st.none(), st.integers(0, 50)),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(_OPS, max_size=20))
def test_rollback_restores_premark_state(ops):
    journal = StateJournal()
    state = fresh_state(journal)
    _apply(state, ("put", ("m", (StringVal("a"),)), 1))
    before = snapshot(state)
    mark = journal.mark()
    for op in ops:
        _apply(state, op)
    journal.rollback_to(mark)
    assert snapshot(state) == before
    # Idempotent: a second rollback is a no-op.
    journal.rollback_to(mark)
    assert snapshot(state) == before


@settings(max_examples=60, deadline=None)
@given(st.lists(_OPS, max_size=10), st.lists(_OPS, max_size=10))
def test_nested_marks_compose(outer_ops, inner_ops):
    journal = StateJournal()
    state = fresh_state(journal)
    base = snapshot(state)
    outer = journal.mark()
    for op in outer_ops:
        _apply(state, op)
    middle = snapshot(state)
    inner = journal.mark()
    for op in inner_ops:
        _apply(state, op)
    journal.rollback_to(inner)
    assert snapshot(state) == middle
    journal.rollback_to(outer)
    assert snapshot(state) == base


@settings(max_examples=60, deadline=None)
@given(st.lists(_OPS, max_size=12), st.lists(_OPS, max_size=12))
def test_cow_fork_never_leaks_writes(source_ops, fork_ops):
    source = fresh_state()
    _apply(source, ("put", ("m", (StringVal("a"),)), 7))
    _apply(source, ("put", ("nested", (StringVal("a"), StringVal("x"))), 8))
    fork = source.fork()
    source_before = snapshot(source)
    fork_before = snapshot(fork)
    assert fork_before == source_before

    for op in fork_ops:
        _apply(fork, op)
    # Nothing the fork did is visible through the source.
    assert snapshot(source) == source_before

    fork_after = snapshot(fork)
    for op in source_ops:
        _apply(source, op)
    # And nothing the source does afterwards reaches the fork.
    assert snapshot(fork) == fork_after


def test_release_truncates_only_below_oldest_outstanding_mark():
    journal = StateJournal()
    state = fresh_state(journal)
    older = journal.mark()
    _apply(state, ("field", None, 1))
    newer = journal.mark()
    _apply(state, ("field", None, 2))
    journal.release(newer)            # older still outstanding
    journal.rollback_to(older)        # must still be able to undo
    assert state.fields["n"] == uint(0)
    journal.release(older)
    assert journal.depth == 0


def test_rollback_to_released_mark_raises():
    journal = StateJournal()
    state = fresh_state(journal)
    mark = journal.mark()
    _apply(state, ("field", None, 3))
    journal.release(mark)
    with pytest.raises(JournalError):
        journal.rollback_to(mark)


def test_mark_is_o1_no_cow_copies_no_entries_touched():
    """Taking a rollback point must not copy anything, however large
    the state — the property the checkpoint bench smoke guards at
    network level."""
    journal = StateJournal()
    state = fresh_state(journal)
    big = state.fields["m"]
    for i in range(10_000):
        big.entries[StringVal(f"k{i}")] = uint(i)
    before = scilla_values.COW_COPIES
    marks = [journal.mark() for _ in range(100)]
    assert scilla_values.COW_COPIES == before
    assert journal.depth == 0
    for m in reversed(marks):
        journal.release(m)


def test_fork_is_o_fields_single_write_materialises_once():
    state = fresh_state()
    big = state.fields["m"]
    for i in range(10_000):
        big.entries[StringVal(f"k{i}")] = uint(i)
    before = scilla_values.COW_COPIES
    fork = state.fork()
    assert scilla_values.COW_COPIES == before   # fork itself copies nothing
    fork.write(("m", (StringVal("k1"),)), uint(999))
    assert scilla_values.COW_COPIES == before + 1
    assert state.read(("m", (StringVal("k1"),))) == uint(1)
    # A second write to the now-owned map does not copy again.
    fork.write(("m", (StringVal("k2"),)), uint(998))
    assert scilla_values.COW_COPIES == before + 1
