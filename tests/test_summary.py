"""Effect-summary inference tests, including the Fig. 8 reproduction."""

import pytest

from repro.core.domain import (
    CT, Card, ConstKey, FieldSource, ParamKey, PseudoField,
)
from repro.core.effects import (
    AcceptFunds, Condition, Read, SendMsg, TopEffect, Write,
)
from repro.core.summary import analyze_module
from repro.scilla import parse_module
from repro.contracts import CORPUS


def summaries_of(source: str):
    return analyze_module(parse_module(source))


def wrap(fields: str, body: str, params: str = "",
         extra: str = "") -> str:
    return f"""
    scilla_version 0
    library W
    let zero = Uint128 0
    contract W (owner: ByStr20)
    {fields}
    transition Go ({params})
      {body}
    end
    {extra}
    """


PF = PseudoField


def test_fig5_transfer_summary_matches_fig8():
    """The paper's running example: the FungibleToken Transfer
    transition must produce the Fig. 8 effects."""
    summary = analyze_module(
        parse_module(CORPUS["FungibleToken"]))["Transfer"]

    reads = {r.pf for r in summary.reads()}
    assert PF("balances", (ParamKey("_sender"),)) in reads
    assert PF("balances", (ParamKey("to"),)) in reads

    writes = {w.pf: w for w in summary.writes()}
    sender_write = writes[PF("balances", (ParamKey("_sender"),))]
    to_write = writes[PF("balances", (ParamKey("to"),))]

    # Write(balances[_sender], ⟨amount & balances[_sender], 1, sub⟩)
    self_contrib = sender_write.contrib.get(
        FieldSource(PF("balances", (ParamKey("_sender"),))))
    assert self_contrib.card == Card.ONE
    assert self_contrib.ops == frozenset({"sub"})
    assert self_contrib.exact

    # Write(balances[to], ⟨amount & balances[to], 1, add⟩)
    to_contrib = to_write.contrib.get(
        FieldSource(PF("balances", (ParamKey("to"),))))
    assert to_contrib.card == Card.ONE
    assert to_contrib.ops == frozenset({"add"})
    assert to_contrib.exact

    # Condition(balances[_sender], amount): the bounds check.
    conds = summary.conditions()
    assert any(
        isinstance(c.contrib, CT) and any(
            isinstance(s, FieldSource)
            and s.pf == PF("balances", (ParamKey("_sender"),))
            for s, _ in c.contrib.sources)
        for c in conds)
    # ... but balances[to] affects no control flow.
    assert not any(
        isinstance(c.contrib, CT) and any(
            isinstance(s, FieldSource)
            and s.pf == PF("balances", (ParamKey("to"),))
            for s, _ in c.contrib.sources)
        for c in conds)

    # SendMsg to the recipient with zero funds.
    sends = summary.sends()
    assert len(sends) == 1
    (msg,) = sends[0].msgs
    assert msg.amount_zero
    assert msg.recipient == "to"


def test_whole_field_load_and_store():
    s = summaries_of(wrap("field n : Uint128 = Uint128 0",
                          "x <- n;\n n := x"))["Go"]
    assert Read(PF("n")) in s.effects
    assert any(w.pf == PF("n") for w in s.writes())


def test_map_access_keyed_by_param():
    s = summaries_of(wrap(
        "field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128",
        "x <- m[who];\n m[who] := zero", params="who: ByStr20"))["Go"]
    assert Read(PF("m", (ParamKey("who"),))) in s.effects


def test_map_access_keyed_by_local_is_top():
    s = summaries_of(wrap(
        "field m : Map ByStr32 Uint128 = Emp ByStr32 Uint128",
        'k = builtin sha256hash owner;\n m[k] := zero'))["Go"]
    assert s.has_top


def test_map_key_from_contract_param_is_constant():
    s = summaries_of(wrap(
        "field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128",
        "m[owner] := zero"))["Go"]
    (write,) = s.writes()
    assert isinstance(write.pf.keys[0], ConstKey)


def test_partial_nested_access_is_top():
    """Non-bottom-level access to a nested map is not summarisable."""
    s = summaries_of(wrap(
        "field m : Map ByStr20 (Map ByStr20 Uint128) = "
        "Emp ByStr20 (Map ByStr20 Uint128)",
        "x <- m[who]", params="who: ByStr20"))["Go"]
    assert s.has_top


def test_bottom_level_nested_access_ok():
    s = summaries_of(wrap(
        "field m : Map ByStr20 (Map ByStr20 Uint128) = "
        "Emp ByStr20 (Map ByStr20 Uint128)",
        "x <- m[a][b]", params="a: ByStr20, b: ByStr20"))["Go"]
    assert not s.has_top
    assert Read(PF("m", (ParamKey("a"), ParamKey("b")))) in s.effects


def test_read_after_same_key_write_is_top():
    s = summaries_of(wrap(
        "field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128",
        "m[who] := zero;\n x <- m[who]", params="who: ByStr20"))["Go"]
    assert s.has_top


def test_read_after_different_key_write_is_summarised():
    """The MapGet rule is syntactic: distinct parameter keys do not
    block summarisation (NoAliases covers runtime aliasing)."""
    s = summaries_of(wrap(
        "field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128",
        "m[a] := zero;\n x <- m[b]", params="a: ByStr20, b: ByStr20"))["Go"]
    assert not s.has_top


def test_accept_effect():
    s = summaries_of(wrap("", "accept"))["Go"]
    assert s.accepts_funds()


def test_delete_is_write():
    s = summaries_of(wrap(
        "field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128",
        "delete m[who]", params="who: ByStr20"))["Go"]
    (w,) = s.writes()
    assert w.is_delete


def test_condition_from_bool_match():
    s = summaries_of(wrap(
        "field n : Uint128 = Uint128 0",
        "x <- n;\n big = builtin lt zero x;\n"
        " match big with | True => | False => end"))["Go"]
    (cond,) = s.conditions()
    assert any(isinstance(src, FieldSource) and src.pf == PF("n")
               for src, _ in cond.contrib.sources)


def test_option_peel_generates_no_condition():
    s = summaries_of(wrap(
        "field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128",
        "x <- m[who];\n"
        " v = match x with | Some b => b | None => zero end;\n"
        " m[who] := v", params="who: ByStr20"))["Go"]
    assert s.conditions() == []


def test_exists_contributes_exists_op():
    s = summaries_of(wrap(
        "field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128",
        "p <- exists m[who];\n"
        " match p with | True => | False => end",
        params="who: ByStr20"))["Go"]
    (cond,) = s.conditions()
    assert Read(PF("m", (ParamKey("who"),))) in s.effects


def test_send_unknown_message_is_top_send():
    s = summaries_of(wrap(
        "field stash : Map ByStr20 String = Emp ByStr20 String",
        "x <- stash[who];\n"
        " match x with\n"
        " | Some tag =>\n"
        "   m = { _tag : tag; _recipient : who; _amount : zero };\n"
        "   ms = one_msg m;\n send ms\n"
        " | None =>\n"
        " end", params="who: ByStr20"))["Go"]
    # Message with statically-known shape: recipient is a param.
    (send,) = s.sends()
    assert not send.is_top
    assert send.msgs[0].recipient == "who"


def test_send_field_read_value_is_unknown_recipient():
    s = summaries_of(wrap(
        "field target : ByStr20 = owner",
        "t <- target;\n"
        ' m = { _tag : "go"; _recipient : t; _amount : zero };\n'
        " ms = one_msg m;\n send ms"))["Go"]
    (send,) = s.sends()
    assert send.msgs[0].recipient_kind == "unknown"


def test_event_and_throw_produce_no_effects():
    s = summaries_of(wrap(
        "", 'e = { _eventname : "E" };\n event e'))["Go"]
    assert s.effects == []


def test_procedure_inlining_preserves_keys():
    s = summaries_of(wrap(
        "field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128",
        "Helper who", params="who: ByStr20",
        extra="""
        procedure Helper (target: ByStr20)
          m[target] := zero
        end
        """))["Go"]
    # Key remains the *caller's* parameter after inlining.
    (w,) = s.writes()
    assert w.pf == PF("m", (ParamKey("who"),))


def test_unknown_procedure_is_top():
    src = wrap("", "Ghost")
    module = parse_module(src)
    s = analyze_module(module)["Go"]
    assert s.has_top


def test_nonlinear_write_detected():
    s = summaries_of(wrap(
        "field n : Uint128 = Uint128 0",
        "x <- n;\n d = builtin add x x;\n n := d"))["Go"]
    (w,) = s.writes()
    assert w.contrib.get(FieldSource(PF("n"))).card == Card.MANY


def test_condition_dedupe_keeps_strongest():
    """Subsumed conditions are dropped, as in the Fig. 8 presentation."""
    s = summaries_of(wrap(
        "field n : Uint128 = Uint128 0",
        "x <- n;\n"
        " p = builtin lt zero x;\n"
        " match p with | True => | False => end;\n"
        " q = builtin lt amount x;\n"
        " match q with | True => | False => end",
        params="amount: Uint128"))["Go"]
    assert len(s.conditions()) == 1
