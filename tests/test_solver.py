"""Good-enough signature solver tests (Defs. 5.1–5.3)."""

from repro.core.solver import ShardingSolver, is_good_enough
from repro.core.summary import analyze_module
from repro.contracts import CORPUS
from repro.scilla import parse_module


def solver_for(source: str, name: str = "C") -> ShardingSolver:
    return ShardingSolver(name, analyze_module(parse_module(source)))


def wrap(fields: str, transitions: str) -> str:
    return f"""
    scilla_version 0
    library S
    let zero = Uint128 0
    contract C (owner: ByStr20)
    {fields}
    {transitions}
    """


HOGGY = wrap(
    "field config : Uint128 = Uint128 0\n"
    "field data : Map ByStr20 Uint128 = Emp ByStr20 Uint128",
    """
    transition SetConfig (v: Uint128)
      config := v
    end
    transition SetConfigAgain (v: Uint128)
      config := v
    end
    transition PutData (k: ByStr20, v: Uint128)
      data[k] := v
    end
    """)


def test_singleton_with_hog_not_ge():
    s = solver_for(HOGGY)
    assert not is_good_enough(s.signature(("SetConfig",)))


def test_singleton_without_hog_is_ge():
    s = solver_for(HOGGY)
    assert is_good_enough(s.signature(("PutData",)))


def test_pair_with_single_hogger_is_ge():
    s = solver_for(HOGGY)
    assert is_good_enough(s.signature(("PutData", "SetConfig")))


def test_pair_with_two_hoggers_not_ge():
    s = solver_for(HOGGY)
    assert not is_good_enough(
        s.signature(("SetConfig", "SetConfigAgain")))


def test_maximal_ge_not_proper_subsets():
    s = solver_for(HOGGY)
    report = s.report()
    sets = [frozenset(sel) for sel in report.maximal_ge]
    for a in sets:
        assert not any(a < b for b in sets)


def test_hoggy_report_shape():
    report = solver_for(HOGGY).report()
    assert report.largest_ge_size == 2
    # {PutData, SetConfig} and {PutData, SetConfigAgain}.
    assert report.n_maximal == 2


def test_bot_transition_never_in_ge():
    src = wrap(
        "field m : Map ByStr32 Uint128 = Emp ByStr32 Uint128",
        """
        transition Bad (s: String)
          k = builtin sha256hash s;
          m[k] := zero
        end
        transition Fine (k: ByStr32)
          m[k] := zero
        end
        """)
    s = solver_for(src)
    assert s.shardable_transitions() == ["Fine"]
    report = s.report()
    assert all("Bad" not in sel for sel in report.maximal_ge)


def test_paper_table_fungible_token():
    s = ShardingSolver(
        "FungibleToken",
        analyze_module(parse_module(CORPUS["FungibleToken"])))
    report = s.report()
    assert report.n_transitions == 10
    assert report.largest_ge_size == 6
    assert report.n_maximal == 2


def test_paper_table_crowdfunding():
    s = ShardingSolver(
        "Crowdfunding",
        analyze_module(parse_module(CORPUS["Crowdfunding"])))
    report = s.report()
    assert (report.n_transitions, report.largest_ge_size,
            report.n_maximal) == (3, 2, 1)
    assert set(report.maximal_ge[0]) == {"Donate", "ClaimBack"}


def test_paper_table_nonfungible_token():
    s = ShardingSolver(
        "NonfungibleToken",
        analyze_module(parse_module(CORPUS["NonfungibleToken"])))
    report = s.report()
    assert (report.n_transitions, report.largest_ge_size,
            report.n_maximal) == (5, 3, 2)


def test_paper_table_proof_ipfs():
    s = ShardingSolver(
        "ProofIPFS", analyze_module(parse_module(CORPUS["ProofIPFS"])))
    report = s.report()
    assert (report.n_transitions, report.largest_ge_size,
            report.n_maximal) == (10, 8, 2)


def test_paper_table_ud_registry():
    s = ShardingSolver(
        "UD_registry",
        analyze_module(parse_module(CORPUS["UD_registry"])))
    report = s.report()
    assert (report.n_transitions, report.largest_ge_size,
            report.n_maximal) == (11, 6, 2)


def test_signature_cache_is_stable():
    s = solver_for(HOGGY)
    first = s.signature(("PutData",))
    second = s.signature(("PutData",))
    assert first is second


def test_fast_ge_matches_exhaustive_derivation():
    """The memoised context-based GE check agrees with full
    Algorithm 3.1 derivations on every subset of real contracts."""
    import itertools
    from repro.core.signature import derive_signature
    for name in ("NonfungibleToken", "Crowdfunding", "DPSTokenHub"):
        summaries = analyze_module(parse_module(CORPUS[name]))
        solver = ShardingSolver(name, summaries)
        candidates = solver.shardable_transitions()
        for k in range(1, len(candidates) + 1):
            for combo in itertools.combinations(sorted(candidates), k):
                slow = is_good_enough(
                    derive_signature(name, summaries, combo))
                fast = solver._ge_fast(frozenset(combo))
                assert slow == fast, (name, combo)


def test_maximal_search_matches_exhaustive_on_fungible_token():
    summaries = analyze_module(parse_module(CORPUS["FungibleToken"]))
    solver = ShardingSolver("FT", summaries)
    exhaustive_ge = solver.ge_selections()
    sets = [frozenset(sel) for sel in exhaustive_ge]
    exhaustive_maximal = sorted(
        (tuple(sorted(sel)) for sel, fs in zip(exhaustive_ge, sets)
         if not any(fs < other for other in sets)),
        key=lambda m: (len(m), m))
    assert solver.maximal_ge_selections() == exhaustive_maximal


def test_xsgd_scale():
    """The 18-transition contract is solvable in seconds (the naive
    Σ (n choose k) enumeration takes over 80 s)."""
    summaries = analyze_module(parse_module(CORPUS["XSGD"]))
    report = ShardingSolver("XSGD", summaries).report()
    assert report.n_transitions == 18
    assert report.largest_ge_size == 12
    assert report.n_maximal == 9
