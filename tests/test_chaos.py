"""Chaos harness tests: determinism, equivalence property, CLI."""

import pytest

from repro.chain.faults import FaultPlan
from repro.chain.recovery import network_fingerprint
from repro.cli import main
from repro.eval.chaos import _run, format_chaos_report, run_chaos
from repro.workloads.generators import workload_by_name


def test_chaos_report_is_deterministic():
    a = run_chaos(seed=3, epochs=2, users=12, txns=16)
    b = run_chaos(seed=3, epochs=2, users=12, txns=16)
    # Byte-identical reports across runs in the same process, despite
    # the global transaction-id counter having advanced in between.
    assert format_chaos_report(a) == format_chaos_report(b)


@pytest.mark.parametrize("seed", [11, 12, 13, 14])
def test_crash_and_delay_faults_preserve_end_state(seed):
    """Property: for random fungible-token workloads under
    crash/delay-only plans, recovery reproduces the fault-free final
    state exactly."""
    plan = FaultPlan.random(seed, epochs=5, n_shards=4,
                            crash_rate=0.25, delay_rate=0.2,
                            drop_rate=0.0, corrupt_rate=0.0,
                            forge_rate=0.0)
    assert plan.equivalence_preserving
    cls = workload_by_name("FT transfer")
    clean = _run(cls(n_users=16, txns_per_epoch=24, seed=seed),
                 3, None, 4)
    faulty = _run(cls(n_users=16, txns_per_epoch=24, seed=seed),
                  3, plan, 4)
    assert network_fingerprint(faulty) == network_fingerprint(clean)


def test_chaos_detects_nothing_to_report_without_faults():
    result = run_chaos(seed=0, epochs=2, users=12, txns=16)
    assert result.consistent
    assert "CONSISTENT" in result.verdict


def test_churn_downgrades_verdict_to_skip():
    result = run_chaos(seed=5, epochs=2, users=12, txns=16, churn=True)
    assert result.churn
    assert result.verdict.startswith("SKIPPED")


def test_cli_chaos_exits_zero_on_consistency(capsys):
    code = main(["chaos", "--seed", "0", "--epochs", "2",
                 "--users", "12", "--txns", "16"])
    out = capsys.readouterr().out
    assert code == 0
    assert "chaos report" in out
    assert "consistency: CONSISTENT" in out
