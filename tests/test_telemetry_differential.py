"""Telemetry as a differential oracle.

The deterministic subset of the metrics registry (counters, gauges and
histograms registered without ``deterministic=False``) is required to
be a pure function of the submitted workload: byte-identical across
the serial, thread and process lane executors, and across a
crash + resume of a durable run.  These tests enforce exactly that for
all eight Fig. 14 workloads — any scheduling leak into a deterministic
instrument (a lane counted twice, a worker registry merged in the
wrong order, a replay recording drift) shows up as a snapshot diff.
"""

import json

import pytest

from repro.chain.network import Network
from repro.eval.chaos import run_durable
from repro.eval.telemetry import WORKLOAD_NAMES, run_instrumented
from repro.obs import MetricsRegistry

RUN_PARAMS = dict(epochs=2, txns_per_epoch=36, n_users=24,
                  n_shards=4, seed=11)

DURABLE_PARAMS = dict(seed=3, shards=4, users=12, txns=10)


def _fingerprint(workload: str, executor: str) -> str:
    run = run_instrumented(workload=workload, executor=executor,
                           **RUN_PARAMS)
    assert run.committed > 0
    return json.dumps(run.deterministic, sort_keys=True)


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_counters_identical_across_executors(workload):
    """serial / thread / process runs record identical deterministic
    snapshots, byte for byte."""
    baseline = _fingerprint(workload, "serial")
    assert _fingerprint(workload, "thread") == baseline
    assert _fingerprint(workload, "process") == baseline


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_counters_identical_across_crash_resume(tmp_path, workload):
    """An interrupted durable run, resumed to completion, ends with the
    same deterministic snapshot as an uninterrupted run."""
    full = MetricsRegistry()
    run_durable(workload, data_dir=str(tmp_path / "full"), epochs=4,
                metrics=full, **DURABLE_PARAMS)

    # The "crash": the first process stops after 2 of the 4 epochs and
    # abandons the directory; a fresh registry resumes from the WAL.
    interrupted = MetricsRegistry()
    run_durable(workload, data_dir=str(tmp_path / "steps"), epochs=2,
                metrics=interrupted, **DURABLE_PARAMS)
    resumed = MetricsRegistry()
    result = run_durable(workload, data_dir=str(tmp_path / "steps"),
                         epochs=4, metrics=resumed, **DURABLE_PARAMS)

    assert result.resumed
    assert (json.dumps(resumed.deterministic_snapshot(), sort_keys=True)
            == json.dumps(full.deterministic_snapshot(), sort_keys=True))


def test_metrics_survive_mid_run_snapshot(tmp_path):
    """A forced durable snapshot mid-run embeds the registry; resume
    restores it and replay re-records only the epochs past it."""
    from repro.chain.transaction import payment

    def epoch(n):
        return [payment("alice", "bob", amount=1, nonce=n)]

    reg = MetricsRegistry()
    net = Network(2, data_dir=str(tmp_path), metrics=reg)
    net.create_account("alice")
    net.create_account("bob")
    net.process_epoch(epoch(1))
    net.snapshot()                 # registry state pinned here
    net.process_epoch(epoch(2))    # …and this epoch replays on resume
    expected = reg.deterministic_snapshot()
    assert expected["counters"]["net.epochs"]["value"] == 2
    net.close()

    restored = MetricsRegistry()
    net2 = Network.resume(str(tmp_path), metrics=restored)
    try:
        assert restored.deterministic_snapshot() == expected
        # The resumed network keeps counting where the dead one stopped.
        net2.process_epoch(epoch(3))
        assert restored.counter("net.epochs").value == 3
    finally:
        net2.close()


def test_disabled_network_records_nothing():
    """The default (no registry) network leaves the null registry
    empty and hands out the shared null tracer."""
    from repro.obs.metrics import NULL_REGISTRY
    from repro.obs.tracing import NULL_TRACER

    net = Network(2)
    assert net.metrics is NULL_REGISTRY
    assert net.tracer is NULL_TRACER
    net.create_account("a")
    net.create_account("b")
    from repro.chain.transaction import payment
    net.process_epoch([payment("a", "b", amount=1, nonce=1)])
    assert net.metrics.snapshot() == \
        {"counters": {}, "gauges": {}, "histograms": {}}


def test_view_change_rolls_back_lane_counters():
    """Counters recorded by a discarded epoch attempt do not leak into
    the committed totals: a run with an injected lane fault still
    counts each committed transaction exactly once."""
    from repro.chain.faults import FaultEvent, FaultKind, FaultPlan
    from repro.eval.chaos import _run
    from repro.workloads import workload_by_name

    cls = workload_by_name("FT transfer")
    plan = FaultPlan([
        FaultEvent(epoch=e, kind=FaultKind.DELAY_MICROBLOCK, shard=0)
        for e in range(1, 5)
    ])
    clean_reg, faulty_reg = MetricsRegistry(), MetricsRegistry()
    _run(cls(n_users=16, txns_per_epoch=24, seed=5), 2, None, 4,
         metrics=clean_reg)
    _run(cls(n_users=16, txns_per_epoch=24, seed=5), 2, plan, 4,
         metrics=faulty_reg)

    clean = clean_reg.deterministic_snapshot()["counters"]
    faulty = faulty_reg.deterministic_snapshot()["counters"]
    # The chaos invariant: every submitted transaction still commits.
    assert (faulty["net.tx.committed"]["value"]
            == clean["net.tx.committed"]["value"])
    # And the faulty run really exercised the rollback path.
    assert faulty["net.view_changes"]["value"] > 0
