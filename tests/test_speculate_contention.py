"""High-contention regression for the speculative scheduler.

Two purpose-built workloads bracket the scheduler's behaviour:

* ``FTHammer`` — distinct senders all crediting one hot account.  The
  speculative lane must observe real conflicts and aborts (the guard
  proves conflict detection is not vacuous) while still ending
  byte-identical to the non-speculative serial run.
* ``FTDisjoint`` — a sender/recipient split with pairwise-disjoint
  footprints.  The speculative lane must commit every window clean:
  zero conflicts, zero aborts (the guard proves the lock sets are not
  so coarse that independent transfers serialize).
"""

from __future__ import annotations

import json

import pytest

from repro.chain.network import Network
from repro.chain.recovery import network_fingerprint
from repro.obs.metrics import MetricsRegistry
from repro.workloads.generators import FTDisjoint, FTHammer

N_SHARDS = 4
EPOCHS = 4


def _run(workload_cls, speculate: bool, executor: str = "serial"
         ) -> tuple[Network, MetricsRegistry]:
    registry = MetricsRegistry()
    net = Network(N_SHARDS, use_signatures=True, executor=executor,
                  lane_deadline_s=0.5, metrics=registry,
                  resident=(executor != "serial"), speculate=speculate)
    workload = workload_cls(n_users=16, txns_per_epoch=24, seed=11)
    workload.setup(net)
    for epoch in range(EPOCHS):
        net.process_epoch(workload.transactions(epoch))
    return net, registry


def _digest(net: Network, registry: MetricsRegistry) -> tuple:
    return (network_fingerprint(net),
            json.dumps(registry.deterministic_snapshot(),
                       sort_keys=True))


def _spec(registry: MetricsRegistry) -> dict[str, int]:
    counters = registry.snapshot()["counters"]
    return {name: payload["value"] for name, payload in counters.items()
            if name.startswith("spec.")}


@pytest.mark.parametrize("executor", ("serial", "thread", "process"))
def test_hammer_aborts_and_stays_serial_equivalent(executor):
    base_net, base_reg = _run(FTHammer, speculate=False)
    spec_net, spec_reg = _run(FTHammer, speculate=True,
                              executor=executor)
    assert _digest(spec_net, spec_reg) == _digest(base_net, base_reg)
    assert spec_net.executor_fallbacks == 0

    spec = _spec(spec_reg)
    assert spec["spec.conflicts"] > 0
    assert spec["spec.aborts"] > 0
    assert spec["spec.commits"] > 0


@pytest.mark.parametrize("executor", ("serial", "thread", "process"))
def test_disjoint_twin_commits_clean(executor):
    base_net, base_reg = _run(FTDisjoint, speculate=False)
    spec_net, spec_reg = _run(FTDisjoint, speculate=True,
                              executor=executor)
    assert _digest(spec_net, spec_reg) == _digest(base_net, base_reg)
    assert spec_net.executor_fallbacks == 0

    spec = _spec(spec_reg)
    assert spec["spec.conflicts"] == 0
    assert spec["spec.aborts"] == 0
    assert spec["spec.batches"] > 0
    assert spec["spec.commits"] > 0
