"""Property battery for the speculative intra-shard scheduler.

Hypothesis generates fungible-token transfer schedules and runs each
one through two single-shard networks — speculation off (ground truth)
and speculation on — asserting byte-identical state fingerprints and
deterministic telemetry.  Targeted schedule shapes pin down the
scheduler's contract:

* arbitrary schedules converge to the serial result;
* footprint-disjoint schedules commit without a single abort;
* single-key contention aborts, retries, and still converges;
* with the retry budget at zero, exhaustion degrades to strict serial
  (fallback counter fires) and still converges;
* after every lane the speculation journal is fully drained — no
  leaked marks, no retained undo entries.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.chain.network import Network
from repro.chain.recovery import network_fingerprint
from repro.obs.metrics import MetricsRegistry
from repro.workloads.generators import FTTransfer
from repro.scilla.values import addr, uint
from repro.chain.transaction import call

N_USERS = 8
EXAMPLES = 20


def _run_schedule(moves: list[tuple[int, int, int]], speculate: bool,
                  spec_retries: int | None = None
                  ) -> tuple[Network, MetricsRegistry]:
    """Deploy the FT contract, then run one epoch of ``moves``
    (sender index, recipient index, amount) on a single-shard net."""
    registry = MetricsRegistry()
    net = Network(1, use_signatures=True, executor="serial",
                  metrics=registry, speculate=speculate)
    if spec_retries is not None:
        net.spec_retries = spec_retries
    workload = FTTransfer(n_users=N_USERS, txns_per_epoch=0, seed=3)
    workload.setup(net)
    users = workload.users
    txns = []
    for s, t, amount in moves:
        if t == s:
            t = (s + 1) % N_USERS
        txns.append(call(users[s], workload.contract_addr, "Transfer",
                         {"to": addr(users[t]), "amount": uint(amount)},
                         nonce=workload.next_nonce(users[s])))
    net.process_epoch(txns)
    return net, registry


def _digest(net: Network, registry: MetricsRegistry) -> tuple:
    return (network_fingerprint(net),
            json.dumps(registry.deterministic_snapshot(),
                       sort_keys=True))


def _spec(registry: MetricsRegistry) -> dict[str, int]:
    counters = registry.snapshot()["counters"]
    return {name: payload["value"] for name, payload in counters.items()
            if name.startswith("spec.")}


def _assert_journal_drained(net: Network) -> None:
    journal = net._spec_last_journal
    assert journal is not None
    assert journal.depth == 0
    assert journal._marks == []


# -- arbitrary schedules ------------------------------------------------------

_any_moves = st.lists(
    st.tuples(st.integers(0, N_USERS - 1), st.integers(0, N_USERS - 1),
              st.integers(1, 50)),
    min_size=2, max_size=12)


@settings(max_examples=EXAMPLES, deadline=None)
@given(moves=_any_moves)
def test_any_schedule_converges_to_serial(moves):
    base_net, base_reg = _run_schedule(moves, speculate=False)
    spec_net, spec_reg = _run_schedule(moves, speculate=True)
    assert _digest(spec_net, spec_reg) == _digest(base_net, base_reg)
    _assert_journal_drained(spec_net)


# -- footprint-disjoint schedules ---------------------------------------------

_disjoint_moves = st.integers(2, N_USERS // 2).flatmap(
    lambda k: st.tuples(
        st.just(k),
        st.lists(st.integers(1, 50), min_size=k, max_size=k)))


@settings(max_examples=EXAMPLES, deadline=None)
@given(shape=_disjoint_moves)
def test_disjoint_schedule_commits_without_aborts(shape):
    k, amounts = shape
    # Sender i pays recipient k+i: locksets are pairwise disjoint.
    moves = [(i, k + i, amounts[i]) for i in range(k)]
    base_net, base_reg = _run_schedule(moves, speculate=False)
    spec_net, spec_reg = _run_schedule(moves, speculate=True)
    assert _digest(spec_net, spec_reg) == _digest(base_net, base_reg)
    spec = _spec(spec_reg)
    assert spec["spec.aborts"] == 0
    assert spec["spec.conflicts"] == 0
    assert spec["spec.commits"] >= k
    _assert_journal_drained(spec_net)


# -- single-key contention ----------------------------------------------------

_contended_senders = st.integers(2, N_USERS - 2).flatmap(
    lambda k: st.tuples(
        st.just(k),
        st.lists(st.integers(1, 50), min_size=k, max_size=k)))

HOT = N_USERS - 1   # never a sender below, so windows stay wide


@settings(max_examples=EXAMPLES, deadline=None)
@given(shape=_contended_senders)
def test_contended_schedule_aborts_then_converges(shape):
    k, amounts = shape
    # k distinct senders all crediting the same hot account: every
    # window conflicts on balances[hot] after its first commit.
    moves = [(i, HOT, amounts[i]) for i in range(k)]
    base_net, base_reg = _run_schedule(moves, speculate=False)
    spec_net, spec_reg = _run_schedule(moves, speculate=True)
    assert _digest(spec_net, spec_reg) == _digest(base_net, base_reg)
    spec = _spec(spec_reg)
    assert spec["spec.conflicts"] >= 1
    assert spec["spec.aborts"] >= 1
    _assert_journal_drained(spec_net)


@settings(max_examples=EXAMPLES, deadline=None)
@given(shape=_contended_senders)
def test_retry_exhaustion_degrades_to_strict_serial(shape):
    k, amounts = shape
    moves = [(i, HOT, amounts[i]) for i in range(k)]
    base_net, base_reg = _run_schedule(moves, speculate=False)
    spec_net, spec_reg = _run_schedule(moves, speculate=True,
                                       spec_retries=0)
    assert _digest(spec_net, spec_reg) == _digest(base_net, base_reg)
    spec = _spec(spec_reg)
    assert spec["spec.serial_fallbacks"] >= 1
    _assert_journal_drained(spec_net)
