"""Network (epoch-processing) tests: merging, gas, nonces, limits."""

import pytest

from repro.chain import Network, call, payment
from repro.chain.consensus import CostModel
from repro.contracts import CORPUS
from repro.scilla.values import addr, uint, IntVal, StringVal
from repro.scilla import types as ty

TOKEN = "0x" + "c0" * 20
ADMIN = "0x" + "ad" * 20
USERS = ["0x" + f"{i:040x}" for i in range(1, 25)]


def ft_network(n_shards=3, use_signatures=True, **kwargs) -> Network:
    net = Network(n_shards, use_signatures=use_signatures, **kwargs)
    net.create_account(ADMIN)
    for u in USERS:
        net.create_account(u)
    net.deploy(CORPUS["FungibleToken"], TOKEN, {
        "contract_owner": addr(ADMIN), "name": StringVal("T"),
        "symbol": StringVal("T"), "decimals": IntVal(6, ty.UINT32),
        "init_supply": uint(0),
    }, sharded_transitions=("Mint", "Transfer", "TransferFrom"))
    return net


def mint_all(net, amount=1000):
    txns = [call(ADMIN, TOKEN, "Mint",
                 {"recipient": addr(u), "amount": uint(amount)},
                 nonce=i + 1)
            for i, u in enumerate(USERS)]
    return net.process_epoch(txns, unlimited=True)


def balances(net):
    return {str(k): v.value
            for k, v in net.contracts[TOKEN].state.fields["balances"]
            .entries.items()}


def test_epoch_commits_and_merges():
    net = ft_network()
    block = mint_all(net)
    assert block.n_committed == len(USERS)
    assert net.contracts[TOKEN].state.fields["total_supply"] == \
        uint(1000 * len(USERS))


def test_parallel_transfers_conserve_supply():
    net = ft_network()
    mint_all(net)
    txns = []
    for i, u in enumerate(USERS):
        to = USERS[(i + 7) % len(USERS)]
        txns.append(call(u, TOKEN, "Transfer",
                         {"to": addr(to), "amount": uint(5)}, nonce=1))
    block = net.process_epoch(txns)
    assert block.n_committed == len(USERS)
    assert sum(balances(net).values()) == 1000 * len(USERS)


def test_failed_transfer_rolls_back_in_shard():
    net = ft_network()
    mint_all(net)
    before = balances(net)
    block = net.process_epoch([
        call(USERS[0], TOKEN, "Transfer",
             {"to": addr(USERS[1]), "amount": uint(10**9)}, nonce=1)])
    (receipt,) = block.all_receipts
    assert not receipt.success
    assert "InsufficientFunds" in receipt.error
    assert balances(net) == before


def test_replayed_nonce_rejected():
    net = ft_network()
    mint_all(net)
    tx_args = {"to": addr(USERS[1]), "amount": uint(1)}
    net.process_epoch([call(USERS[0], TOKEN, "Transfer", tx_args, nonce=1)])
    block = net.process_epoch(
        [call(USERS[0], TOKEN, "Transfer", tx_args, nonce=1)])
    (receipt,) = block.all_receipts
    assert not receipt.success
    assert "nonce" in receipt.error


def test_gas_charged_to_sender():
    net = ft_network()
    mint_all(net)
    sender = USERS[0]
    before = net.accounts[net._account(sender).address].balance
    block = net.process_epoch([
        call(sender, TOKEN, "Transfer",
             {"to": addr(USERS[1]), "amount": uint(1)}, nonce=1)])
    (receipt,) = block.all_receipts
    after = net.accounts[net._account(sender).address].balance
    assert after == before - receipt.gas_used


def test_payment_moves_native_balance():
    net = ft_network()
    a, b = USERS[0], USERS[1]
    before_b = net._account(b).balance
    block = net.process_epoch([payment(a, b, amount=500, nonce=1)])
    assert block.n_committed == 1
    assert net._account(b).balance == before_b + 500


def test_accept_moves_funds_into_contract():
    cf = "0x" + "cf" * 20
    net = Network(3)
    for u in USERS:
        net.create_account(u)
    net.create_account(ADMIN)
    from repro.scilla.values import BNumVal
    net.deploy(CORPUS["Crowdfunding"], cf, {
        "campaign_owner": addr(ADMIN), "goal": uint(10**9),
        "deadline": BNumVal(100),
    }, sharded_transitions=("Donate", "ClaimBack"))
    block = net.process_epoch([
        call(USERS[0], cf, "Donate", {}, nonce=1, amount=250)])
    assert block.n_committed == 1
    assert net.contracts[cf].state.balance == 250


def test_gas_limit_defers_transactions():
    tiny = CostModel(shard_gas_limit=100, ds_gas_limit=100)
    net = ft_network(cost_model=tiny)
    block = mint_all(net)  # unlimited=True bypasses limits
    assert block.n_committed == len(USERS)
    txns = [call(u, TOKEN, "Transfer",
                 {"to": addr(USERS[0]), "amount": uint(1)}, nonce=1)
            for u in USERS[1:]]
    block = net.process_epoch(txns)
    assert block.n_committed < len(txns)  # capacity-bound


def test_strict_nonces_break_cross_lane_parallelism():
    relaxed = ft_network(strict_nonces=False)
    strict = ft_network(strict_nonces=True)
    for net in (relaxed, strict):
        mint_all(net, amount=10**6)
    # Single-sender burst: under relaxed nonces all commit; under
    # strict nonces lanes hit gaps.
    def burst(net):
        txns = [call(USERS[0], TOKEN, "Transfer",
                     {"to": addr(USERS[1 + i % 10]), "amount": uint(1)},
                     nonce=i + 1)
                for i in range(12)]
        return net.process_epoch(txns).n_committed
    assert burst(relaxed) == 12
    # All Transfer txns from one sender go to one shard anyway (the
    # sender owns bal[_sender]); use Mint (unconstrained) to spread.
    def mint_burst(net):
        start = 10**6
        txns = [call(ADMIN, TOKEN, "Mint",
                     {"recipient": addr(USERS[i % 10]),
                      "amount": uint(1)}, nonce=start + i)
                for i in range(12)]
        return net.process_epoch(txns).n_committed
    assert mint_burst(relaxed) == 12
    assert mint_burst(strict) < 12


def test_overflow_guard_rejects_outsized_moves():
    guarded = ft_network(overflow_guard=True)
    lo, hi = 0, (1 << 128) - 1
    # Mint nearly the max supply to one user in a single transaction:
    # the per-shard overflow budget (MAX - v)/N forbids it.
    block = guarded.process_epoch([
        call(ADMIN, TOKEN, "Mint",
             {"recipient": addr(USERS[0]), "amount": uint(hi - 10)},
             nonce=1)])
    (receipt,) = block.all_receipts
    assert not receipt.success
    assert "overflow guard" in receipt.error
    # A modest mint is fine.
    block = guarded.process_epoch([
        call(ADMIN, TOKEN, "Mint",
             {"recipient": addr(USERS[0]), "amount": uint(1000)},
             nonce=2)])
    assert block.n_committed == 1


def test_epoch_time_accounts_for_all_phases():
    net = ft_network()
    block = mint_all(net)
    assert block.epoch_seconds > 0
    assert net.average_tps() > 0


def test_baseline_routes_cross_shard_calls_to_ds():
    net = ft_network(use_signatures=False)
    block = mint_all(net)
    contract_home = net.dispatcher.home_shard(TOKEN)
    for receipt in block.all_receipts:
        sender_home = net.dispatcher.home_shard(
            net._account(receipt.tx.sender).address)
        if sender_home == contract_home:
            assert receipt.shard == contract_home
        else:
            assert receipt.shard == -1


def test_backlog_carries_deferred_transactions():
    """With the mempool enabled, gas-deferred transactions commit in
    later epochs instead of vanishing."""
    tiny = CostModel(shard_gas_limit=200, ds_gas_limit=200)
    net = ft_network(cost_model=tiny)
    net.carry_backlog = True
    mint_all(net)
    txns = [call(u, TOKEN, "Transfer",
                 {"to": addr(USERS[0]), "amount": uint(1)}, nonce=1)
            for u in USERS[1:]]
    first = net.process_epoch(txns)
    assert first.n_committed < len(txns)
    total = first.n_committed
    for _ in range(20):
        if not net.backlog:
            break
        block = net.process_epoch([])
        total += block.n_committed
    assert total == len(txns)
    assert not net.backlog


def test_backlog_disabled_drops_deferred():
    tiny = CostModel(shard_gas_limit=200, ds_gas_limit=200)
    net = ft_network(cost_model=tiny)
    mint_all(net)
    txns = [call(u, TOKEN, "Transfer",
                 {"to": addr(USERS[0]), "amount": uint(1)}, nonce=1)
            for u in USERS[1:]]
    first = net.process_epoch(txns)
    assert first.n_committed < len(txns)
    assert net.backlog == []
    follow_up = net.process_epoch([])
    assert follow_up.n_committed == 0


def test_deploy_validates_proposed_signature():
    """Miners re-derive the submitted signature and reject forgeries
    (Sec. 4.3's validation step, at the network level)."""
    from repro.core.pipeline import run_pipeline
    from repro.core.signature import ShardingSignature
    source = CORPUS["FungibleToken"]
    honest = run_pipeline(source, "FT").signature(("Mint", "Transfer"))

    net = ft_network()
    token2 = "0x" + "c9" * 20
    deployed = net.deploy(source, token2, {
        "contract_owner": addr(ADMIN), "name": StringVal("U"),
        "symbol": StringVal("U"), "decimals": IntVal(6, ty.UINT32),
        "init_supply": uint(0),
    }, proposed_signature=honest)
    assert deployed.signature is not None

    forged = ShardingSignature(
        honest.contract, honest.selected,
        {**honest.constraints, "Transfer": frozenset()},
        honest.joins, honest.weak_reads)
    with pytest.raises(ValueError):
        net.deploy(source, "0x" + "ca" * 20, {
            "contract_owner": addr(ADMIN), "name": StringVal("V"),
            "symbol": StringVal("V"), "decimals": IntVal(6, ty.UINT32),
            "init_supply": uint(0),
        }, proposed_signature=forged)


def test_final_block_reports_stats():
    net = ft_network()
    block = mint_all(net)
    assert block.stats is not None
    assert block.stats.dispatched == len(USERS)
    assert block.stats.committed == block.n_committed
    assert block.stats.to_ds + sum(block.stats.per_shard.values()) == \
        len(USERS)


def test_tps_zero_when_no_time():
    from repro.chain.blocks import FinalBlock
    block = FinalBlock(epoch=1)
    assert block.tps == 0.0
    assert block.n_committed == 0
