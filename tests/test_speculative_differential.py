"""Acceptance oracle for the speculative intra-shard scheduler: every
Fig. 14 workload, run with speculation enabled, must end byte-identical
to the fault-free serial non-speculative run — state fingerprints *and*
the deterministic telemetry snapshot — across the serial, thread and
process executors.

The faulted leg re-runs the battery under an injected hung worker and
an injected killed worker: speculation composes with the supervision
ladder (reap, rebuild, rescue) and still converges to the same bytes.
Vacuity guards assert speculation really engaged (batches formed,
commits landed) so a silently-disabled scheduler cannot pass.
"""

from __future__ import annotations

import json

import pytest

from repro.chain.faults import FaultEvent, FaultKind, FaultPlan
from repro.chain.network import Network
from repro.chain.recovery import network_fingerprint
from repro.obs.metrics import MetricsRegistry
from repro.workloads.generators import ALL_WORKLOADS

N_SHARDS = 4
EPOCHS = 4
DEADLINE_S = 0.5

# Mid-run faults: by epoch 2 the resident replicas are installed and
# speculation has already committed rounds, so recovery must reconcile
# a live speculative lane, not a fresh one.
WORKER_FAULT_PLAN = [FaultEvent(2, FaultKind.HANG_WORKER, 1),
                     FaultEvent(3, FaultKind.KILL_WORKER, 0)]

# Every transaction in these workloads comes from the single admin
# account; a speculative window needs pairwise-distinct senders, so the
# scheduler (correctly) never forms a batch and falls through to the
# serial path transaction by transaction.
SINGLE_SENDER = frozenset({"FTFund", "NFTMint", "UDBestow"})

_serial_cache: dict[str, tuple[dict[str, str], str]] = {}


def _run(workload_cls, executor: str, plan: FaultPlan | None,
         registry: MetricsRegistry, speculate: bool) -> Network:
    net = Network(N_SHARDS, use_signatures=True, fault_plan=plan,
                  executor=executor, lane_deadline_s=DEADLINE_S,
                  metrics=registry, resident=(executor != "serial"),
                  speculate=speculate)
    workload = workload_cls(n_users=16, txns_per_epoch=24, seed=11)
    workload.setup(net)
    for epoch in range(EPOCHS):
        net.process_epoch(workload.transactions(epoch))
    return net


def _serial_baseline(workload_cls) -> tuple[dict[str, str], str]:
    """Fault-free, non-speculative serial run: the ground truth."""
    key = workload_cls.__name__
    if key not in _serial_cache:
        registry = MetricsRegistry()
        net = _run(workload_cls, "serial", None, registry,
                   speculate=False)
        _serial_cache[key] = (
            network_fingerprint(net),
            json.dumps(registry.deterministic_snapshot(),
                       sort_keys=True),
        )
    return _serial_cache[key]


def _spec_counters(registry: MetricsRegistry) -> dict[str, int]:
    counters = registry.snapshot()["counters"]
    return {name: payload["value"] for name, payload in counters.items()
            if name.startswith("spec.")}


def _assert_speculation_engaged(registry: MetricsRegistry,
                                workload_cls) -> None:
    spec = _spec_counters(registry)
    if workload_cls.__name__ in SINGLE_SENDER:
        assert spec["spec.batches"] == 0
        return
    assert spec["spec.batches"] > 0
    assert spec["spec.attempts"] > 0
    assert spec["spec.commits"] > 0


@pytest.mark.parametrize("executor", ("serial", "thread", "process"))
@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS,
                         ids=[c.__name__ for c in ALL_WORKLOADS])
def test_speculative_matches_serial(workload_cls, executor):
    registry = MetricsRegistry()
    net = _run(workload_cls, executor, None, registry, speculate=True)

    fingerprint, telemetry = _serial_baseline(workload_cls)
    assert network_fingerprint(net) == fingerprint
    assert json.dumps(registry.deterministic_snapshot(),
                      sort_keys=True) == telemetry
    assert net.executor_fallbacks == 0

    _assert_speculation_engaged(registry, workload_cls)


@pytest.mark.parametrize("executor", ("thread", "process"))
@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS,
                         ids=[c.__name__ for c in ALL_WORKLOADS])
def test_speculative_survives_worker_faults(workload_cls, executor):
    registry = MetricsRegistry()
    plan = FaultPlan(list(WORKER_FAULT_PLAN))
    net = _run(workload_cls, executor, plan, registry, speculate=True)

    fingerprint, telemetry = _serial_baseline(workload_cls)
    assert network_fingerprint(net) == fingerprint
    assert json.dumps(registry.deterministic_snapshot(),
                      sort_keys=True) == telemetry
    assert net.executor_fallbacks == 0

    counters = registry.snapshot()["counters"]
    failures = sum(v["value"] for k, v in counters.items()
                   if k.startswith("supervise.failures."))
    assert failures >= 2
    if executor == "process":
        assert counters["supervise.pool_rebuilds"]["value"] >= 1

    _assert_speculation_engaged(registry, workload_cls)
