"""Corpus-wide checks: every contract parses, typechecks, analyses,
and key contracts execute correctly end to end."""

import pytest

from repro.contracts import CORPUS, EVAL_CONTRACTS, contract_loc
from repro.core.pipeline import run_pipeline
from repro.scilla.interpreter import Interpreter, TxContext
from repro.scilla.parser import parse_module
from repro.scilla.values import (
    ByStrVal, IntVal, StringVal, addr, uint, bool_val,
)
from repro.scilla import types as ty

ADMIN = "0x" + "ad" * 20
ALICE = "0x" + "a1" * 20
BOB = "0x" + "b0" * 20


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_contract_deploys_through_pipeline(name):
    result = run_pipeline(CORPUS[name], name)
    assert result.summaries  # every contract has ≥1 transition
    assert result.timings.total > 0


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_solver_report_well_formed(name):
    result = run_pipeline(CORPUS[name], name)
    report = result.solver().report()
    assert report.n_transitions == len(result.summaries)
    assert 0 <= report.largest_ge_size <= report.n_transitions
    for selection in report.maximal_ge:
        assert len(selection) <= report.largest_ge_size or True
        assert set(selection) <= set(result.summaries)


def test_corpus_has_papers_scale():
    assert len(CORPUS) >= 49


def test_eval_contracts_present_with_selections():
    for name, selection in EVAL_CONTRACTS.items():
        assert name in CORPUS
        summaries = run_pipeline(CORPUS[name], name).summaries
        assert set(selection) <= set(summaries)


def test_contract_loc_counts_nonblank():
    assert contract_loc("FungibleToken") > 100


def test_transition_count_range_matches_paper():
    counts = [len(run_pipeline(src, name).summaries)
              for name, src in CORPUS.items()]
    assert min(counts) >= 1
    assert max(counts) >= 10  # the corpus includes large contracts


# -- end-to-end behaviour of selected corpus contracts -------------------------


def fresh(name, params):
    interp = Interpreter(parse_module(CORPUS[name], name))
    return interp, interp.deploy("0xc0", params)


def test_voting_lifecycle():
    from repro.scilla.values import BNumVal
    interp, state = fresh("Voting", {
        "election_admin": addr(ADMIN), "closing": BNumVal(100)})
    r = interp.run_transition(state, "RegisterVoter",
                              {"voter": addr(ALICE)},
                              TxContext(sender=ADMIN))
    assert r.success
    r = interp.run_transition(state, "Vote",
                              {"candidate": StringVal("camellia")},
                              TxContext(sender=ALICE))
    assert r.success
    # Double voting is rejected.
    r = interp.run_transition(state, "Vote",
                              {"candidate": StringVal("camellia")},
                              TxContext(sender=ALICE))
    assert not r.success
    # Unregistered voters are rejected.
    r = interp.run_transition(state, "Vote",
                              {"candidate": StringVal("rose")},
                              TxContext(sender=BOB))
    assert not r.success
    tally = state.fields["tallies"].entries[StringVal("camellia")]
    assert tally == uint(1)


def test_htlc_claim_with_preimage():
    from repro.scilla.values import BNumVal
    import repro.scilla.builtins as bi
    preimage = StringVal("secret")
    hashlock = bi.get_builtin("sha256hash").impl([preimage])
    interp, state = fresh("HTLC", {
        "beneficiary": addr(BOB), "hashlock": hashlock,
        "timelock": BNumVal(100)})
    r = interp.run_transition(state, "Fund", {},
                              TxContext(sender=ALICE, amount=1000))
    assert r.success
    # Wrong preimage fails.
    r = interp.run_transition(state, "Claim",
                              {"preimage": StringVal("wrong")},
                              TxContext(sender=BOB))
    assert not r.success
    # Correct preimage pays the beneficiary.
    r = interp.run_transition(state, "Claim", {"preimage": preimage},
                              TxContext(sender=BOB))
    assert r.success
    (msg,) = r.messages
    assert msg.amount == 1000
    assert msg.recipient == addr(BOB).hex


def test_multisig_requires_threshold():
    interp, state = fresh("Multisig", {
        "owner_a": addr(ALICE), "owner_b": addr(BOB),
        "owner_c": addr(ADMIN), "required": IntVal(2, ty.UINT32)})
    pid = IntVal(1, ty.UINT32)
    r = interp.run_transition(
        state, "Submit",
        {"proposal_id": pid, "destination": addr("0xdd"),
         "amount": uint(500)}, TxContext(sender=ALICE))
    assert r.success
    # One confirmation is not enough.
    interp.run_transition(state, "Confirm", {"proposal_id": pid},
                          TxContext(sender=ALICE))
    r = interp.run_transition(state, "Execute", {"proposal_id": pid},
                              TxContext(sender=ALICE))
    assert not r.success
    # Second confirmation unlocks execution.
    interp.run_transition(state, "Confirm", {"proposal_id": pid},
                          TxContext(sender=BOB))
    r = interp.run_transition(state, "Execute", {"proposal_id": pid},
                              TxContext(sender=ALICE))
    assert r.success
    (msg,) = r.messages
    assert msg.amount == 500
    # Non-owners cannot submit.
    r = interp.run_transition(
        state, "Submit",
        {"proposal_id": IntVal(2, ty.UINT32),
         "destination": addr("0xdd"), "amount": uint(1)},
        TxContext(sender="0x" + "99" * 20))
    assert not r.success


def test_auction_refund_flow():
    from repro.scilla.values import BNumVal
    interp, state = fresh("AuctionRegistrar", {
        "auctioneer": addr(ADMIN), "closing": BNumVal(50)})
    r = interp.run_transition(state, "Bid", {},
                              TxContext(sender=ALICE, amount=100))
    assert r.success
    r = interp.run_transition(state, "Bid", {},
                              TxContext(sender=BOB, amount=200))
    assert r.success
    # Alice can reclaim her outbid amount.
    r = interp.run_transition(state, "WithdrawRefund", {},
                              TxContext(sender=ALICE))
    assert r.success
    (msg,) = r.messages
    assert msg.amount == 100
    # Late bid after closing fails.
    r = interp.run_transition(state, "Bid", {},
                              TxContext(sender=ALICE, amount=300,
                                        block_number=60))
    assert not r.success


def test_zeecash_double_spend_protection():
    interp, state = fresh("Zeecash", {
        "operator": addr(ADMIN), "denomination": uint(100)})
    commitment = ByStrVal("0x" + "aa" * 32, ty.PrimType("ByStr32"))
    nullifier = ByStrVal("0x" + "bb" * 32, ty.PrimType("ByStr32"))
    r = interp.run_transition(state, "Shield",
                              {"commitment": commitment},
                              TxContext(sender=ALICE, amount=100))
    assert r.success
    r = interp.run_transition(
        state, "Unshield",
        {"nullifier": nullifier, "recipient": addr(BOB)},
        TxContext(sender="0x" + "77" * 20))
    assert r.success
    # Re-using the nullifier is a double spend.
    r = interp.run_transition(
        state, "Unshield",
        {"nullifier": nullifier, "recipient": addr(BOB)},
        TxContext(sender="0x" + "77" * 20))
    assert not r.success


def test_bookstore_stock_and_buy():
    interp, state = fresh("Bookstore", {"store_owner": addr(ADMIN)})
    isbn = StringVal("978-3")
    r = interp.run_transition(
        state, "Stock", {"isbn": isbn, "count": uint(1),
                         "price": uint(30)},
        TxContext(sender=ADMIN))
    assert r.success
    r = interp.run_transition(state, "Buy", {"isbn": isbn},
                              TxContext(sender=ALICE, amount=30))
    assert r.success
    # Out of stock now.
    r = interp.run_transition(state, "Buy", {"isbn": isbn},
                              TxContext(sender=BOB, amount=30))
    assert not r.success
    assert state.fields["revenue"] == uint(30)


def test_schnorr_contract_verifies():
    from repro.scilla.builtins import make_schnorr_signature
    key = ByStrVal("0x0123", ty.PrimType("ByStr"))
    interp, state = fresh("Schnorr", {"trusted_key": key})
    msg = ByStrVal("0x" + "55" * 32, ty.PrimType("ByStr32"))
    sig = make_schnorr_signature(key, msg)
    r = interp.run_transition(state, "Verify",
                              {"message": msg, "signature": sig},
                              TxContext(sender=ALICE))
    assert r.success
    assert state.fields["verified_count"] == IntVal(1, ty.UINT64)
    bad = ByStrVal("0x" + "00" * 32, ty.PrimType("ByStr32"))
    r = interp.run_transition(state, "Verify",
                              {"message": msg, "signature": bad},
                              TxContext(sender=ALICE))
    assert not r.success


def test_analysis_is_deterministic_across_runs():
    """Analysing a contract twice yields byte-identical summaries —
    required for miner-side signature validation to be meaningful."""
    for name in ("FungibleToken", "UD_registry", "XSGD"):
        first = {t: str(s) for t, s in
                 run_pipeline(CORPUS[name], name).summaries.items()}
        second = {t: str(s) for t, s in
                  run_pipeline(CORPUS[name], name).summaries.items()}
        assert first == second
