"""Property tests (Hypothesis) for the resident-replica sync protocol.

Three laws the resident worker design leans on:

* **Reinstall = incremental sync.**  After any run, a replica that was
  installed once and then advanced only by per-commit syncs is
  indistinguishable (contract states, accounts, lane-relevant nonces)
  from one freshly installed from the authoritative coordinator state.
* **Syncs commute internally.**  A sync ships *absolute* values for
  disjoint locations, so applying its writes in any interleaving
  converges to the same replica state — the replica-level echo of the
  paper's commutativity argument for lane deltas.
* **Version gaps never corrupt.**  Applying syncs out of order, or
  with one missing, is *rejected* (the replica is dropped for
  reinstall) — it can never be silently absorbed into a wrong state.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.chain.lanes import instantiate_lane_network
from repro.chain.network import Network
from repro.chain.recovery import network_fingerprint
from repro.chain.resident import (
    ResidentSync, _Replica, _apply_sync, _store_replica,
    apply_resident_sync, build_install_task, resident_replica,
)
from repro.core.parallel import get_resident_pool
from repro.workloads.generators import FTTransfer

N_SHARDS = 4


def _observe(net, lane: int):
    """Everything a lane-`lane` replica is accountable for: contract
    states and balances, accounts, and the nonce records its own
    executions consult — used sets and its own per-lane chain.  The
    global nonce chain and other lanes' per-lane entries are excluded:
    lane acceptance never reads them (install payloads do not even
    ship ``last_global``), they are coordinator-side merge state."""
    return (
        network_fingerprint(net),
        {a: (acc.balance, dict(sorted(acc.shard_portions.items())))
         for a, acc in sorted(net.accounts.items())},
        {s: tuple(sorted(v))
         for s, v in sorted(net.nonces.used.items()) if v},
        {pair: v
         for pair, v in sorted(net.nonces.last_per_lane.items())
         if pair[1] == lane},
    )


def _drain_thread_slots(net) -> None:
    """Wait for every fire-and-forget sync push to finish: the slots
    are FIFO, so a barrier task per lane flushes the queues."""
    pool = get_resident_pool("thread", net.lane_workers)
    for lane in range(N_SHARDS):
        pool.submit(lane, int).result(timeout=30)


def _resident_run(epochs: int, txns: int, seed: int,
                  capture: list[ResidentSync] | None = None) -> Network:
    net = Network(N_SHARDS, use_signatures=True, executor="thread",
                  resident=True)
    if capture is not None:
        tracker = net._resident_tracker
        orig = tracker._push_sync

        def capturing_push(push_net, sync, targets):
            capture.append(sync)
            return orig(push_net, sync, targets)

        tracker._push_sync = capturing_push
    workload = FTTransfer(n_users=12, txns_per_epoch=txns, seed=seed)
    workload.setup(net)
    for epoch in range(epochs):
        net.process_epoch(workload.transactions(epoch))
    return net


@settings(max_examples=8, deadline=None)
@given(epochs=st.integers(min_value=2, max_value=4),
       txns=st.integers(min_value=8, max_value=20),
       seed=st.integers(min_value=0, max_value=2**16))
def test_incremental_sync_equals_reinstall(epochs, txns, seed):
    net = _resident_run(epochs, txns, seed)
    tracker = net._resident_tracker
    _drain_thread_slots(net)

    installed = [(key, version) for key, version in
                 tracker.installed.items() if key[0] == "thread"]
    assert installed, "vacuity: no replica survived the run"
    for (strategy, lane), version in installed:
        assert version == tracker.version
        replica = resident_replica(tracker.gen, lane)
        assert replica is not None
        fresh = instantiate_lane_network(
            build_install_task(net, lane, ship_modules=True))
        assert _observe(replica, lane) == _observe(fresh, lane)


def _shuffled_sync(sync: ResidentSync, rng) -> ResidentSync:
    """The same sync with every component's application order
    permuted (dicts replay in insertion order, so reshuffling the
    key order is a genuine interleaving change)."""
    def shuffled_dict(d):
        keys = list(d)
        rng.shuffle(keys)
        return {k: d[k] for k in keys}

    writes = list(sync.contract_writes)
    rng.shuffle(writes)
    return ResidentSync(
        prev_version=sync.prev_version, version=sync.version,
        contract_writes=writes,
        contract_balances=shuffled_dict(sync.contract_balances),
        accounts=shuffled_dict(sync.accounts),
        nonce_used=shuffled_dict(sync.nonce_used),
        nonce_last_global=shuffled_dict(sync.nonce_last_global),
        nonce_last_per_lane=shuffled_dict(sync.nonce_last_per_lane))


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       shuffle_seed=st.randoms(use_true_random=False))
def test_shuffled_sync_application_converges(seed, shuffle_seed):
    lane = 0
    captured: list[ResidentSync] = []
    net = _resident_run(3, 12, seed, capture=captured)
    assert captured, "vacuity: the run pushed no syncs"

    # Two manual replicas pinned at the version the first captured
    # sync starts from (installs must not share payload objects).
    base_version = captured[0].prev_version
    in_order = instantiate_lane_network(
        build_install_task(net, lane, ship_modules=True))
    shuffled = instantiate_lane_network(
        build_install_task(net, lane, ship_modules=True))
    # The install reflects the *final* authoritative state; re-applying
    # the run's syncs must be idempotent (absolute values), so both
    # replicas converge to it no matter the interleaving.
    for sync in captured:
        _apply_sync(in_order, lane, sync)
        _apply_sync(shuffled, lane, _shuffled_sync(sync, shuffle_seed))

    authoritative = instantiate_lane_network(
        build_install_task(net, lane, ship_modules=True))
    assert _observe(in_order, lane) == _observe(authoritative, lane)
    assert _observe(shuffled, lane) == _observe(authoritative, lane)
    assert base_version < captured[-1].version


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       data=st.data())
def test_version_gap_is_rejected_not_absorbed(seed, data):
    lane = 0
    captured: list[ResidentSync] = []
    net = _resident_run(4, 10, seed, capture=captured)
    assert len(captured) >= 2, "vacuity: need at least two syncs"
    tracker = net._resident_tracker

    # A private replica keyed away from the live run's, pinned at the
    # first captured sync's starting version.
    gen = tracker.gen + 1_000_000
    replica_net = instantiate_lane_network(
        build_install_task(net, lane, ship_modules=True))
    _store_replica((gen, lane),
                   _Replica(replica_net, captured[0].prev_version))

    skip = data.draw(st.integers(min_value=0,
                                 max_value=len(captured) - 2),
                     label="index of the dropped sync")
    for i, sync in enumerate(captured):
        if i == skip:
            continue            # the lost sync: never delivered
        applied = apply_resident_sync(gen, lane, sync)
        if i < skip:
            assert applied
        else:
            # The first sync after the gap is rejected and the replica
            # dropped; everything later finds no replica at all.
            assert not applied
            assert resident_replica(gen, lane) is None