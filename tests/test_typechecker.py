"""Type-checker tests: acceptance, rejection, and warning behaviour."""

import pytest

from repro.scilla.errors import TypeError_
from repro.scilla.parser import parse_module
from repro.scilla.typechecker import typecheck_module


def check(source: str):
    return typecheck_module(parse_module(source))


def wrap(fields: str = "", body: str = "", params: str = "",
         lib: str = "") -> str:
    return f"""
    scilla_version 0
    library T
    {lib}
    contract T (owner: ByStr20)
    {fields}
    transition Go ({params})
      {body}
    end
    """


def test_well_typed_module_passes():
    check(wrap(fields="field n : Uint128 = Uint128 0",
               body="x <- n;\n y = builtin add x x;\n n := y"))


def test_field_initialiser_type_mismatch():
    with pytest.raises(TypeError_):
        check(wrap(fields="field n : Uint128 = Uint32 0"))


def test_store_type_mismatch():
    with pytest.raises(TypeError_):
        check(wrap(fields="field n : Uint128 = Uint128 0",
                   body='n := "text"'))


def test_map_key_type_mismatch():
    with pytest.raises(TypeError_):
        check(wrap(
            fields="field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128",
            body="m[owner] := owner"))


def test_map_value_type_checked():
    check(wrap(
        fields="field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128",
        body="v = Uint128 3;\n m[owner] := v"))


def test_too_many_map_keys_rejected():
    with pytest.raises(TypeError_):
        check(wrap(
            fields="field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128",
            body="v = Uint128 3;\n m[owner][owner] := v"))


def test_unknown_field_rejected():
    with pytest.raises(TypeError_):
        check(wrap(body="x <- missing"))


def test_unbound_identifier_rejected():
    with pytest.raises(TypeError_):
        check(wrap(body="y = builtin add ghost ghost"))


def test_builtin_arg_type_mismatch():
    with pytest.raises(TypeError_):
        check(wrap(body='y = builtin add owner owner'))


def test_mixed_width_arithmetic_rejected():
    with pytest.raises(TypeError_):
        check(wrap(body="a = Uint128 1;\n b = Uint32 1;\n"
                        " c = builtin add a b"))


def test_match_clause_types_must_agree():
    with pytest.raises(TypeError_):
        check(wrap(
            body='flag = True;\n'
                 'x = match flag with\n'
                 '| True => Uint128 1\n'
                 '| False => "nope"\n'
                 'end'))


def test_match_scrutinee_must_be_adt():
    with pytest.raises(TypeError_):
        check(wrap(body='x = Uint128 1;\n'
                        'match x with | True => | False => end'))


def test_constructor_from_wrong_adt_in_pattern():
    with pytest.raises(TypeError_):
        check(wrap(body='flag = True;\n'
                        'match flag with | Some v => | None => end'))


def test_nonexhaustive_match_warns_but_passes():
    warnings = check(wrap(
        body='flag = True;\n match flag with | True => end'))
    assert any("does not cover" in w for w in warnings)


def test_send_requires_list_of_messages():
    with pytest.raises(TypeError_):
        check(wrap(body='m = { _tag : "x"; _recipient : owner;'
                        ' _amount : Uint128 0 };\n send m'))


def test_send_accepts_message_list():
    check(wrap(body='m = { _tag : "x"; _recipient : owner;'
                    ' _amount : Uint128 0 };\n'
                    ' ms = one_msg m;\n send ms'))


def test_event_requires_message():
    with pytest.raises(TypeError_):
        check(wrap(body="x = Uint128 1;\n event x"))


def test_procedure_arity_checked():
    src = """
    scilla_version 0
    contract T (owner: ByStr20)
    procedure P (x: Uint128)
    end
    transition Go ()
      P
    end
    """
    with pytest.raises(TypeError_):
        check(src)


def test_procedure_arg_type_checked():
    src = """
    scilla_version 0
    contract T (owner: ByStr20)
    procedure P (x: Uint128)
    end
    transition Go ()
      P owner
    end
    """
    with pytest.raises(TypeError_):
        check(src)


def test_calling_transition_as_procedure_rejected():
    src = """
    scilla_version 0
    contract T (owner: ByStr20)
    transition Other ()
    end
    transition Go ()
      Other
    end
    """
    with pytest.raises(TypeError_):
        check(src)


def test_duplicate_component_rejected():
    src = """
    scilla_version 0
    contract T (owner: ByStr20)
    transition Go ()
    end
    transition Go ()
    end
    """
    with pytest.raises(TypeError_):
        check(src)


def test_non_storable_field_rejected():
    with pytest.raises(TypeError_):
        check(wrap(fields="field f : Uint128 -> Uint128 = "
                          "fun (x: Uint128) => x"))


def test_library_annotation_checked():
    with pytest.raises(TypeError_):
        check(wrap(lib="let zero : Uint32 = Uint128 0"))


def test_polymorphic_library_function():
    check(wrap(
        lib="let identity = tfun 'A => fun (x: 'A) => x",
        body="f = @identity Uint128;\n x = Uint128 1;\n y = f x"))


def test_type_application_on_monomorphic_rejected():
    with pytest.raises(TypeError_):
        check(wrap(lib="let two = Uint128 2",
                   body="f = @two Uint128"))


def test_user_adt_usable_in_match():
    src = """
    scilla_version 0
    library L
    type Light =
    | Off
    | On of Uint32
    let dim = Uint32 1
    let lamp = On dim
    contract C (o: ByStr20)
    transition T ()
      x = lamp;
      match x with
      | Off =>
      | On level =>
      end
    end
    """
    assert check(src) == []


def test_implicit_params_in_scope():
    check(wrap(body="s = _sender;\n a = _amount;\n o = _origin"))


def test_native_list_functions_typed():
    check(wrap(
        body="lst = Nil {Uint128};\n"
             " len_op = @list_length Uint128;\n"
             " n = len_op lst"))
