"""Smoke tests for the eval-layer report formatters.

These formatters were previously exercised only by hand via the CLI;
each test builds a small result object directly (no expensive
experiment run) and checks the rendered report carries the numbers
that matter, so a broken format string fails here rather than in a
user's terminal.
"""

from repro.core.solver import GEReport
from repro.eval.ablation import AblationResult, AblationRow, format_ablation
from repro.eval.parallel_bench import (
    ParallelBenchResult, WorkloadTiming, format_parallel_bench,
)
from repro.eval.ethereum_breakdown import Fig1Result, format_fig1
from repro.eval.ge_stats import Fig13Result, format_fig13
from repro.eval import ethereum_breakdown as eth_mod


def test_format_ablation_lists_every_row():
    result = AblationResult(rows=[
        AblationRow(experiment="routing", variant="signatures",
                    tps=123.4, committed=600, offered=640),
        AblationRow(experiment="routing", variant="round-robin",
                    tps=45.6, committed=580, offered=640),
    ])
    text = format_ablation(result)
    assert "signatures" in text and "round-robin" in text
    assert "123.4" in text and "45.6" in text
    assert text.splitlines()[0].startswith("Sec. 5.2.3")


def test_format_fig13_histogram_and_scatter():
    result = Fig13Result(reports=[
        GEReport(contract="Tiny", n_transitions=2, largest_ge_size=2,
                 largest_ge=("A", "B"), maximal_ge=[("A", "B")]),
        GEReport(contract="Wide", n_transitions=2, largest_ge_size=1,
                 largest_ge=("A",), maximal_ge=[("A",), ("B",)]),
        GEReport(contract="Big", n_transitions=5, largest_ge_size=4,
                 largest_ge=("A", "B", "C", "D"),
                 maximal_ge=[("A", "B", "C", "D")]),
    ])
    text = format_fig13(result)
    # Histogram: two contracts with 2 transitions, one with 5.
    assert "2 transitions: ██ 2" in text
    assert "5 transitions: █ 1" in text
    for name in ("Tiny", "Wide", "Big"):
        assert name in text
    # The scatter helpers agree with the report rows.
    assert result.transition_histogram() == {2: 2, 5: 1}
    assert (5, 4) in result.largest_ge_points()
    assert (2, 2) in result.maximal_ge_points()


def test_format_fig1_renders_bins_and_margin():
    result = Fig1Result(
        bin_size=500_000, sampled_blocks=10, sampled_txns=660,
        margin_of_error=0.0123,
        breakdown={0: {eth_mod.eth.TRANSFER: 60.0,
                       eth_mod.eth.SINGLE_CALL: 30.0,
                       eth_mod.eth.MULTI_CALL: 5.0,
                       eth_mod.eth.OTHER: 5.0}},
        single_call_split={0: {eth_mod.eth.ERC20_CALL: 75.0}},
    )
    text = format_fig1(result)
    assert "10 blocks / 660 txns" in text
    assert "1.23%" in text            # margin of error, rendered as %
    assert "60.0%" in text and "75.0%" in text


def _bench_result(**kwargs):
    result = ParallelBenchResult(
        requested_workers=4, effective_workers=4, executor="thread",
        n_shards=4, epochs=12, cpu_count=8, **kwargs)
    result.rows = [
        WorkloadTiming("FT transfer", 4000, 48,
                       serial_s=1.0, fresh_s=2.0, resident_s=0.8),
        WorkloadTiming("FT fund", 240, 48,
                       serial_s=0.1, fresh_s=0.12, resident_s=0.1),
    ]
    return result


def test_format_parallel_bench_rows_and_headline():
    text = format_parallel_bench(_bench_result())
    assert "2 workloads, 4 shards, 4 thread worker(s)" in text
    assert "FT transfer" in text and "FT fund" in text
    # Headline: total fresh (2.12s) over total resident (0.9s).
    assert "speedup (fresh/resident): 2.36x" in text
    assert "speedup vs serial:        1.22x" in text
    assert "WARNING" not in text


def test_format_parallel_bench_notes_fallbacks():
    text = format_parallel_bench(_bench_result(fallbacks=3))
    assert "WARNING: 3 lane run(s) silently fell back" in text


def test_parallel_bench_json_records_workers_honestly():
    payload = _bench_result().to_json_dict()
    assert payload["benchmark"] == "parallel-epochs"
    assert payload["workers"] == {
        "requested": 4, "effective": 4,
        "default": payload["workers"]["default"], "cpu_count": 8}
    assert payload["timing"]["speedup"] == 2.36
    assert [w["workload"] for w in payload["workloads"]] == \
        ["FT transfer", "FT fund"]
