"""Acceptance oracle for lane supervision: every Fig. 14 workload,
run under injected hung and killed lane workers with a tight per-lane
deadline, must finish its epochs and end byte-identical to the
fault-free serial run — for the thread *and* the process executor,
with zero whole-epoch serial fallbacks.

This is the tentpole contract: no single worker failure stalls an
epoch past its deadline or forces discarding unaffected lanes.
"""

from __future__ import annotations

import pytest

from repro.chain.faults import FaultEvent, FaultKind, FaultPlan
from repro.chain.network import Network
from repro.chain.recovery import network_fingerprint
from repro.obs.metrics import MetricsRegistry
from repro.workloads.generators import ALL_WORKLOADS

N_SHARDS = 4
EPOCHS = 3
DEADLINE_S = 0.5

# One hung worker and one killed worker, placed mid-run so every
# workload's measured epochs hit both failure modes.
WORKER_FAULT_PLAN = [FaultEvent(2, FaultKind.HANG_WORKER, 1),
                     FaultEvent(3, FaultKind.KILL_WORKER, 0)]

_serial_cache: dict[str, dict[str, str]] = {}


def _run(workload_cls, executor: str, plan: FaultPlan | None,
         metrics=None) -> Network:
    net = Network(N_SHARDS, use_signatures=True, fault_plan=plan,
                  executor=executor, lane_deadline_s=DEADLINE_S,
                  metrics=metrics)
    workload = workload_cls(n_users=16, txns_per_epoch=24, seed=11)
    workload.setup(net)
    for epoch in range(EPOCHS):
        net.process_epoch(workload.transactions(epoch))
    return net


def _serial_fingerprint(workload_cls) -> dict[str, str]:
    key = workload_cls.__name__
    if key not in _serial_cache:
        _serial_cache[key] = network_fingerprint(
            _run(workload_cls, "serial", plan=None))
    return _serial_cache[key]


@pytest.mark.parametrize("executor", ("thread", "process"))
@pytest.mark.parametrize("workload_cls", ALL_WORKLOADS,
                         ids=[c.__name__ for c in ALL_WORKLOADS])
def test_worker_faults_do_not_change_final_state(workload_cls,
                                                 executor):
    plan = FaultPlan(list(WORKER_FAULT_PLAN))
    registry = MetricsRegistry()
    net = _run(workload_cls, executor, plan, metrics=registry)

    assert network_fingerprint(net) == _serial_fingerprint(workload_cls)
    # Unaffected lanes kept their results: the supervisor absorbed
    # every fault without a whole-epoch serial fallback.
    assert net.executor_fallbacks == 0
    # Vacuity guard: the faults really happened and were classified.
    counters = registry.snapshot()["counters"]
    failures = sum(v["value"] for k, v in counters.items()
                   if k.startswith("supervise.failures."))
    assert failures >= 2
    recovered = counters.get("supervise.lane_retries",
                             {}).get("value", 0) \
        + counters.get("supervise.lane_rescues", {}).get("value", 0)
    assert recovered >= 2
    if executor == "process":
        # The hung worker was reaped, not waited out.
        assert counters["supervise.pool_rebuilds"]["value"] >= 1
