"""CLI tests (``python -m repro``)."""

import os

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_analyze_corpus_contract(capsys):
    code, out = run_cli(capsys, "analyze", "corpus:Crowdfunding")
    assert code == 0
    assert "Summary(Donate)" in out
    assert "AcceptFunds" in out
    assert "µs" in out


def test_analyze_file(tmp_path, capsys):
    from repro.contracts import CORPUS
    path = tmp_path / "c.scilla"
    path.write_text(CORPUS["HelloWorld"])
    code, out = run_cli(capsys, "analyze", str(path))
    assert code == 0
    assert "Summary(SetHello)" in out


def test_analyze_unknown_corpus_name():
    with pytest.raises(SystemExit):
        main(["analyze", "corpus:Nonexistent"])


def test_signature_with_selection(capsys):
    code, out = run_cli(capsys, "signature", "corpus:FungibleToken",
                        "Mint", "Transfer")
    assert code == 0
    assert "ShardingSignature" in out
    assert "IntMerge" in out


def test_signature_ownership_only(capsys):
    code, out = run_cli(capsys, "signature", "corpus:FungibleToken",
                        "Transfer", "--ownership-only")
    assert code == 0
    assert "IntMerge" not in out
    assert "OwnOverwrite" in out


def test_signature_unknown_transition():
    with pytest.raises(SystemExit):
        main(["signature", "corpus:FungibleToken", "Ghost"])


def test_solve(capsys):
    code, out = run_cli(capsys, "solve", "corpus:NonfungibleToken")
    assert code == 0
    assert "largest good-enough signature: 3" in out
    assert out.count("maximal:") == 2


def test_diagnose(capsys):
    code, out = run_cli(capsys, "diagnose", "corpus:NonfungibleToken")
    assert code == 0
    assert "Approve: NOT shardable" in out
    assert "state-derived map key" in out


def test_repair_prints_rewritten_contract(capsys):
    code, out = run_cli(capsys, "repair", "corpus:NonfungibleToken",
                        "Approve")
    assert code == 0
    assert "expected_actual_owner" in out
    assert "RequireEq" in out
    # The printed contract must be re-parseable.
    from repro.scilla.parser import parse_module
    printed = out[out.index("scilla_version"):]
    parse_module(printed)


def test_repair_nothing_to_do(capsys):
    code, out = run_cli(capsys, "repair", "corpus:HelloWorld")
    assert code == 0
    assert "nothing to repair" in out


def test_bench_table(capsys):
    code, out = run_cli(capsys, "bench", "table")
    assert code == 0
    assert "FungibleToken" in out
    assert "✓" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_corpus_export_roundtrips(tmp_path, capsys):
    code, out = run_cli(capsys, "corpus", "--export", str(tmp_path))
    assert code == 0
    files = sorted(tmp_path.glob("*.scilla"))
    from repro.contracts import CORPUS
    assert len(files) == len(CORPUS)
    # Exported files are themselves analysable through the CLI.
    code, out = run_cli(capsys, "analyze",
                        str(tmp_path / "HelloWorld.scilla"))
    assert code == 0
    assert "Summary(SetHello)" in out


def test_bench_parallel_writes_json(tmp_path, capsys, monkeypatch):
    import json

    import repro.eval.parallel_bench as pb
    from repro.workloads.generators import FTTransfer

    # Shrink the bench so the CLI test stays fast; the full-size run
    # lives in benchmarks/test_parallel_speedup.py.
    monkeypatch.setattr(pb, "ALL_WORKLOADS", [FTTransfer])
    monkeypatch.setattr(pb, "HEAVY_USERS", 64)
    out_file = tmp_path / "BENCH_parallel.json"
    code, out = run_cli(capsys, "bench", "parallel",
                        "--workers", "2", "--epochs", "2",
                        "--output", str(out_file))
    assert code == 0
    assert "Parallel epochs" in out
    payload = json.loads(out_file.read_text())
    assert payload["benchmark"] == "parallel-epochs"
    # Worker counts are recorded honestly: what was asked, what ran,
    # and the hardware context (the old bench hard-coded workers=1).
    assert payload["workers"]["requested"] == 2
    assert payload["workers"]["effective"] == 2
    assert payload["workers"]["cpu_count"] == (os.cpu_count() or 1)
    assert payload["resident"]["lane.resident.installs"] >= 4
    assert payload["fallbacks"] == 0
