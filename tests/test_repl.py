"""Scilla REPL session tests."""

from repro.scilla.repl import ReplSession
from repro.scilla.values import uint


def test_eval_expression():
    s = ReplSession()
    assert s.eval("let a = Uint128 2 in builtin add a a") == uint(4)


def test_let_binding_persists():
    s = ReplSession()
    s.handle(":let x = Uint128 5")
    assert s.eval("builtin add x x") == uint(10)


def test_type_query():
    s = ReplSession()
    assert s.handle(":type Uint128 1") == "Uint128"
    assert s.handle(":type fun (x: Uint128) => x") == "Uint128 -> Uint128"


def test_type_of_bound_value():
    s = ReplSession()
    s.handle(':let who = 0xabababababababababababababababababababab')
    assert s.handle(":type who") == "ByStr20"


def test_env_listing():
    s = ReplSession()
    assert s.handle(":env") == "(no bindings)"
    s.handle(":let one = Uint128 1")
    assert "one = Uint128 1" in s.handle(":env")


def test_errors_are_reported_not_raised():
    s = ReplSession()
    out = s.handle("builtin add x y")
    assert out.startswith("error:")
    out = s.handle("((((")
    assert out.startswith("error:")


def test_quit_and_blank_lines():
    s = ReplSession()
    assert s.handle("") == ""
    assert s.handle(":quit") is None


def test_prelude_available():
    s = ReplSession()
    assert str(s.eval("let a = True in negb a")) == "False"


def test_help():
    s = ReplSession()
    assert ":type" in s.handle(":help")


def test_malformed_let():
    s = ReplSession()
    assert "usage" in s.handle(":let oops")
