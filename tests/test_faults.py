"""FaultPlan / FaultInjector unit tests (determinism, churn, tampering)."""

import random

from repro.chain.faults import (
    CHURN_FAULTS, DELTA_FAULTS, EQUIVALENCE_PRESERVING,
    MICROBLOCK_FAULTS, WORKER_FAULTS, FaultEvent, FaultInjector,
    FaultKind, FaultPlan, _perturb_key,
)
from repro.chain.transaction import payment
from repro.scilla.values import (
    ADTVal, BNumVal, ByStrVal, StringVal, uint,
)
from repro.scilla import types as ty
from repro.chain.dispatch import key_token


def test_random_plan_is_deterministic():
    a = FaultPlan.random(seed=42, epochs=20, n_shards=4, churn_rate=0.2)
    b = FaultPlan.random(seed=42, epochs=20, n_shards=4, churn_rate=0.2)
    assert a.events == b.events
    assert a.describe() == b.describe()
    c = FaultPlan.random(seed=43, epochs=20, n_shards=4, churn_rate=0.2)
    assert a.events != c.events


def test_random_plan_schedules_at_most_one_lane_fault_per_cell():
    plan = FaultPlan.random(seed=7, epochs=50, n_shards=4,
                            crash_rate=0.3, delay_rate=0.3,
                            drop_rate=0.2, corrupt_rate=0.1,
                            forge_rate=0.1)
    seen = set()
    for event in plan.events:
        assert event.shard is not None
        assert (event.epoch, event.shard) not in seen
        seen.add((event.epoch, event.shard))
    assert len(plan) > 0


def test_lane_fault_queries_partition_kinds():
    events = [
        FaultEvent(3, FaultKind.CRASH_SHARD, 0),
        FaultEvent(3, FaultKind.DELAY_MICROBLOCK, 1),
        FaultEvent(3, FaultKind.CORRUPT_DELTA, 2),
        FaultEvent(4, FaultKind.DROP_TX),
    ]
    plan = FaultPlan(events)
    injector = FaultInjector(plan)
    assert injector.crashed_shards(3) == [0]
    assert injector.microblock_faults(3) == {
        1: FaultKind.DELAY_MICROBLOCK}
    assert injector.delta_faults(3) == {2: FaultKind.CORRUPT_DELTA}
    assert injector.crashed_shards(4) == []
    assert plan.events_for(4) == [FaultEvent(4, FaultKind.DROP_TX)]


def test_equivalence_preserving_classification():
    assert MICROBLOCK_FAULTS | DELTA_FAULTS | WORKER_FAULTS \
        | {FaultKind.CRASH_SHARD} == EQUIVALENCE_PRESERVING
    lanes_only = FaultPlan([FaultEvent(1, FaultKind.CRASH_SHARD, 0)])
    assert lanes_only.equivalence_preserving
    with_churn = FaultPlan([FaultEvent(1, FaultKind.CRASH_SHARD, 0),
                            FaultEvent(2, FaultKind.DROP_TX)])
    assert not with_churn.equivalence_preserving
    assert CHURN_FAULTS.isdisjoint(EQUIVALENCE_PRESERVING)


def test_churn_drop_duplicate_reorder():
    txns = [payment(f"0x{i:040x}", f"0x{i + 1:040x}", 1, nonce=1)
            for i in range(8)]
    plan = FaultPlan([FaultEvent(1, FaultKind.DROP_TX),
                      FaultEvent(2, FaultKind.DUPLICATE_TX),
                      FaultEvent(3, FaultKind.REORDER_TXNS)])
    injector = FaultInjector(plan)
    log: list[str] = []
    dropped = injector.churn_mempool(1, txns, log)
    assert len(dropped) == len(txns) - 1
    assert len(injector.dropped) == 1
    duplicated = injector.churn_mempool(2, txns, log)
    assert len(duplicated) == len(txns) + 1
    reordered = injector.churn_mempool(3, txns, log)
    assert sorted(t.tx_id for t in reordered) == \
        sorted(t.tx_id for t in txns)
    assert injector.churn_mempool(4, txns, log) == txns  # no event
    assert len(log) == 3
    # Deterministic: a fresh injector makes the same choices.
    again = FaultInjector(FaultPlan(plan.events, seed=plan.seed))
    assert [t.tx_id for t in again.churn_mempool(3, txns, [])] == \
        [t.tx_id for t in reordered]


def test_perturb_key_changes_token_but_keeps_type():
    for value in (uint(5), StringVal("abc"),
                  ByStrVal("0x" + "ab" * 20, ty.PrimType("ByStr20")),
                  BNumVal(12)):
        for step in range(4):
            out = _perturb_key(value, step)
            assert out is not None
            assert type(out) is type(value)
            assert key_token(out) != key_token(value)
    adt = ADTVal("Bool", "True", ())
    assert _perturb_key(adt, 0) is None


def test_plan_sorts_events_deterministically():
    rng = random.Random(0)
    events = [FaultEvent(rng.randrange(5), FaultKind.CRASH_SHARD,
                         rng.randrange(3)) for _ in range(10)]
    a = FaultPlan(events)
    b = FaultPlan(list(reversed(events)))
    assert a.events == b.events
