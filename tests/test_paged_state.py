"""Out-of-core paged state: property battery and durability spine.

The contract this file enforces, in three layers:

* **Observational identity.**  A :class:`~repro.scilla.backend.PagedDict`
  under any interleaving of dict-protocol operations — with a cache
  small enough to force faults and evictions mid-sequence — is
  byte-identical to a plain dict given the same operations, for both
  backends.
* **Journal and CoW invariants survive paging.**  Rolling a
  :class:`~repro.scilla.state.StateJournal` checkpoint back after
  evictions restores the exact pre-mark state; a CoW fork of a paged
  map copies only the resident overlay (never the backing rows) and
  isolates both sides.
* **The durability spine.**  Snapshots of a sqlite-backed network pin
  a digest-verified sidecar: resume round-trips byte-identically, a
  tampered or missing sidecar is a typed ``StoreError`` (never a
  silent empty store), and retention reclaims sidecars with their
  snapshots.
"""

from __future__ import annotations

import os
import resource
import sqlite3

import pytest
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.chain.network import Network
from repro.chain.recovery import network_fingerprint, state_fingerprint
from repro.chain.store import SnapshotStore, StoreError
from repro.scilla import types as ty
from repro.scilla.backend import MemoryBackend, PagedDict, SqliteBackend
from repro.scilla.state import ContractState, StateJournal
from repro.scilla.values import MapVal, StringVal, uint
from repro.workloads.generators import FTTransfer

import repro.scilla.values as values_mod


def _key(i: int) -> StringVal:
    return StringVal(f"k{i:04d}")


def _backend(kind: str):
    return MemoryBackend() if kind == "memory" else SqliteBackend()


def _paged_from(backend, entries: dict, cache: int) -> PagedDict:
    return PagedDict.adopt(backend, entries, cache_limit=cache)


# op = (code, key_index, value); codes: 0 put, 1 pop, 2 get,
# 3 contains, 4 len, 5 full iteration
OPS = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 15), st.integers(0, 99)),
    max_size=40)
SEED_ENTRIES = st.dictionaries(
    st.integers(0, 15), st.integers(0, 99), max_size=12)


class TestPagedMatchesDict:
    @settings(max_examples=60, deadline=None)
    @given(seed=SEED_ENTRIES, ops=OPS, kind=st.sampled_from(
        ["memory", "sqlite"]), cache=st.integers(1, 6))
    def test_arbitrary_interleavings(self, seed, ops, kind, cache):
        plain = {_key(i): uint(v) for i, v in seed.items()}
        backend = _backend(kind)
        paged = _paged_from(backend, dict(plain), cache)
        for code, i, v in ops:
            k = _key(i)
            if code == 0:
                plain[k] = uint(v)
                paged[k] = uint(v)
            elif code == 1:
                assert plain.pop(k, None) == paged.pop(k, None)
            elif code == 2:
                assert plain.get(k) == paged.get(k)
            elif code == 3:
                assert (k in plain) == (k in paged)
            elif code == 4:
                assert len(plain) == len(paged)
            else:
                assert dict(paged.items()) == plain
        assert paged == plain
        # Writing back and re-reading through a fresh view over the
        # same rows must also agree.
        paged.flush()
        fresh = PagedDict(backend, paged.map_id, count=len(plain),
                          cache_limit=cache)
        assert fresh == plain
        backend.close()

    @settings(max_examples=25, deadline=None)
    @given(seed=SEED_ENTRIES, ops=OPS, cache=st.integers(1, 4))
    def test_backends_agree_on_digest(self, seed, ops, cache):
        digests = []
        for kind in ("memory", "sqlite"):
            backend = _backend(kind)
            paged = _paged_from(
                backend, {_key(i): uint(v) for i, v in seed.items()},
                cache)
            for code, i, v in ops:
                if code == 0:
                    paged[_key(i)] = uint(v)
                elif code == 1:
                    paged.pop(_key(i), None)
            paged.flush()
            digests.append(backend.digest())
            backend.close()
        assert digests[0] == digests[1]


def _paged_state(backend, n: int, cache: int) -> ContractState:
    balances = MapVal(ty.STRING, ty.UINT128)
    for i in range(n):
        balances.entries[_key(i)] = uint(i)
    state = ContractState(
        address="0x" + "cd" * 20,
        fields={"balances": balances, "supply": uint(n)},
        field_types={"balances": ty.MapType(ty.STRING, ty.UINT128),
                     "supply": ty.UINT128})
    balances.entries = PagedDict.adopt(backend, balances.entries,
                                       cache_limit=cache)
    return state


class TestJournalAndCow:
    @settings(max_examples=40, deadline=None)
    @given(writes=st.lists(
        st.tuples(st.booleans(), st.integers(0, 30), st.integers(0, 99)),
        max_size=30),
        kind=st.sampled_from(["memory", "sqlite"]))
    def test_rollback_after_eviction_restores_exact_state(
            self, writes, kind):
        backend = _backend(kind)
        state = _paged_state(backend, 20, cache=2)
        journal = StateJournal()
        state.journal = journal
        before = state_fingerprint(state)
        mark = journal.mark()
        for is_delete, i, v in writes:
            if is_delete:
                state.map_delete("balances", (_key(i),))
            else:
                state.map_put("balances", (_key(i),), uint(v))
        # The tiny cache forces evictions *between* the journaled
        # writes; the undo entries must still restore exactly.
        journal.rollback_to(mark)
        journal.release(mark)
        assert state_fingerprint(state) == before
        backend.close()

    def test_cow_fork_never_double_materialises(self):
        backend = SqliteBackend()
        state = _paged_state(backend, 500, cache=8)
        original = state.fields["balances"]
        rows_before = backend.count(original.entries.map_id)

        fork = original.copy()
        assert fork.entries is original.entries     # O(1) fork

        fork.put(_key(1), uint(999))                # first write owns
        assert isinstance(fork.entries, PagedDict)
        assert fork.entries is not original.entries
        # Both sides keep sharing the same backing rows: owning copied
        # the resident overlay only, it did not clone the map rows or
        # pull them into memory.
        assert fork.entries.map_id == original.entries.map_id
        assert backend.count(original.entries.map_id) == rows_before
        assert len(fork.entries._local) <= 8 + len(
            fork.entries._dirty) + 1

        # Isolation both ways.
        assert original.entries.get(_key(1)) == uint(1)
        assert fork.entries[_key(1)] == uint(999)
        original.put(_key(2), uint(888))
        assert fork.entries.get(_key(2)) == uint(2)
        backend.close()

    def test_own_counts_one_cow_copy(self):
        backend = MemoryBackend()
        state = _paged_state(backend, 10, cache=4)
        fork = state.fields["balances"].copy()
        before = values_mod.COW_COPIES
        fork.put(_key(0), uint(42))
        fork.put(_key(1), uint(43))      # second write is already owned
        assert values_mod.COW_COPIES == before + 1


class TestEquivalenceAgainstPlainState:
    @pytest.mark.parametrize("kind", ["memory", "sqlite"])
    def test_workload_fingerprints_identical(self, kind):
        def run(backend_spec):
            wl = FTTransfer(n_users=12, txns_per_epoch=25, seed=3)
            net = Network(4, use_signatures=True, executor="serial",
                          state_backend=backend_spec)
            wl.setup(net)
            for epoch in range(1, 7):
                net.process_epoch(wl.transactions(epoch))
            return network_fingerprint(net)

        assert run("none") == run(kind)


class TestDurabilitySpine:
    def _durable_run(self, data_dir, *, epochs=6, backend="sqlite"):
        wl = FTTransfer(n_users=10, txns_per_epoch=20, seed=5)
        net = Network(2, use_signatures=True, executor="serial",
                      data_dir=data_dir, snapshot_every=2,
                      state_backend=backend)
        wl.setup(net)
        for epoch in range(1, epochs + 1):
            net.process_epoch(wl.transactions(epoch))
        fp = network_fingerprint(net)
        net.close()
        return fp

    def test_resume_round_trips_byte_identical(self, tmp_path):
        d = str(tmp_path)
        fp = self._durable_run(d)
        resumed = Network.resume(d)
        assert network_fingerprint(resumed) == fp
        assert resumed.state_backend is not None
        assert resumed.state_backend.kind == "sqlite"
        # The restored state is still paged, not silently inlined.
        some_state = next(iter(resumed.contracts.values())).state
        assert any(isinstance(getattr(v, "entries", None), PagedDict)
                   for v in some_state.fields.values())
        resumed.close()

    def test_resume_matches_backendless_resume(self, tmp_path):
        plain = str(tmp_path / "plain")
        paged = str(tmp_path / "paged")
        fp_plain = self._durable_run(plain, backend="none")
        fp_paged = self._durable_run(paged, backend="sqlite")
        assert fp_plain == fp_paged
        a = Network.resume(plain)
        b = Network.resume(paged)
        assert network_fingerprint(a) == network_fingerprint(b)
        a.close()
        b.close()

    def _newest_sidecar(self, data_dir):
        store = SnapshotStore(data_dir)
        sidecars = store.backend_paths()
        assert sidecars, "durable paged run produced no sidecar"
        return sidecars[-1]

    def test_tampered_sidecar_is_a_typed_store_error(self, tmp_path):
        d = str(tmp_path)
        self._durable_run(d)
        sidecar = self._newest_sidecar(d)
        conn = sqlite3.connect(sidecar)
        conn.execute(
            "UPDATE kv SET v = '\"forged\"' WHERE (map_id, k) IN "
            "(SELECT map_id, k FROM kv LIMIT 1)")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="digest mismatch"):
            Network.resume(d)

    def test_missing_sidecar_is_a_typed_store_error(self, tmp_path):
        d = str(tmp_path)
        self._durable_run(d)
        self._newest_sidecar(d).unlink()
        with pytest.raises(StoreError, match="missing backend sidecar"):
            Network.resume(d)

    def test_unreadable_sidecar_is_a_typed_store_error(self, tmp_path):
        d = str(tmp_path)
        self._durable_run(d)
        self._newest_sidecar(d).write_bytes(b"not a database")
        with pytest.raises(StoreError, match="unreadable"):
            Network.resume(d)

    def test_compaction_reclaims_paired_sidecars(self, tmp_path):
        d = str(tmp_path)
        self._durable_run(d, epochs=12)
        store = SnapshotStore(d)
        snaps = {p.name[len("snap-"):-len(".json")]
                 for p in store.paths()}
        sidecars = {p.name[len("state-"):-len(".sqlite")]
                    for p in store.backend_paths()}
        # Retention kept `keep` snapshots; every surviving sidecar is
        # paired with a surviving snapshot, and the newest snapshot's
        # sidecar survived.
        assert sidecars <= snaps
        assert max(snaps) in sidecars


class TestOutOfCoreSoak:
    @pytest.mark.skipif(
        not os.environ.get("REPRO_SOAK_RSS_MB"),
        reason="set REPRO_SOAK_RSS_MB to run the bounded-memory soak")
    def test_million_entry_service_run_stays_bounded(self):
        from repro.eval.state_bench import run_oocore_soak
        ceiling = float(os.environ["REPRO_SOAK_RSS_MB"])
        entries = int(os.environ.get("REPRO_SOAK_ENTRIES", "1000000"))
        report = run_oocore_soak(entries=entries, ticks=8,
                                 txns_per_tick=200, cache=4096,
                                 compare_resident=False)
        assert report["committed"] > 0
        assert report["backend"]["faults"] > 0
        rss_mb = resource.getrusage(
            resource.RUSAGE_SELF).ru_maxrss / 1024
        assert rss_mb < ceiling, (
            f"out-of-core soak RSS {rss_mb:.0f} MiB over ceiling "
            f"{ceiling:.0f} MiB (entries={entries})")
