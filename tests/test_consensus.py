"""Cost-model tests: the simulated network's timing arithmetic."""

import pytest

from repro.chain.consensus import CostModel, DEFAULT_COST_MODEL


def test_exec_seconds_scales_linearly():
    cm = CostModel(gas_per_second=1000.0)
    assert cm.exec_seconds(1000) == pytest.approx(1.0)
    assert cm.exec_seconds(2000) == pytest.approx(2.0)
    assert cm.exec_seconds(0) == 0.0


def test_consensus_grows_quadratically_with_committee():
    cm = CostModel(consensus_base_s=1.0, consensus_per_node2_s=0.01)
    small = cm.consensus_seconds(5)
    large = cm.consensus_seconds(10)
    assert small == pytest.approx(1.0 + 0.01 * 25)
    assert large == pytest.approx(1.0 + 0.01 * 100)
    assert large - 1.0 == pytest.approx(4 * (small - 1.0))


def test_epoch_seconds_components():
    cm = CostModel(consensus_base_s=1.0, consensus_per_node2_s=0.0,
                   merge_per_location_s=0.001,
                   dispatch_signature_s=0.01, dispatch_default_s=0.001)
    base = cm.epoch_seconds(shard_exec=[2.0, 3.0], ds_exec=1.0,
                            merged_locations=100, shard_size=5,
                            ds_size=10, n_dispatched=0,
                            with_cosplit=True)
    # max(shard) + shard consensus + merge + ds exec + ds consensus.
    assert base == pytest.approx(3.0 + 1.0 + 0.1 + 1.0 + 1.0)


def test_shards_run_in_parallel_not_in_sum():
    cm = DEFAULT_COST_MODEL
    serial_ish = cm.epoch_seconds([5.0], 0.0, 0, 5, 10, 0, True)
    parallel = cm.epoch_seconds([5.0, 5.0, 5.0], 0.0, 0, 5, 10, 0, True)
    assert parallel == pytest.approx(serial_ish)


def test_dispatch_cost_depends_on_mode():
    cm = DEFAULT_COST_MODEL
    with_sig = cm.epoch_seconds([1.0], 0.0, 0, 5, 10, 1000, True)
    without = cm.epoch_seconds([1.0], 0.0, 0, 5, 10, 1000, False)
    assert with_sig > without


def test_empty_shard_list_is_fine():
    cm = DEFAULT_COST_MODEL
    assert cm.epoch_seconds([], 0.0, 0, 5, 10, 0, True) > 0
