"""Lane supervision tests: failure taxonomy, bounded logs, circuit
breakers, per-lane retry/rescue, and poison-payload quarantine.

The injected failures here go through the *real* supervised dispatch
path (``Network.process_epoch`` with a parallel executor); only
``run_lane_task`` is wrapped so individual lanes can be made to fail
deterministically, without real hung workers or sleeps.
"""

import pytest

from repro.chain import Network, call
from repro.chain.faults import WorkerKilled
from repro.chain.lanes import run_lane_task as real_run_lane_task
from repro.chain.recovery import network_fingerprint
from repro.chain.supervise import (
    BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN, BoundedLog,
    CircuitBreaker, LaneFailure, LaneFailureKind, ManualClock,
    SuperviseConfig,
)
from repro.contracts import CORPUS
from repro.obs.metrics import MetricsRegistry
from repro.scilla.values import addr, uint, IntVal, StringVal
from repro.scilla import types as ty

TOKEN = "0x" + "c0" * 20
ADMIN = "0x" + "ad" * 20
USERS = ["0x" + f"{i:040x}" for i in range(1, 17)]


def ft_network(**kwargs) -> Network:
    kwargs.setdefault("metrics", MetricsRegistry())
    # These tests intercept the shared pools / run_lane_task of the
    # per-epoch executor; resident workers dispatch through their own
    # slot pool (tests/test_resident_differential.py covers them).
    kwargs.setdefault("resident", False)
    net = Network(4, **kwargs)
    net.create_account(ADMIN)
    for u in USERS:
        net.create_account(u)
    net.deploy(CORPUS["FungibleToken"], TOKEN, {
        "contract_owner": addr(ADMIN), "name": StringVal("T"),
        "symbol": StringVal("T"), "decimals": IntVal(6, ty.UINT32),
        "init_supply": uint(0),
    }, sharded_transitions=("Mint", "Transfer", "TransferFrom"))
    mint = [call(ADMIN, TOKEN, "Mint",
                 {"recipient": addr(u), "amount": uint(1000)},
                 nonce=i + 1)
            for i, u in enumerate(USERS)]
    net.process_epoch(mint, unlimited=True)
    return net


def transfer_round(nonce: int):
    return [call(u, TOKEN, "Transfer",
                 {"to": addr(USERS[(i + 1) % len(USERS)]),
                  "amount": uint(3)}, nonce=nonce)
            for i, u in enumerate(USERS)]


class FailLanes:
    """A thread-pool proxy whose submitted tasks fail for selected
    lanes (``budget`` counts failures per lane), delegating to the
    real ``run_lane_task`` otherwise.

    Installed via ``monkeypatch`` over ``shared_thread_pool``, it
    intercepts only *pool* attempts — the supervisor's in-coordinator
    inline rescue calls ``run_lane_task`` directly and always runs the
    real implementation, exactly like a real infrastructure fault.
    """

    def __init__(self, budget: dict[int, int],
                 exc=WorkerKilled("injected")):
        self.budget = dict(budget)        # lane -> remaining failures
        self.exc = exc
        self.calls: list[tuple[int, int]] = []   # (epoch, lane)

    def install(self, monkeypatch):
        from repro.core import parallel
        real_pool = parallel.shared_thread_pool()
        failer = self

        class _Proxy:
            def submit(self, fn, task):
                return real_pool.submit(failer._run, task)

        monkeypatch.setattr(parallel, "shared_thread_pool",
                            lambda workers=None: _Proxy())
        return self

    def _run(self, task):
        self.calls.append((task.epoch, task.lane))
        if self.budget.get(task.lane, 0) > 0:
            self.budget[task.lane] -= 1
            raise self.exc
        return real_run_lane_task(task)

    def pool_lanes(self, since: int = 0) -> list[int]:
        return [lane for _, lane in self.calls[since:]]


# --------------------------------------------------------------------------
# Taxonomy and bounded log.
# --------------------------------------------------------------------------

def test_lane_failure_formatting():
    failure = LaneFailure(2, LaneFailureKind.TIMEOUT, "process", 7, 1,
                          "no result within 0.5s")
    assert str(failure) == ("epoch 7 lane 2 attempt 1 [process]: "
                            "timeout — no result within 0.5s")
    bare = LaneFailure(0, LaneFailureKind.PICKLE, "thread", 1, 0)
    assert str(bare) == "epoch 1 lane 0 attempt 0 [thread]: pickle"


def test_bounded_log_caps_and_counts_drops():
    log = BoundedLog(maxlen=3)
    for i in range(5):
        log.append(f"entry {i}")
    assert list(log) == ["entry 2", "entry 3", "entry 4"]
    assert log.dropped == 2
    # Sequence equality against plain lists (legacy assertions).
    assert log == ["entry 2", "entry 3", "entry 4"]
    assert log != ["entry 2"]
    assert BoundedLog(["a"], dropped=7).dropped == 7


# --------------------------------------------------------------------------
# Circuit breaker state machine.
# --------------------------------------------------------------------------

def test_breaker_trips_after_consecutive_failures():
    b = CircuitBreaker("thread", threshold=3, cooldown=2,
                       cooldown_cap=8)
    b.record_failure()
    b.record_success()       # success resets the consecutive count
    b.record_failure()
    b.record_failure()
    assert b.state == BREAKER_CLOSED
    b.record_failure()
    assert b.state == BREAKER_OPEN
    assert (BREAKER_CLOSED, BREAKER_OPEN) in b.transitions


def test_breaker_cooldown_then_half_open_probe():
    b = CircuitBreaker("process", threshold=1, cooldown=2,
                       cooldown_cap=8)
    b.record_failure()
    assert b.state == BREAKER_OPEN
    assert not b.admits()            # cooldown epoch 1
    assert b.admits()                # cooldown expired: probe admitted
    assert b.state == BREAKER_HALF_OPEN
    b.record_success()
    assert b.state == BREAKER_CLOSED
    assert b.cooldown == 2           # reset after a good probe


def test_breaker_failed_probe_doubles_cooldown_capped():
    b = CircuitBreaker("process", threshold=1, cooldown=2,
                       cooldown_cap=5)
    cooldowns = []
    for _ in range(3):
        b.record_failure()           # (re-)open
        assert b.state == BREAKER_OPEN
        cooldowns.append(b.cooldown)
        while not b.admits():
            pass                     # drain the cooldown
        assert b.state == BREAKER_HALF_OPEN
    assert cooldowns == [2, 4, 5]    # doubled, then capped


# --------------------------------------------------------------------------
# Supervised dispatch: retry, rescue, quarantine, degradation.
# --------------------------------------------------------------------------

def supervised_net(**overrides):
    cfg = SuperviseConfig(deadline_s=30.0, backoff_base_s=0.0,
                          backoff_jitter=0.0, **overrides)
    return ft_network(executor="thread", supervise=cfg,
                      clock=ManualClock())


def test_transient_worker_death_is_retried_in_pool(monkeypatch):
    serial = ft_network()
    serial.process_epoch(transfer_round(nonce=2))

    net = supervised_net()
    failer = FailLanes({1: 1}).install(monkeypatch)
    net.process_epoch(transfer_round(nonce=2))

    assert network_fingerprint(net) == network_fingerprint(serial)
    assert net.executor_fallbacks == 0
    counters = net.metrics.snapshot()["counters"]
    assert counters["supervise.failures.worker-death"]["value"] == 1
    assert counters["supervise.lane_retries"]["value"] == 1
    assert "supervise.lane_rescues" not in counters or \
        counters["supervise.lane_rescues"]["value"] == 0


def test_exhausted_lane_rescued_inline_keeps_sibling_results(
        monkeypatch):
    serial = ft_network()
    serial.process_epoch(transfer_round(nonce=2))

    net = supervised_net(max_lane_retries=1)
    failer = FailLanes({1: 99}).install(monkeypatch)
    net.process_epoch(transfer_round(nonce=2))

    # The epoch still matches serial exactly: lane 1 was re-executed
    # inline while lanes 0/2/3 kept their pool results.
    assert network_fingerprint(net) == network_fingerprint(serial)
    assert net.executor_fallbacks == 0
    counters = net.metrics.snapshot()["counters"]
    assert counters["supervise.lane_rescues"]["value"] == 1
    assert counters["supervise.failures.worker-death"]["value"] == 2
    # Siblings ran in the pool exactly once each; lane 1 got the
    # initial attempt plus one retry.
    assert [lane for lane in failer.pool_lanes() if lane != 1] \
        == [0, 2, 3]
    assert failer.pool_lanes().count(1) == 2


def test_poison_lane_is_quarantined_then_pinned_inline(monkeypatch):
    serial = ft_network()

    net = supervised_net(max_lane_retries=0, quarantine_threshold=2)
    failer = FailLanes({2: 99}).install(monkeypatch)

    net.process_epoch(transfer_round(nonce=2))
    serial.process_epoch(transfer_round(nonce=2))
    assert 2 not in net.supervisor.quarantined      # one strike
    net.process_epoch(transfer_round(nonce=3))
    serial.process_epoch(transfer_round(nonce=3))
    assert 2 in net.supervisor.quarantined          # two strikes: pinned
    record = net.supervisor.quarantined[2]
    assert record.lane == 2 and len(record.failures) == 2

    # Once pinned, the lane goes straight to the inline path: the pool
    # never sees it again, but its transactions still execute.
    calls_before = len(failer.calls)
    net.process_epoch(transfer_round(nonce=4))
    serial.process_epoch(transfer_round(nonce=4))
    assert 2 not in failer.pool_lanes(calls_before)
    assert network_fingerprint(net) == network_fingerprint(serial)
    counters = net.metrics.snapshot()["counters"]
    assert counters["supervise.quarantine.additions"]["value"] == 1
    gauges = net.metrics.snapshot()["gauges"]
    assert gauges["supervise.quarantine.size"]["value"] == 1


def test_recovered_lane_resets_quarantine_strikes(monkeypatch):
    net = supervised_net(max_lane_retries=0, quarantine_threshold=2)
    # One faulty epoch, then healthy.
    failer = FailLanes({2: 1}).install(monkeypatch)
    net.process_epoch(transfer_round(nonce=2))
    net.process_epoch(transfer_round(nonce=3))
    net.process_epoch(transfer_round(nonce=4))
    assert net.supervisor.quarantined == {}


def test_breaker_open_degrades_thread_to_serial(monkeypatch):
    serial = ft_network()
    serial.process_epoch(transfer_round(nonce=2))

    net = supervised_net(breaker_threshold=1, breaker_cooldown=2,
                         max_lane_retries=0)
    failer = FailLanes({0: 99, 1: 99, 2: 99, 3: 99}).install(monkeypatch)
    net.process_epoch(transfer_round(nonce=2))   # trips the breaker
    assert net.supervisor.breakers["thread"].state == BREAKER_OPEN

    # The next epoch is not even offered to the pool: the supervisor
    # degrades to the caller's serial loop.
    calls_before = len(failer.calls)
    net.process_epoch(transfer_round(nonce=3))
    assert len(failer.calls) == calls_before
    assert network_fingerprint(net) == network_fingerprint(serial)
    counters = net.metrics.snapshot()["counters"]
    assert counters["supervise.breaker.trips"]["value"] == 1
    assert counters["supervise.degraded_epochs"]["value"] >= 1
    gauges = net.metrics.snapshot()["gauges"]
    assert gauges["supervise.breaker.thread_state"]["value"] == 2


def test_breaker_probe_recovers_after_cooldown(monkeypatch):
    net = supervised_net(breaker_threshold=1, breaker_cooldown=1,
                         max_lane_retries=0)
    failer = FailLanes({0: 99, 1: 99, 2: 99, 3: 99}).install(monkeypatch)
    net.process_epoch(transfer_round(nonce=2))   # trip
    assert net.supervisor.breakers["thread"].state == BREAKER_OPEN
    failer.budget = {}                           # infrastructure healed
    net.process_epoch(transfer_round(nonce=3))   # half-open probe
    assert net.supervisor.breakers["thread"].state == BREAKER_CLOSED
    counters = net.metrics.snapshot()["counters"]
    assert counters["supervise.breaker.probes"]["value"] == 1
    assert counters["supervise.breaker.recoveries"]["value"] == 1


def test_fallback_details_stay_bounded(monkeypatch):
    net = supervised_net(max_lane_retries=0, quarantine_threshold=10**9,
                         breaker_threshold=10**9)
    FailLanes({1: 10**9, 2: 10**9}).install(monkeypatch)
    for nonce in range(2, 40):
        net.process_epoch(transfer_round(nonce=nonce))
    details = net.executor_fallback_details
    assert len(details) == details.maxlen
    assert details.dropped > 0
    gauges = net.metrics.snapshot()["gauges"]
    assert gauges["net.executor.fallback_dropped"]["value"] == \
        details.dropped
