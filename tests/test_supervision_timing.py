"""Deterministic timing tests: supervisor backoff schedules, breaker
cooldowns, and the deferred-transaction retry backoff — all asserted
against an injected :class:`ManualClock` (or epoch arithmetic), never
against real sleeps.
"""

from repro.chain import Network, call
from repro.chain.consensus import CostModel
from repro.chain.faults import FaultEvent, FaultKind, FaultPlan
from repro.chain.supervise import (
    BREAKER_HALF_OPEN, BREAKER_OPEN, CircuitBreaker, LaneSupervisor,
    ManualClock, SuperviseConfig,
)
from repro.obs.metrics import MetricsRegistry

from .test_supervision import FailLanes, ft_network, transfer_round


# --------------------------------------------------------------------------
# The fake clock itself.
# --------------------------------------------------------------------------

def test_manual_clock_advances_and_records():
    clock = ManualClock(start=10.0)
    assert clock.monotonic() == 10.0
    clock.sleep(1.5)
    clock.sleep(0.25)
    assert clock.monotonic() == 11.75
    assert clock.sleeps == [1.5, 0.25]


# --------------------------------------------------------------------------
# backoff_delay is a pure function of (config, epoch, round).
# --------------------------------------------------------------------------

def test_backoff_delay_is_deterministic_and_bounded():
    cfg = SuperviseConfig(backoff_base_s=0.1, backoff_cap_s=0.8,
                          backoff_jitter=0.5, backoff_seed=7)
    sup = LaneSupervisor(cfg)
    again = LaneSupervisor(cfg)
    for epoch in (1, 2, 9):
        for rnd in (1, 2, 3, 4, 5):
            delay = sup.backoff_delay(epoch, rnd)
            assert delay == again.backoff_delay(epoch, rnd)
            base = min(0.8, 0.1 * 2 ** (rnd - 1))
            assert base <= delay <= base * 1.5
    # The exponential base caps: rounds 4 and 5 share it.
    b4 = sup.backoff_delay(1, 4)
    b5 = sup.backoff_delay(1, 5)
    assert 0.8 <= b4 <= 1.2 and 0.8 <= b5 <= 1.2
    # Different seeds give different jitter.
    other = LaneSupervisor(SuperviseConfig(
        backoff_base_s=0.1, backoff_cap_s=0.8, backoff_jitter=0.5,
        backoff_seed=8))
    assert any(sup.backoff_delay(1, r) != other.backoff_delay(1, r)
               for r in (1, 2, 3))


def test_zero_jitter_gives_pure_exponential():
    sup = LaneSupervisor(SuperviseConfig(
        backoff_base_s=0.05, backoff_cap_s=2.0, backoff_jitter=0.0))
    assert [sup.backoff_delay(3, r) for r in (1, 2, 3, 4)] \
        == [0.05, 0.1, 0.2, 0.4]


# --------------------------------------------------------------------------
# The supervisor's retry loop sleeps exactly the computed schedule.
# --------------------------------------------------------------------------

def test_retry_rounds_sleep_the_backoff_schedule(monkeypatch):
    clock = ManualClock()
    cfg = SuperviseConfig(deadline_s=30.0, max_lane_retries=2,
                          backoff_base_s=0.05, backoff_cap_s=2.0,
                          backoff_jitter=0.25, backoff_seed=3)
    net = ft_network(executor="thread", supervise=cfg, clock=clock)
    FailLanes({1: 2}).install(monkeypatch)   # fails rounds 1 and 2
    net.process_epoch(transfer_round(nonce=2))

    sup = net.supervisor
    # Round 1 submits immediately; rounds 2 and 3 back off first.
    assert clock.sleeps == [sup.backoff_delay(net.epoch, 1),
                            sup.backoff_delay(net.epoch, 2)]
    counters = net.metrics.snapshot()["counters"]
    assert counters["supervise.lane_retries"]["value"] == 2


def test_view_change_retries_never_sleep():
    clock = ManualClock()
    plan = FaultPlan([FaultEvent(2, FaultKind.CORRUPT_DELTA, 0)])
    net = ft_network(executor="thread", fault_plan=plan, clock=clock,
                     supervise=SuperviseConfig(deadline_s=30.0))
    block = net.process_epoch(transfer_round(nonce=2))
    # The view-change retry loop is epoch-attempt based: a lane
    # exclusion reruns the attempt immediately, with no backoff sleep.
    assert block.stats.view_changes >= 1
    assert clock.sleeps == []


# --------------------------------------------------------------------------
# Breaker cooldowns are counted in supervised runs, not wall time.
# --------------------------------------------------------------------------

def test_breaker_cooldown_admission_schedule():
    b = CircuitBreaker("process", threshold=1, cooldown=3,
                       cooldown_cap=8)
    b.record_failure()
    assert b.state == BREAKER_OPEN
    # Exactly `cooldown` admission calls elapse before the probe.
    schedule = [b.admits() for _ in range(3)]
    assert schedule == [False, False, True]
    assert b.state == BREAKER_HALF_OPEN
    # A failed probe doubles the next wait.
    b.record_failure()
    schedule = [b.admits() for _ in range(6)]
    assert schedule == [False] * 5 + [True]


# --------------------------------------------------------------------------
# Deferred-transaction backoff (network retry schedule).
# --------------------------------------------------------------------------

def test_deferred_tx_backoff_schedule_is_exponential():
    tiny = CostModel(shard_gas_limit=100, ds_gas_limit=100)
    net = ft_network(cost_model=tiny, carry_backlog=True,
                     retry_backoff=3.0, max_retries=4,
                     metrics=MetricsRegistry())
    net.process_epoch(transfer_round(nonce=2))

    # Every deferral at retries=r waits exactly
    # max(1, round(retry_backoff ** (r - 1))) epochs: 1, 3, 9, 27.
    # Only entries queued by the epoch just processed are measured —
    # carried entries would show a shrinking residual wait.
    observed: dict[int, set[int]] = {}
    seen: set[tuple[int, int]] = set()

    def note_new_entries():
        for entry in net.backlog:
            key = (entry.tx.tx_id, entry.retries)
            if key not in seen:
                seen.add(key)
                observed.setdefault(entry.retries, set()).add(
                    entry.not_before - net.epoch)

    note_new_entries()
    for _ in range(40):
        if not net.backlog:
            break
        net.process_epoch([])
        note_new_entries()
    for retries, waits in observed.items():
        expected = max(1, round(3.0 ** (retries - 1)))
        assert waits == {expected}, (retries, waits)
    assert 1 in observed       # schedule actually exercised
    assert max(observed) >= 2  # including at least one re-deferral


def test_deferred_tx_backoff_flat_when_backoff_is_one():
    tiny = CostModel(shard_gas_limit=200, ds_gas_limit=200)
    net = ft_network(cost_model=tiny, carry_backlog=True,
                     retry_backoff=1.0, metrics=MetricsRegistry())
    net.process_epoch(transfer_round(nonce=2))
    assert net.backlog
    assert {e.not_before - net.epoch for e in net.backlog} == {1}
