"""Deployment-pipeline and miner-validation tests (Sec. 4.3)."""

import pytest

from repro.core.pipeline import run_pipeline, validate_signature
from repro.core.signature import ShardingSignature, derive_signature
from repro.contracts import CORPUS
from repro.scilla.errors import ParseError, TypeError_


def test_pipeline_times_each_stage():
    result = run_pipeline(CORPUS["HelloWorld"], "HelloWorld")
    us = result.timings.as_microseconds()
    assert us["parse"] > 0
    assert us["typecheck"] > 0
    assert us["analysis"] > 0


def test_pipeline_without_analysis():
    result = run_pipeline(CORPUS["HelloWorld"], with_analysis=False)
    assert result.summaries == {}
    assert result.timings.analysis == 0


def test_pipeline_propagates_parse_errors():
    with pytest.raises(ParseError):
        run_pipeline("scilla_version 0 contract (")


def test_pipeline_propagates_type_errors():
    bad = CORPUS["HelloWorld"].replace('welcome_msg := msg',
                                       'welcome_msg := contract_owner')
    with pytest.raises(TypeError_):
        run_pipeline(bad)


def test_validate_signature_accepts_honest_signature():
    source = CORPUS["FungibleToken"]
    result = run_pipeline(source, "FT")
    sig = result.signature(("Mint", "Transfer", "TransferFrom"))
    assert validate_signature(source, sig)


def test_validate_signature_rejects_tampered_joins():
    """A malicious deployer claiming OwnOverwrite for an IntMerge field
    (or vice versa) is caught by re-derivation."""
    from repro.core.joins import JoinKind
    source = CORPUS["FungibleToken"]
    result = run_pipeline(source, "FT")
    sig = result.signature(("Mint", "Transfer", "TransferFrom"))
    tampered = ShardingSignature(
        sig.contract, sig.selected, sig.constraints,
        {**sig.joins, "balances": JoinKind.OWN_OVERWRITE},
        sig.weak_reads)
    assert not validate_signature(source, tampered)


def test_validate_signature_rejects_dropped_constraints():
    source = CORPUS["FungibleToken"]
    result = run_pipeline(source, "FT")
    sig = result.signature(("Mint", "Transfer", "TransferFrom"))
    weakened = ShardingSignature(
        sig.contract, sig.selected,
        {**sig.constraints, "Transfer": frozenset()},
        sig.joins, sig.weak_reads)
    assert not validate_signature(source, weakened)


def test_validate_signature_rejects_wrong_contract():
    ft = CORPUS["FungibleToken"]
    result = run_pipeline(ft, "FT")
    sig = result.signature(("Mint", "Transfer"))
    assert not validate_signature(CORPUS["HelloWorld"], sig)


def test_signature_derivation_deterministic():
    result = run_pipeline(CORPUS["UD_registry"], "UD")
    a = result.signature(("Bestow", "ConfigureNode"))
    b = result.signature(("Bestow", "ConfigureNode"))
    assert a.constraints == b.constraints
    assert a.joins == b.joins


# -- concurrency smoke (the cache in front of the pipeline) -----------------

def test_concurrent_pipeline_runs_share_one_analysis():
    """Two threads deploying the same source through the cache get the
    *same* DeploymentResult object and the pipeline runs exactly once."""
    import threading

    from repro.core.cache import SummaryCache
    from repro.core.pipeline import run_pipeline_cached

    cache = SummaryCache()
    source = CORPUS["FungibleToken"]
    results = []
    barrier = threading.Barrier(2)

    def deploy():
        barrier.wait()
        results.append(run_pipeline_cached(source, "FT", cache=cache))

    threads = [threading.Thread(target=deploy) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert len(results) == 2
    assert results[0] is results[1]
    assert results[0].summaries == results[1].summaries
    assert cache.stats.misses == 1     # one analysis, not two
    assert cache.stats.hits == 1
    fresh = run_pipeline(source, "FT")
    assert set(results[0].summaries) == set(fresh.summaries)
