"""Failure injection: the safety nets must catch deliberate misuse.

* A *wrong* dispatch (two shards mutating the same owned component)
  must be caught by the DS merge as a conflict, never silently merged.
* A tampered signature must be rejected by miner validation.
* A malicious join claim (OwnOverwrite field declared IntMerge) must
  either conflict or be caught at validation.
* Deep nesting, empty epochs, and zero-shard corner cases behave.
"""

import pytest

from repro.chain import Network, call
from repro.chain.delta import compute_delta, merge_deltas
from repro.core.joins import JoinKind, MergeConflict
from repro.contracts import CORPUS
from repro.scilla.interpreter import Interpreter, TxContext
from repro.scilla.parser import parse_module
from repro.scilla.values import IntVal, StringVal, addr, uint
from repro.scilla import types as ty

ADMIN = "0x" + "ad" * 20
ALICE = "0x" + "a1" * 20
BOB = "0x" + "b0" * 20

FT_PARAMS = {"contract_owner": addr(ADMIN), "name": StringVal("T"),
             "symbol": StringVal("T"), "decimals": IntVal(6, ty.UINT32),
             "init_supply": uint(0)}


def _two_shard_runs(join_kind):
    """Execute two conflicting overwrites in two 'shards' by hand,
    bypassing the dispatcher, and try to merge."""
    module = parse_module(CORPUS["UD_registry"], "UD")
    interp = Interpreter(module)
    base = interp.deploy("0xc0", {"initial_admin": addr(ADMIN),
                                  "initial_registrar": addr(ADMIN)})
    from repro.scilla.values import ByStrVal
    node = ByStrVal("0x" + "11" * 32, ty.PrimType("ByStr32"))
    deltas = []
    for shard, owner in ((0, ALICE), (1, BOB)):
        local = base.copy()
        r = interp.run_transition(
            local, "Bestow",
            {"node": node, "owner": addr(owner), "resolver": addr(owner)},
            TxContext(sender=ADMIN))
        assert r.success
        deltas.append(compute_delta(
            "0xc0", shard, base, local, set(r.write_log.writes),
            {f: join_kind for f in base.fields}))
    return base, deltas


def test_mis_sharded_overwrites_raise_merge_conflict():
    base, deltas = _two_shard_runs(JoinKind.OWN_OVERWRITE)
    with pytest.raises(MergeConflict) as ei:
        merge_deltas(base, deltas)
    assert ei.value.contract == "0xc0"
    assert set(ei.value.shards) == {0, 1}
    assert ei.value.key is not None


def test_malicious_intmerge_claim_on_addresses_fails_loudly():
    """Declaring an address-valued field IntMerge cannot silently
    corrupt (or drop) writes: delta computation rejects non-integer
    locations outright."""
    with pytest.raises(MergeConflict) as ei:
        _two_shard_runs(JoinKind.INT_MERGE)
    assert ei.value.contract == "0xc0"
    assert ei.value.key is not None
    assert len(ei.value.shards) == 1


def test_tampered_selection_rejected_by_miners():
    from repro.core.pipeline import run_pipeline, validate_signature
    from repro.core.signature import ShardingSignature
    source = CORPUS["NonfungibleToken"]
    result = run_pipeline(source, "NFT")
    honest = result.signature(("Mint", "Transfer"))
    # Claim the unshardable Approve is covered by Mint's constraints.
    forged = ShardingSignature(
        honest.contract, honest.selected + ("Approve",),
        {**honest.constraints,
         "Approve": honest.constraints["Mint"]},
        honest.joins, honest.weak_reads)
    assert not validate_signature(source, forged)


def test_empty_epoch_is_fine():
    net = Network(3)
    block = net.process_epoch([])
    assert block.n_committed == 0
    assert block.epoch_seconds > 0


def test_single_shard_network_degenerates_gracefully():
    net = Network(1)
    net.create_account(ADMIN)
    net.create_account(ALICE)
    net.deploy(CORPUS["FungibleToken"], "0xc0", dict(FT_PARAMS),
               sharded_transitions=("Mint", "Transfer"))
    block = net.process_epoch([
        call(ADMIN, "0xc0", "Mint",
             {"recipient": addr(ALICE), "amount": uint(5)}, nonce=1)],
        unlimited=True)
    assert block.n_committed == 1


def test_unknown_transition_call_fails_cleanly():
    net = Network(2)
    net.create_account(ADMIN)
    net.deploy(CORPUS["FungibleToken"], "0xc0", dict(FT_PARAMS),
               sharded_transitions=("Mint",))
    block = net.process_epoch([
        call(ADMIN, "0xc0", "NoSuchTransition", {}, nonce=1)],
        unlimited=True)
    (receipt,) = block.all_receipts
    assert not receipt.success


def test_deeply_nested_maps_through_chain():
    src = """
    scilla_version 0
    contract Deep (o: ByStr20)
    field d : Map ByStr20 (Map String (Map Uint32 Uint128)) =
      Emp ByStr20 (Map String (Map Uint32 Uint128))
    transition Put (a: ByStr20, b: String, c: Uint32, v: Uint128)
      d[a][b][c] := v
    end
    transition Bump (a: ByStr20, b: String, c: Uint32, v: Uint128)
      cur_opt <- d[a][b][c];
      nv = match cur_opt with
           | Some cur => builtin add cur v
           | None => v
           end;
      d[a][b][c] := nv
    end
    """
    net = Network(3)
    net.create_account(ALICE)
    net.deploy(src, "0xdd", {"o": addr(ADMIN)},
               sharded_transitions=("Bump",))
    c = IntVal(3, ty.UINT32)
    txns = [call(ALICE, "0xdd", "Bump",
                 {"a": addr(ALICE), "b": StringVal("k"), "c": c,
                  "v": uint(i + 1)}, nonce=i + 1)
            for i in range(3)]
    block = net.process_epoch(txns, unlimited=True)
    assert block.n_committed == 3
    state = net.contracts[_pad("0xdd")].state
    leaf = state.fields["d"].entries[addr(ALICE)] \
        .entries[StringVal("k")].entries[c]
    assert leaf == uint(6)


def _pad(a):
    return "0x" + a[2:].rjust(40, "0").lower()
