"""Recovery tests: checkpoints, delta validation, view changes,
retry backoff and dead-lettering, and dispatch/execution agreement."""

import pytest

from repro.chain import Network, call, payment
from repro.chain.consensus import CostModel
from repro.chain.delta import DeltaEntry, StateDelta
from repro.chain.dispatch import DS, _pad
from repro.chain.faults import FaultEvent, FaultKind, FaultPlan
from repro.chain.recovery import (
    NetworkCheckpoint, network_fingerprint, state_fingerprint,
    validate_delta,
)
from repro.core.joins import JoinKind
from repro.contracts import CORPUS
from repro.scilla.values import addr, uint, IntVal, StringVal
from repro.scilla import types as ty

TOKEN = "0x" + "c0" * 20
ADMIN = "0x" + "ad" * 20
USERS = ["0x" + f"{i:040x}" for i in range(1, 25)]


def ft_network(n_shards=3, use_signatures=True, **kwargs) -> Network:
    net = Network(n_shards, use_signatures=use_signatures, **kwargs)
    net.create_account(ADMIN)
    for u in USERS:
        net.create_account(u)
    net.deploy(CORPUS["FungibleToken"], TOKEN, {
        "contract_owner": addr(ADMIN), "name": StringVal("T"),
        "symbol": StringVal("T"), "decimals": IntVal(6, ty.UINT32),
        "init_supply": uint(0),
    }, sharded_transitions=("Mint", "Transfer", "TransferFrom"))
    return net


def mint_all(net, amount=1000):
    txns = [call(ADMIN, TOKEN, "Mint",
                 {"recipient": addr(u), "amount": uint(amount)},
                 nonce=i + 1)
            for i, u in enumerate(USERS)]
    return net.process_epoch(txns, unlimited=True)


def transfer_round(nonce=1):
    return [call(u, TOKEN, "Transfer",
                 {"to": addr(USERS[(i + 7) % len(USERS)]),
                  "amount": uint(i + 1)}, nonce=nonce)
            for i, u in enumerate(USERS)]


# -- checkpoints --------------------------------------------------------------

def test_checkpoint_restores_states_accounts_and_nonces():
    net = ft_network()
    mint_all(net)
    checkpoint = NetworkCheckpoint.take(net)
    before = network_fingerprint(net)
    balance_before = net.accounts[_pad(USERS[0])].balance
    nonces_before = dict(net.nonces.last_global)

    net.process_epoch(transfer_round())
    assert network_fingerprint(net) != before

    checkpoint.restore(net)
    assert network_fingerprint(net) == before
    assert net.accounts[_pad(USERS[0])].balance == balance_before
    assert net.nonces.last_global == nonces_before
    # Restoring twice is fine (the checkpoint keeps private copies).
    checkpoint.restore(net)
    assert network_fingerprint(net) == before


def test_checkpoint_drops_accounts_created_after_take():
    net = ft_network()
    checkpoint = NetworkCheckpoint.take(net)
    net.create_account("0x" + "99" * 20)
    checkpoint.restore(net)
    assert _pad("0x" + "99" * 20) not in net.accounts


def test_checkpoint_drops_contracts_deployed_after_take():
    """A contract deployed during an aborted attempt must disappear
    entirely on restore: state, runtime, and dispatcher registration
    (a stale registration would keep routing transactions to it)."""
    net = ft_network()
    mint_all(net)
    checkpoint = NetworkCheckpoint.take(net)
    before = network_fingerprint(net)

    second = "0x" + "c1" * 20
    net.deploy(CORPUS["FungibleToken"], second, {
        "contract_owner": addr(ADMIN), "name": StringVal("U"),
        "symbol": StringVal("U"), "decimals": IntVal(6, ty.UINT32),
        "init_supply": uint(0),
    }, sharded_transitions=("Mint", "Transfer"))
    net.process_epoch([call(ADMIN, second, "Mint",
                            {"recipient": addr(USERS[0]),
                             "amount": uint(5)}, nonce=100)],
                      unlimited=True)
    assert _pad(second) in net.contracts

    checkpoint.restore(net)
    assert _pad(second) not in net.contracts
    assert not net.dispatcher.is_contract(_pad(second))
    assert _pad(second) not in net.dispatcher._field_level_cache
    assert network_fingerprint(net) == before
    # A payment to the undeployed address behaves like a user payment
    # again, exactly as before the aborted deploy.
    decision = net.dispatcher.dispatch(payment(ADMIN, second, 1, nonce=101))
    assert not decision.is_ds


def test_checkpoint_restores_dead_letter_and_executor_counters():
    """An aborted epoch attempt must not leak dead-lettered
    transactions or inflated executor counters into the commit."""
    net = ft_network()
    mint_all(net)
    poisoned = call(USERS[0], TOKEN, "Transfer",
                    {"to": addr(USERS[1]), "amount": uint(1)}, nonce=99)
    net.dead_letter.append(poisoned)
    net.executor_fallbacks = 2
    net.executor_fallback_details = ["thread: OSError: OSError(24)"]
    checkpoint = NetworkCheckpoint.take(net)

    # Mutations by a doomed attempt…
    net.dead_letter.append(call(USERS[2], TOKEN, "Transfer",
                                {"to": addr(USERS[3]),
                                 "amount": uint(1)}, nonce=100))
    net.executor_fallbacks = 7
    net.executor_fallback_details.append("process: bang")

    # …are all rolled back, repeatably.
    for _ in range(2):
        checkpoint.restore(net)
        assert [tx.tx_id for tx in net.dead_letter] == [poisoned.tx_id]
        assert net.executor_fallbacks == 2
        assert net.executor_fallback_details == \
            ["thread: OSError: OSError(24)"]


def test_view_change_after_dead_letter_keeps_it_exact():
    """End-to-end regression: once transactions have been
    dead-lettered, a later epoch's view changes (which roll the network
    back to the epoch-start checkpoint, possibly repeatedly) must not
    drop, duplicate, or re-dead-letter them."""
    tiny = CostModel(shard_gas_limit=120, ds_gas_limit=120)
    plan = FaultPlan([FaultEvent(5, FaultKind.DELAY_MICROBLOCK, s)
                      for s in range(2)])

    def run(fault_plan):
        net = ft_network(cost_model=tiny, carry_backlog=True,
                         max_retries=2, fault_plan=fault_plan)
        mint_all(net)
        net.process_epoch(transfer_round())
        for _ in range(10):
            if not net.backlog:
                break
            net.process_epoch([])
        assert net.epoch == 4 and net.dead_letter  # dead letters exist…
        net.process_epoch([])                      # …when epoch 5 runs
        return net

    clean, faulty = run(None), run(plan)
    assert faulty.blocks[-1].stats.view_changes >= 1
    assert clean.blocks[-1].stats.view_changes == 0
    assert len(faulty.dead_letter) == len(clean.dead_letter)
    assert [(tx.sender, tx.transition, tx.nonce)
            for tx in faulty.dead_letter] == \
        [(tx.sender, tx.transition, tx.nonce)
         for tx in clean.dead_letter]
    assert sum(b.stats.dead_lettered for b in faulty.blocks) == \
        len(faulty.dead_letter)
    assert network_fingerprint(faulty) == network_fingerprint(clean)


def test_state_fingerprint_is_insertion_order_independent():
    net1 = ft_network()
    mint_all(net1)
    net2 = ft_network()
    txns = [call(ADMIN, TOKEN, "Mint",
                 {"recipient": addr(u), "amount": uint(1000)},
                 nonce=i + 1)
            for i, u in enumerate(reversed(USERS))]
    net2.process_epoch(txns, unlimited=True)
    assert state_fingerprint(net1.contracts[TOKEN].state) == \
        state_fingerprint(net2.contracts[TOKEN].state)


# -- delta validation ---------------------------------------------------------

def test_legitimate_deltas_validate_clean():
    net = ft_network()
    block = mint_all(net)
    deltas = [d for mb in block.microblocks for d in mb.deltas]
    assert deltas
    for delta in deltas:
        assert net._delta_validator(delta) is None


def test_unknown_field_rejected():
    net = ft_network()
    delta = StateDelta(TOKEN, 0, [DeltaEntry(
        ("no_such_field", ()), JoinKind.OWN_OVERWRITE,
        new_value=uint(1))])
    violation = net._delta_validator(delta)
    assert violation is not None
    assert "unknown field" in violation.reason
    assert violation.shard == 0


def test_join_kind_forgery_rejected():
    # balances is IntMerge under the FT signature; claiming
    # OwnOverwrite for it contradicts the deployed signature.
    net = ft_network()
    delta = StateDelta(TOKEN, 0, [DeltaEntry(
        ("balances", (addr(USERS[0]),)), JoinKind.OWN_OVERWRITE,
        new_value=uint(10**9))])
    violation = net._delta_validator(delta)
    assert violation is not None
    assert "signature declares" in violation.reason


def test_foreign_component_rejected_without_signature():
    # Baseline contracts: only the contract's home shard may submit
    # shard-side deltas at all.
    net = ft_network(use_signatures=False)
    home = net.dispatcher.home_shard(TOKEN)
    foreign = (home + 1) % net.n_shards
    entry = DeltaEntry(("total_supply", ()), JoinKind.OWN_OVERWRITE,
                       new_value=uint(5))
    assert net._delta_validator(StateDelta(TOKEN, home, [entry])) is None
    violation = net._delta_validator(StateDelta(TOKEN, foreign, [entry]))
    assert violation is not None
    assert f"owned by shard {home}" in violation.reason


def test_ds_submitted_delta_rejected():
    net = ft_network()
    violation = net._delta_validator(StateDelta(TOKEN, DS, []))
    assert violation is not None


# -- view-change recovery -----------------------------------------------------

def test_crashed_shard_recovers_on_ds_lane():
    plan = FaultPlan([FaultEvent(2, FaultKind.CRASH_SHARD, shard=s)
                      for s in range(3)])
    clean = ft_network()
    mint_all(clean)
    clean_block = clean.process_epoch(transfer_round())

    faulty = ft_network(fault_plan=plan)
    mint_all(faulty)
    block = faulty.process_epoch(transfer_round())

    assert block.excluded_lanes == {0: "crash", 1: "crash", 2: "crash"}
    assert block.stats.recovered == len(USERS)
    assert block.stats.reexecuted == len(USERS)
    assert block.stats.committed == clean_block.stats.committed
    assert block.fault_log
    assert network_fingerprint(faulty) == network_fingerprint(clean)


def test_delayed_microblock_triggers_view_change():
    plan = FaultPlan([FaultEvent(2, FaultKind.DELAY_MICROBLOCK, 1)])
    clean = ft_network()
    mint_all(clean)
    clean.process_epoch(transfer_round())

    faulty = ft_network(fault_plan=plan)
    mint_all(faulty)
    block = faulty.process_epoch(transfer_round())

    assert block.excluded_lanes == {1: "delay-microblock"}
    assert block.stats.view_changes == 1
    assert block.stats.recovered > 0
    assert network_fingerprint(faulty) == network_fingerprint(clean)


def test_byzantine_delta_rejected_not_merged():
    plan = FaultPlan([FaultEvent(2, FaultKind.CORRUPT_DELTA, 0),
                      FaultEvent(2, FaultKind.FORGE_DELTA, 2)])
    clean = ft_network()
    mint_all(clean)
    clean.process_epoch(transfer_round())

    faulty = ft_network(fault_plan=plan)
    mint_all(faulty)
    block = faulty.process_epoch(transfer_round())

    assert block.stats.rejected_deltas >= 2
    assert block.excluded_lanes.get(0) == "byzantine-delta"
    assert block.excluded_lanes.get(2) == "byzantine-delta"
    assert any("rejected" in line for line in block.fault_log)
    # Rejection, not silent merge: the end state is the fault-free one.
    assert network_fingerprint(faulty) == network_fingerprint(clean)


def test_epoch_timing_charges_for_timeouts():
    plan = FaultPlan([FaultEvent(2, FaultKind.CRASH_SHARD, 0)])
    clean = ft_network()
    mint_all(clean)
    clean_block = clean.process_epoch(transfer_round())

    faulty = ft_network(fault_plan=plan)
    mint_all(faulty)
    block = faulty.process_epoch(transfer_round())
    assert block.epoch_seconds >= \
        clean_block.epoch_seconds + faulty.cost.microblock_timeout_s - 1


# -- deferred transactions: receipts, backoff, dead-lettering ----------------

def test_deferred_without_backlog_gets_explicit_receipt():
    tiny = CostModel(shard_gas_limit=200, ds_gas_limit=200)
    net = ft_network(cost_model=tiny)
    mint_all(net)
    txns = transfer_round()
    block = net.process_epoch(txns)
    assert block.stats.deferred > 0
    failures = [r for r in block.all_receipts
                if r.error == "deferred: epoch gas limit"]
    assert len(failures) == block.stats.deferred
    # Every transaction is accounted in exactly one block.
    receipt_ids = sorted(r.tx.tx_id for r in block.all_receipts)
    assert receipt_ids == sorted(t.tx_id for t in txns)


def test_backlog_backoff_spaces_out_retries():
    tiny = CostModel(shard_gas_limit=200, ds_gas_limit=200)
    net = ft_network(cost_model=tiny, carry_backlog=True,
                     retry_backoff=2.0)
    mint_all(net)
    net.process_epoch(transfer_round())
    assert net.backlog
    first = {e.tx.tx_id: e.not_before for e in net.backlog}
    assert all(e.retries == 1 for e in net.backlog)
    assert all(nb == net.epoch + 1 for nb in first.values())
    # One of them deferred a second time waits 2 epochs, not 1.
    net.process_epoch([])
    twice = [e for e in net.backlog if e.retries == 2]
    if twice:
        assert all(e.not_before == net.epoch + 2 for e in twice)


def test_dead_letter_after_max_retries():
    tiny = CostModel(shard_gas_limit=120, ds_gas_limit=120)
    net = ft_network(cost_model=tiny, carry_backlog=True, max_retries=2)
    mint_all(net)
    txns = transfer_round()
    net.process_epoch(txns)
    for _ in range(12):
        if not net.backlog:
            break
        net.process_epoch([])
    assert net.dead_letter
    exhausted = [r for b in net.blocks for r in b.all_receipts
                 if r.error == "deferred: 2 retries exhausted"]
    assert len(exhausted) == len(net.dead_letter)
    assert sum(b.stats.dead_lettered for b in net.blocks) == \
        len(net.dead_letter)
    # Accounting: every transfer either committed or was dead-lettered.
    committed = sum(1 for b in net.blocks for r in b.all_receipts
                    if r.success and r.tx.is_contract_call
                    and r.tx.transition == "Transfer")
    assert committed + len(net.dead_letter) == len(txns)


# -- dispatch / execution agreement ------------------------------------------

def test_payment_to_contract_routed_and_rejected_consistently():
    net = ft_network()
    tx = payment(USERS[0], TOKEN, amount=500, nonce=1)
    decision = net.dispatcher.dispatch(tx)
    assert decision.is_ds
    assert decision.reason == "payment to contract"

    block = net.process_epoch([tx])
    (receipt,) = block.all_receipts
    assert not receipt.success
    assert receipt.error == "payment to contract address"
    assert receipt.shard == DS
    # No shadow user account was credited under the contract address.
    assert _pad(TOKEN) not in net.accounts
    assert net.contracts[TOKEN].state.balance == 0


def test_unknown_contract_call_routed_and_rejected_consistently():
    net = ft_network()
    ghost = "0x" + "ee" * 20
    tx = call(USERS[0], ghost, "Ping", {}, nonce=1)
    decision = net.dispatcher.dispatch(tx)
    assert decision.is_ds
    assert decision.reason == "unknown contract"
    block = net.process_epoch([tx])
    (receipt,) = block.all_receipts
    assert not receipt.success
    assert receipt.error == "unknown contract"
    assert receipt.shard == DS
