"""Synthetic Ethereum trace tests (the Fig. 1 substrate)."""

import random

import pytest

from repro.workloads import ethereum as eth


def test_type_mix_sums_to_one():
    for block in (0, 10**6, 5 * 10**6, 10**7):
        mix = eth.type_mix(block)
        assert abs(sum(mix.values()) - 1.0) < 1e-9
        assert all(share >= 0 for share in mix.values())


def test_transfers_decline_monotonically():
    shares = [eth.type_mix(b)[eth.TRANSFER]
              for b in range(0, 10**7, 10**6)]
    assert all(a >= b for a, b in zip(shares, shares[1:]))


def test_single_calls_rise_to_paper_level():
    assert eth.type_mix(0)[eth.SINGLE_CALL] < 0.2
    assert eth.type_mix(10**7)[eth.SINGLE_CALL] >= 0.5


def test_erc20_share_rises():
    assert eth.erc20_share(0) < eth.erc20_share(9 * 10**6)
    assert eth.erc20_share(9 * 10**6) > 0.6


def test_generate_block_classifies_all_txns():
    rng = random.Random(1)
    txns = eth.generate_block(5 * 10**6, rng, txns_per_block=100)
    assert len(txns) == 100
    kinds = {t.kind for t in txns}
    assert kinds <= {eth.TRANSFER, eth.SINGLE_CALL, eth.MULTI_CALL,
                     eth.OTHER}
    for t in txns:
        if t.kind == eth.SINGLE_CALL:
            assert t.subkind in (eth.ERC20_CALL, eth.OTHER_CALL)
        else:
            assert t.subkind == ""


def test_sample_blocks_deterministic_and_sorted():
    a = eth.sample_blocks(100, seed=3)
    b = eth.sample_blocks(100, seed=3)
    assert a == b == sorted(a)
    assert len(set(a)) == 100


def test_margin_of_error_matches_paper_scale():
    """The paper: 1.1M of ~700M transactions → ~1% margin at 99%."""
    margin = eth.margin_of_error(1_100_000, 700_000_000)
    assert 0.001 < margin < 0.01 or abs(margin - 0.01) < 0.01


def test_margin_shrinks_with_sample_size():
    assert eth.margin_of_error(10_000, 10**8) > \
        eth.margin_of_error(1_000_000, 10**8)
