"""The option-peel zero-consistency guard.

The ERC20 idiom ``match o with Some b => add b v | None => v`` is the
canonical commutative write — but *only* because the None branch
computes exactly what the Some branch would with the absent entry
treated as zero (the IntMerge convention).  These tests pin down the
boundary: zero-consistent peels stay exact/commutative; anything else
(non-zero defaults, different operations, extra state) must lose
commutativity, or sharded execution diverges from sequential (the
concrete divergence is demonstrated end-to-end below).
"""

from repro.chain import Network, call
from repro.core.joins import JoinKind
from repro.core.pipeline import run_pipeline
from repro.core.signature import is_commutative_write
from repro.core.summary import analyze_module
from repro.scilla.interpreter import Interpreter, TxContext
from repro.scilla.parser import parse_module
from repro.scilla.values import addr, canonical, uint

USERS = ["0x" + f"{i:040x}" for i in range(1, 5)]
CONTRACT = "0x" + "c0" * 20


def contract(none_branch: str, some_branch: str = "builtin add b v",
             lib: str = "") -> str:
    return f"""
scilla_version 0
library Z
let zero = Uint128 0
let big = Uint128 1000000
{lib}
contract Z (owner: ByStr20)
field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128
transition Go (who_a: ByStr20, v: Uint128)
  o <- m[who_a];
  nv = match o with
       | Some b => {some_branch}
       | None => {none_branch}
       end;
  m[who_a] := nv
end
"""


def join_of(source: str) -> JoinKind:
    sig = run_pipeline(source, "Z").signature(("Go",))
    return sig.joins["m"]


def test_erc20_idiom_stays_commutative():
    assert join_of(contract("v")) is JoinKind.INT_MERGE


def test_explicit_zero_plus_amount_stays_commutative():
    assert join_of(contract("builtin add zero v")) is JoinKind.INT_MERGE


def test_nonzero_default_rejected():
    assert join_of(contract("big")) is JoinKind.OWN_OVERWRITE


def test_library_nonzero_default_rejected():
    assert join_of(contract("one_thousand",
                            lib="let one_thousand = Uint128 1000")) is \
        JoinKind.OWN_OVERWRITE


def test_different_operation_in_none_branch_rejected():
    # None branch computes 2·v while Some computes old+v: absent
    # entries would merge wrongly.
    assert join_of(contract("builtin mul v v")) is JoinKind.OWN_OVERWRITE


def test_parameter_default_with_subtraction():
    """sub with ``None => v`` claims absent ≡ 0 gives v, but the Some
    branch computes old − v: v's cardinality matches yet the operation
    set differs in a way that is still zero-consistent per our rule —
    check the analysis keeps soundness by the end-to-end oracle."""
    src = contract("v", some_branch="builtin sub b v")
    module = parse_module(src)
    summaries = analyze_module(module)
    (write,) = summaries["Go"].writes()
    if is_commutative_write(write):
        # If classified commutative, sharded must equal sequential.
        _assert_shard_equals_sequential(src)


def _assert_shard_equals_sequential(src: str) -> None:
    net = Network(3)
    for u in USERS:
        net.create_account(u)
    net.deploy(src, CONTRACT, {"owner": addr(USERS[0])},
               sharded_transitions=("Go",))
    target = addr(USERS[3])
    txns = [call(USERS[i], CONTRACT, "Go",
                 {"who_a": target, "v": uint(10 + i)}, nonce=1)
            for i in range(3)]
    block = net.process_epoch(txns, unlimited=True)
    committed = []
    for mb in block.microblocks:
        committed.extend(r.tx for r in mb.receipts if r.success)
    committed.extend(r.tx for r in block.ds_receipts if r.success)
    sharded = canonical(
        net.contracts[CONTRACT].state.fields["m"])
    interp = Interpreter(parse_module(src))
    state = interp.deploy(CONTRACT, {"owner": addr(USERS[0])})
    for tx in committed:
        r = interp.run_transition(state, "Go", tx.args_dict(),
                                  TxContext(sender=tx.sender))
        assert r.success
    assert sharded == canonical(state.fields["m"])


def test_nonzero_default_is_sound_end_to_end():
    """The concrete scenario that used to diverge (3000033 vs 1000033
    before the guard): three fresh-entry bumps with default ``big``
    from three senders.  With the guard the field is owned, all three
    land in one place or serialise, and the states agree."""
    _assert_shard_equals_sequential(contract("big"))


def test_guard_applies_inside_procedures_too():
    src = """
scilla_version 0
library Z
let big = Uint128 7777
contract Z (owner: ByStr20)
field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128
procedure Bump (who: ByStr20, v: Uint128)
  o <- m[who];
  nv = match o with
       | Some b => builtin add b v
       | None => big
       end;
  m[who] := nv
end
transition Go (who_a: ByStr20, v: Uint128)
  Bump who_a v
end
"""
    assert join_of(src) is JoinKind.OWN_OVERWRITE
