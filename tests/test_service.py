"""Service-loop tests: continuous mempool-drained epochs, degradation
under overload, stall/flood fault modes, honest TPS accounting for
partial batches, and the serve/loadgen CLI pair."""

import io
import json

import pytest

from repro.chain.consensus import CostModel
from repro.chain.faults import FaultEvent, FaultKind, FaultPlan
from repro.chain.mempool import AdmissionStatus, MempoolConfig
from repro.chain.network import Network
from repro.chain.service import ServiceConfig, ServiceLoop
from repro.cli import main
from repro.eval.service import (
    format_service, iter_stream, run_service, write_stream,
)
from repro.workloads import ScaledFTTransfer

# Small gas limits so a modest batch already saturates a lane and the
# deferral path engages (the default model commits hundreds per lane).
TIGHT_COST = CostModel(gas_per_second=25_000.0, consensus_base_s=2.0,
                       consensus_per_node2_s=0.01,
                       shard_gas_limit=300, ds_gas_limit=300)


def make_net(**kwargs) -> Network:
    kwargs.setdefault("use_signatures", True)
    kwargs.setdefault("carry_backlog", False)
    return Network(kwargs.pop("n_shards", 2), **kwargs)


def make_loop(net, **kwargs) -> ServiceLoop:
    pool_cfg = kwargs.pop("pool_config",
                          MempoolConfig(capacity=256, per_sender=128))
    return ServiceLoop(net, config=ServiceConfig(**kwargs),
                       pool_config=pool_cfg)


class TestServiceLoop:
    def test_requires_carry_backlog_off(self):
        net = Network(2, carry_backlog=True)
        with pytest.raises(ValueError, match="carry_backlog"):
            ServiceLoop(net)

    def test_submit_drain_commit_cycle(self):
        net = make_net()
        wl = ScaledFTTransfer(population=100, txns_per_epoch=30)
        wl.setup(net)
        loop = make_loop(net, batch_max=20)
        receipts = [loop.submit(tx) for tx in wl.transactions(1)]
        assert all(r.admitted for r in receipts)
        reports = loop.run(4)
        committed = sum(r.committed for r in reports)
        assert committed > 0
        assert loop.mempool.occupancy == 0
        assert loop.mempool.accounted() == \
            loop.mempool.counters["submitted"]

    def test_auto_fund_creates_unknown_senders(self):
        net = make_net()
        wl = ScaledFTTransfer(population=100, txns_per_epoch=10)
        wl.setup(net)
        loop = make_loop(net)
        txs = wl.transactions(1)
        users = {t.sender for t in txs} - {wl.admin}
        for tx in txs:
            loop.submit(tx)
        assert users <= set(net.accounts)

    def test_idle_tick_charges_modeled_time(self):
        net = make_net()
        loop = make_loop(net)
        report = loop.tick()
        assert report.idle
        assert loop.idle_ticks == 1
        assert net.idle_seconds["serve"] > 0
        assert loop.tps == 0.0

    def test_stall_consumer_freezes_a_tick(self):
        plan = FaultPlan([FaultEvent(1, FaultKind.STALL_CONSUMER)])
        net = make_net(fault_plan=plan)
        wl = ScaledFTTransfer(population=50, txns_per_epoch=10)
        wl.setup(net)
        loop = make_loop(net)
        for tx in wl.transactions(1):
            loop.submit(tx)
        occupancy = loop.mempool.occupancy
        epoch_before = net.epoch
        report = loop.tick()                 # tick 1: stalled
        assert report.stalled and report.drained == 0
        assert loop.mempool.occupancy == occupancy
        assert net.epoch == epoch_before     # no epoch ran
        report = loop.tick()                 # tick 2: drains normally
        assert not report.stalled and report.drained > 0

    def test_flood_multiplier_is_seeded_and_bounded(self):
        plan = FaultPlan.random(seed=5, epochs=20, n_shards=2,
                                crash_rate=0, delay_rate=0,
                                drop_rate=0, corrupt_rate=0,
                                forge_rate=0, flood_rate=1.0)
        from repro.chain.faults import FaultInjector
        inj = FaultInjector(plan)
        mults = [inj.flood_multiplier(t) for t in range(1, 21)]
        assert all(2 <= m <= 4 for m in mults)
        again = FaultInjector(FaultPlan.random(
            seed=5, epochs=20, n_shards=2, crash_rate=0, delay_rate=0,
            drop_rate=0, corrupt_rate=0, forge_rate=0, flood_rate=1.0))
        assert mults == [again.flood_multiplier(t)
                         for t in range(1, 21)]

    def test_zero_rate_plans_do_not_disturb_old_rng_streams(self):
        # FLOOD/STALL draws are guarded: a plan generated with zero
        # service-fault rates must equal one generated before those
        # parameters existed (same seed, same events).
        a = FaultPlan.random(seed=11, epochs=10, n_shards=3)
        b = FaultPlan.random(seed=11, epochs=10, n_shards=3,
                             flood_rate=0.0, stall_rate=0.0)
        assert [str(e) for e in a.events] == [str(e) for e in b.events]

    def test_deferral_readmission_and_dead_letter(self):
        net = make_net(cost_model=TIGHT_COST)
        wl = ScaledFTTransfer(population=60, txns_per_epoch=40)
        wl.setup(net)
        loop = make_loop(net, batch_max=40, max_deferrals=50)
        for tx in wl.transactions(1):
            loop.submit(tx)
        loop.drain_remaining(max_ticks=32)
        pool = loop.mempool
        assert pool.counters["readmitted"] > 0
        assert pool.counters["committed"] > 0
        assert pool.accounted() == pool.counters["submitted"]

        # Same load with no deferral budget: dead-letters instead.
        net2 = make_net(cost_model=TIGHT_COST)
        wl2 = ScaledFTTransfer(population=60, txns_per_epoch=40)
        wl2.setup(net2)
        loop2 = make_loop(net2, batch_max=40, max_deferrals=0)
        for tx in wl2.transactions(1):
            loop2.submit(tx)
        loop2.drain_remaining(max_ticks=32)
        assert loop2.mempool.counters["dead-lettered"] > 0
        assert loop2.mempool.accounted() == \
            loop2.mempool.counters["submitted"]

    def test_batch_shrinks_under_saturation_and_recovers(self):
        # Sustained overload: every tick offers another 40, the tight
        # gas limit commits only a handful, and deferrals re-enter, so
        # occupancy pins above the high-water mark and the batch must
        # shrink toward the observed commit rate.
        net = make_net(cost_model=TIGHT_COST)
        wl = ScaledFTTransfer(population=80, txns_per_epoch=40)
        wl.setup(net)
        loop = make_loop(
            net, batch_max=16, batch_min=4,
            pool_config=MempoolConfig(capacity=200, per_sender=512,
                                      high_water=0.5, low_water=0.3))
        sizes = []
        for tick in range(1, 9):
            for tx in wl.transactions(tick):
                receipt = loop.submit(tx)
                if receipt.status is AdmissionStatus.BACKPRESSURE:
                    break
            loop.tick()
            sizes.append(loop.batch_size)
        assert min(sizes) < 16          # shrank under pressure
        loop.drain_remaining(max_ticks=128)
        loop.tick()                     # idle ticks past pressure:
        loop.tick()                     # multiplicative recovery
        loop.tick()
        assert loop.batch_size == 16


class TestHonestTps:
    def test_partial_batches_do_not_inflate_average_tps(self):
        # A mempool-drained epoch with 3 transactions must not be
        # priced as if the epoch were free: tag-filtered average_tps
        # divides the same modeled seconds a full epoch pays.
        net = make_net()
        wl = ScaledFTTransfer(population=30, txns_per_epoch=3)
        wl.setup(net)
        loop = make_loop(net)
        for tx in wl.transactions(1):
            loop.submit(tx)
        loop.drain_remaining(max_ticks=8)
        served = net.average_tps(tag="serve")
        assert served == pytest.approx(loop.tps)
        assert 0 < served < 2.0         # a lane can do far more

    def test_idle_ticks_lower_served_tps(self):
        net = make_net()
        wl = ScaledFTTransfer(population=30, txns_per_epoch=6)
        wl.setup(net)
        loop = make_loop(net)
        for tx in wl.transactions(1):
            loop.submit(tx)
        loop.drain_remaining(max_ticks=8)
        busy = loop.tps
        loop.run(3)                     # idle ticks, nothing to drain
        assert loop.tps < busy
        assert net.average_tps(tag="serve") == pytest.approx(loop.tps)

    def test_tags_partition_the_blocks(self):
        net = make_net()
        wl = ScaledFTTransfer(population=30, txns_per_epoch=6)
        wl.setup(net)                   # setup epochs carry tag "epoch"
        loop = make_loop(net)
        for tx in wl.transactions(1):
            loop.submit(tx)
        loop.drain_remaining(max_ticks=8)
        tags = {b.tag for b in net.blocks}
        assert "serve" in tags
        assert net.average_tps(tag="serve") != net.average_tps() or \
            len(tags) == 1

    def test_epoch_stats_record_offered_and_carried(self):
        net = make_net()
        wl = ScaledFTTransfer(population=30, txns_per_epoch=6)
        wl.setup(net)
        block = net.process_epoch(wl.transactions(1))
        assert block.stats.offered == 6
        assert block.stats.carried_in == 0


class TestHarness:
    def test_run_service_report_partitions(self):
        run = run_service(population=300, ticks=4, txns_per_tick=40,
                          capacity=160, shards=2)
        r = run.report
        assert r.partition_ok
        assert r.committed > 0
        assert r.generated == r.submitted - r.backpressured - \
            sum(r.rejected.values()) + r.client_dropped + r.unsubmitted \
            or r.generated >= r.committed   # retries resubmit
        assert "tx/s" in format_service(r)

    def test_latency_quantiles_are_populated(self):
        run = run_service(population=300, ticks=4, txns_per_tick=40,
                          capacity=160, shards=2)
        r = run.report
        assert r.p99_latency_ticks >= r.p50_latency_ticks > 0
        assert r.p99_latency_ms >= r.p50_latency_ms > 0

    def test_stream_round_trip(self):
        buf = io.StringIO()
        header = write_stream(buf, population=100, ticks=3,
                              txns_per_tick=20, seed=3)
        assert header["total_txns"] > 0
        buf.seek(0)
        run = run_service(stream=iter_stream(buf), shards=2,
                          capacity=120)
        assert run.report.partition_ok
        assert run.report.committed > 0

    def test_stream_rejects_garbage(self):
        with pytest.raises(ValueError):
            iter_stream(io.StringIO(""))
        with pytest.raises(ValueError):
            iter_stream(io.StringIO('{"kind": "nonsense"}\n'))


class TestCli:
    def test_serve_json(self, capsys):
        rc = main(["serve", "--population", "200", "--ticks", "3",
                   "--txns", "30", "--shards", "2", "--json"])
        out = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert out["partition_ok"] is True
        assert out["committed"] > 0

    def test_loadgen_then_serve_stream(self, tmp_path, capsys):
        stream = tmp_path / "load.jsonl"
        assert main(["loadgen", "--out", str(stream), "--population",
                     "150", "--ticks", "3", "--txns", "25"]) == 0
        capsys.readouterr()
        rc = main(["serve", "--stream", str(stream), "--shards", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "partition OK" in out

    def test_bench_throughput_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_throughput.json"
        rc = main(["bench", "throughput", "--ticks", "2", "--txns",
                   "20", "--shard-counts", "2", "--populations",
                   "100,1000", "--output", str(out_path)])
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert payload["bench"] == "service-throughput"
        assert len(payload["cells"]) == 2
        for cell in payload["cells"]:
            assert cell["tps"] > 0
            assert cell["p99_latency_ticks"] >= cell["p50_latency_ticks"]
