"""Full-stack fuzzing: randomly *generated contracts*.

Hypothesis builds small random Scilla transitions from a grammar of
state operations (commutative bumps, overwrites, guarded decrements,
deletes over a map and a scalar).  For every generated contract we
check the whole pipeline:

* it parses, typechecks, and the analysis terminates;
* a signature derives for the generated transitions;
* executing a random workload sharded (2 and 3 shards) and replaying
  the committed transactions sequentially in lane order produces the
  identical final state — the paper's core soundness claim, now over
  programs nobody hand-picked.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.chain import Network, call
from repro.core.pipeline import run_pipeline
from repro.scilla.interpreter import Interpreter, TxContext
from repro.scilla.parser import parse_module
from repro.scilla.values import addr, canonical, uint

USERS = ["0x" + f"{i:040x}" for i in range(1, 7)]
CONTRACT = "0x" + "c0" * 20

KEYS = ["who_a", "who_b", "_sender"]

# One grammar production per state-manipulation idiom.
_op = st.one_of(
    st.tuples(st.just("bump"), st.sampled_from(KEYS),
              st.sampled_from(["add", "sub"])),
    st.tuples(st.just("overwrite"), st.sampled_from(KEYS),
              st.just("")),
    st.tuples(st.just("guarded_sub"), st.sampled_from(KEYS), st.just("")),
    st.tuples(st.just("bump_scalar"), st.just(""), st.just("")),
    st.tuples(st.just("delete"), st.sampled_from(KEYS), st.just("")),
    st.tuples(st.just("accept"), st.just(""), st.just("")),
    st.tuples(st.just("notify"), st.sampled_from(["who_a", "who_b"]),
              st.just("")),
)


def render_transition(name: str, ops) -> str:
    lines = [f"transition {name} (who_a: ByStr20, who_b: ByStr20,"
             f" v: Uint128)"]
    for i, (kind, key, op) in enumerate(ops):
        p = f"x{i}"
        if kind == "bump":
            lines += [
                f"  {p}_opt <- m[{key}];",
                f"  {p}_cur = match {p}_opt with",
                f"          | Some b => b",
                f"          | None => big",
                f"          end;",
                f"  {p}_new = builtin {op} {p}_cur v;",
                f"  m[{key}] := {p}_new;",
            ]
        elif kind == "overwrite":
            lines += [f"  m[{key}] := v;"]
        elif kind == "guarded_sub":
            lines += [
                f"  {p}_opt <- m[{key}];",
                f"  {p}_cur = match {p}_opt with",
                f"          | Some b => b",
                f"          | None => big",
                f"          end;",
                f"  {p}_low = builtin lt {p}_cur v;",
                f"  match {p}_low with",
                f"  | True =>",
                f"    e{i} = {{ _exception : \"Low\" }};",
                f"    throw e{i}",
                f"  | False =>",
                f"    {p}_new = builtin sub {p}_cur v;",
                f"    m[{key}] := {p}_new",
                f"  end;",
            ]
        elif kind == "bump_scalar":
            lines += [
                f"  {p}_s <- n;",
                f"  {p}_new = builtin add {p}_s v;",
                f"  n := {p}_new;",
            ]
        elif kind == "delete":
            lines += [f"  delete m[{key}];"]
        elif kind == "accept":
            lines += ["  accept;"]
        elif kind == "notify":
            lines += [
                f"  msg{i} = {{ _tag : \"Note\"; _recipient : {key};"
                f" _amount : Uint128 0; v : v }};",
                f"  msgs{i} = one_msg msg{i};",
                f"  send msgs{i};",
            ]
    body = "\n".join(lines)
    if body.endswith(";"):
        body = body[:-1]
    return body + "\nend"


def render_contract(transitions: dict[str, list]) -> str:
    rendered = "\n\n".join(render_transition(name, ops)
                           for name, ops in transitions.items())
    return f"""
scilla_version 0

library Fuzzed

let big = Uint128 1000000

contract Fuzzed (owner: ByStr20)

field m : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field n : Uint128 = Uint128 0

{rendered}
"""


_transitions = st.dictionaries(
    st.sampled_from(["Go", "Run", "Act"]),
    st.lists(_op, min_size=1, max_size=5),
    min_size=1, max_size=3,
)

_workload = st.lists(
    st.tuples(
        st.sampled_from(["Go", "Run", "Act"]),   # transition (if present)
        st.integers(0, len(USERS) - 1),          # sender
        st.integers(0, 1),                       # who_a: hot keys, so
        st.integers(0, 1),                       # who_b: fresh entries
        st.integers(1, 40),                      # v      collide often
    ),
    min_size=2, max_size=12,
)


def state_snapshot(state):
    return {name: canonical(value)
            for name, value in state.fields.items()}


@settings(max_examples=60, deadline=None)
@given(_transitions, _workload, st.sampled_from([2, 3]))
def test_random_contract_sharded_equals_replay(transitions, workload,
                                               n_shards):
    source = render_contract(transitions)
    result = run_pipeline(source, "Fuzzed")  # parse + typecheck + analyse
    selection = tuple(sorted(transitions))
    signature = result.signature(selection)  # Algorithm 3.1 terminates

    # Build the sharded network.
    net = Network(n_shards)
    for u in USERS:
        net.create_account(u)
    net.deploy(source, CONTRACT, {"owner": addr(USERS[0])},
               sharded_transitions=selection)

    nonces: dict[str, int] = {}
    txns = []
    for name, s_i, a_i, b_i, v in workload:
        if name not in transitions:
            continue
        sender = USERS[s_i]
        nonces[sender] = nonces.get(sender, 0) + 1
        txns.append(call(sender, CONTRACT, name,
                         {"who_a": addr(USERS[a_i]),
                          "who_b": addr(USERS[b_i]),
                          "v": uint(v)},
                         nonce=nonces[sender]))
    if not txns:
        return

    block = net.process_epoch(txns, unlimited=True)
    committed = []
    for mb in block.microblocks:
        committed.extend(r.tx for r in mb.receipts if r.success)
    committed.extend(r.tx for r in block.ds_receipts if r.success)
    sharded = state_snapshot(net.contracts[CONTRACT].state)

    # Sequential replay of the committed transactions, in lane order.
    interp = Interpreter(parse_module(source, "replay"))
    state = interp.deploy(CONTRACT, {"owner": addr(USERS[0])})
    for tx in committed:
        r = interp.run_transition(state, tx.transition, tx.args_dict(),
                                  TxContext(sender=tx.sender,
                                            amount=tx.amount))
        assert r.success, (
            f"replay diverged on {tx.transition}: {r.error}\n{source}")
    assert sharded == state_snapshot(state), source
