"""Abstract-domain tests: the Fig. 6 algebra, property-checked."""

import hypothesis.strategies as st
from hypothesis import given

from repro.core.domain import (
    BOT, CT, Card, ConstSource, Contrib, EFun, EMPTY, FieldSource,
    FormalSource, PseudoField, ParamKey, ConstKey, TOP, card_join,
    card_mult, card_plus, const_ct, ct_apply, ct_join, ct_plus,
    ct_scale, ct_add_op, field_ct, formal_ct, subst_formal,
)

cards = st.sampled_from(list(Card))


# -- cardinality algebra (Fig. 6 laws) ----------------------------------------

@given(cards, cards)
def test_card_plus_commutative(a, b):
    assert card_plus(a, b) == card_plus(b, a)


@given(cards, cards, card_c := cards)
def test_card_plus_associative(a, b, c):
    assert card_plus(card_plus(a, b), c) == card_plus(a, card_plus(b, c))


@given(cards)
def test_card_plus_zero_unit(a):
    assert card_plus(Card.ZERO, a) == a


def test_card_plus_one_one_is_many():
    assert card_plus(Card.ONE, Card.ONE) == Card.MANY


@given(cards, cards)
def test_card_join_is_max(a, b):
    assert card_join(a, b) == Card(max(int(a), int(b)))


@given(cards)
def test_card_mult_one_unit(a):
    assert card_mult(Card.ONE, a) == a
    assert card_mult(a, Card.ONE) == a


@given(cards)
def test_card_mult_zero_annihilates(a):
    assert card_mult(Card.ZERO, a) == Card.ZERO


@given(cards, cards)
def test_card_mult_commutative(a, b):
    assert card_mult(a, b) == card_mult(b, a)


# -- contribution types ---------------------------------------------------------

sources = st.sampled_from([
    FieldSource(PseudoField("f", (ParamKey("x"),))),
    FieldSource(PseudoField("g")),
    ConstSource("c"),
    FormalSource("a"),
    FormalSource("b"),
])
contribs = st.builds(
    Contrib, cards,
    st.frozensets(st.sampled_from(["add", "sub", "mul", "Cond"]),
                  max_size=2),
    st.booleans())
cts = st.builds(
    lambda pairs: CT.of(dict(pairs)),
    st.lists(st.tuples(sources, contribs), max_size=4),
)


@given(cts, cts)
def test_ct_plus_commutative(a, b):
    assert ct_plus(a, b) == ct_plus(b, a)


@given(cts, cts, cts)
def test_ct_plus_associative(a, b, c):
    assert ct_plus(ct_plus(a, b), c) == ct_plus(a, ct_plus(b, c))


@given(cts)
def test_ct_plus_empty_unit(a):
    assert ct_plus(EMPTY, a) == a


@given(cts, cts)
def test_ct_join_commutative(a, b):
    assert ct_join(a, b) == ct_join(b, a)


@given(cts)
def test_ct_join_idempotent(a):
    assert ct_join(a, a) == a


@given(cts)
def test_top_absorbs(a):
    assert ct_plus(TOP, a) == TOP
    assert ct_join(TOP, a) == TOP


@given(cts)
def test_bot_is_join_unit(a):
    assert ct_join(BOT, a) == a


@given(cts)
def test_scale_by_one_identity(a):
    assert ct_scale(a, Contrib(Card.ONE)) == a


@given(cts)
def test_scale_by_zero_erases(a):
    scaled = ct_scale(a, Contrib(Card.ZERO))
    assert all(c.card == Card.ZERO for _, c in scaled.sources)


# -- specific behaviours -----------------------------------------------------------

def test_ct_add_op_records_builtin():
    ct = ct_add_op(formal_ct("x"), "add")
    (source, contrib), = ct.sources
    assert contrib.ops == frozenset({"add"})


def test_branch_absence_keeps_exactness():
    """Joining {f:(1,{add})} with a branch not mentioning f must keep f
    exact — the canonical ERC20 `None => amount` case."""
    a = CT.of({FieldSource(PseudoField("bal", (ParamKey("to"),))):
               Contrib(Card.ONE, frozenset({"add"}))})
    b = const_ct("amount")
    joined = ct_join(a, b)
    field_contrib = joined.get(
        FieldSource(PseudoField("bal", (ParamKey("to"),))))
    assert field_contrib.card == Card.ONE
    assert field_contrib.exact


def test_conflicting_ops_lose_exactness():
    f = FieldSource(PseudoField("f"))
    a = CT.of({f: Contrib(Card.ONE, frozenset({"add"}))})
    b = CT.of({f: Contrib(Card.ONE, frozenset({"mul"}))})
    joined = ct_join(a, b)
    assert not joined.get(f).exact
    assert joined.get(f).ops == frozenset({"add", "mul"})


def test_plus_doubles_cardinality():
    """x + x uses the source twice: f(x)=x+x does not commute with
    g(x)=x+1 — the paper's linearity example."""
    doubled = ct_plus(formal_ct("x"), formal_ct("x"))
    (source, contrib), = doubled.sources
    assert contrib.card == Card.MANY


def test_efun_application_substitutes():
    body = CT.of({FormalSource("p"): Contrib(Card.ONE, frozenset({"add"})),
                  ConstSource("1"): Contrib(Card.ONE)})
    fn = EFun("p", body)
    result = ct_apply(fn, field_ct(PseudoField("f")))
    field_contrib = result.get(FieldSource(PseudoField("f")))
    assert field_contrib.card == Card.ONE
    assert "add" in field_contrib.ops
    assert result.get(FormalSource("p")).card == Card.ZERO


def test_efun_nonlinear_body_scales_argument():
    body = ct_plus(formal_ct("p"), formal_ct("p"))  # uses p twice
    result = ct_apply(EFun("p", body), field_ct(PseudoField("f")))
    assert result.get(FieldSource(PseudoField("f"))).card == Card.MANY


def test_apply_unknown_function_is_conservative():
    result = ct_apply(BOT, field_ct(PseudoField("f")))
    contrib = result.get(FieldSource(PseudoField("f")))
    assert contrib.card == Card.MANY
    assert not contrib.exact


def test_pseudo_field_aliasing():
    bal_x = PseudoField("bal", (ParamKey("x"),))
    bal_y = PseudoField("bal", (ParamKey("y"),))
    other = PseudoField("allow", (ParamKey("x"),))
    const_a = PseudoField("bal", (ConstKey("A"),))
    const_b = PseudoField("bal", (ConstKey("B"),))
    assert bal_x.may_alias(bal_y)       # params may coincide at runtime
    assert not bal_x.may_alias(other)   # different fields never alias
    assert not const_a.may_alias(const_b)  # distinct constants proven apart
    assert bal_x.may_alias(const_a)     # param vs constant may coincide


def test_subst_formal_leaves_others():
    body = CT.of({FormalSource("p"): Contrib(Card.ONE),
                  FormalSource("q"): Contrib(Card.ONE)})
    out = subst_formal(body, "p", const_ct("5"))
    assert out.get(FormalSource("q")).card == Card.ONE
    assert out.get(ConstSource("5")).card == Card.ONE
