"""E3/E4/E5 — Sec. 5.1.2 histogram and Fig. 13a/13b.

Regenerates the transition-count histogram, the size of the largest
good-enough signature per contract (13a), and the number of maximal GE
signatures (13b) for the whole corpus, benchmarking the exhaustive
Σ (n choose k) solver enumeration the paper describes.
"""

from repro.eval.ge_stats import format_fig13, run_fig13


def test_fig13_ge_signatures(benchmark, save_result):
    result = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    save_result("fig13_ge_signatures", format_fig13(result))

    hist = result.transition_histogram()
    # Corpus scale mirrors the paper: ~50 contracts, 1..11+ transitions.
    assert sum(hist.values()) >= 49
    assert min(hist) == 1
    assert max(hist) >= 10

    # Fig. 13a: largest GE size never exceeds the transition count and
    # larger contracts expose multi-transition parallelism.
    points = dict()
    for n_trans, largest in result.largest_ge_points():
        assert 0 <= largest <= n_trans
        points.setdefault(n_trans, []).append(largest)
    assert max(max(v) for v in points.values()) >= 6

    # Fig. 13b: some contracts have several maximal signatures (the
    # developer has real choices), others none at all.
    maximal_counts = [m for _, m in result.maximal_ge_points()]
    assert max(maximal_counts) >= 2
    assert min(maximal_counts) == 0  # e.g. HTLC: nothing shardable
