"""State-engine benchmark: CoW forks and journal checkpoints vs. the
deep-copy baseline the seed used.

Records per-size timings and payload bytes into
``benchmarks/results/state_engine.txt`` and the repo-root
``BENCH_state.json``, and asserts the PR's headline claim: on a
100k-entry map, checkpoint take plus lane-payload construction is at
least 10× faster than the deep-copy baseline.  The CoW-counter smoke
at the bottom is the regression guard CI runs: a checkpoint take that
materialises copies has regressed to O(state).
"""

import json
from pathlib import Path

from repro.chain.recovery import NetworkCheckpoint
from repro.eval.state_bench import (
    format_state_bench, run_state_bench, write_state_bench,
)
from repro.scilla import values as scilla_values
from repro.scilla.values import StringVal, uint

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_state.json"


def test_state_bench_records_results(save_result):
    result = run_state_bench()
    save_result("state_engine", format_state_bench(result))
    write_state_bench(result, BENCH_JSON)

    payload = json.loads(BENCH_JSON.read_text())
    assert payload["benchmark"] == "state-engine"
    assert [r["entries"] for r in payload["rows"]] == \
        [1_000, 10_000, 100_000]
    for row in payload["rows"]:
        assert row["checkpoint_take_ns"]["new"] > 0
        assert row["payload_bytes"]["new_sliced"] < \
            row["payload_bytes"]["old"]

    # The acceptance bar: ≥10× at 10^5 entries (in practice the gap is
    # orders of magnitude — a journal mark is O(1) and a slice is
    # O(footprint), while the baseline deep-copies 100k values twice).
    at_100k = next(r for r in result.rows if r.entries == 100_000)
    assert at_100k.speedup >= 10, (
        f"take+payload at 100k entries only {at_100k.speedup:.1f}x "
        f"faster than the deep-copy baseline")
    # Sliced payloads ship a constant number of entries, so bytes must
    # be a vanishing fraction of the full state at this size.
    assert at_100k.bytes_ratio < 0.05


def test_checkpoint_take_is_o1_zero_cow_copies():
    """Network-level CoW guard: taking (and releasing) a checkpoint on
    a large state must not materialise a single copy-on-write dict.
    A regression to eager copying trips the counter long before it
    shows up as wall-clock noise."""
    from repro.chain.network import Network

    net = Network(4, use_signatures=False)
    from repro.eval.state_bench import _big_state
    state = _big_state(100_000)
    state.journal = net.journal
    from repro.chain.network import DeployedContract
    net.contracts[state.address] = DeployedContract(
        state.address, None, None, state)

    before = scilla_values.COW_COPIES
    for _ in range(10):
        checkpoint = NetworkCheckpoint.take(net)
        checkpoint.release(net)
    assert scilla_values.COW_COPIES == before

    # And a take → write burst → restore cycle pays exactly the writes'
    # CoW materialisations (bounded by map depth), never O(entries).
    checkpoint = NetworkCheckpoint.take(net)
    for i in range(32):
        state.write(("balances", (StringVal(f"0x{i:040x}"),)),
                    uint(999))
    checkpoint.restore(net)
    checkpoint.release(net)
    assert scilla_values.COW_COPIES - before <= 4
