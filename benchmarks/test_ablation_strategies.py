"""E9 — Sec. 5.2.3 + design ablations from DESIGN.md §6.

* Ownership vs commutativity: which analysis carries which workload.
* Relaxed vs strict nonces (Sec. 4.2.1).
"""

from repro.eval.ablation import format_ablation, run_ablation


def test_ablation_strategies(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_ablation(epochs=4, txns_per_epoch=300, n_shards=4),
        rounds=1, iterations=1)
    save_result("ablation_strategies", format_ablation(result))

    # Fungible transfers need the commutativity strategy: with
    # IntMerge disabled, both balance entries must be owned and the
    # workload collapses toward the baseline.
    assert result.tps("FT transfer", "full CoSplit") > \
        result.tps("FT transfer", "ownership only") * 1.3

    # Non-fungible record updates are carried by disjoint ownership
    # alone: removing IntMerge costs them almost nothing.
    assert result.tps("UD config", "ownership only") > \
        result.tps("UD config", "full CoSplit") * 0.8

    # The relaxed nonce rule is what lets a single sender's
    # transactions execute in different shards.
    assert result.tps("NFT mint", "relaxed nonces") > \
        result.tps("NFT mint", "strict nonces") * 2
