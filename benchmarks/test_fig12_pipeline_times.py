"""E2 — Fig. 12: parsing / typechecking / sharding-analysis times.

Benchmarks the three deployment-pipeline stages over the corpus and
regenerates the per-contract breakdown.  The paper's headline number:
the analysis adds a significant but acceptable overhead (~46% of the
total deployment time) and runs in microseconds per contract.
"""

from repro.contracts import CORPUS
from repro.core.pipeline import run_pipeline
from repro.eval.analysis_perf import format_fig12, run_fig12


def test_fig12_per_contract_breakdown(benchmark, save_result):
    result = benchmark.pedantic(lambda: run_fig12(repetitions=5),
                                rounds=1, iterations=1)
    save_result("fig12_pipeline_times", format_fig12(result))
    assert len(result.rows) == len(CORPUS)
    # Analysis must stay within the same order of magnitude as the
    # rest of the pipeline (the paper reports ~46% of total).
    assert result.analysis_overhead < 2.0
    # Every stage is microsecond-to-millisecond scale per contract.
    for row in result.rows:
        assert row.total_us < 100_000


def test_benchmark_single_deployment(benchmark):
    """Raw pipeline throughput on the largest evaluation contract."""
    source = CORPUS["FungibleToken"]
    benchmark(lambda: run_pipeline(source, "FungibleToken"))


def test_benchmark_analysis_stage_only(benchmark):
    """The marginal cost of the CoSplit phase in isolation."""
    source = CORPUS["UD_registry"]
    from repro.core.summary import analyze_module
    from repro.scilla.parser import parse_module
    module = parse_module(source, "UD")
    benchmark(lambda: analyze_module(module))
