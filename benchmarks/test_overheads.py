"""E8 — Sec. 5.2.2: overheads introduced by CoSplit.

Micro-benchmarks for the two operations the paper measures (dispatch,
delta merging) plus the justification measurement: merging a delta is
orders of magnitude cheaper than re-executing the transactions that
produced it.
"""

from repro.chain.transaction import call
from repro.eval.overheads import (
    TOKEN_ADDR, _token_network, format_overheads, run_overheads,
)
from repro.scilla.values import addr, uint


def test_overheads_report(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_overheads(n_dispatch=3000, n_entries=2000),
        rounds=1, iterations=1)
    save_result("overheads", format_overheads(result))
    # Directions must match the paper even though absolute numbers are
    # Python-scale: signature dispatch costs more, merging costs more
    # per field than plain application, and merging beats re-execution.
    assert result.dispatch_slowdown > 3
    assert result.merge_per_field_joins_us > 0
    assert result.merge_speedup_vs_execution > 5


def test_benchmark_dispatch_default(benchmark):
    net, _ = _token_network(use_signatures=False)
    tx = call("0x11", TOKEN_ADDR, "Transfer",
              {"to": addr("0x22"), "amount": uint(1)}, nonce=1)
    benchmark(lambda: net.dispatcher.dispatch(tx))


def test_benchmark_dispatch_with_signature(benchmark):
    net, _ = _token_network(use_signatures=True)
    tx = call("0x11", TOKEN_ADDR, "Transfer",
              {"to": addr("0x22"), "amount": uint(1)}, nonce=1)
    benchmark(lambda: net.dispatcher.dispatch(tx))
