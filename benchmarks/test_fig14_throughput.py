"""E7 — Fig. 14: average TPS per workload vs number of shards.

The headline experiment: each of the five evaluation contracts is
deployed with no sharding information (baseline) and with a reasonable
CoSplit signature, then subjected to sustained workloads over several
epochs in a saturated network.  The assertions check the paper's
qualitative shape:

* FT transfer, CF donate, NFT mint, NFT transfer, UD bestow and UD
  config gain throughput roughly linearly with shard count;
* FT fund (single owner) and ProofIPFS register (cross-shard
  footprint) do not scale, but do not regress either.
"""

import pytest

from repro.eval.throughput import (
    DEFAULT_CONFIGS, format_fig14, run_fig14,
)

SCALING = ["FT transfer", "CF donate", "NFT mint", "NFT transfer",
           "UD bestow", "UD config"]
FLAT = ["FT fund", "ProofIPFS register"]


@pytest.fixture(scope="module")
def fig14_result():
    # 6 epochs × 500 offered transactions, the paper's 4 configurations.
    return run_fig14(epochs=6, txns_per_epoch=500)


def test_fig14_throughput(benchmark, save_result, fig14_result):
    result = benchmark.pedantic(lambda: fig14_result, rounds=1,
                                iterations=1)
    save_result("fig14_throughput", format_fig14(result))

    labels = [c.label for c in DEFAULT_CONFIGS]
    for workload in SCALING:
        series = [result.tps(workload, label) for label in labels]
        baseline, cs3, cs4, cs5 = series
        assert cs3 > baseline * 1.2, (workload, series)
        assert cs5 > cs3 * 1.1, (workload, series)
        assert cs5 >= cs4 * 0.95, (workload, series)
    for workload in FLAT:
        series = [result.tps(workload, label) for label in labels]
        baseline, _, _, cs5 = series
        # No scaling...
        assert cs5 < baseline * 1.35, (workload, series)
        # ...but no collapse either ("performance does not degrade").
        assert cs5 > baseline * 0.5, (workload, series)

    # Where the work actually runs: shardable workloads leave the DS
    # committee nearly idle under CoSplit; ProofIPFS stays DS-bound.
    by_key = {(c.workload, c.config): c for c in result.cells}
    cs5 = "CoSplit 5 shards"
    assert by_key[("FT transfer", cs5)].ds_fraction < 0.1
    assert by_key[("UD bestow", cs5)].ds_fraction < 0.1
    assert by_key[("ProofIPFS register", cs5)].ds_fraction > 0.5
