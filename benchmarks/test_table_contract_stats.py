"""E6 — the Sec. 5.2 contract-statistics table.

LOC / #transitions / largest GES / #maximal GES for the five
evaluation contracts, checked cell-by-cell against the paper's values
(transition counts and GE statistics must match exactly; LOC differs
because the corpus was re-written from the contracts' descriptions).
"""

from repro.eval.tables import (
    PAPER_TABLE, format_contract_stats, run_contract_stats,
)


def test_contract_stats_table(benchmark, save_result):
    result = benchmark.pedantic(run_contract_stats, rounds=1,
                                iterations=1)
    save_result("table_contract_stats", format_contract_stats(result))
    assert len(result.rows) == len(PAPER_TABLE)
    for row in result.rows:
        _, p_trans, p_ges, p_max = row.paper
        assert row.n_transitions == p_trans, row.contract
        assert row.largest_ges == p_ges, row.contract
        assert row.n_maximal_ges == p_max, row.contract
