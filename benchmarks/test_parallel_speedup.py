"""Serial-vs-parallel corpus analysis benchmark.

Records wall-clock for analysing the whole corpus serially and through
the shared process pool, plus SummaryCache hit rates, into
``benchmarks/results/parallel_analysis.txt`` and the repo-root
``BENCH_parallel.json``.  The speedup assertion is a separate test that
skips (rather than fails) on runners without enough cores.
"""

import json
import os
from pathlib import Path

import pytest

from repro.eval.analysis_perf import (
    format_parallel_bench,
    run_parallel_bench,
    write_parallel_bench,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_parallel.json"


def test_parallel_bench_records_results(save_result):
    result = run_parallel_bench(repetitions=1)
    save_result("parallel_analysis", format_parallel_bench(result))
    write_parallel_bench(result, BENCH_JSON)

    payload = json.loads(BENCH_JSON.read_text())
    # Everything but the timing block is a deterministic function of
    # the corpus and configuration.
    assert payload["benchmark"] == "parallel-analysis"
    assert payload["n_contracts"] == result.n_contracts > 0
    assert payload["cache"]["hits"] == result.n_contracts
    assert payload["cache"]["misses"] == result.n_contracts
    assert payload["cache"]["hit_rate"] == 0.5
    assert set(payload["timing"]) == {"serial_s", "parallel_s", "speedup"}
    assert result.serial_s > 0 and result.parallel_s > 0


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup needs at least 4 cores")
def test_parallel_speedup_at_least_1_5x_on_4_workers():
    # One repetition can be noisy (pool spin-up, CI neighbours); retry
    # with more repetitions before declaring a miss.
    for repetitions in (1, 3, 5):
        result = run_parallel_bench(workers=4, repetitions=repetitions)
        if result.speedup >= 1.5:
            break
    assert result.speedup >= 1.5, (
        f"expected >=1.5x with 4 workers, got {result.speedup:.2f}x "
        f"(serial {result.serial_s:.3f}s, parallel {result.parallel_s:.3f}s)")
    assert not result.fell_back
