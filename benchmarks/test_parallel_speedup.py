"""Resident-worker epoch throughput benchmark.

Records wall-clock for the eight Fig. 14 workloads through the serial
loop, fresh per-epoch lane payloads, and resident shard workers, into
``benchmarks/results/parallel_epochs.txt`` and the repo-root
``BENCH_parallel.json``.  The headline speedup — fresh over resident
at equal worker counts — does not need spare cores, so the assertion
runs everywhere; it retries with more epochs before declaring a miss.
"""

import json
from pathlib import Path

from repro.eval.parallel_bench import (
    format_parallel_bench,
    run_parallel_bench,
    write_parallel_bench,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_parallel.json"


def test_parallel_bench_records_results(save_result):
    result = run_parallel_bench(workers=4, epochs=6)
    save_result("parallel_epochs", format_parallel_bench(result))
    write_parallel_bench(result, BENCH_JSON)

    payload = json.loads(BENCH_JSON.read_text())
    # Everything but the timings is a deterministic function of the
    # workload suite and configuration.
    assert payload["benchmark"] == "parallel-epochs"
    assert payload["workers"]["requested"] == 4
    assert payload["workers"]["effective"] == 4
    assert len(payload["workloads"]) == 8
    assert payload["fallbacks"] == 0
    # The resident path engaged: every workload installed all 4 lanes
    # and kept syncing them afterwards.
    assert payload["resident"]["lane.resident.installs"] >= 8 * 4
    assert payload["resident"]["lane.resident.sync_pushes"] > 0
    assert result.fresh_s > 0 and result.resident_s > 0


def test_resident_speedup_at_least_2x_on_4_workers():
    # One short run can be noisy (pool spin-up, CI neighbours); retry
    # with more epochs — which amortise the one-time install — before
    # declaring a miss.
    for epochs in (8, 12, 16):
        result = run_parallel_bench(workers=4, epochs=epochs)
        if result.speedup >= 2.0:
            break
    assert result.speedup >= 2.0, (
        f"expected >=2x fresh/resident with 4 workers, got "
        f"{result.speedup:.2f}x (fresh {result.fresh_s:.3f}s, "
        f"resident {result.resident_s:.3f}s)")
    assert result.fallbacks == 0
