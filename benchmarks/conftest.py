"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table or figure of the paper's
evaluation section and saves the formatted output under
``benchmarks/results/`` so the numbers can be inspected after a run.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    """Persist a regenerated figure/table and echo it to the log."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return save
