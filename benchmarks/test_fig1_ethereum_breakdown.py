"""E1 — Fig. 1: Ethereum transaction breakdown per type.

Regenerates both plots (type mix per block bin; ERC20 share of single-
contract calls) from the synthetic trace using the paper's sampling
methodology, and benchmarks the sampling+classification pipeline.
"""

from repro.eval.ethereum_breakdown import format_fig1, run_fig1
from repro.workloads import ethereum as eth


def test_fig1_full_series(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_fig1(n_blocks=3000, bin_size=500_000,
                         txns_per_block=66),
        rounds=1, iterations=1)
    save_result("fig1_ethereum_breakdown", format_fig1(result))

    bins = sorted(result.breakdown)
    first, last = result.breakdown[bins[0]], result.breakdown[bins[-1]]
    # Paper: "ordinary user-to-user transfers are on a solid downward
    # trend" and "single-contract transactions take up to 55% of the
    # recent blocks".
    assert first[eth.TRANSFER] > 70
    assert last[eth.TRANSFER] < 45
    assert last[eth.SINGLE_CALL] > 45
    # Paper (right plot): ERC20 dominates recent single-call traffic.
    assert result.single_call_split[bins[-1]][eth.ERC20_CALL] > 60
