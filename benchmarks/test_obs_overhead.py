"""Observability overhead microbenchmarks.

Two claims are checked and recorded under ``benchmarks/results/``:

* the null instruments handed out by a disabled registry/tracer cost
  nanoseconds per call — a ``Network`` built without ``metrics=`` pays
  essentially nothing for the instrumentation hooks;
* a fully enabled registry + tracer stays within a small multiple of
  the disabled run on a real epoch workload.

Assertion bounds are deliberately generous (shared CI runners are
noisy); the recorded numbers are the real deliverable.
"""

import time

from repro.chain.network import Network
from repro.chain.transaction import payment
from repro.obs import NULL_REGISTRY, NULL_TRACER, MetricsRegistry, Tracer

OPS = 200_000


def _per_op_ns(fn, ops: int = OPS) -> float:
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter_ns()
        fn(ops)
        best = min(best, time.perf_counter_ns() - t0)
    return best / ops


def test_null_instruments_cost_nanoseconds(save_result):
    counter = NULL_REGISTRY.counter("bench.counter")
    hist = NULL_REGISTRY.histogram("bench.hist", (1, 2, 3))

    def inc(n):
        for _ in range(n):
            counter.inc()

    def observe(n):
        for _ in range(n):
            hist.observe(17)

    def span(n):
        for _ in range(n):
            with NULL_TRACER.span("s"):
                pass

    inc_ns = _per_op_ns(inc)
    observe_ns = _per_op_ns(observe)
    span_ns = _per_op_ns(span)

    save_result("obs_overhead_null_ops", "\n".join([
        "Null-instrument cost per call",
        f"  counter.inc      {inc_ns:8.1f} ns",
        f"  histogram.observe{observe_ns:8.1f} ns",
        f"  tracer.span      {span_ns:8.1f} ns",
    ]))
    # A no-op method call should sit well under a microsecond even on
    # a loaded runner; 5 µs means something real snuck onto the path.
    assert inc_ns < 5_000
    assert observe_ns < 5_000
    assert span_ns < 5_000


def _run_epochs(metrics, tracer) -> float:
    net = Network(4, metrics=metrics, tracer=tracer)
    users = [f"user{i}" for i in range(16)]
    for u in users:
        net.create_account(u, balance=10**6)
    t0 = time.perf_counter_ns()
    nonces = dict.fromkeys(users, 0)
    for _ in range(6):
        txns = []
        for i, u in enumerate(users):
            nonces[u] += 1
            txns.append(payment(u, users[(i + 1) % len(users)],
                                amount=1, nonce=nonces[u]))
        net.process_epoch(txns)
    return (time.perf_counter_ns() - t0) / 1e9


def test_enabled_registry_overhead_is_bounded(save_result):
    # Interleave and keep the best of three to dampen runner noise.
    disabled_s = min(_run_epochs(None, None) for _ in range(3))
    enabled_s = min(_run_epochs(MetricsRegistry(), Tracer())
                    for _ in range(3))
    ratio = enabled_s / disabled_s if disabled_s else 1.0

    save_result("obs_overhead_epochs", "\n".join([
        "Epoch-processing wall clock (6 epochs x 16 payments, 4 shards)",
        f"  disabled (null registry) {disabled_s:8.4f} s",
        f"  enabled  (full registry) {enabled_s:8.4f} s",
        f"  ratio                    {ratio:8.2f}x",
    ]))
    # Metric recording is a handful of dict/int ops per transaction;
    # 3x leaves ample headroom for scheduling jitter on tiny runs.
    assert ratio < 3.0
