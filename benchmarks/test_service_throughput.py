"""Service-mode throughput benchmark.

Sweeps the mempool-drained service loop across shard counts and sender
populations (including a 10^5-sender run) and records modeled tx/s and
submit->commit latency quantiles into
``benchmarks/results/service_throughput.txt`` and the repo-root
``BENCH_throughput.json``.
"""

import json
from pathlib import Path

from repro.eval.throughput import (
    format_throughput_bench,
    run_throughput_bench,
    write_throughput_bench,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_throughput.json"

SHARD_COUNTS = (2, 4, 8)
POPULATIONS = (1_000, 100_000)


def test_service_throughput_bench_records_results(save_result):
    result = run_throughput_bench(
        shard_counts=SHARD_COUNTS, populations=POPULATIONS,
        ticks=10, txns_per_tick=200, seed=7)
    save_result("service_throughput", format_throughput_bench(result))
    write_throughput_bench(result, BENCH_JSON)

    payload = json.loads(BENCH_JSON.read_text())
    assert payload["bench"] == "service-throughput"
    assert len(payload["cells"]) == len(SHARD_COUNTS) * len(POPULATIONS)
    by_key = {(c["shards"], c["population"]): c
              for c in payload["cells"]}
    for shards in SHARD_COUNTS:
        for population in POPULATIONS:
            cell = by_key[(shards, population)]
            assert cell["tps"] > 0
            assert cell["committed"] > 0
            assert cell["p99_latency_ticks"] >= cell["p50_latency_ticks"]
            assert cell["p99_latency_ms"] >= cell["p50_latency_ms"]
    # The large-population sweep really spread the load: more distinct
    # senders than a single tick's batch could hold.  (Debut draws are
    # admin-funded Mints, so the sender set grows with revisits, not
    # with the raw address space.)
    wide = by_key[(SHARD_COUNTS[-1], POPULATIONS[-1])]
    assert wide["unique_senders"] > 200
