"""Evaluation harness: regenerates every table and figure of Sec. 5.

One module per experiment; each exposes a ``run_*`` function returning
plain data structures plus a ``format_*`` helper that prints the same
rows/series the paper reports.  The ``benchmarks/`` tree calls into
these.
"""

from .ablation import format_ablation, run_ablation
from .analysis_perf import run_fig12, format_fig12
from .ethereum_breakdown import run_fig1, format_fig1
from .ge_stats import run_fig13, format_fig13
from .overheads import run_overheads, format_overheads
from .tables import run_contract_stats, format_contract_stats
from .report import run_full_report
from .throughput import run_fig14, format_fig14

__all__ = [
    "run_fig1", "format_fig1",
    "run_fig12", "format_fig12",
    "run_fig13", "format_fig13",
    "run_fig14", "format_fig14",
    "run_contract_stats", "format_contract_stats",
    "run_overheads", "format_overheads",
    "run_ablation", "format_ablation",
    "run_full_report",
]
