"""Fig. 13 + the Sec. 5.1.2 histogram — good-enough signature stats.

For every corpus contract: the number of transitions (the bar chart),
the size of the largest good-enough signature (Fig. 13a), and the
number of maximal GE signatures (Fig. 13b).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from ..contracts import CORPUS
from ..core.pipeline import run_pipeline
from ..core.solver import GEReport


@dataclass
class Fig13Result:
    reports: list[GEReport] = dc_field(default_factory=list)

    def transition_histogram(self) -> dict[int, int]:
        hist: dict[int, int] = {}
        for r in self.reports:
            hist[r.n_transitions] = hist.get(r.n_transitions, 0) + 1
        return dict(sorted(hist.items()))

    def largest_ge_points(self) -> list[tuple[int, int]]:
        """(#transitions, largest GE size) — Fig. 13a scatter."""
        return [(r.n_transitions, r.largest_ge_size) for r in self.reports]

    def maximal_ge_points(self) -> list[tuple[int, int]]:
        """(#transitions, #maximal GE signatures) — Fig. 13b scatter."""
        return [(r.n_transitions, r.n_maximal) for r in self.reports]


def run_fig13(contracts: dict[str, str] | None = None) -> Fig13Result:
    contracts = contracts if contracts is not None else CORPUS
    result = Fig13Result()
    for name, source in contracts.items():
        deployment = run_pipeline(source, name)
        result.reports.append(deployment.solver().report())
    return result


def format_fig13(result: Fig13Result) -> str:
    lines = ["Sec. 5.1.2 — transitions per contract (histogram)"]
    for n, count in result.transition_histogram().items():
        lines.append(f"  {n:2d} transitions: {'█' * count} {count}")
    lines.append("")
    lines.append("Fig. 13a/b — good-enough signatures")
    lines.append(f"{'contract':28s} {'#trans':>6s} {'largest GE':>10s} "
                 f"{'#maximal GE':>11s}")
    for r in sorted(result.reports, key=lambda r: (r.n_transitions,
                                                   r.contract)):
        lines.append(f"{r.contract:28s} {r.n_transitions:>6d} "
                     f"{r.largest_ge_size:>10d} {r.n_maximal:>11d}")
    return "\n".join(lines)
