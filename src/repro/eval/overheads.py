"""Sec. 5.2.2 — overheads introduced by CoSplit.

Three micro-measurements, mirroring the paper's:

* transaction dispatch time: signature-driven constraint resolution vs
  the default sender-hash strategy (paper: 8 µs → 475 µs);
* state-delta merge time per changed field (paper: 0.8 µs → 48.65 µs);
* the justification: merging a delta is far cheaper than re-executing
  the transactions that produced it (paper: 50 s of execution merges
  in ~0.5 s).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..chain.delta import compute_delta, merge_deltas
from ..chain.dispatch import DeployedSignature
from ..chain.network import Network
from ..chain.transaction import call
from ..contracts import CORPUS, EVAL_CONTRACTS
from ..scilla.interpreter import Interpreter, TxContext
from ..scilla.values import addr, uint, IntVal, StringVal
from ..scilla import types as ty

TOKEN_ADDR = "0x" + "c0" * 20


@dataclass
class OverheadResult:
    dispatch_default_us: float
    dispatch_signature_us: float
    merge_per_field_plain_us: float
    merge_per_field_joins_us: float
    exec_seconds_merged: float
    merge_seconds: float

    @property
    def dispatch_slowdown(self) -> float:
        return (self.dispatch_signature_us / self.dispatch_default_us
                if self.dispatch_default_us else 0.0)

    @property
    def merge_speedup_vs_execution(self) -> float:
        return (self.exec_seconds_merged / self.merge_seconds
                if self.merge_seconds else 0.0)


def _token_network(use_signatures: bool, n_shards: int = 3) -> Network:
    net = Network(n_shards, use_signatures=use_signatures)
    admin = "0x" + "ad" * 20
    net.create_account(admin)
    selection = EVAL_CONTRACTS["FungibleToken"] if use_signatures else None
    net.deploy(CORPUS["FungibleToken"], TOKEN_ADDR, {
        "contract_owner": addr(admin), "name": StringVal("T"),
        "symbol": StringVal("T"), "decimals": IntVal(6, ty.UINT32),
        "init_supply": uint(10**15),
    }, sharded_transitions=selection)
    return net, admin


def measure_dispatch(n: int = 2_000) -> tuple[float, float]:
    """Per-transaction dispatch time, default vs signature-driven.

    The default strategy runs in-process in the node (a hash of the
    sender address).  The signature-driven path mirrors the paper's
    deployment: the transaction crosses a JSON-RPC boundary to the
    CoSplit dispatcher, so its cost includes serialisation and
    deserialisation — which the paper identifies as the dominant part
    of its measured 60x dispatch slowdown.
    """
    from ..chain.serialization import (
        transaction_from_json, transaction_to_json,
    )
    results = []
    for use_sig in (False, True):
        net, admin = _token_network(use_sig)
        txns = [
            call(f"0x{i:040x}", TOKEN_ADDR, "Transfer",
                 {"to": addr(f"0x{i + 1:040x}"), "amount": uint(1)},
                 nonce=1)
            for i in range(1, n + 1)
        ]
        if use_sig:
            wire = [transaction_to_json(tx) for tx in txns]
            t0 = time.perf_counter()
            for text in wire:
                net.dispatcher.dispatch(transaction_from_json(text))
            elapsed = time.perf_counter() - t0
        else:
            t0 = time.perf_counter()
            for tx in txns:
                net.dispatcher.dispatch(tx)
            elapsed = time.perf_counter() - t0
        results.append(elapsed / n * 1e6)
    return results[0], results[1]


def measure_merge(n_entries: int = 2_000) -> tuple[float, float, float, float]:
    """Per-changed-field merge time and merge-vs-execute comparison."""
    net, admin = _token_network(use_signatures=True)
    contract = net.contracts[TOKEN_ADDR]
    base = contract.state

    # Execute a batch of transfers on a copy, tracking touched keys and
    # the wall-clock execution time they represent.
    working = base.copy()
    touched = set()
    interpreter = contract.interpreter
    t0 = time.perf_counter()
    for i in range(n_entries):
        result = interpreter.run_transition(
            working, "Transfer",
            {"to": addr(f"0x{i + 10:040x}"), "amount": uint(1)},
            TxContext(sender=admin))
        assert result.success, result.error
        touched.update(result.write_log.writes.keys())
    exec_seconds = time.perf_counter() - t0

    delta = compute_delta(TOKEN_ADDR, 0, base, working, touched,
                          contract.joins)
    # Joins-aware merge, including the StateDelta's trip over the wire
    # from the shard to the DS committee (Fig. 10).
    from ..chain.serialization import delta_from_json, delta_to_json
    wire = delta_to_json(delta)
    t0 = time.perf_counter()
    merged, changed = merge_deltas(base, [delta_from_json(wire)])
    merge_seconds = time.perf_counter() - t0
    per_field_joins = merge_seconds / changed * 1e6 if changed else 0.0

    # Plain overwrite application (the pre-CoSplit state-delta path).
    t0 = time.perf_counter()
    plain = base.copy()
    for entry in delta.entries:
        if entry.template is not None:
            plain.write(entry.key, entry.template)
        else:
            plain.write(entry.key, entry.new_value)
    plain_seconds = time.perf_counter() - t0
    per_field_plain = plain_seconds / len(delta) * 1e6 if len(delta) else 0.0

    return per_field_plain, per_field_joins, exec_seconds, merge_seconds


def run_overheads(n_dispatch: int = 2_000,
                  n_entries: int = 2_000) -> OverheadResult:
    d_default, d_sig = measure_dispatch(n_dispatch)
    plain, joins, exec_s, merge_s = measure_merge(n_entries)
    return OverheadResult(
        dispatch_default_us=d_default,
        dispatch_signature_us=d_sig,
        merge_per_field_plain_us=plain,
        merge_per_field_joins_us=joins,
        exec_seconds_merged=exec_s,
        merge_seconds=merge_s,
    )


def format_overheads(result: OverheadResult) -> str:
    return "\n".join([
        "Sec. 5.2.2 — CoSplit overheads",
        "",
        f"dispatch (default):    {result.dispatch_default_us:8.2f} µs/tx "
        "(paper: 8 µs)",
        f"dispatch (signature):  {result.dispatch_signature_us:8.2f} µs/tx "
        "(paper: 475 µs)",
        f"  slowdown:            {result.dispatch_slowdown:8.1f}x "
        "(paper: ~60x)",
        "",
        f"merge (plain apply):   {result.merge_per_field_plain_us:8.2f} "
        "µs/field (paper: 0.8 µs)",
        f"merge (with joins):    {result.merge_per_field_joins_us:8.2f} "
        "µs/field (paper: 48.65 µs)",
        "",
        f"executing the batch:   {result.exec_seconds_merged:8.3f} s",
        f"merging its delta:     {result.merge_seconds:8.3f} s",
        f"  merge is {result.merge_speedup_vs_execution:.0f}x cheaper than "
        "re-execution (paper: ~100x, 50 s vs 0.5 s)",
    ])
