"""Fig. 1 — Ethereum transaction breakdown per type.

Left plot: percentage of transfers / single-call / multi-call / other
transactions, averaged over 100K-block periods.  Right plot: breakdown
of single-call transactions into ERC20 token transfers vs other calls.
Runs the paper's sampling methodology over the synthetic trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dc_field

from ..workloads import ethereum as eth


@dataclass
class Fig1Result:
    bin_size: int
    # bin start block -> {type: percentage}
    breakdown: dict[int, dict[str, float]] = dc_field(default_factory=dict)
    # bin start block -> {ERC20/other single-call: percentage}
    single_call_split: dict[int, dict[str, float]] = dc_field(
        default_factory=dict)
    sampled_blocks: int = 0
    sampled_txns: int = 0
    margin_of_error: float = 0.0


def run_fig1(n_blocks: int = 2_000, bin_size: int = 500_000,
             txns_per_block: int = 66, seed: int = 2020,
             max_block: int = 9_250_000) -> Fig1Result:
    """Sample the synthetic chain and bin transaction types.

    Defaults are scaled down from the paper's 16,611-block sample so
    the experiment runs in seconds; pass ``n_blocks=16_611`` and
    ``bin_size=100_000`` for the full-methodology run.
    """
    rng = random.Random(seed)
    blocks = eth.sample_blocks(n_blocks, seed=seed, max_block=max_block)
    counts: dict[int, dict[str, int]] = {}
    single_counts: dict[int, dict[str, int]] = {}
    total_txns = 0
    for block in blocks:
        bin_start = (block // bin_size) * bin_size
        cbin = counts.setdefault(bin_start, {})
        sbin = single_counts.setdefault(bin_start, {})
        for tx in eth.generate_block(block, rng, txns_per_block):
            total_txns += 1
            cbin[tx.kind] = cbin.get(tx.kind, 0) + 1
            if tx.kind == eth.SINGLE_CALL:
                sbin[tx.subkind] = sbin.get(tx.subkind, 0) + 1

    result = Fig1Result(bin_size=bin_size, sampled_blocks=n_blocks,
                        sampled_txns=total_txns)
    result.margin_of_error = eth.margin_of_error(
        total_txns, max_block * txns_per_block)
    for bin_start in sorted(counts):
        total = sum(counts[bin_start].values())
        result.breakdown[bin_start] = {
            kind: 100.0 * count / total
            for kind, count in sorted(counts[bin_start].items())
        }
        stotal = sum(single_counts[bin_start].values())
        if stotal:
            result.single_call_split[bin_start] = {
                sub: 100.0 * count / stotal
                for sub, count in sorted(single_counts[bin_start].items())
            }
    return result


def format_fig1(result: Fig1Result) -> str:
    lines = [
        "Fig. 1 — Ethereum transaction breakdown per type",
        f"(sample: {result.sampled_blocks} blocks / "
        f"{result.sampled_txns} txns, margin of error "
        f"{100 * result.margin_of_error:.2f}% at 99% confidence)",
        "",
        f"{'block bin':>10s}  {'transfer':>9s}  {'single':>7s}  "
        f"{'multi':>6s}  {'other':>6s}  |  {'ERC20/single':>12s}",
    ]
    for bin_start, mix in result.breakdown.items():
        split = result.single_call_split.get(bin_start, {})
        erc20 = split.get(eth.ERC20_CALL, 0.0)
        lines.append(
            f"{bin_start:>10d}  {mix.get(eth.TRANSFER, 0):>8.1f}%  "
            f"{mix.get(eth.SINGLE_CALL, 0):>6.1f}%  "
            f"{mix.get(eth.MULTI_CALL, 0):>5.1f}%  "
            f"{mix.get(eth.OTHER, 0):>5.1f}%  |  {erc20:>11.1f}%")
    return "\n".join(lines)
