"""Fig. 14 — average TPS per workload as a function of shard count.

Deploys each of the five evaluation contracts in two configurations —
no sharding information (baseline) and a "reasonable" signature
(Sec. 5.2's selections) — and subjects them to sustained workloads
over several epochs.  The network is saturated (offered load exceeds
per-lane gas capacity), so committed throughput measures how much
parallel capacity each configuration actually unlocks, exactly the
quantity Fig. 14 plots.

Absolute TPS depends on the cost-model calibration (our substitute for
the EC2 testbed); the paper-relevant observable is the *shape*: near-
linear scaling for FT transfer / CF donate / NFT mint / NFT transfer /
UD bestow / UD config, and no scaling (but no regression) for FT fund
and ProofIPFS register.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field as dc_field

from ..chain.consensus import CostModel
from ..chain.network import Network
from ..workloads.generators import ALL_WORKLOADS, Workload


@dataclass(frozen=True)
class Config:
    label: str
    n_shards: int
    use_signatures: bool


DEFAULT_CONFIGS = (
    Config("Baseline 3 shards", 3, False),
    Config("CoSplit 3 shards", 3, True),
    Config("CoSplit 4 shards", 4, True),
    Config("CoSplit 5 shards", 5, True),
)

# Saturation-scale cost model: per-epoch gas limits sized so one lane
# commits on the order of a hundred transactions, keeping the Python-
# interpreted experiment tractable while preserving the capacity
# relationships (N shard lanes + 1 DS lane) of the real network.
FIG14_COST_MODEL = CostModel(
    gas_per_second=25_000.0,
    consensus_base_s=2.0,
    consensus_per_node2_s=0.01,
    shard_gas_limit=4_000,
    ds_gas_limit=4_000,
)


@dataclass
class Fig14Cell:
    workload: str
    config: str
    tps: float
    committed: int
    offered: int
    ds_fraction: float


@dataclass
class Fig14Result:
    epochs: int
    txns_per_epoch: int
    cells: list[Fig14Cell] = dc_field(default_factory=list)

    def __post_init__(self) -> None:
        # (workload, config) index over the cells, so per-cell lookups
        # are O(1) instead of a linear scan per call (format_fig14
        # calls tps() for every table entry).  ``config_order``
        # remembers first-seen config order, which series() preserves.
        self._index: dict[tuple[str, str], Fig14Cell] = {}
        self._config_order: list[str] = []
        for cell in self.cells:
            self._note(cell)

    def _note(self, cell: Fig14Cell) -> None:
        self._index[(cell.workload, cell.config)] = cell
        if cell.config not in self._config_order:
            self._config_order.append(cell.config)

    def add(self, cell: Fig14Cell) -> None:
        self.cells.append(cell)
        self._note(cell)

    @property
    def config_order(self) -> list[str]:
        return list(self._config_order)

    def tps(self, workload: str, config: str) -> float:
        cell = self._index.get((workload, config))
        if cell is None:
            raise KeyError((workload, config))
        return cell.tps

    def series(self, workload: str) -> list[float]:
        """TPS per config for one workload, in config insertion order."""
        return [self._index[(workload, config)].tps
                for config in self._config_order
                if (workload, config) in self._index]


def run_workload(workload: Workload, config: Config, epochs: int,
                 cost_model: CostModel = FIG14_COST_MODEL) -> Fig14Cell:
    net = Network(config.n_shards, use_signatures=config.use_signatures,
                  cost_model=cost_model)
    workload.setup(net)
    committed = 0
    offered = 0
    ds_handled = 0
    for epoch in range(epochs):
        txns = workload.transactions(epoch)
        offered += len(txns)
        block = net.process_epoch(txns)
        committed += block.n_committed
        ds_handled += sum(1 for r in block.ds_receipts if r.success)
    return Fig14Cell(
        workload=workload.name,
        config=config.label,
        tps=net.average_tps(),
        committed=committed,
        offered=offered,
        ds_fraction=ds_handled / committed if committed else 0.0,
    )


def run_fig14(epochs: int = 10, txns_per_epoch: int = 500,
              configs=DEFAULT_CONFIGS,
              workload_classes=None,
              cost_model: CostModel = FIG14_COST_MODEL,
              n_users: int = 240) -> Fig14Result:
    workload_classes = workload_classes or ALL_WORKLOADS
    result = Fig14Result(epochs=epochs, txns_per_epoch=txns_per_epoch)
    for cls in workload_classes:
        for config in configs:
            kwargs = {"txns_per_epoch": txns_per_epoch}
            if cls.__name__ != "CFDonate":
                kwargs["n_users"] = n_users
            else:
                # Donations are one-shot per backer; need enough donors.
                kwargs["n_users"] = max(n_users,
                                        txns_per_epoch * epochs + 10)
            workload = cls(**kwargs)
            result.add(run_workload(workload, config, epochs, cost_model))
    return result


# -- service-mode throughput grid (BENCH_throughput.json) ------------------

@dataclass
class ServiceCell:
    """One (shard count, population) point of the service grid."""

    shards: int
    population: int
    tps: float
    committed: int
    offered: int
    failed: int
    shed: int
    dead_lettered: int
    backpressured: int
    p50_latency_ticks: float
    p99_latency_ticks: float
    p50_latency_ms: float
    p99_latency_ms: float
    max_occupancy: int
    unique_senders: int


@dataclass
class ServiceBenchResult:
    workload: str
    ticks: int
    txns_per_tick: int
    seed: int
    cells: list[ServiceCell] = dc_field(default_factory=list)

    def to_json_dict(self) -> dict:
        return {
            "bench": "service-throughput",
            "workload": self.workload,
            "ticks": self.ticks,
            "txns_per_tick": self.txns_per_tick,
            "seed": self.seed,
            "cells": [asdict(c) for c in self.cells],
        }


def run_throughput_bench(shard_counts=(2, 4, 8),
                         populations=(1_000, 100_000),
                         ticks: int = 12, txns_per_tick: int = 200,
                         seed: int = 7,
                         workload: str = "FT transfer @scale",
                         capacity: int | None = None
                         ) -> ServiceBenchResult:
    """Service-mode TPS and submit→commit latency over a (shard count
    × sender population) grid, at saturating offered load.

    The population axis is what the batch Fig. 14 harness cannot do:
    the @scale workload draws senders from an address space that large
    (memory stays O(touched)), so the 10^5 column genuinely exercises
    admission-time account funding and population spread.
    """
    from .service import run_service

    result = ServiceBenchResult(workload=workload, ticks=ticks,
                                txns_per_tick=txns_per_tick, seed=seed)
    for population in populations:
        for shards in shard_counts:
            run = run_service(
                workload, shards=shards, ticks=ticks,
                txns_per_tick=txns_per_tick, population=population,
                seed=seed, capacity=capacity)
            r = run.report
            result.cells.append(ServiceCell(
                shards=shards, population=population,
                tps=round(r.tps, 4), committed=r.committed,
                offered=r.generated, failed=r.failed, shed=r.shed,
                dead_lettered=r.dead_lettered,
                backpressured=r.backpressured,
                p50_latency_ticks=r.p50_latency_ticks,
                p99_latency_ticks=r.p99_latency_ticks,
                p50_latency_ms=r.p50_latency_ms,
                p99_latency_ms=r.p99_latency_ms,
                max_occupancy=r.max_occupancy,
                unique_senders=r.unique_senders))
    return result


def write_throughput_bench(result: ServiceBenchResult, path) -> None:
    """Write ``BENCH_throughput.json`` (stable key order, trailing \\n)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result.to_json_dict(), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")


def format_throughput_bench(result: ServiceBenchResult) -> str:
    lines = [
        f"Service throughput — {result.workload}, {result.ticks} "
        f"ticks x {result.txns_per_tick} tx/tick offered",
        "",
        f"{'population':>10s} {'shards':>6s} {'tps':>8s} "
        f"{'committed':>9s} {'p50':>6s} {'p99':>6s} {'maxocc':>6s} "
        f"{'senders':>7s}",
    ]
    for c in result.cells:
        lines.append(
            f"{c.population:>10d} {c.shards:>6d} {c.tps:>8.2f} "
            f"{c.committed:>9d} {c.p50_latency_ticks:>6.1f} "
            f"{c.p99_latency_ticks:>6.1f} {c.max_occupancy:>6d} "
            f"{c.unique_senders:>7d}")
    lines.append("")
    lines.append("(latency in service ticks; population is the sender "
                 "address space)")
    return "\n".join(lines)


def format_fig14(result: Fig14Result) -> str:
    configs = []
    for cell in result.cells:
        if cell.config not in configs:
            configs.append(cell.config)
    workloads = []
    for cell in result.cells:
        if cell.workload not in workloads:
            workloads.append(cell.workload)

    lines = [
        f"Fig. 14 — average TPS over {result.epochs} epochs "
        f"({result.txns_per_epoch} offered txns/epoch)",
        "",
        f"{'workload':20s}" + "".join(f"{c:>22s}" for c in configs),
    ]
    for w in workloads:
        row = f"{w:20s}"
        base_tps = None
        for c in configs:
            tps = result.tps(w, c)
            if base_tps is None:
                base_tps = tps
                row += f"{tps:>18.1f}    "
            else:
                speedup = tps / base_tps if base_tps else 0.0
                row += f"{tps:>14.1f} ({speedup:>4.1f}x)"
        lines.append(row)
    lines.append("")
    lines.append("(speedups are relative to the baseline configuration)")
    return "\n".join(lines)
