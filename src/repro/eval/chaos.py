"""Chaos harness: run a workload twice — fault-free and under a seeded
:class:`~repro.chain.faults.FaultPlan` — and compare the final contract
states.

This is the executable form of the recovery argument: for
signature-routed workloads, every lane-level fault (crash, delayed or
dropped MicroBlock, corrupted or forged StateDelta) is repaired by the
view-change protocol, so the faulty run must end in *exactly* the
fault-free final state.  The report is deterministic: same seed, same
bytes.  Mempool churn intentionally changes the submitted workload, so
enabling it downgrades the verdict to a skip.

Only contract states are compared.  Account gas portions legitimately
diverge between the runs: a recovered transaction pays its gas on the
DS lane instead of its home shard, which moves value between portions
of the same account without changing any contract state.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from ..chain.faults import FaultPlan
from ..chain.network import Network
from ..chain.recovery import network_fingerprint
from ..workloads.generators import Workload, workload_by_name

# Epochs allowed for draining the retry backlog after the measured
# stream ends, before deferral is reported as a divergence.
DRAIN_EPOCHS = 32


@dataclass
class ChaosResult:
    seed: int
    epochs: int
    shards: int
    workload: str
    plan: FaultPlan
    baseline_fp: dict[str, str]
    faulty_fp: dict[str, str]
    epoch_lines: list[str] = dc_field(default_factory=list)
    fault_log: list[str] = dc_field(default_factory=list)
    injected: int = 0
    skipped: int = 0
    dropped_txns: int = 0
    dead_lettered: int = 0
    churn: bool = False

    @property
    def consistent(self) -> bool:
        return self.baseline_fp == self.faulty_fp

    @property
    def verdict(self) -> str:
        if self.churn:
            return ("SKIPPED — mempool churn changes the submitted "
                    "workload, so fault/no-fault equivalence is not "
                    "expected")
        if self.consistent:
            return ("CONSISTENT — the faulty run ended in the "
                    "fault-free final state")
        diverged = sorted(addr for addr in self.baseline_fp
                          if self.faulty_fp.get(addr)
                          != self.baseline_fp[addr])
        return f"DIVERGENT — contract state differs: {diverged}"


def _run(workload: Workload, epochs: int,
         plan: FaultPlan | None, shards: int) -> Network:
    net = Network(shards, carry_backlog=True, fault_plan=plan)
    workload.setup(net)
    for epoch in range(epochs):
        net.process_epoch(workload.transactions(epoch))
    for _ in range(DRAIN_EPOCHS):
        if not net.backlog:
            break
        net.process_epoch([])
    return net


def run_chaos(seed: int = 0, epochs: int = 5, shards: int = 4,
              workload: str = "FT transfer", users: int = 24,
              txns: int = 40, churn: bool = False) -> ChaosResult:
    """Run the fault-free and faulty networks and diff their ends.

    The plan's window is ``epochs + 2`` from epoch 1, so it also
    covers the workload's preparation epoch(s) — recovery has to hold
    there too.
    """
    cls = workload_by_name(workload)
    plan = FaultPlan.random(
        seed, epochs=epochs + 2, n_shards=shards,
        churn_rate=0.25 if churn else 0.0)

    baseline = _run(cls(n_users=users, txns_per_epoch=txns, seed=seed),
                    epochs, None, shards)
    faulty = _run(cls(n_users=users, txns_per_epoch=txns, seed=seed),
                  epochs, plan, shards)

    result = ChaosResult(
        seed=seed, epochs=epochs, shards=shards, workload=workload,
        plan=plan,
        baseline_fp=network_fingerprint(baseline),
        faulty_fp=network_fingerprint(faulty),
        churn=churn,
    )
    for block in faulty.blocks:
        stats = block.stats
        result.epoch_lines.append(
            f"epoch {block.epoch}: committed {stats.committed}"
            f"/{stats.dispatched}, view changes {stats.view_changes}, "
            f"recovered {stats.recovered}, reexecuted "
            f"{stats.reexecuted}, rejected deltas "
            f"{stats.rejected_deltas}, deferred {stats.deferred}")
        result.fault_log.extend(block.fault_log)
    injector = faulty.injector
    assert injector is not None
    result.injected = injector.injected
    result.skipped = injector.skipped
    result.dropped_txns = len(injector.dropped)
    result.dead_lettered = len(faulty.dead_letter)
    return result


def format_chaos_report(result: ChaosResult) -> str:
    lines = [
        f"chaos report — seed {result.seed}, {result.epochs} epochs, "
        f"{result.shards} shards, workload {result.workload!r}",
        "",
        f"fault plan ({len(result.plan)} events):",
    ]
    plan_text = result.plan.describe()
    lines.extend("  " + line for line in plan_text.splitlines())
    lines.append("")
    lines.append("faulty run, per epoch:")
    lines.extend("  " + line for line in result.epoch_lines)
    if result.fault_log:
        lines.append("")
        lines.append("fault log:")
        lines.extend("  " + line for line in result.fault_log)
    lines.append("")
    lines.append(
        f"totals: {result.injected} tamperings injected, "
        f"{result.skipped} skipped, {result.dropped_txns} transactions "
        f"dropped by churn, {result.dead_lettered} dead-lettered")
    lines.append(f"consistency: {result.verdict}")
    return "\n".join(lines)
