"""Chaos harness: run a workload twice — fault-free and under a seeded
:class:`~repro.chain.faults.FaultPlan` — and compare the final contract
states.

This is the executable form of the recovery argument: for
signature-routed workloads, every lane-level fault (crash, delayed or
dropped MicroBlock, corrupted or forged StateDelta) is repaired by the
view-change protocol, so the faulty run must end in *exactly* the
fault-free final state.  The report is deterministic: same seed, same
bytes.  Mempool churn intentionally changes the submitted workload, so
enabling it downgrades the verdict to a skip.

Only contract states are compared.  Account gas portions legitimately
diverge between the runs: a recovered transaction pays its gas on the
DS lane instead of its home shard, which moves value between portions
of the same account without changing any contract state.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import random
import tempfile
from dataclasses import dataclass, field as dc_field
from pathlib import Path

from ..chain.faults import FaultPlan
from ..chain.network import Network
from ..chain.recovery import network_fingerprint
from ..obs.metrics import MetricsRegistry
from ..chain.store import SNAPSHOT_PREFIX
from ..chain.wal import SEGMENT_PREFIX
from ..workloads.generators import Workload, workload_by_name

# Epochs allowed for draining the retry backlog after the measured
# stream ends, before deferral is reported as a divergence.
DRAIN_EPOCHS = 32


@dataclass
class ChaosResult:
    seed: int
    epochs: int
    shards: int
    workload: str
    plan: FaultPlan
    baseline_fp: dict[str, str]
    faulty_fp: dict[str, str]
    epoch_lines: list[str] = dc_field(default_factory=list)
    fault_log: list[str] = dc_field(default_factory=list)
    injected: int = 0
    skipped: int = 0
    dropped_txns: int = 0
    dead_lettered: int = 0
    churn: bool = False
    executor: str | None = None
    speculate: bool = False
    # Registry snapshots of the two runs (repro.obs) — the recovery
    # counters the report prints, machine-readable.
    baseline_metrics: dict = dc_field(default_factory=dict)
    faulty_metrics: dict = dc_field(default_factory=dict)

    @property
    def consistent(self) -> bool:
        return self.baseline_fp == self.faulty_fp

    @property
    def verdict(self) -> str:
        if self.churn:
            return ("SKIPPED — mempool churn changes the submitted "
                    "workload, so fault/no-fault equivalence is not "
                    "expected")
        if self.consistent:
            return ("CONSISTENT — the faulty run ended in the "
                    "fault-free final state")
        diverged = sorted(addr for addr in self.baseline_fp
                          if self.faulty_fp.get(addr)
                          != self.baseline_fp[addr])
        return f"DIVERGENT — contract state differs: {diverged}"


def _run(workload: Workload, epochs: int,
         plan: FaultPlan | None, shards: int,
         metrics: MetricsRegistry | None = None,
         executor: str | None = None,
         lane_deadline_s: float | None = None,
         speculate: bool = False) -> Network:
    net = Network(shards, carry_backlog=True, fault_plan=plan,
                  metrics=metrics, executor=executor,
                  lane_deadline_s=lane_deadline_s,
                  speculate=speculate)
    workload.setup(net)
    for epoch in range(epochs):
        net.process_epoch(workload.transactions(epoch))
    for _ in range(DRAIN_EPOCHS):
        if not net.backlog:
            break
        net.process_epoch([])
    return net


def run_chaos(seed: int = 0, epochs: int = 5, shards: int = 4,
              workload: str = "FT transfer", users: int = 24,
              txns: int = 40, churn: bool = False,
              executor: str | None = None,
              hang_rate: float = 0.0, kill_rate: float = 0.0,
              slow_rate: float = 0.0,
              lane_deadline_s: float | None = None,
              speculate: bool = False) -> ChaosResult:
    """Run the fault-free and faulty networks and diff their ends.

    The plan's window is ``epochs + 2`` from epoch 1, so it also
    covers the workload's preparation epoch(s) — recovery has to hold
    there too.

    ``hang_rate``/``kill_rate``/``slow_rate`` add *worker* faults
    (hung, killed, and merely slow lane workers) that the lane
    supervisor — not the view-change protocol — must absorb; they only
    bite under a parallel ``executor``, and a small
    ``lane_deadline_s`` makes hangs trip the watchdog quickly.  The
    baseline run stays fault-free and serial, so the verdict checks
    the supervised run against the strictest reference.

    ``speculate`` enables the speculative intra-shard scheduler on the
    *faulty* run only — the baseline stays strictly serial, so the
    verdict also certifies the scheduler's serial equivalence under
    injected faults.
    """
    cls = workload_by_name(workload)
    plan = FaultPlan.random(
        seed, epochs=epochs + 2, n_shards=shards,
        churn_rate=0.25 if churn else 0.0,
        hang_rate=hang_rate, kill_rate=kill_rate, slow_rate=slow_rate)

    baseline_reg, faulty_reg = MetricsRegistry(), MetricsRegistry()
    baseline = _run(cls(n_users=users, txns_per_epoch=txns, seed=seed),
                    epochs, None, shards, metrics=baseline_reg)
    faulty = _run(cls(n_users=users, txns_per_epoch=txns, seed=seed),
                  epochs, plan, shards, metrics=faulty_reg,
                  executor=executor, lane_deadline_s=lane_deadline_s,
                  speculate=speculate)

    result = ChaosResult(
        seed=seed, epochs=epochs, shards=shards, workload=workload,
        plan=plan,
        baseline_fp=network_fingerprint(baseline),
        faulty_fp=network_fingerprint(faulty),
        churn=churn,
        executor=executor,
        speculate=speculate,
        baseline_metrics=baseline_reg.snapshot(),
        faulty_metrics=faulty_reg.snapshot(),
    )
    for block in faulty.blocks:
        stats = block.stats
        result.epoch_lines.append(
            f"epoch {block.epoch}: committed {stats.committed}"
            f"/{stats.dispatched}, view changes {stats.view_changes}, "
            f"recovered {stats.recovered}, reexecuted "
            f"{stats.reexecuted}, rejected deltas "
            f"{stats.rejected_deltas}, deferred {stats.deferred}")
        result.fault_log.extend(block.fault_log)
    injector = faulty.injector
    assert injector is not None
    result.injected = injector.injected
    result.skipped = injector.skipped
    result.dropped_txns = len(injector.dropped)
    result.dead_lettered = len(faulty.dead_letter)
    return result


def format_chaos_report(result: ChaosResult) -> str:
    mode = f", executor {result.executor}" if result.executor else ""
    if result.speculate:
        mode += ", speculative scheduler"
    lines = [
        f"chaos report — seed {result.seed}, {result.epochs} epochs, "
        f"{result.shards} shards, workload {result.workload!r}{mode}",
        "",
        f"fault plan ({len(result.plan)} events):",
    ]
    plan_text = result.plan.describe()
    lines.extend("  " + line for line in plan_text.splitlines())
    lines.append("")
    lines.append("faulty run, per epoch:")
    lines.extend("  " + line for line in result.epoch_lines)
    if result.fault_log:
        lines.append("")
        lines.append("fault log:")
        lines.extend("  " + line for line in result.fault_log)
    lines.append("")
    lines.append(
        f"totals: {result.injected} tamperings injected, "
        f"{result.skipped} skipped, {result.dropped_txns} transactions "
        f"dropped by churn, {result.dead_lettered} dead-lettered")
    if result.faulty_metrics:
        base = result.baseline_metrics.get("counters", {})
        faulty = result.faulty_metrics.get("counters", {})
        lines.append("")
        lines.append("telemetry (faulty run, fault-free in parens):")
        for name in ("net.tx.committed", "net.view_changes",
                     "net.rejected_deltas", "net.tx.recovered",
                     "net.tx.reexecuted", "net.tx.dead_lettered"):
            b = base.get(name, {}).get("value", 0)
            f = faulty.get(name, {}).get("value", 0)
            lines.append(f"  {name:24s} {f:>8d}  ({b})")
        # Lane-supervision activity (worker faults, retries, breaker
        # trips).  Printed only when something happened, so a serial /
        # worker-fault-free report stays byte-identical to older runs.
        supervise = {
            name: meter["value"]
            for name, meter in sorted(faulty.items())
            if name.startswith("supervise.") and meter.get("value")}
        if supervise:
            lines.append("")
            lines.append("lane supervision (faulty run):")
            for name, value in supervise.items():
                lines.append(f"  {name:32s} {value:>8d}")
        # Speculative-scheduler activity (windows, conflicts, aborts).
        # Same nonzero-only convention: with speculation off (the
        # default) the report is byte-identical to older runs.
        speculation = {
            name: meter["value"]
            for name, meter in sorted(faulty.items())
            if name.startswith("spec.") and meter.get("value")}
        if speculation:
            lines.append("")
            lines.append("speculation (faulty run):")
            for name, value in speculation.items():
                lines.append(f"  {name:32s} {value:>8d}")
    lines.append(f"consistency: {result.verdict}")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Durable workload runs (the WAL-backed sibling of run_chaos).
# --------------------------------------------------------------------------

@dataclass
class DurableRunResult:
    workload: str
    fingerprint: dict[str, str]
    epochs_done: int
    resumed: bool = False
    restarted: bool = False   # found a half-set-up dir and wiped it
    barriers: int = 0
    appends: int = 0


def _durable_files(data_dir: str) -> list[Path]:
    directory = Path(data_dir)
    if not directory.is_dir():
        return []
    return [p for p in directory.iterdir()
            if p.name.startswith((SEGMENT_PREFIX, SNAPSHOT_PREFIX))]


def _wipe(data_dir: str) -> None:
    for path in _durable_files(data_dir):
        path.unlink()


def run_durable(workload: str = "FT transfer", *,
                data_dir: str, seed: int = 0, epochs: int = 3,
                shards: int = 4, users: int = 12, txns: int = 10,
                fault_seed: int | None = None,
                executor: str | None = None, fsync: str = "commit",
                snapshot_every: int = 4, keep_snapshots: int = 3,
                crash_at_barrier: int | None = None,
                crash_at_append: int | None = None,
                require_existing: bool = False,
                metrics: MetricsRegistry | None = None
                ) -> DurableRunResult:
    """Run (or continue) one workload with WAL-backed durability.

    If ``data_dir`` already holds a log, the run resumes from it and
    continues the *same* deterministic transaction stream: the
    workload generator is rebuilt from its seed and fast-forwarded
    past the epochs the log already covers.  A directory whose setup
    never completed (no ``setup-complete`` note) is wiped and
    restarted — the WAL cannot resume halfway through workload-driven
    setup code.  Identical parameters therefore converge on the same
    final fingerprint no matter how many times the process is killed
    and relaunched (see :func:`run_crash_torture`).
    """
    cls = workload_by_name(workload)
    plan = (FaultPlan.random(fault_seed, epochs=epochs + 2,
                             n_shards=shards)
            if fault_seed is not None else None)
    meta = {"kind": "meta", "workload": workload, "seed": seed,
            "shards": shards, "users": users, "txns": txns,
            "fault_seed": fault_seed}
    w = cls(n_users=users, txns_per_epoch=txns, seed=seed)

    resumed = restarted = False
    net = None
    if _durable_files(data_dir):
        net = Network.resume(data_dir, executor=executor, fsync=fsync,
                             snapshot_every=snapshot_every,
                             keep_snapshots=keep_snapshots,
                             crash_at_barrier=crash_at_barrier,
                             crash_at_append=crash_at_append,
                             metrics=metrics)
        found_meta = next((n for n in net.wal_notes
                           if isinstance(n, dict)
                           and n.get("kind") == "meta"), None)
        if found_meta is not None and found_meta != meta:
            net.close()
            raise ValueError(
                f"{data_dir} belongs to a different run: logged "
                f"{found_meta}, requested {meta}")
        if any(isinstance(n, dict) and n.get("kind") == "setup-complete"
               for n in net.wal_notes):
            resumed = True
            # Fast-forward the generator: setup and the already-done
            # epochs are re-driven against a throwaway network purely
            # to advance the workload's internal state (rng, nonces,
            # token maps) — and to keep fresh tx_ids aligned with the
            # uninterrupted run's.
            shadow = Network(shards, carry_backlog=True)
            w.setup(shadow)
            for e in range(net.epoch_tags.get("measure", 0)):
                w.transactions(e)
        else:
            net.close()
            _wipe(data_dir)
            net = None
            restarted = True
    elif require_existing:
        raise FileNotFoundError(
            f"nothing to resume: {data_dir} holds no WAL segments "
            f"or snapshots")

    if net is None:
        net = Network(shards, carry_backlog=True, fault_plan=plan,
                      executor=executor, data_dir=data_dir,
                      fsync=fsync, snapshot_every=snapshot_every,
                      keep_snapshots=keep_snapshots,
                      crash_at_barrier=crash_at_barrier,
                      crash_at_append=crash_at_append,
                      metrics=metrics)
        net.wal_note(meta)
        w.setup(net)
        net.wal_note({"kind": "setup-complete"})
        net.snapshot()

    for e in range(net.epoch_tags.get("measure", 0), epochs):
        net.process_epoch(w.transactions(e), wal_tag="measure")
    for _ in range(DRAIN_EPOCHS):
        if not net.backlog:
            break
        net.process_epoch([], wal_tag="drain")

    result = DurableRunResult(
        workload=workload,
        fingerprint=network_fingerprint(net),
        epochs_done=net.epoch_tags.get("measure", 0),
        resumed=resumed, restarted=restarted,
        barriers=net.wal.barriers, appends=net.wal.appends)
    net.close()
    return result


# --------------------------------------------------------------------------
# Crash torture: SIGKILL at randomized WAL barriers, resume, compare.
# --------------------------------------------------------------------------

@dataclass
class TortureOutcome:
    workload: str
    executor: str | None
    fault_seed: int | None
    kills: int = 0             # subprocesses that died to SIGKILL
    completed_early: int = 0   # finished before reaching the kill point
    attempts: int = 0
    expected_fp: dict[str, str] = dc_field(default_factory=dict)
    final_fp: dict[str, str] = dc_field(default_factory=dict)
    detail: list[str] = dc_field(default_factory=list)

    @property
    def passed(self) -> bool:
        return (bool(self.expected_fp)
                and self.expected_fp == self.final_fp)


def _spawn_run(data_dir: str, workload: str, *, seed: int, epochs: int,
               shards: int, users: int, txns: int,
               fault_seed: int | None, executor: str | None,
               crash_at_barrier: int | None = None,
               crash_at_append: int | None = None
               ) -> tuple[int, str, str]:
    """Run ``repro run`` in a subprocess; returns (rc, stdout, stderr).

    A subprocess per attempt gives the kill a real process to destroy
    and gives every attempt a fresh transaction-id counter, so
    uninterrupted and resumed runs allocate identical ids.
    """
    src_root = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    cmd = [sys.executable, "-m", "repro", "run",
           "--workload", workload, "--data-dir", data_dir,
           "--seed", str(seed), "--epochs", str(epochs),
           "--shards", str(shards), "--users", str(users),
           "--txns", str(txns), "--json"]
    if fault_seed is not None:
        cmd += ["--fault-seed", str(fault_seed)]
    if executor is not None:
        cmd += ["--executor", executor]
    if crash_at_barrier is not None:
        cmd += ["--crash-at-barrier", str(crash_at_barrier)]
    if crash_at_append is not None:
        cmd += ["--crash-at-append", str(crash_at_append)]
    # Output goes to real files, not pipes: a SIGKILLed run can leave
    # orphaned executor-pool workers holding inherited pipe ends open,
    # which would block a pipe-draining wait indefinitely.  The child
    # leads its own session so the stragglers can be reaped afterwards.
    with tempfile.TemporaryFile("w+") as out_f, \
            tempfile.TemporaryFile("w+") as err_f:
        proc = subprocess.Popen(cmd, stdout=out_f, stderr=err_f,
                                stdin=subprocess.DEVNULL, env=env,
                                start_new_session=True)
        try:
            rc = proc.wait(timeout=600)
        finally:
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
        out_f.seek(0)
        err_f.seek(0)
        return rc, out_f.read(), err_f.read()


def run_crash_torture(workload: str = "FT transfer", *, kills: int = 3,
                      seed: int = 0, epochs: int = 3, shards: int = 4,
                      users: int = 12, txns: int = 10,
                      fault_seed: int | None = None,
                      executor: str | None = None,
                      rng_seed: int = 0,
                      torn_ratio: float = 0.25) -> TortureOutcome:
    """Kill-and-resume torture for one workload.

    An uninterrupted subprocess run establishes the expected
    fingerprint; then a fresh data directory is driven to completion
    through ``kills`` SIGKILLs at randomized WAL barriers (and the
    occasional torn mid-record write), resuming after each.  The final
    surviving fingerprint must match the uninterrupted one exactly.
    """
    rng = random.Random(rng_seed)
    outcome = TortureOutcome(workload=workload, executor=executor,
                             fault_seed=fault_seed)
    params = dict(seed=seed, epochs=epochs, shards=shards, users=users,
                  txns=txns, fault_seed=fault_seed, executor=executor)

    with tempfile.TemporaryDirectory() as tmp:
        rc, out, err = _spawn_run(os.path.join(tmp, "expected"),
                                  workload, **params)
        if rc != 0:
            outcome.detail.append(
                f"uninterrupted run failed (rc {rc}): {err.strip()}")
            return outcome
        outcome.expected_fp = json.loads(out)["fingerprint"]

        data_dir = os.path.join(tmp, "tortured")
        remaining = kills
        while remaining > 0:
            outcome.attempts += 1
            if rng.random() < torn_ratio:
                crash = {"crash_at_append": rng.randint(3, 40)}
            else:
                crash = {"crash_at_barrier": rng.randint(1, 12)}
            rc, out, err = _spawn_run(data_dir, workload, **params,
                                      **crash)
            if rc == -signal.SIGKILL:
                outcome.kills += 1
                outcome.detail.append(f"killed at {crash}")
                remaining -= 1
            elif rc == 0:
                # The run finished before its kill point triggered —
                # the directory is complete; later resumes are no-ops.
                outcome.completed_early += 1
                outcome.detail.append(f"completed before {crash}")
                remaining -= 1
            else:
                outcome.detail.append(
                    f"attempt failed (rc {rc}): {err.strip()[-500:]}")
                outcome.final_fp = {}
                return outcome

        outcome.attempts += 1
        rc, out, err = _spawn_run(data_dir, workload, **params)
        if rc != 0:
            outcome.detail.append(
                f"final resume failed (rc {rc}): {err.strip()[-500:]}")
            return outcome
        outcome.final_fp = json.loads(out)["fingerprint"]
    return outcome


def format_torture_report(outcomes: list[TortureOutcome]) -> str:
    lines = ["crash torture — SIGKILL at WAL barriers, resume, compare",
             ""]
    for o in outcomes:
        mode = o.executor or "serial"
        faults = (f", fault seed {o.fault_seed}"
                  if o.fault_seed is not None else "")
        verdict = "PASS" if o.passed else "FAIL"
        lines.append(
            f"{verdict}  {o.workload!r} [{mode}{faults}]: "
            f"{o.kills} kills, {o.completed_early} early completions, "
            f"{o.attempts} attempts")
        if not o.passed:
            lines.extend("      " + d for d in o.detail)
    n_pass = sum(1 for o in outcomes if o.passed)
    lines.append("")
    lines.append(f"{n_pass}/{len(outcomes)} workload runs recovered "
                 f"to the uninterrupted fingerprint")
    return "\n".join(lines)
