"""State-engine microbenchmarks (``repro bench state``).

Measures the copy-on-write state engine against the deep-copy baseline
it replaced (the seed's ``MapVal.copy`` ran ``copy.deepcopy`` over the
entry dict; checkpoints and lane payloads both paid it per contract,
per epoch):

* **checkpoint take** — a :class:`~repro.scilla.state.StateJournal`
  mark vs. a deep state copy;
* **checkpoint restore** — replaying the undo journal over a burst of
  writes (the deep-copy baseline restores by pointer swap, but only
  after paying O(state) at take time);
* **lane payload construction** — a footprint-sliced payload
  (:func:`repro.chain.lanes._sliced_state`) vs. a deep copy, and the
  pickled payload bytes shipped to a process-pool worker either way.

Results land in ``BENCH_state.json`` at the repo root; the benchmark
suite (``benchmarks/test_state_engine.py``) asserts the headline
claim — take + payload construction ≥10× faster than the deep-copy
baseline at 10^5 entries — and the CI smoke guards that a checkpoint
take materialises zero CoW copies (stays O(1) in state size).
"""

from __future__ import annotations

import copy
import json
import pickle
import time
from dataclasses import dataclass, field as dc_field

from ..chain.lanes import _sliced_state
from ..scilla import types as ty
from ..scilla.state import ContractState, StateJournal
from ..scilla.values import MapVal, StringVal, Value, uint

DEFAULT_SIZES = (1_000, 10_000, 100_000)


def _big_state(entries: int) -> ContractState:
    """One contract with an ``entries``-sized token-balance map plus a
    scalar — the shape the Fig. 14 workloads stress."""
    balances = MapVal(ty.STRING, ty.UINT128)
    for i in range(entries):
        balances.entries[StringVal(f"0x{i:040x}")] = uint(i)
    return ContractState(
        address="0x" + "ab" * 20,
        fields={"balances": balances, "total_supply": uint(entries)},
        field_types={"balances": ty.MapType(ty.STRING, ty.UINT128),
                     "total_supply": ty.UINT128},
    )


def _deep_copy_state(state: ContractState) -> ContractState:
    """The seed's copy policy, verbatim: deepcopy every map's entries."""
    return ContractState(
        state.address,
        {k: (MapVal(v.key_type, v.value_type, copy.deepcopy(v.entries))
             if isinstance(v, MapVal) else v)
         for k, v in state.fields.items()},
        dict(state.field_types),
        dict(state.immutables),
        state.balance,
    )


def _best_ns(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter_ns()
        fn()
        best = min(best, time.perf_counter_ns() - t0)
    return best


@dataclass
class StateBenchRow:
    entries: int
    deep_copy_ns: float        # baseline: one deep state copy
    mark_ns: float             # new checkpoint take (journal mark)
    fork_ns: float             # new full-payload construction (CoW fork)
    slice_ns: float            # new sliced-payload construction
    rollback_ns: float         # journal restore over `writes` writes
    full_payload_bytes: int    # pickled deep/full state
    sliced_payload_bytes: int  # pickled sliced state

    @property
    def old_total_ns(self) -> float:
        """Baseline epoch cost: deep copy at take + deep copy per lane
        payload."""
        return 2 * self.deep_copy_ns

    @property
    def new_total_ns(self) -> float:
        return self.mark_ns + self.slice_ns

    @property
    def speedup(self) -> float:
        return self.old_total_ns / max(self.new_total_ns, 1.0)

    @property
    def bytes_ratio(self) -> float:
        return self.sliced_payload_bytes / max(self.full_payload_bytes, 1)


@dataclass
class StateBenchResult:
    rows: list[StateBenchRow] = dc_field(default_factory=list)
    writes: int = 0
    sliced_keys: int = 0


def run_state_bench(sizes: tuple[int, ...] = DEFAULT_SIZES,
                    writes: int = 64, sliced_keys: int = 8,
                    repeat: int = 3) -> StateBenchResult:
    result = StateBenchResult(writes=writes, sliced_keys=sliced_keys)
    for entries in sizes:
        state = _big_state(entries)

        deep_copy_ns = _best_ns(lambda: _deep_copy_state(state), repeat)
        fork_ns = _best_ns(lambda: state.fork(), repeat)

        journal = StateJournal()
        state.journal = journal
        mark_ns = _best_ns(
            lambda: journal.release(journal.mark()), repeat)

        def take_and_restore() -> None:
            mark = journal.mark()
            for i in range(writes):
                state.write(("balances", (StringVal(f"0x{i:040x}"),)),
                            uint(i + 1))
            journal.rollback_to(mark)
            journal.release(mark)
        rollback_ns = _best_ns(take_and_restore, repeat)

        plan: dict[str, set[Value] | None] = {
            "balances": {StringVal(f"0x{i:040x}")
                         for i in range(sliced_keys)}}
        slice_ns = _best_ns(lambda: _sliced_state(state, plan), repeat)

        sliced, _, _ = _sliced_state(state, plan)
        result.rows.append(StateBenchRow(
            entries=entries,
            deep_copy_ns=deep_copy_ns,
            mark_ns=mark_ns,
            fork_ns=fork_ns,
            slice_ns=slice_ns,
            rollback_ns=rollback_ns,
            full_payload_bytes=len(pickle.dumps(state)),
            sliced_payload_bytes=len(pickle.dumps(sliced)),
        ))
    return result


def format_state_bench(result: StateBenchResult) -> str:
    lines = [
        "State engine — CoW forks and journal checkpoints vs. the "
        "deep-copy baseline",
        f"(restore replays {result.writes} writes; sliced payloads "
        f"ship {result.sliced_keys} entries)",
        "",
        f"{'entries':>9s} {'deepcopy':>12s} {'mark':>9s} {'fork':>9s} "
        f"{'slice':>9s} {'rollback':>10s} {'speedup':>8s} "
        f"{'bytes full':>12s} {'sliced':>9s}",
    ]
    for r in result.rows:
        lines.append(
            f"{r.entries:>9,d} {r.deep_copy_ns / 1e6:>10.2f}ms "
            f"{r.mark_ns / 1e3:>7.1f}µs {r.fork_ns / 1e3:>7.1f}µs "
            f"{r.slice_ns / 1e3:>7.1f}µs {r.rollback_ns / 1e3:>8.1f}µs "
            f"{r.speedup:>7.0f}x {r.full_payload_bytes:>12,d} "
            f"{r.sliced_payload_bytes:>9,d}")
    return "\n".join(lines)


def write_state_bench(result: StateBenchResult, path) -> None:
    payload = {
        "benchmark": "state-engine",
        "writes": result.writes,
        "sliced_keys": result.sliced_keys,
        "rows": [{
            "entries": r.entries,
            "deep_copy_ns": r.deep_copy_ns,
            "checkpoint_take_ns": {"old": r.deep_copy_ns,
                                   "new": r.mark_ns},
            "checkpoint_restore_ns": r.rollback_ns,
            "payload_construction_ns": {"old": r.deep_copy_ns,
                                        "new_full": r.fork_ns,
                                        "new_sliced": r.slice_ns},
            "payload_bytes": {"old": r.full_payload_bytes,
                              "new_sliced": r.sliced_payload_bytes},
            "speedup": r.speedup,
        } for r in result.rows],
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
