"""State-engine microbenchmarks (``repro bench state``).

Measures the copy-on-write state engine against the deep-copy baseline
it replaced (the seed's ``MapVal.copy`` ran ``copy.deepcopy`` over the
entry dict; checkpoints and lane payloads both paid it per contract,
per epoch):

* **checkpoint take** — a :class:`~repro.scilla.state.StateJournal`
  mark vs. a deep state copy;
* **checkpoint restore** — replaying the undo journal over a burst of
  writes (the deep-copy baseline restores by pointer swap, but only
  after paying O(state) at take time);
* **lane payload construction** — a footprint-sliced payload
  (:func:`repro.chain.lanes._sliced_state`) vs. a deep copy, and the
  pickled payload bytes shipped to a process-pool worker either way.

Results land in ``BENCH_state.json`` at the repo root; the benchmark
suite (``benchmarks/test_state_engine.py``) asserts the headline
claim — take + payload construction ≥10× faster than the deep-copy
baseline at 10^5 entries — and the CI smoke guards that a checkpoint
take materialises zero CoW copies (stays O(1) in state size).

Two further sections cover the out-of-core backend
(:mod:`repro.scilla.backend`):

* **paged vs. resident** (:func:`run_paged_bench`) — point reads
  against a sqlite-paged map (cold faults, and again with the
  footprint prefetched) vs. the plain resident dict, plus writeback
  flush cost, at 10^4–10^6 entries;
* **out-of-core soak** (:func:`run_oocore_soak`) — a
  ``ScaledFTTransfer`` service session over a pre-seeded million-entry
  balance map with the sqlite backend, reporting peak RSS (bounded by
  the page cache) against the measured resident footprint of the same
  map held in memory.
"""

from __future__ import annotations

import copy
import json
import os
import pickle
import resource
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field as dc_field

from ..chain.lanes import _sliced_state
from ..scilla import types as ty
from ..scilla.state import ContractState, StateJournal
from ..scilla.values import MapVal, StringVal, Value, uint

DEFAULT_SIZES = (1_000, 10_000, 100_000)
PAGED_SIZES = (10_000, 100_000, 1_000_000)


def _big_state(entries: int) -> ContractState:
    """One contract with an ``entries``-sized token-balance map plus a
    scalar — the shape the Fig. 14 workloads stress."""
    balances = MapVal(ty.STRING, ty.UINT128)
    for i in range(entries):
        balances.entries[StringVal(f"0x{i:040x}")] = uint(i)
    return ContractState(
        address="0x" + "ab" * 20,
        fields={"balances": balances, "total_supply": uint(entries)},
        field_types={"balances": ty.MapType(ty.STRING, ty.UINT128),
                     "total_supply": ty.UINT128},
    )


def _deep_copy_state(state: ContractState) -> ContractState:
    """The seed's copy policy, verbatim: deepcopy every map's entries."""
    return ContractState(
        state.address,
        {k: (MapVal(v.key_type, v.value_type, copy.deepcopy(v.entries))
             if isinstance(v, MapVal) else v)
         for k, v in state.fields.items()},
        dict(state.field_types),
        dict(state.immutables),
        state.balance,
    )


def _best_ns(fn, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter_ns()
        fn()
        best = min(best, time.perf_counter_ns() - t0)
    return best


@dataclass
class StateBenchRow:
    entries: int
    deep_copy_ns: float        # baseline: one deep state copy
    mark_ns: float             # new checkpoint take (journal mark)
    fork_ns: float             # new full-payload construction (CoW fork)
    slice_ns: float            # new sliced-payload construction
    rollback_ns: float         # journal restore over `writes` writes
    full_payload_bytes: int    # pickled deep/full state
    sliced_payload_bytes: int  # pickled sliced state

    @property
    def old_total_ns(self) -> float:
        """Baseline epoch cost: deep copy at take + deep copy per lane
        payload."""
        return 2 * self.deep_copy_ns

    @property
    def new_total_ns(self) -> float:
        return self.mark_ns + self.slice_ns

    @property
    def speedup(self) -> float:
        return self.old_total_ns / max(self.new_total_ns, 1.0)

    @property
    def bytes_ratio(self) -> float:
        return self.sliced_payload_bytes / max(self.full_payload_bytes, 1)


@dataclass
class StateBenchResult:
    rows: list[StateBenchRow] = dc_field(default_factory=list)
    writes: int = 0
    sliced_keys: int = 0


def run_state_bench(sizes: tuple[int, ...] = DEFAULT_SIZES,
                    writes: int = 64, sliced_keys: int = 8,
                    repeat: int = 3) -> StateBenchResult:
    result = StateBenchResult(writes=writes, sliced_keys=sliced_keys)
    for entries in sizes:
        state = _big_state(entries)

        deep_copy_ns = _best_ns(lambda: _deep_copy_state(state), repeat)
        fork_ns = _best_ns(lambda: state.fork(), repeat)

        journal = StateJournal()
        state.journal = journal
        mark_ns = _best_ns(
            lambda: journal.release(journal.mark()), repeat)

        def take_and_restore() -> None:
            mark = journal.mark()
            for i in range(writes):
                state.write(("balances", (StringVal(f"0x{i:040x}"),)),
                            uint(i + 1))
            journal.rollback_to(mark)
            journal.release(mark)
        rollback_ns = _best_ns(take_and_restore, repeat)

        plan: dict[str, set[Value] | None] = {
            "balances": {StringVal(f"0x{i:040x}")
                         for i in range(sliced_keys)}}
        slice_ns = _best_ns(lambda: _sliced_state(state, plan), repeat)

        sliced, _, _ = _sliced_state(state, plan)
        result.rows.append(StateBenchRow(
            entries=entries,
            deep_copy_ns=deep_copy_ns,
            mark_ns=mark_ns,
            fork_ns=fork_ns,
            slice_ns=slice_ns,
            rollback_ns=rollback_ns,
            full_payload_bytes=len(pickle.dumps(state)),
            sliced_payload_bytes=len(pickle.dumps(sliced)),
        ))
    return result


# --------------------------------------------------------------------------
# Paged (out-of-core) vs. resident state.
# --------------------------------------------------------------------------

def _seed_backend(backend, entries: int) -> int:
    """Stream ``entries`` balance rows into a fresh backend map without
    ever materialising the values (O(1) memory in ``entries``)."""
    from ..scilla.backend import encode_key, encode_value
    from ..scilla.values import addr
    from ..workloads.generators import _user
    map_id = backend.new_map()
    blob = encode_value(uint(10**9))
    backend.put_many(
        map_id,
        ((encode_key(addr(_user(i))), blob) for i in range(entries)))
    return map_id


def _sample_keys(entries: int, n: int, seed: int = 11) -> list[Value]:
    import random
    from ..scilla.values import addr
    from ..workloads.generators import _user
    rng = random.Random(seed)
    return [addr(_user(rng.randrange(entries)))
            for _ in range(min(n, entries))]


@dataclass
class PagedBenchRow:
    entries: int
    resident_read_ns: float    # plain dict: read the whole sample
    paged_cold_ns: float       # paged, cold cache, prefetch off
    paged_prefetch_ns: float   # paged, sample prefetched first
    flush_ns: float            # write back `writes` dirty rows
    prefetch_hit_rate: float
    seed_s: float              # streaming-load time for the backend
    file_mb: float

    @property
    def prefetch_speedup(self) -> float:
        return self.paged_cold_ns / max(self.paged_prefetch_ns, 1.0)


@dataclass
class PagedBenchResult:
    rows: list[PagedBenchRow] = dc_field(default_factory=list)
    reads: int = 0
    writes: int = 0
    cache: int = 0


def run_paged_bench(sizes: tuple[int, ...] = PAGED_SIZES,
                    reads: int = 512, writes: int = 256,
                    repeat: int = 3, cache: int = 1024
                    ) -> PagedBenchResult:
    """Point-read and writeback timings, paged vs. resident."""
    from ..scilla.backend import PagedDict, SqliteBackend
    result = PagedBenchResult(reads=reads, writes=writes, cache=cache)
    for entries in sizes:
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "bench.sqlite")
            backend = SqliteBackend(path)
            t0 = time.perf_counter()
            map_id = _seed_backend(backend, entries)
            seed_s = time.perf_counter() - t0
            file_mb = os.path.getsize(path) / 2**20
            sample = _sample_keys(entries, reads)

            def paged() -> PagedDict:
                return PagedDict(backend, map_id, count=entries,
                                 cache_limit=cache)

            def cold_reads() -> None:
                view = paged()
                for k in sample:
                    view[k]

            def prefetched_reads() -> None:
                view = paged()
                view.prefetch(sample)
                for k in sample:
                    view[k]

            # The resident baseline: the same sample against a plain
            # dict of the same size (built once, dropped per size).
            resident = {k: uint(10**9)
                        for k, _ in _materialize_keys(backend, map_id)}

            def resident_reads() -> None:
                for k in sample:
                    resident[k]

            def write_and_flush() -> None:
                view = paged()
                for k in sample[:writes]:
                    view[k] = uint(7)
                view.flush()

            base = backend.stats.snapshot()
            row = PagedBenchRow(
                entries=entries,
                resident_read_ns=_best_ns(resident_reads, repeat),
                paged_cold_ns=_best_ns(cold_reads, repeat),
                paged_prefetch_ns=_best_ns(prefetched_reads, repeat),
                flush_ns=_best_ns(write_and_flush, repeat),
                prefetch_hit_rate=0.0,
                seed_s=seed_s, file_mb=file_mb)
            now = backend.stats.snapshot()
            requested = now[3] - base[3]
            row.prefetch_hit_rate = ((now[4] - base[4]) / requested
                                     if requested else 0.0)
            del resident
            result.rows.append(row)
            backend.close()
    return result


def _materialize_keys(backend, map_id):
    from ..scilla.backend import decode_key
    for token, _ in backend.iter_items(map_id):
        yield decode_key(token), None


def format_paged_bench(result: PagedBenchResult) -> str:
    lines = [
        "Out-of-core state — sqlite-paged map vs. resident dict "
        f"({result.reads} point reads, cache {result.cache})",
        "",
        f"{'entries':>9s} {'resident':>10s} {'paged cold':>11s} "
        f"{'prefetched':>11s} {'pf gain':>8s} {'hit rate':>9s} "
        f"{'flush':>9s} {'seed':>7s} {'file':>8s}",
    ]
    for r in result.rows:
        lines.append(
            f"{r.entries:>9,d} {r.resident_read_ns / 1e3:>8.1f}µs "
            f"{r.paged_cold_ns / 1e6:>9.2f}ms "
            f"{r.paged_prefetch_ns / 1e6:>9.2f}ms "
            f"{r.prefetch_speedup:>7.1f}x {r.prefetch_hit_rate:>8.1%} "
            f"{r.flush_ns / 1e6:>7.2f}ms {r.seed_s:>6.1f}s "
            f"{r.file_mb:>6.1f}MB")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Out-of-core service soak (the bounded-memory acceptance run).
# --------------------------------------------------------------------------

def _rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024


def resident_map_rss_mb(entries: int) -> float | None:
    """Peak RSS of holding an ``entries``-sized balance map fully in
    memory, measured in a clean subprocess (so the number is the map,
    not this process's history).  None when the probe fails."""
    code = (
        "import resource\n"
        "from repro.scilla.values import MapVal, uint, addr\n"
        "from repro.scilla import types as ty\n"
        "from repro.workloads.generators import _user\n"
        "m = MapVal(ty.BYSTR20, ty.UINT128)\n"
        f"for i in range({entries}):\n"
        "    m.entries[addr(_user(i))] = uint(10**9)\n"
        "print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss"
        " / 1024)\n")
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    try:
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, timeout=600,
            capture_output=True, text=True, check=True)
        return float(out.stdout.strip())
    except (OSError, subprocess.SubprocessError, ValueError):
        return None


def run_oocore_soak(entries: int = 1_000_000, *, ticks: int = 12,
                    txns_per_tick: int = 400, shards: int = 4,
                    seed: int = 7, cache: int = 4096,
                    executor: str = "thread",
                    compare_resident: bool = True) -> dict:
    """Service-mode session over a pre-seeded ``entries``-row balance
    map with the sqlite backend; returns a JSON-able report with peak
    RSS, backend counters, and (optionally) the resident footprint the
    same map costs in memory.

    The seeding streams encoded rows straight into the page store —
    the coordinator never holds more than the page cache resident, so
    peak RSS stays bounded regardless of ``entries``.
    """
    from .service import run_service

    def seed_rows(net, wl) -> None:
        from ..chain.dispatch import _pad
        contract = net.contracts[_pad(wl.contract_addr)]
        balances = contract.state.fields["balances"]
        paged = balances.entries
        backend = net.state_backend
        t0 = time.perf_counter()
        from ..scilla.backend import encode_key, encode_value
        from ..scilla.values import addr
        from ..workloads.generators import _user
        blob = encode_value(uint(10**9))
        backend.put_many(
            paged.map_id,
            ((encode_key(addr(_user(i))), blob)
             for i in range(entries)))
        paged._count += entries
        report["seed_s"] = round(time.perf_counter() - t0, 2)

    report: dict = {"entries": entries, "ticks": ticks,
                    "txns_per_tick": txns_per_tick, "shards": shards,
                    "page_cache": cache}
    prior_cache = os.environ.get("REPRO_PAGE_CACHE")
    os.environ["REPRO_PAGE_CACHE"] = str(cache)
    try:
        run = run_service(
            "FT transfer @scale", shards=shards, ticks=ticks,
            txns_per_tick=txns_per_tick, population=entries,
            seed=seed, state_backend="sqlite", keep_blocks=32,
            executor=executor, setup_hook=seed_rows)
    finally:
        if prior_cache is None:
            os.environ.pop("REPRO_PAGE_CACHE", None)
        else:
            os.environ["REPRO_PAGE_CACHE"] = prior_cache
    backend = run.net.state_backend
    stats = backend.stats
    report.update({
        "committed": run.report.committed,
        "tps": round(run.report.tps, 2),
        "rss_mb": round(_rss_mb(), 1),
        "backend": {
            "kind": backend.kind,
            "faults": stats.faults,
            "evictions": stats.evictions,
            "writebacks": stats.writebacks,
            "prefetch_requested": stats.prefetch_requested,
            "prefetch_hits": stats.prefetch_hits,
            "file_mb": round(os.path.getsize(backend.path) / 2**20, 1),
        },
    })
    run.net.close()
    if compare_resident:
        resident = resident_map_rss_mb(entries)
        if resident is not None:
            report["resident_map_rss_mb"] = round(resident, 1)
    return report


def format_oocore_soak(report: dict) -> str:
    b = report["backend"]
    lines = [
        f"out-of-core soak: {report['entries']:,} seeded entries, "
        f"{report['ticks']} ticks x {report['txns_per_tick']} txns, "
        f"{report['shards']} shards, page cache {report['page_cache']}",
        f"  committed {report['committed']}  ({report['tps']:.1f} tx/s"
        f" modeled)",
        f"  peak RSS  {report['rss_mb']:.0f} MB  (backend file "
        f"{b['file_mb']:.0f} MB on disk)",
        f"  paging    faults {b['faults']}  evictions {b['evictions']}"
        f"  writebacks {b['writebacks']}  prefetch "
        f"{b['prefetch_hits']}/{b['prefetch_requested']}",
    ]
    if "resident_map_rss_mb" in report:
        lines.append(
            f"  vs memory {report['resident_map_rss_mb']:.0f} MB just "
            f"to hold the map resident")
    return "\n".join(lines)


def format_state_bench(result: StateBenchResult) -> str:
    lines = [
        "State engine — CoW forks and journal checkpoints vs. the "
        "deep-copy baseline",
        f"(restore replays {result.writes} writes; sliced payloads "
        f"ship {result.sliced_keys} entries)",
        "",
        f"{'entries':>9s} {'deepcopy':>12s} {'mark':>9s} {'fork':>9s} "
        f"{'slice':>9s} {'rollback':>10s} {'speedup':>8s} "
        f"{'bytes full':>12s} {'sliced':>9s}",
    ]
    for r in result.rows:
        lines.append(
            f"{r.entries:>9,d} {r.deep_copy_ns / 1e6:>10.2f}ms "
            f"{r.mark_ns / 1e3:>7.1f}µs {r.fork_ns / 1e3:>7.1f}µs "
            f"{r.slice_ns / 1e3:>7.1f}µs {r.rollback_ns / 1e3:>8.1f}µs "
            f"{r.speedup:>7.0f}x {r.full_payload_bytes:>12,d} "
            f"{r.sliced_payload_bytes:>9,d}")
    return "\n".join(lines)


def write_state_bench(result: StateBenchResult, path,
                      paged: PagedBenchResult | None = None,
                      soak: dict | None = None) -> None:
    payload = {
        "benchmark": "state-engine",
        "writes": result.writes,
        "sliced_keys": result.sliced_keys,
        "rows": [{
            "entries": r.entries,
            "deep_copy_ns": r.deep_copy_ns,
            "checkpoint_take_ns": {"old": r.deep_copy_ns,
                                   "new": r.mark_ns},
            "checkpoint_restore_ns": r.rollback_ns,
            "payload_construction_ns": {"old": r.deep_copy_ns,
                                        "new_full": r.fork_ns,
                                        "new_sliced": r.slice_ns},
            "payload_bytes": {"old": r.full_payload_bytes,
                              "new_sliced": r.sliced_payload_bytes},
            "speedup": r.speedup,
        } for r in result.rows],
    }
    if paged is not None:
        payload["paged"] = {
            "reads": paged.reads, "writes": paged.writes,
            "page_cache": paged.cache,
            "rows": [{
                "entries": r.entries,
                "resident_read_ns": r.resident_read_ns,
                "paged_read_ns": {"prefetch_off": r.paged_cold_ns,
                                  "prefetch_on": r.paged_prefetch_ns},
                "prefetch_hit_rate": round(r.prefetch_hit_rate, 4),
                "flush_ns": r.flush_ns,
                "seed_s": round(r.seed_s, 2),
                "file_mb": round(r.file_mb, 1),
            } for r in paged.rows],
        }
    if soak is not None:
        payload["out_of_core"] = soak
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
