"""The Sec. 5.2 contract-statistics table.

LOC, number of transitions, largest good-enough signature size and
number of maximal GE signatures for the five evaluation contracts,
side by side with the values the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from ..contracts import CORPUS, EVAL_CONTRACTS, contract_loc
from ..core.pipeline import run_pipeline

# Paper-reported values: (LOC, #transitions, largest GES, #maximal GES).
PAPER_TABLE: dict[str, tuple[int, int, int, int]] = {
    "FungibleToken": (439, 10, 6, 2),
    "Crowdfunding": (186, 3, 2, 1),
    "NonfungibleToken": (288, 5, 3, 2),
    "ProofIPFS": (289, 10, 8, 2),
    "UD_registry": (500, 11, 6, 2),
}


@dataclass
class ContractStatsRow:
    contract: str
    loc: int
    n_transitions: int
    largest_ges: int
    n_maximal_ges: int
    paper: tuple[int, int, int, int]

    @property
    def matches_paper(self) -> bool:
        """Structural agreement: transitions / largest GES / #max GES.

        LOC differs by construction (we re-wrote the contracts), so it
        is excluded from the match.
        """
        _, p_trans, p_ges, p_max = self.paper
        return (self.n_transitions == p_trans
                and self.largest_ges == p_ges
                and self.n_maximal_ges == p_max)


@dataclass
class ContractStatsResult:
    rows: list[ContractStatsRow] = dc_field(default_factory=list)


def run_contract_stats() -> ContractStatsResult:
    result = ContractStatsResult()
    for name in EVAL_CONTRACTS:
        deployment = run_pipeline(CORPUS[name], name)
        report = deployment.solver().report()
        result.rows.append(ContractStatsRow(
            contract=name,
            loc=contract_loc(name),
            n_transitions=report.n_transitions,
            largest_ges=report.largest_ge_size,
            n_maximal_ges=report.n_maximal,
            paper=PAPER_TABLE[name],
        ))
    return result


def format_contract_stats(result: ContractStatsResult) -> str:
    lines = [
        "Sec. 5.2 table — evaluation contracts "
        "(measured vs paper in parentheses)",
        "",
        f"{'contract':20s} {'LOC':>10s} {'#Trans':>10s} "
        f"{'Larg.GES':>10s} {'#Max.GES':>10s}  match",
    ]
    for row in result.rows:
        p_loc, p_trans, p_ges, p_max = row.paper
        lines.append(
            f"{row.contract:20s} {row.loc:>4d} ({p_loc:>3d}) "
            f"{row.n_transitions:>4d} ({p_trans:>3d}) "
            f"{row.largest_ges:>4d} ({p_ges:>3d}) "
            f"{row.n_maximal_ges:>4d} ({p_max:>3d})  "
            f"{'✓' if row.matches_paper else '✗'}")
    return "\n".join(lines)
