"""``repro bench parallel`` — resident-worker epoch throughput.

Times the eight Fig. 14 workloads through three execution modes at a
fixed shard/worker count:

* **serial** — the in-process reference loop (no lanes at all);
* **fresh** — parallel lanes with per-epoch payloads
  (``Network(resident=False)``): every epoch re-ships each lane its
  accounts, nonces and (sliced) contract state;
* **resident** — long-lived per-lane workers holding resident shard
  state (``Network(resident=True)``): a one-time install, then only
  the lane's transactions plus merge-deltas cross the boundary.

A fourth, non-headline run re-times the resident configuration with
the speculative intra-shard scheduler enabled
(``Network(speculate=True)``) and records its per-workload window,
conflict, abort and retry counters — the JSON artifact's
``speculation`` block.

The headline ``speedup`` is **fresh ÷ resident at equal worker
counts** — the win attributable to resident state, measurable even on
a single-core runner.  ``speedup_vs_serial`` is also recorded and is
honest: on boxes without spare cores it will be below 1.0 for thread
pools, which is exactly what the paper's Fig. 14 caveats predict.

Worker counts are recorded honestly: ``requested`` is what the caller
asked for (``None`` → the shard-aligned default
``min(n_shards, os.cpu_count())``), ``effective`` is what the lanes
actually used, and ``cpu_count`` pins the hardware context.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field as dc_field

from ..chain.network import Network
from ..workloads.generators import ALL_WORKLOADS, Workload

#: Workloads whose transactions spread across the whole user
#: population — these get the large population that makes per-epoch
#: payload shipping expensive.  The other two (FT fund's single
#: funder, ProofIPFS's append-only registry) stay small: they are the
#: paper's non-scaling controls.
POPULATION_HEAVY = frozenset({
    "FTTransfer", "CFDonate", "NFTMint", "NFTTransfer",
    "UDBestow", "UDConfig",
})

HEAVY_USERS = 4000
LIGHT_USERS = 240
TXNS_PER_EPOCH = 48
EPOCHS = 12
N_SHARDS = 4
SPEEDUP_DEFINITION = (
    "fresh-payload parallel wall time divided by resident-worker wall "
    "time at equal shard and worker counts; speedup_vs_serial compares "
    "resident against the serial reference loop")


def default_bench_workers(n_shards: int = N_SHARDS) -> int:
    """Shard-aligned, CPU-derived default: one worker per shard lane,
    capped by the machine's core count (never the old hard-coded 1)."""
    return max(1, min(n_shards, os.cpu_count() or 1))


@dataclass
class WorkloadTiming:
    workload: str
    n_users: int
    txns_per_epoch: int
    serial_s: float
    fresh_s: float
    resident_s: float
    speculative_s: float = 0.0
    # spec.* counter values from the speculative run's registry.
    spec_counters: dict[str, int] = dc_field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.fresh_s / self.resident_s if self.resident_s else 0.0

    @property
    def speedup_vs_serial(self) -> float:
        return self.serial_s / self.resident_s if self.resident_s else 0.0

    def _spec(self, name: str) -> int:
        return self.spec_counters.get(f"spec.{name}", 0)

    @property
    def conflict_rate(self) -> float:
        """Conflicted windows per formed window."""
        batches = self._spec("batches")
        return self._spec("conflicts") / batches if batches else 0.0

    @property
    def abort_rate(self) -> float:
        """Aborted executions per speculative execution attempt."""
        attempts = self._spec("attempts")
        return self._spec("aborts") / attempts if attempts else 0.0

    @property
    def retry_rate(self) -> float:
        attempts = self._spec("attempts")
        return self._spec("retries") / attempts if attempts else 0.0


@dataclass
class ParallelBenchResult:
    """Per-workload and aggregate epoch timings for the three modes."""

    requested_workers: int | None
    effective_workers: int
    executor: str
    n_shards: int
    epochs: int
    rows: list[WorkloadTiming] = dc_field(default_factory=list)
    fallbacks: int = 0
    resident_counters: dict[str, int] = dc_field(default_factory=dict)
    cpu_count: int = 0

    @property
    def serial_s(self) -> float:
        return sum(r.serial_s for r in self.rows)

    @property
    def fresh_s(self) -> float:
        return sum(r.fresh_s for r in self.rows)

    @property
    def resident_s(self) -> float:
        return sum(r.resident_s for r in self.rows)

    @property
    def speedup(self) -> float:
        return self.fresh_s / self.resident_s if self.resident_s else 0.0

    @property
    def speedup_vs_serial(self) -> float:
        return self.serial_s / self.resident_s if self.resident_s else 0.0

    def to_json_dict(self) -> dict:
        return {
            "benchmark": "parallel-epochs",
            "executor": self.executor,
            "n_shards": self.n_shards,
            "epochs": self.epochs,
            "workers": {
                "requested": self.requested_workers,
                "effective": self.effective_workers,
                "default": default_bench_workers(self.n_shards),
                "cpu_count": self.cpu_count,
            },
            "speedup_definition": SPEEDUP_DEFINITION,
            "workloads": [
                {
                    "workload": r.workload,
                    "n_users": r.n_users,
                    "txns_per_epoch": r.txns_per_epoch,
                    "serial_s": round(r.serial_s, 4),
                    "fresh_s": round(r.fresh_s, 4),
                    "resident_s": round(r.resident_s, 4),
                    "speedup": round(r.speedup, 2),
                    "speedup_vs_serial": round(r.speedup_vs_serial, 2),
                }
                for r in self.rows
            ],
            "timing": {
                "serial_s": round(self.serial_s, 4),
                "fresh_s": round(self.fresh_s, 4),
                "resident_s": round(self.resident_s, 4),
                "speedup": round(self.speedup, 2),
                "speedup_vs_serial": round(self.speedup_vs_serial, 2),
            },
            "fallbacks": self.fallbacks,
            "resident": dict(sorted(self.resident_counters.items())),
            "speculation": {
                "note": ("resident lanes re-timed with the speculative "
                         "intra-shard scheduler enabled; rates are "
                         "conflicts/windows, aborts/attempts and "
                         "retries/attempts"),
                "workloads": [
                    {
                        "workload": r.workload,
                        "speculative_s": round(r.speculative_s, 4),
                        "batches": r._spec("batches"),
                        "attempts": r._spec("attempts"),
                        "commits": r._spec("commits"),
                        "conflicts": r._spec("conflicts"),
                        "aborts": r._spec("aborts"),
                        "retries": r._spec("retries"),
                        "serial_fallbacks": r._spec("serial_fallbacks"),
                        "conflict_rate": round(r.conflict_rate, 4),
                        "abort_rate": round(r.abort_rate, 4),
                        "retry_rate": round(r.retry_rate, 4),
                    }
                    for r in self.rows
                ],
                "totals": {
                    name: sum(r._spec(name) for r in self.rows)
                    for name in ("batches", "attempts", "commits",
                                 "conflicts", "aborts", "retries",
                                 "serial_fallbacks")
                },
            },
        }


def _bench_sizes(cls: type[Workload]) -> tuple[int, int]:
    heavy = cls.__name__ in POPULATION_HEAVY
    return (HEAVY_USERS if heavy else LIGHT_USERS), TXNS_PER_EPOCH


def _time_mode(cls: type[Workload], mode: str, n_users: int, txns: int,
               epochs: int, n_shards: int, executor: str,
               workers: int) -> tuple[float, Network]:
    from ..obs.metrics import MetricsRegistry
    registry = MetricsRegistry()  # all modes pay the same metering cost
    if mode == "serial":
        net = Network(n_shards, use_signatures=True, executor="serial",
                      metrics=registry)
    else:
        net = Network(n_shards, use_signatures=True, executor=executor,
                      lane_workers=workers,
                      resident=(mode in ("resident", "speculative")),
                      speculate=(mode == "speculative"),
                      metrics=registry)
    workload = cls(n_users=n_users, txns_per_epoch=txns, seed=11)
    workload.setup(net)
    t0 = time.perf_counter()
    for epoch in range(epochs):
        net.process_epoch(workload.transactions(epoch))
    return time.perf_counter() - t0, net


def run_parallel_bench(workers: int | None = None,
                       epochs: int = EPOCHS,
                       n_shards: int = N_SHARDS,
                       executor: str = "thread",
                       workloads: list[type[Workload]] | None = None,
                       ) -> ParallelBenchResult:
    """Run all three modes for every workload and collect timings.

    Each mode gets a fresh ``Network`` (no cross-talk); the timed
    region covers only the epoch loop, never contract deployment or
    preparation epochs.  Resident telemetry (install/sync counters) is
    aggregated from the resident runs' metrics registries so the JSON
    artifact proves the resident path actually engaged.
    """
    effective = workers if workers is not None \
        else default_bench_workers(n_shards)
    result = ParallelBenchResult(
        requested_workers=workers,
        effective_workers=effective,
        executor=executor,
        n_shards=n_shards,
        epochs=epochs,
        cpu_count=os.cpu_count() or 1,
    )
    for cls in workloads if workloads is not None else ALL_WORKLOADS:
        n_users, txns = _bench_sizes(cls)
        serial_s, _ = _time_mode(cls, "serial", n_users, txns, epochs,
                                 n_shards, executor, effective)
        fresh_s, fresh_net = _time_mode(cls, "fresh", n_users, txns,
                                        epochs, n_shards, executor,
                                        effective)
        resident_s, resident_net = _time_mode(cls, "resident", n_users,
                                              txns, epochs, n_shards,
                                              executor, effective)
        spec_s, spec_net = _time_mode(cls, "speculative", n_users,
                                      txns, epochs, n_shards,
                                      executor, effective)
        result.fallbacks += fresh_net.executor_fallbacks
        result.fallbacks += resident_net.executor_fallbacks
        result.fallbacks += spec_net.executor_fallbacks
        spec_counters = {
            name: payload["value"]
            for name, payload
            in spec_net.metrics.snapshot()["counters"].items()
            if name.startswith("spec.")}
        result.rows.append(WorkloadTiming(
            cls.name, n_users, txns, serial_s, fresh_s, resident_s,
            speculative_s=spec_s, spec_counters=spec_counters))
        counters = resident_net.metrics.snapshot()["counters"]
        for name, payload in counters.items():
            if name.startswith("lane.resident."):
                result.resident_counters[name] = \
                    result.resident_counters.get(name, 0) \
                    + payload["value"]
    return result


def format_parallel_bench(result: ParallelBenchResult) -> str:
    lines = [
        f"Parallel epochs — {len(result.rows)} workloads, "
        f"{result.n_shards} shards, {result.effective_workers} "
        f"{result.executor} worker(s), {result.epochs} epochs "
        f"(cpu_count={result.cpu_count})",
        "",
        f"  {'workload':16s} {'users':>6s} {'serial':>9s} {'fresh':>9s} "
        f"{'resident':>9s} {'speedup':>8s}",
    ]
    for r in result.rows:
        lines.append(
            f"  {r.workload:16s} {r.n_users:>6d} {r.serial_s:>8.3f}s "
            f"{r.fresh_s:>8.3f}s {r.resident_s:>8.3f}s "
            f"{r.speedup:>7.2f}x")
    lines += [
        "",
        f"  total            {'':>6s} {result.serial_s:>8.3f}s "
        f"{result.fresh_s:>8.3f}s {result.resident_s:>8.3f}s "
        f"{result.speedup:>7.2f}x",
        "",
        f"  speedup (fresh/resident): {result.speedup:.2f}x",
        f"  speedup vs serial:        {result.speedup_vs_serial:.2f}x",
        "",
        "  speculative scheduler (resident lanes, speculation on):",
        f"  {'workload':16s} {'spec':>9s} {'conflicts':>9s} "
        f"{'aborts':>7s} {'abort%':>7s}",
    ]
    for r in result.rows:
        lines.append(
            f"  {r.workload:16s} {r.speculative_s:>8.3f}s "
            f"{r._spec('conflicts'):>9d} {r._spec('aborts'):>7d} "
            f"{100 * r.abort_rate:>6.1f}%")
    if result.fallbacks:
        lines.append(
            f"  WARNING: {result.fallbacks} lane run(s) silently fell "
            "back to the serial loop")
    return "\n".join(lines)


def write_parallel_bench(result: ParallelBenchResult, path) -> None:
    """Write ``BENCH_parallel.json`` (stable key order, trailing \\n)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result.to_json_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
