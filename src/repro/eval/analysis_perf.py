"""Fig. 12 — parsing, type-checking and sharding-analysis times.

Runs the deployment pipeline over the whole corpus, repeating each
contract and averaging, exactly as the paper does (1000 repetitions on
their machine; configurable here).  Reports per-stage microseconds and
the analysis overhead relative to total deployment time.

Also home to the *parallel analysis* benchmark (``repro bench
parallel``): serial-vs-process-pool wall clock over the corpus plus
SummaryCache hit rates, written to ``BENCH_parallel.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field as dc_field

from ..contracts import CORPUS
from ..core.cache import ANALYSIS_VERSION, SummaryCache
from ..core.parallel import analyze_corpus, default_workers
from ..core.pipeline import run_pipeline
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Tracer


@dataclass
class Fig12Row:
    contract: str
    parse_us: float
    typecheck_us: float
    analysis_us: float

    @property
    def total_us(self) -> float:
        return self.parse_us + self.typecheck_us + self.analysis_us


@dataclass
class Fig12Result:
    rows: list[Fig12Row] = dc_field(default_factory=list)
    repetitions: int = 0

    @property
    def analysis_overhead(self) -> float:
        """Analysis time as a fraction of parse+typecheck (Sec. 5.1.1
        reports ~46% of total deployment time added)."""
        base = sum(r.parse_us + r.typecheck_us for r in self.rows)
        analysis = sum(r.analysis_us for r in self.rows)
        return analysis / base if base else 0.0


def run_fig12(repetitions: int = 20,
              contracts: dict[str, str] | None = None) -> Fig12Result:
    contracts = contracts if contracts is not None else CORPUS
    result = Fig12Result(repetitions=repetitions)
    for name, source in contracts.items():
        parse = typecheck = analysis = 0.0
        for _ in range(repetitions):
            r = run_pipeline(source, name)
            us = r.timings.as_microseconds()
            parse += us["parse"]
            typecheck += us["typecheck"]
            analysis += us["analysis"]
        result.rows.append(Fig12Row(
            name, parse / repetitions, typecheck / repetitions,
            analysis / repetitions))
    result.rows.sort(key=lambda r: r.total_us, reverse=True)
    return result


def format_fig12(result: Fig12Result) -> str:
    lines = [
        "Fig. 12 — deployment pipeline times (µs, averaged over "
        f"{result.repetitions} runs)",
        "",
        f"{'contract':28s} {'parse':>9s} {'typecheck':>10s} "
        f"{'analysis':>9s} {'total':>9s}",
    ]
    for row in result.rows:
        lines.append(
            f"{row.contract:28s} {row.parse_us:>9.1f} "
            f"{row.typecheck_us:>10.1f} {row.analysis_us:>9.1f} "
            f"{row.total_us:>9.1f}")
    lines.append("")
    lines.append(
        f"analysis adds {100 * result.analysis_overhead:.1f}% on top of "
        "parsing+typechecking (paper: ~46% of total)")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Parallel analysis benchmark (serial vs process pool, plus caching).
# --------------------------------------------------------------------------

@dataclass
class ParallelBenchResult:
    """Serial-vs-parallel corpus analysis timings plus cache behaviour."""

    workers: int
    repetitions: int
    n_contracts: int
    serial_s: float
    parallel_s: float
    cache_hits: int
    cache_misses: int
    executor: str = "process"
    fell_back: bool = False
    analysis_version: str = ANALYSIS_VERSION

    @property
    def speedup(self) -> float:
        return self.serial_s / self.parallel_s if self.parallel_s else 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def to_json_dict(self) -> dict:
        """JSON payload; every field except the ``timing`` block is a
        deterministic function of the corpus and configuration."""
        return {
            "benchmark": "parallel-analysis",
            "analysis_version": self.analysis_version,
            "executor": self.executor,
            "workers": self.workers,
            "repetitions": self.repetitions,
            "n_contracts": self.n_contracts,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": round(self.cache_hit_rate, 4),
            },
            "fell_back": self.fell_back,
            "timing": {
                "serial_s": round(self.serial_s, 4),
                "parallel_s": round(self.parallel_s, 4),
                "speedup": round(self.speedup, 2),
            },
        }


def run_parallel_bench(workers: int | None = None,
                       repetitions: int = 1,
                       contracts: dict[str, str] | None = None,
                       executor: str = "process") -> ParallelBenchResult:
    """Time corpus analysis serially and through the pool.

    Both passes use a fresh private cache (no cross-talk with the
    process-wide one), so the measured work is identical: every
    contract is analysed from scratch ``repetitions`` times.  Cache
    hit counts come from a third pass that replays the whole corpus
    against the now-warm cache — the miner's steady state, where every
    repeat deployment and signature validation is a hit.

    All numbers are read back from ``repro.obs`` telemetry — serial
    wall time from tracer spans, parallel wall time and pool fallbacks
    from ``corpus.*`` instruments, hit rates from the warm cache's
    ``pipeline.cache.*`` counters — so the benchmark doubles as an
    end-to-end check of the observability layer.
    """
    contracts = contracts if contracts is not None else CORPUS

    tracer = Tracer()
    for _ in range(repetitions):
        with tracer.span("serial corpus pass"):
            for name, source in contracts.items():
                run_pipeline(source, name)
    serial_s = sum(root.duration_ns for root in tracer.roots) / 1e9

    sweep_registry = MetricsRegistry()
    for _ in range(repetitions):
        analyze_corpus(contracts, workers=workers, executor=executor,
                       cache=SummaryCache(), metrics=sweep_registry)
    sweep = sweep_registry.snapshot()
    parallel_s = sweep["histograms"]["corpus.wall_ns"]["sum"] / 1e9
    fell_back = sweep["counters"]["corpus.pool_fallbacks"]["value"] > 0

    cache_registry = MetricsRegistry()
    warm = SummaryCache(metrics=cache_registry)
    for _ in range(2):  # cold fill, then the steady-state replay
        analyze_corpus(contracts, workers=workers, executor="serial",
                       cache=warm)
    cache_counters = cache_registry.snapshot()["counters"]

    return ParallelBenchResult(
        workers=workers or default_workers(),
        repetitions=repetitions,
        n_contracts=len(contracts),
        serial_s=serial_s,
        parallel_s=parallel_s,
        cache_hits=cache_counters["pipeline.cache.hits"]["value"],
        cache_misses=cache_counters["pipeline.cache.misses"]["value"],
        executor=executor,
        fell_back=fell_back,
    )


def format_parallel_bench(result: ParallelBenchResult) -> str:
    lines = [
        f"Parallel analysis — {result.n_contracts} contracts, "
        f"{result.workers} workers, {result.repetitions} repetition(s)",
        "",
        f"  serial     {result.serial_s:8.3f} s",
        f"  {result.executor:10s} {result.parallel_s:8.3f} s   "
        f"({result.speedup:.2f}x)",
        "",
        f"  warm-cache replay: {result.cache_hits} hits / "
        f"{result.cache_misses} misses "
        f"({100 * result.cache_hit_rate:.1f}% hit rate)",
    ]
    if result.fell_back:
        lines.append("  (pool failure — parallel pass completed serially)")
    return "\n".join(lines)


def write_parallel_bench(result: ParallelBenchResult, path) -> None:
    """Write ``BENCH_parallel.json`` (stable key order, trailing \\n)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result.to_json_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
