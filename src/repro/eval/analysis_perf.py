"""Fig. 12 — parsing, type-checking and sharding-analysis times.

Runs the deployment pipeline over the whole corpus, repeating each
contract and averaging, exactly as the paper does (1000 repetitions on
their machine; configurable here).  Reports per-stage microseconds and
the analysis overhead relative to total deployment time.

(The ``repro bench parallel`` benchmark moved to
``repro.eval.parallel_bench`` — it now measures resident-worker epoch
throughput instead of corpus analysis.)
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from ..contracts import CORPUS
from ..core.pipeline import run_pipeline


@dataclass
class Fig12Row:
    contract: str
    parse_us: float
    typecheck_us: float
    analysis_us: float

    @property
    def total_us(self) -> float:
        return self.parse_us + self.typecheck_us + self.analysis_us


@dataclass
class Fig12Result:
    rows: list[Fig12Row] = dc_field(default_factory=list)
    repetitions: int = 0

    @property
    def analysis_overhead(self) -> float:
        """Analysis time as a fraction of parse+typecheck (Sec. 5.1.1
        reports ~46% of total deployment time added)."""
        base = sum(r.parse_us + r.typecheck_us for r in self.rows)
        analysis = sum(r.analysis_us for r in self.rows)
        return analysis / base if base else 0.0


def run_fig12(repetitions: int = 20,
              contracts: dict[str, str] | None = None) -> Fig12Result:
    contracts = contracts if contracts is not None else CORPUS
    result = Fig12Result(repetitions=repetitions)
    for name, source in contracts.items():
        parse = typecheck = analysis = 0.0
        for _ in range(repetitions):
            r = run_pipeline(source, name)
            us = r.timings.as_microseconds()
            parse += us["parse"]
            typecheck += us["typecheck"]
            analysis += us["analysis"]
        result.rows.append(Fig12Row(
            name, parse / repetitions, typecheck / repetitions,
            analysis / repetitions))
    result.rows.sort(key=lambda r: r.total_us, reverse=True)
    return result


def format_fig12(result: Fig12Result) -> str:
    lines = [
        "Fig. 12 — deployment pipeline times (µs, averaged over "
        f"{result.repetitions} runs)",
        "",
        f"{'contract':28s} {'parse':>9s} {'typecheck':>10s} "
        f"{'analysis':>9s} {'total':>9s}",
    ]
    for row in result.rows:
        lines.append(
            f"{row.contract:28s} {row.parse_us:>9.1f} "
            f"{row.typecheck_us:>10.1f} {row.analysis_us:>9.1f} "
            f"{row.total_us:>9.1f}")
    lines.append("")
    lines.append(
        f"analysis adds {100 * result.analysis_overhead:.1f}% on top of "
        "parsing+typechecking (paper: ~46% of total)")
    return "\n".join(lines)

