"""Instrumented workload runs: the data source of ``repro metrics``.

A fresh CLI process has no accumulated telemetry, so the ``metrics``
subcommand (and the differential-telemetry tests) run one of the
Fig. 14 workloads on a fully instrumented network and report the
registry that run filled.  The same helper backs
``tests/test_telemetry_differential.py``, which re-runs a workload
under every executor strategy and across a crash + resume and demands
byte-identical deterministic counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from ..chain.network import Network
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_TRACER, Tracer
from ..workloads import ALL_WORKLOADS, workload_by_name

WORKLOAD_NAMES = tuple(cls.name for cls in ALL_WORKLOADS)


@dataclass
class TelemetryRun:
    """One instrumented workload run and everything it recorded."""

    workload: str
    executor: str
    n_shards: int
    epochs: int
    committed: int = 0
    tps: float = 0.0
    registry: MetricsRegistry = dc_field(default_factory=MetricsRegistry)
    tracer: Tracer | None = None

    @property
    def deterministic(self) -> dict:
        return self.registry.deterministic_snapshot()


def run_instrumented(workload: str = "FT transfer", epochs: int = 3,
                     txns_per_epoch: int = 60, n_users: int = 48,
                     n_shards: int = 4, executor: str = "serial",
                     seed: int = 7, use_signatures: bool = True,
                     trace: bool = False,
                     registry: MetricsRegistry | None = None,
                     data_dir: str | None = None) -> TelemetryRun:
    """Run ``epochs`` measured epochs of one Fig. 14 workload on an
    instrumented network and return the filled registry (plus the
    span tree when ``trace`` is set).

    ``registry`` lets a caller accumulate several runs into one sink;
    ``data_dir`` attaches durability, so the run exercises the WAL and
    snapshot telemetry too.
    """
    cls = workload_by_name(workload)
    wl = cls(n_users=n_users, txns_per_epoch=txns_per_epoch, seed=seed)
    reg = MetricsRegistry() if registry is None else registry
    tracer = Tracer() if trace else NULL_TRACER
    net = Network(n_shards, use_signatures=use_signatures,
                  executor=executor, metrics=reg, tracer=tracer,
                  data_dir=data_dir)
    try:
        wl.setup(net)
        committed = 0
        for epoch in range(epochs):
            block = net.process_epoch(wl.transactions(epoch))
            committed += block.stats.committed
        tps = net.average_tps()
        # Modeled-clock TPS is deterministic (cost model, not wall
        # time); exported in milli-tx/s so the snapshot holds an int.
        reg.gauge("net.average_tps_milli").set(int(tps * 1000))
    finally:
        net.close()
    return TelemetryRun(
        workload=workload, executor=net.executor, n_shards=n_shards,
        epochs=epochs, committed=committed, tps=tps, registry=reg,
        tracer=tracer if trace else None)


def format_telemetry(run: TelemetryRun) -> str:
    """The human-oriented report: header, instruments, span tree."""
    lines = [
        f"workload:  {run.workload}",
        f"executor:  {run.executor} ({run.n_shards} shards)",
        f"epochs:    {run.epochs}   committed: {run.committed}   "
        f"avg tps: {run.tps:.2f}",
        "",
        run.registry.to_text(),
    ]
    if run.tracer is not None and run.tracer.roots:
        lines += ["", "spans:", run.tracer.flame(min_ratio=0.01)]
    return "\n".join(lines)
