"""Sec. 5.2.3 + design ablations.

* Ownership vs commutativity: UD record updates (non-fungible state,
  disjoint overwrites) are enabled by the disjoint-ownership strategy
  alone; FT transfers (fungible state) need the commutativity
  strategy — disabling IntMerge collapses their parallelism.
* Relaxed vs strict nonces (Sec. 4.2.1): single-sender workloads
  (NFT mint) only parallelise under the relaxed nonce rule.
* Weak reads rejected: without accepting stale reads, the derivation
  falls back to ownership-only signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from ..chain.network import Network
from ..workloads.generators import FTTransfer, NFTMint, UDConfig, Workload
from .throughput import FIG14_COST_MODEL, Fig14Cell


@dataclass
class AblationRow:
    experiment: str
    variant: str
    tps: float
    committed: int
    offered: int


@dataclass
class AblationResult:
    rows: list[AblationRow] = dc_field(default_factory=list)

    def tps(self, experiment: str, variant: str) -> float:
        for row in self.rows:
            if row.experiment == experiment and row.variant == variant:
                return row.tps
        raise KeyError((experiment, variant))


def _run(workload: Workload, n_shards: int, epochs: int,
         use_signatures: bool = True, strict_nonces: bool = False,
         allow_commutativity: bool = True) -> Fig14Cell:
    net = Network(n_shards, use_signatures=use_signatures,
                  cost_model=FIG14_COST_MODEL, strict_nonces=strict_nonces)
    # Thread the commutativity switch through the workload's deploy.
    original_deploy = net.deploy

    def deploy(*args, **kwargs):
        kwargs["allow_commutativity"] = allow_commutativity
        return original_deploy(*args, **kwargs)

    net.deploy = deploy  # type: ignore[method-assign]
    workload.setup(net)
    committed = offered = 0
    for epoch in range(epochs):
        txns = workload.transactions(epoch)
        offered += len(txns)
        block = net.process_epoch(txns)
        committed += block.n_committed
    return Fig14Cell(workload.name, "", net.average_tps(), committed,
                     offered, 0.0)


def run_ablation(epochs: int = 4, txns_per_epoch: int = 300,
                 n_shards: int = 4, n_users: int = 240) -> AblationResult:
    result = AblationResult()

    def add(experiment: str, variant: str, cell: Fig14Cell) -> None:
        result.rows.append(AblationRow(
            experiment, variant, cell.tps, cell.committed, cell.offered))

    # Commutativity strategy ablation on fungible transfers.
    for variant, comm in (("full CoSplit", True), ("ownership only", False)):
        wl = FTTransfer(txns_per_epoch=txns_per_epoch, n_users=n_users)
        add("FT transfer", variant,
            _run(wl, n_shards, epochs, allow_commutativity=comm))

    # Ownership strategy alone carries non-fungible record updates
    # (UD config: disjoint overwrites, no shared counters).
    for variant, comm in (("full CoSplit", True), ("ownership only", False)):
        wl = UDConfig(txns_per_epoch=txns_per_epoch, n_users=n_users)
        add("UD config", variant,
            _run(wl, n_shards, epochs, allow_commutativity=comm))

    # Relaxed vs strict nonces on a single-sender workload.
    for variant, strict in (("relaxed nonces", False), ("strict nonces", True)):
        wl = NFTMint(txns_per_epoch=txns_per_epoch, n_users=n_users)
        add("NFT mint", variant,
            _run(wl, n_shards, epochs, strict_nonces=strict))

    return result


def format_ablation(result: AblationResult) -> str:
    lines = ["Sec. 5.2.3 — strategy and protocol ablations", ""]
    lines.append(f"{'experiment':16s} {'variant':18s} {'TPS':>8s} "
                 f"{'committed':>10s} {'offered':>8s}")
    for row in result.rows:
        lines.append(f"{row.experiment:16s} {row.variant:18s} "
                     f"{row.tps:>8.1f} {row.committed:>10d} "
                     f"{row.offered:>8d}")
    return "\n".join(lines)
