"""Service-mode harness: drive a ServiceLoop like a fleet of clients.

``run_service`` wires the full ingestion path together: a workload
generator produces offered load (optionally multiplied by planned
``FLOOD`` faults), a *well-behaved client* submits it — pausing its
stream while the mempool answers ``Backpressure`` and retrying from
where it stopped, so sender nonce chains survive overload — and the
:class:`~repro.chain.service.ServiceLoop` ticks once per round.  The
client's own buffer is bounded too: offered transactions beyond it are
dropped client-side *before* submission (counted, never submitted), so
a 2x-overload soak holds the whole process's memory bounded, not just
the pool's.

``replay_committed`` is the correctness oracle: it re-executes exactly
the committed transaction stream, epoch by epoch in drained order, on
a fresh fault-free serial network with unlimited gas, and returns its
contract fingerprint.  Ownership/commutativity analysis promises this
matches the service run byte for byte — regardless of floods, stalls,
deferrals, shedding, or parallel lanes
(``tests/test_service_differential.py``).

The ``write_stream`` / ``iter_stream`` pair is the `repro loadgen` /
`repro serve` wire format: a JSONL header describing the workload
(so the serving side can reproduce contract setup), then one line of
serialized transactions per tick.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field as dc_field

from ..chain.faults import FaultPlan
from ..chain.mempool import AdmissionStatus, MempoolConfig, RejectReason
from ..chain.network import Network
from ..chain.recovery import network_fingerprint
from ..chain.serialization import (
    transaction_from_obj, transaction_to_obj,
)
from ..chain.service import ServiceConfig, ServiceLoop
from ..obs.metrics import MetricsRegistry
from ..workloads import workload_by_name

STREAM_VERSION = 1


@dataclass
class ServiceReport:
    """Everything a service run did, in one JSON-able record."""

    workload: str
    shards: int
    population: int
    ticks: int
    drain_ticks: int
    # Client-side accounting.
    generated: int
    client_dropped: int
    unsubmitted: int
    # Admission accounting (mempool counters).
    submitted: int
    admitted: int
    readmitted: int
    backpressured: int
    rejected: dict[str, int]
    # Terminal outcomes.
    committed: int
    failed: int
    shed: int
    dead_lettered: int
    dropped: int
    pending_after: int
    partition_ok: bool
    # Performance.
    tps: float
    p50_latency_ticks: float
    p99_latency_ticks: float
    p50_latency_ms: float
    p99_latency_ms: float
    max_occupancy: int
    stalled_ticks: int
    idle_ticks: int
    final_batch: int
    unique_senders: int

    def to_obj(self) -> dict:
        out = dict(self.__dict__)
        for key in ("tps", "p50_latency_ticks", "p99_latency_ticks",
                    "p50_latency_ms", "p99_latency_ms"):
            out[key] = round(out[key], 4)
        return out


@dataclass
class ServiceRun:
    """A finished run plus its live objects (tests poke at these)."""

    report: ServiceReport
    loop: ServiceLoop
    net: Network
    workload: object
    workload_kwargs: dict = dc_field(default_factory=dict)


def _make_workload(name: str, population: int, txns_per_tick: int,
                   seed: int):
    cls = workload_by_name(name)
    kwargs = {"txns_per_epoch": txns_per_tick, "seed": seed}
    try:
        wl = cls(population=population, **kwargs)
        kwargs["population"] = population
    except TypeError:
        # Fig. 14 workloads: the population knob is n_users, and setup
        # cost is O(n_users) — callers pick toy sizes for these.
        wl = cls(n_users=population, **kwargs)
        kwargs["n_users"] = population
    return wl, kwargs


def run_service(workload: str = "FT transfer @scale", *,
                shards: int = 4, ticks: int = 24,
                txns_per_tick: int = 200, population: int = 1000,
                seed: int = 7, capacity: int | None = None,
                per_sender: int | None = None,
                batch_max: int | None = None,
                max_deferrals: int = 12,
                flood_rate: float = 0.0, stall_rate: float = 0.0,
                fault_seed: int = 0, executor: str | None = None,
                data_dir: str | None = None, metrics=None,
                use_signatures: bool = True, cost_model=None,
                record_committed: bool = False,
                drain_ticks: int = 64,
                client_buffer: int | None = None,
                snapshot_every: int = 8,
                state_backend=None,
                keep_blocks: int | None = None,
                setup_hook=None,
                stream=None) -> ServiceRun:
    """Run a bounded service-mode session and report on it.

    ``stream`` (an ``iter_stream`` result) replaces the generated
    offered load with a pre-recorded one; its header picks the
    workload used for contract setup.

    ``state_backend`` selects the out-of-core page store for contract
    map state (``"sqlite"``/``"memory"``/``"none"``, a
    ``StateBackend`` instance, or None for the ``REPRO_STATE_BACKEND``
    environment default); ``keep_blocks`` bounds the retained block
    history (out-of-core soaks keep it small so the backend's bounded
    memory is not undone by block receipts).
    """
    if cost_model is None:
        from .throughput import FIG14_COST_MODEL
        cost_model = FIG14_COST_MODEL
    if stream is not None:
        header, tick_batches = stream
        workload = header["workload"]
        population = header["population"]
        txns_per_tick = header["txns_per_tick"]
        seed = header["seed"]
        ticks = header["ticks"]
    wl, wl_kwargs = _make_workload(workload, population,
                                   txns_per_tick, seed)

    plan = None
    if flood_rate > 0 or stall_rate > 0:
        plan = FaultPlan.random(
            seed=fault_seed, epochs=ticks + drain_ticks,
            n_shards=shards, crash_rate=0.0, delay_rate=0.0,
            drop_rate=0.0, corrupt_rate=0.0, forge_rate=0.0,
            flood_rate=flood_rate, stall_rate=stall_rate)
    if metrics is None:
        metrics = MetricsRegistry()
    net = Network(n_shards=shards, use_signatures=use_signatures,
                  cost_model=cost_model, carry_backlog=False,
                  fault_plan=plan, executor=executor,
                  data_dir=data_dir, snapshot_every=snapshot_every,
                  state_backend=state_backend,
                  metrics=metrics)
    wl.setup(net)
    if setup_hook is not None:
        # Out-of-core soaks pre-seed contract state (e.g. stream
        # millions of balance rows straight into the page store)
        # between workload setup and the first tick.
        setup_hook(net, wl)

    capacity = capacity if capacity is not None else 8 * txns_per_tick
    pool_cfg = MempoolConfig(
        capacity=capacity,
        per_sender=(per_sender if per_sender is not None
                    else max(64, 2 * txns_per_tick)))
    svc_cfg = ServiceConfig(
        batch_max=(batch_max if batch_max is not None
                   else max(ServiceConfig.batch_min, txns_per_tick)),
        max_deferrals=max_deferrals,
        record_committed=record_committed,
        keep_blocks=(keep_blocks if keep_blocks is not None
                     else ServiceConfig.keep_blocks))
    loop = ServiceLoop(net, config=svc_cfg, pool_config=pool_cfg)

    buffer_cap = (client_buffer if client_buffer is not None
                  else 4 * capacity)
    offered: deque = deque()
    seen_senders: set[str] = set()
    generated = client_dropped = 0
    injector = net.injector
    retryable = {RejectReason.SENDER_FULL, RejectReason.POOL_FULL}

    def enqueue(txns) -> None:
        nonlocal generated, client_dropped
        for tx in txns:
            generated += 1
            seen_senders.add(tx.sender)
            if len(offered) >= buffer_cap:
                client_dropped += 1    # client-side load shedding
            else:
                offered.append(tx)

    def submit_buffered() -> None:
        # The well-behaved client: pause at the first Backpressure —
        # or capacity rejection (sender/pool full), which is equally
        # retryable — and resume from the *same* transaction next
        # tick.  Skipping past a refused submission would turn every
        # later nonce of that sender into a NONCE_GAP reject.
        while offered:
            receipt = loop.submit(offered[0])
            if receipt.status is AdmissionStatus.BACKPRESSURE or \
                    (receipt.status is AdmissionStatus.REJECTED and
                     receipt.reason in retryable):
                break
            offered.popleft()

    for t in range(1, ticks + 1):
        if stream is not None:
            batch = next(tick_batches, [])
            enqueue(batch)
        else:
            mult = injector.flood_multiplier(t) if injector else 1
            for _ in range(mult):
                enqueue(wl.transactions(t))
        submit_buffered()
        loop.tick()

    # Producers stop; let the admitted (and client-buffered) work
    # finish within a bounded budget.
    used_drain = 0
    while used_drain < drain_ticks and \
            (offered or loop.mempool.occupancy or
             loop.mempool.inflight):
        submit_buffered()
        loop.tick()
        used_drain += 1
    loop.sync()

    report = _build_report(loop, net, wl, workload, shards, population,
                           ticks, used_drain, generated,
                           client_dropped, len(offered), metrics,
                           unique_senders=len(seen_senders))
    return ServiceRun(report, loop, net, wl, wl_kwargs)


def _build_report(loop, net, wl, workload, shards, population, ticks,
                  used_drain, generated, client_dropped, unsubmitted,
                  metrics, unique_senders: int = 0) -> ServiceReport:
    c = loop.mempool.counters
    rejected = {r.value: c[f"rejected_{r.value}"] for r in RejectReason
                if c[f"rejected_{r.value}"]}
    quantiles = {"ticks": (0.0, 0.0), "ms": (0.0, 0.0)}
    if metrics is not None and metrics.enabled:
        from ..chain.mempool import LAT_MS_BUCKETS, TICK_BUCKETS
        ticks_hist = metrics.histogram("mempool.latency_ticks",
                                       TICK_BUCKETS)
        ms_hist = metrics.histogram("mempool.latency_ms",
                                    LAT_MS_BUCKETS,
                                    deterministic=False)
        quantiles["ticks"] = (ticks_hist.quantile(0.5),
                              ticks_hist.quantile(0.99))
        quantiles["ms"] = (ms_hist.quantile(0.5),
                           ms_hist.quantile(0.99))
    unique = unique_senders or (wl.touched_senders()
                                if hasattr(wl, "touched_senders")
                                else wl.n_users)
    pool = loop.mempool
    return ServiceReport(
        workload=workload, shards=shards, population=population,
        ticks=ticks, drain_ticks=used_drain, generated=generated,
        client_dropped=client_dropped, unsubmitted=unsubmitted,
        submitted=c["submitted"], admitted=c["admitted"],
        readmitted=c["readmitted"], backpressured=c["backpressured"],
        rejected=rejected, committed=c["committed"],
        failed=c["failed"], shed=c["shed"],
        dead_lettered=c["dead-lettered"], dropped=c["dropped"],
        pending_after=pool.occupancy,
        partition_ok=(pool.accounted() == c["submitted"]),
        tps=loop.tps,
        p50_latency_ticks=quantiles["ticks"][0],
        p99_latency_ticks=quantiles["ticks"][1],
        p50_latency_ms=quantiles["ms"][0],
        p99_latency_ms=quantiles["ms"][1],
        max_occupancy=loop.max_occupancy,
        stalled_ticks=loop.stalled_ticks, idle_ticks=loop.idle_ticks,
        final_batch=loop.batch_size, unique_senders=unique,
    )


def format_service(report: ServiceReport) -> str:
    r = report
    lines = [
        f"service: {r.workload}  ({r.shards} shards, population "
        f"{r.population}, {r.ticks}+{r.drain_ticks} ticks)",
        f"  offered    {r.generated:7d}  (client dropped "
        f"{r.client_dropped}, left unsubmitted {r.unsubmitted})",
        f"  submitted  {r.submitted:7d}  admitted {r.admitted}  "
        f"readmitted {r.readmitted}",
        f"  refused    backpressure {r.backpressured}  "
        f"rejected {sum(r.rejected.values())} {r.rejected or ''}",
        f"  terminal   committed {r.committed}  failed {r.failed}  "
        f"shed {r.shed}  dead-lettered {r.dead_lettered}  "
        f"churn-dropped {r.dropped}",
        f"  pending    {r.pending_after}  (partition "
        f"{'OK' if r.partition_ok else 'BROKEN'})",
        f"  overload   max occupancy {r.max_occupancy}  stalls "
        f"{r.stalled_ticks}  idle {r.idle_ticks}  final batch "
        f"{r.final_batch}",
        f"  perf       {r.tps:.2f} tx/s  latency p50 "
        f"{r.p50_latency_ticks:.1f} / p99 {r.p99_latency_ticks:.1f} "
        f"ticks  ({r.p50_latency_ms:.2f} / {r.p99_latency_ms:.2f} ms "
        f"wall)",
        f"  senders    {r.unique_senders} unique",
    ]
    return "\n".join(lines)


# -- the replay oracle -----------------------------------------------------

def replay_committed(run: ServiceRun) -> dict[str, str]:
    """Re-execute the run's committed stream serially; return the
    replay's contract fingerprint.

    Requires ``record_committed=True`` on the original run.  The
    replay network repeats the same contract setup, then processes
    each epoch's committed transactions (in drained order) with
    unlimited gas and no faults.  Only contract states are compared —
    account gas balances legitimately differ because failed and
    deferred transactions are absent from the replay (the same
    convention as repro.eval.chaos).
    """
    if not run.loop.config.record_committed:
        raise ValueError("run was not recorded: pass "
                         "record_committed=True to run_service")
    wl = type(run.workload)(**run.workload_kwargs)
    net = Network(n_shards=run.net.n_shards,
                  use_signatures=run.net.use_signatures,
                  cost_model=run.net.cost, carry_backlog=False,
                  executor="serial")
    wl.setup(net)
    for batch in run.loop.committed_epochs:
        if not batch:
            continue
        for tx in batch:
            if tx.sender not in net.accounts and \
                    tx.sender not in net.contracts:
                net.create_account(tx.sender)
        net.process_epoch(batch, unlimited=True)
    return network_fingerprint(net)


# -- loadgen stream format (repro loadgen | repro serve) -------------------

def write_stream(fh, workload: str = "FT transfer @scale", *,
                 population: int = 1000, ticks: int = 24,
                 txns_per_tick: int = 200, seed: int = 7,
                 shards_hint: int = 4) -> dict:
    """Generate a workload and serialize it as a JSONL tick stream."""
    header = {
        "kind": "header", "version": STREAM_VERSION,
        "workload": workload, "population": population,
        "ticks": ticks, "txns_per_tick": txns_per_tick, "seed": seed,
        "shards_hint": shards_hint,
    }
    wl, _ = _make_workload(workload, population, txns_per_tick, seed)
    # Setup state (contract deploys, minting) is reproduced by the
    # serving side from the header; the stream carries only traffic.
    fh.write(json.dumps(header) + "\n")
    total = 0
    for t in range(1, ticks + 1):
        txns = wl.transactions(t)
        total += len(txns)
        fh.write(json.dumps({
            "kind": "tick", "tick": t,
            "txns": [transaction_to_obj(tx) for tx in txns],
        }) + "\n")
    header["total_txns"] = total
    return header


def iter_stream(fh):
    """Parse a loadgen stream: returns ``(header, batches)`` where
    ``batches`` lazily yields each tick's transaction list (O(1)
    memory in the number of ticks)."""
    header_line = fh.readline()
    if not header_line:
        raise ValueError("empty loadgen stream")
    header = json.loads(header_line)
    if header.get("kind") != "header" or \
            header.get("version") != STREAM_VERSION:
        raise ValueError("not a loadgen stream (bad header)")

    def batches():
        for line in fh:
            if not line.strip():
                continue
            obj = json.loads(line)
            if obj.get("kind") != "tick":
                raise ValueError(
                    f"unexpected stream record {obj.get('kind')!r}")
            yield [transaction_from_obj(tx) for tx in obj["txns"]]

    return header, batches()
