"""One-shot evaluation report: every experiment of Sec. 5 in order.

``run_full_report`` regenerates E1–E9 with full-scale parameters and
returns (and optionally writes) a single combined document — the
quickest way to compare a fresh checkout against EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from pathlib import Path

from .ablation import format_ablation, run_ablation
from .analysis_perf import format_fig12, run_fig12
from .ethereum_breakdown import format_fig1, run_fig1
from .ge_stats import format_fig13, run_fig13
from .overheads import format_overheads, run_overheads
from .tables import format_contract_stats, run_contract_stats
from .throughput import format_fig14, run_fig14

EXPERIMENTS = (
    ("E1 / Fig. 1", lambda: format_fig1(run_fig1())),
    ("E2 / Fig. 12", lambda: format_fig12(run_fig12(repetitions=5))),
    ("E3-E5 / Fig. 13", lambda: format_fig13(run_fig13())),
    ("E6 / Sec. 5.2 table",
     lambda: format_contract_stats(run_contract_stats())),
    ("E7 / Fig. 14", lambda: format_fig14(run_fig14(epochs=6))),
    ("E8 / Sec. 5.2.2", lambda: format_overheads(run_overheads())),
    ("E9 / Sec. 5.2.3", lambda: format_ablation(run_ablation())),
)


def run_full_report(output: str | Path | None = None,
                    only: set[str] | None = None) -> str:
    """Regenerate all experiments; return the combined report text."""
    sections = []
    for title, runner in EXPERIMENTS:
        if only is not None and not any(key in title for key in only):
            continue
        t0 = time.perf_counter()
        body = runner()
        elapsed = time.perf_counter() - t0
        sections.append(
            f"{'=' * 70}\n{title}  (regenerated in {elapsed:.1f} s)\n"
            f"{'=' * 70}\n{body}")
    report = "\n\n".join(sections)
    if output is not None:
        Path(output).write_text(report + "\n")
    return report
