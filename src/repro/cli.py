"""Command-line interface for the CoSplit reproduction.

Usage (also via ``python -m repro``):

    repro analyze   <file.scilla | corpus:Name>     effect summaries
    repro signature <file|corpus:Name> T1 T2 …      derive a signature
    repro solve     <file|corpus:Name>              GE-signature report
    repro diagnose  <file|corpus:Name>              why sharding fails
    repro repair    <file|corpus:Name> [Transition] rewrite + print
    repro corpus                                    list corpus contracts
    repro bench     fig1|fig12|…|ablation|parallel|state  paper experiments
    repro chaos     [--seed N --epochs E]           fault-injection run
    repro metrics   [--workload W --json|--prom]    instrumented run
    repro run       --data-dir D [--workload W]     durable workload run
    repro resume    --data-dir D [--workload W]     continue a durable run
    repro torture   [--workload W | --all]          kill-and-resume proof
    repro serve     [--population N --ticks T …]    service-mode session
    repro loadgen   [--out F --population N …]      record a tick stream
"""

from __future__ import annotations

import argparse
import sys

from .contracts import CORPUS, contract_loc
from .core.pipeline import run_pipeline
from .core.repair import diagnose, repair_module, repair_transition
from .scilla.parser import parse_module
from .scilla.pretty import pp_module


def _load_source(spec: str) -> tuple[str, str]:
    """Resolve ``corpus:Name`` or a filesystem path to source text."""
    if spec.startswith("corpus:"):
        name = spec.removeprefix("corpus:")
        if name not in CORPUS:
            raise SystemExit(f"unknown corpus contract {name!r}; run "
                             f"`repro corpus` to list them")
        return CORPUS[name], name
    with open(spec, encoding="utf-8") as handle:
        return handle.read(), spec


def cmd_analyze(args) -> int:
    source, name = _load_source(args.contract)
    result = run_pipeline(source, name)
    for summary in result.summaries.values():
        print(summary)
        print()
    us = result.timings.as_microseconds()
    print(f"[parse {us['parse']:.0f} µs | typecheck "
          f"{us['typecheck']:.0f} µs | analysis {us['analysis']:.0f} µs]")
    return 0


def cmd_signature(args) -> int:
    source, name = _load_source(args.contract)
    result = run_pipeline(source, name)
    selection = tuple(args.transitions) or tuple(result.summaries)
    unknown = set(selection) - set(result.summaries)
    if unknown:
        raise SystemExit(f"unknown transitions: {sorted(unknown)}")
    weak = set(args.weak_reads) if args.weak_reads else "auto"
    sig = result.signature(selection, weak_reads=weak,
                           allow_commutativity=not args.ownership_only)
    print(sig.describe())
    return 0


def cmd_solve(args) -> int:
    source, name = _load_source(args.contract)
    result = run_pipeline(source, name)
    solver = result.solver()
    report = solver.report()
    print(f"{report.contract}: {report.n_transitions} transitions")
    print(f"shardable alone: {solver.shardable_transitions()}")
    print(f"largest good-enough signature: {report.largest_ge_size}")
    for selection in report.maximal_ge:
        print(f"  maximal: {selection}")
    return 0


def cmd_diagnose(args) -> int:
    source, name = _load_source(args.contract)
    module = parse_module(source, name)
    for d in diagnose(module):
        status = "shardable" if d.shardable else "NOT shardable"
        print(f"{d.transition}: {status}")
        for reason in d.reasons:
            print(f"    reason: {reason}")
        for binder in d.repairable_binders:
            print(f"    state-derived map key: {binder}")
    return 0


def cmd_repair(args) -> int:
    source, name = _load_source(args.contract)
    module = parse_module(source, name)
    if args.transition:
        module, changes = repair_transition(module, args.transition)
        log = {args.transition: changes} if changes else {}
    else:
        module, log = repair_module(module)
    if not log:
        print("nothing to repair")
        return 0
    for transition, changes in log.items():
        print(f"-- {transition}:")
        for change in changes:
            print(f"   {change}")
    print()
    print(pp_module(module))
    return 0


def cmd_repl(_args) -> int:
    from .scilla.repl import run_repl
    run_repl()
    return 0


def cmd_corpus(args) -> int:
    if args.export:
        from pathlib import Path
        target = Path(args.export)
        target.mkdir(parents=True, exist_ok=True)
        for name, source in CORPUS.items():
            (target / f"{name}.scilla").write_text(source.strip() + "\n")
        print(f"wrote {len(CORPUS)} .scilla files to {target}")
        return 0
    print(f"{'contract':28s} {'LOC':>5s} {'transitions':>11s}")
    for name in sorted(CORPUS):
        result = run_pipeline(CORPUS[name], name)
        print(f"{name:28s} {contract_loc(name):>5d} "
              f"{len(result.summaries):>11d}")
    return 0


def cmd_bench(args) -> int:
    target = args.experiment
    if target == "all":
        from .eval.report import run_full_report
        print(run_full_report(output=args.output))
    elif target == "fig1":
        from .eval.ethereum_breakdown import format_fig1, run_fig1
        print(format_fig1(run_fig1()))
    elif target == "fig12":
        from .eval.analysis_perf import format_fig12, run_fig12
        print(format_fig12(run_fig12()))
    elif target == "fig13":
        from .eval.ge_stats import format_fig13, run_fig13
        print(format_fig13(run_fig13()))
    elif target == "fig14":
        from .eval.throughput import format_fig14, run_fig14
        print(format_fig14(run_fig14(epochs=args.epochs)))
    elif target == "table":
        from .eval.tables import format_contract_stats, run_contract_stats
        print(format_contract_stats(run_contract_stats()))
    elif target == "overheads":
        from .eval.overheads import format_overheads, run_overheads
        print(format_overheads(run_overheads()))
    elif target == "ablation":
        from .eval.ablation import format_ablation, run_ablation
        print(format_ablation(run_ablation()))
    elif target == "parallel":
        from .eval.parallel_bench import (
            format_parallel_bench, run_parallel_bench, write_parallel_bench,
        )
        result = run_parallel_bench(workers=args.workers,
                                    epochs=args.epochs,
                                    executor=args.executor)
        print(format_parallel_bench(result))
        out = args.output or "BENCH_parallel.json"
        write_parallel_bench(result, out)
        print(f"\nwrote {out}")
    elif target == "state":
        from .eval.state_bench import (
            format_oocore_soak, format_paged_bench, format_state_bench,
            run_oocore_soak, run_paged_bench, run_state_bench,
            write_state_bench,
        )
        sizes = tuple(int(s) for s in args.sizes.split(","))
        # The soak runs first: its peak-RSS claim reads ru_maxrss, a
        # process-lifetime high-water mark the paged bench's resident
        # baseline dict would otherwise inflate.
        soak = None
        if args.soak_entries:
            soak = run_oocore_soak(entries=args.soak_entries)
        result = run_state_bench(sizes=sizes,
                                 repeat=args.repetitions)
        print(format_state_bench(result))
        paged = None
        if not args.no_paged:
            paged_sizes = tuple(int(s) for s in
                                args.paged_sizes.split(","))
            paged = run_paged_bench(sizes=paged_sizes,
                                    repeat=args.repetitions)
            print()
            print(format_paged_bench(paged))
        if soak is not None:
            print()
            print(format_oocore_soak(soak))
        out = args.output or "BENCH_state.json"
        write_state_bench(result, out, paged=paged, soak=soak)
        print(f"\nwrote {out}")
    elif target == "throughput":
        from .eval.throughput import (
            format_throughput_bench, run_throughput_bench,
            write_throughput_bench,
        )
        shard_counts = tuple(int(s) for s in
                             args.shard_counts.split(","))
        populations = tuple(int(p) for p in args.populations.split(","))
        result = run_throughput_bench(
            shard_counts=shard_counts, populations=populations,
            ticks=args.ticks, txns_per_tick=args.txns)
        print(format_throughput_bench(result))
        out = args.output or "BENCH_throughput.json"
        write_throughput_bench(result, out)
        print(f"\nwrote {out}")
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown experiment {target}")
    return 0


def cmd_chaos(args) -> int:
    from .eval.chaos import format_chaos_report, run_chaos
    result = run_chaos(seed=args.seed, epochs=args.epochs,
                       shards=args.shards, workload=args.workload,
                       users=args.users, txns=args.txns,
                       churn=args.churn, executor=args.executor,
                       hang_rate=args.hang_rate,
                       kill_rate=args.kill_rate,
                       slow_rate=args.slow_rate,
                       lane_deadline_s=args.lane_deadline,
                       speculate=args.speculate)
    print(format_chaos_report(result))
    return 0 if (result.churn or result.consistent) else 1


def cmd_metrics(args) -> int:
    from .eval.telemetry import format_telemetry, run_instrumented
    run = run_instrumented(
        workload=args.workload, epochs=args.epochs,
        txns_per_epoch=args.txns, n_users=args.users,
        n_shards=args.shards, executor=args.executor or "serial",
        seed=args.seed, trace=args.trace and not (args.json or args.prom))
    if args.json:
        print(run.registry.to_json(
            deterministic_only=args.deterministic_only))
    elif args.prom:
        sys.stdout.write(run.registry.to_prometheus())
    else:
        print(format_telemetry(run))
    return 0


def _run_durable_cmd(args, require_existing: bool) -> int:
    import json as json_mod

    from .eval.chaos import run_durable
    result = run_durable(
        args.workload, data_dir=args.data_dir, seed=args.seed,
        epochs=args.epochs, shards=args.shards, users=args.users,
        txns=args.txns, fault_seed=args.fault_seed,
        executor=args.executor, fsync=args.fsync,
        snapshot_every=args.snapshot_every,
        keep_snapshots=args.keep_snapshots,
        crash_at_barrier=args.crash_at_barrier,
        crash_at_append=args.crash_at_append,
        require_existing=require_existing)
    if args.json:
        print(json_mod.dumps({
            "completed": True, "workload": result.workload,
            "fingerprint": result.fingerprint,
            "epochs_done": result.epochs_done,
            "resumed": result.resumed, "restarted": result.restarted,
            "barriers": result.barriers, "appends": result.appends,
        }))
        return 0
    how = ("resumed" if result.resumed
           else "restarted (setup was incomplete)" if result.restarted
           else "fresh")
    print(f"{result.workload!r}: {how}, {result.epochs_done} measured "
          f"epochs done, {result.appends} WAL records across "
          f"{result.barriers} barriers")
    for addr, digest in sorted(result.fingerprint.items()):
        print(f"  {addr}: {digest}")
    return 0


def cmd_run(args) -> int:
    return _run_durable_cmd(args, require_existing=False)


def cmd_resume(args) -> int:
    return _run_durable_cmd(args, require_existing=True)


def cmd_serve(args) -> int:
    import json as json_mod

    from .eval.service import format_service, iter_stream, run_service

    kwargs = dict(
        shards=args.shards, ticks=args.ticks, txns_per_tick=args.txns,
        population=args.population, seed=args.seed,
        capacity=args.capacity, per_sender=args.per_sender,
        batch_max=args.batch_max, flood_rate=args.flood_rate,
        stall_rate=args.stall_rate, fault_seed=args.fault_seed,
        executor=args.executor, data_dir=args.data_dir,
        state_backend=args.state_backend,
        drain_ticks=args.drain_ticks)
    if args.stream is not None:
        handle = (sys.stdin if args.stream == "-"
                  else open(args.stream, encoding="utf-8"))
        try:
            run = run_service(stream=iter_stream(handle), **kwargs)
        finally:
            if handle is not sys.stdin:
                handle.close()
    else:
        run = run_service(args.workload, **kwargs)
    run.net.close()
    if args.json:
        print(json_mod.dumps(run.report.to_obj(), sort_keys=True))
    else:
        print(format_service(run.report))
    return 0 if run.report.partition_ok else 1


def cmd_loadgen(args) -> int:
    from .eval.service import write_stream

    handle = (sys.stdout if args.out == "-"
              else open(args.out, "w", encoding="utf-8"))
    try:
        header = write_stream(
            handle, args.workload, population=args.population,
            ticks=args.ticks, txns_per_tick=args.txns, seed=args.seed)
    finally:
        if handle is not sys.stdout:
            handle.close()
    if args.out != "-":
        print(f"wrote {header['total_txns']} txns over "
              f"{header['ticks']} ticks to {args.out}")
    return 0


def cmd_torture(args) -> int:
    from .eval.chaos import format_torture_report, run_crash_torture
    from .workloads.generators import ALL_WORKLOADS
    names = ([cls.name for cls in ALL_WORKLOADS] if args.all
             else [args.workload])
    outcomes = []
    for name in names:
        outcomes.append(run_crash_torture(
            name, kills=args.kills, seed=args.seed, epochs=args.epochs,
            shards=args.shards, users=args.users, txns=args.txns,
            fault_seed=args.fault_seed, executor=args.executor,
            rng_seed=args.rng_seed))
    print(format_torture_report(outcomes))
    return 0 if all(o.passed for o in outcomes) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CoSplit (PLDI 2021) reproduction toolchain")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="infer effect summaries")
    p.add_argument("contract")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("signature", help="derive a sharding signature")
    p.add_argument("contract")
    p.add_argument("transitions", nargs="*")
    p.add_argument("--weak-reads", nargs="*", default=None,
                   help="fields whose stale reads you accept "
                        "(default: accept whatever is needed)")
    p.add_argument("--ownership-only", action="store_true",
                   help="disable the commutativity strategy")
    p.set_defaults(func=cmd_signature)

    p = sub.add_parser("solve", help="good-enough signature report")
    p.add_argument("contract")
    p.set_defaults(func=cmd_solve)

    p = sub.add_parser("diagnose", help="explain unshardable transitions")
    p.add_argument("contract")
    p.set_defaults(func=cmd_diagnose)

    p = sub.add_parser("repair", help="compare-and-swap repair")
    p.add_argument("contract")
    p.add_argument("transition", nargs="?")
    p.set_defaults(func=cmd_repair)

    p = sub.add_parser("corpus", help="list corpus contracts")
    p.add_argument("--export", default=None, metavar="DIR",
                   help="write every corpus contract as a .scilla file")
    p.set_defaults(func=cmd_corpus)

    p = sub.add_parser("repl", help="interactive Scilla expression REPL")
    p.set_defaults(func=cmd_repl)

    p = sub.add_parser("bench", help="regenerate a paper experiment")
    p.add_argument("experiment",
                   choices=["fig1", "fig12", "fig13", "fig14", "table",
                            "overheads", "ablation", "parallel", "state",
                            "throughput", "all"])
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--ticks", type=int, default=12,
                   help="measured service ticks for 'throughput'")
    p.add_argument("--txns", type=int, default=200,
                   help="offered transactions per tick for 'throughput'")
    p.add_argument("--shard-counts", default="2,4,8",
                   help="comma-separated shard counts for 'throughput'")
    p.add_argument("--populations", default="1000,100000",
                   help="comma-separated sender populations for "
                        "'throughput'")
    p.add_argument("--workers", type=int, default=None,
                   help="lane worker count for 'parallel' (default: "
                        "min(shards, CPUs))")
    p.add_argument("--executor", choices=["thread", "process"],
                   default="thread",
                   help="lane executor for 'parallel'")
    p.add_argument("--repetitions", type=int, default=1,
                   help="timing repetitions for 'state'")
    p.add_argument("--sizes", default="1000,10000,100000",
                   help="comma-separated map sizes for 'state'")
    p.add_argument("--paged-sizes", default="10000,100000,1000000",
                   help="comma-separated map sizes for the "
                        "paged-vs-resident section of 'state'")
    p.add_argument("--no-paged", action="store_true",
                   help="skip the paged-vs-resident section of 'state'")
    p.add_argument("--soak-entries", type=int, default=0,
                   help="run the out-of-core service soak at this many "
                        "seeded entries (0 = skip)")
    p.add_argument("--output", default=None,
                   help="write the report to this file (with 'all' "
                        "or 'parallel')")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "chaos",
        help="run a workload under seeded fault injection and verify "
             "the final state matches the fault-free run")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--epochs", type=int, default=5)
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--workload", default="FT transfer",
                   help="workload name as in `repro bench fig14`")
    p.add_argument("--users", type=int, default=24)
    p.add_argument("--txns", type=int, default=40,
                   help="transactions per epoch")
    p.add_argument("--churn", action="store_true",
                   help="also drop/duplicate/reorder mempool "
                        "transactions (disables the equivalence "
                        "verdict)")
    p.add_argument("--executor", default=None,
                   help="lane executor for the faulty run (serial, "
                        "thread, process; the baseline stays serial)")
    p.add_argument("--hang-rate", type=float, default=0.0,
                   help="per-(epoch,shard) probability of a hung lane "
                        "worker (needs a parallel --executor)")
    p.add_argument("--kill-rate", type=float, default=0.0,
                   help="per-(epoch,shard) probability of a killed "
                        "lane worker")
    p.add_argument("--slow-rate", type=float, default=0.0,
                   help="per-(epoch,shard) probability of a slow (but "
                        "within-deadline) lane worker")
    p.add_argument("--lane-deadline", type=float, default=None,
                   help="per-lane deadline in seconds (default: the "
                        "cost model's microblock timeout)")
    p.add_argument("--speculate", action="store_true",
                   help="enable the speculative intra-shard scheduler "
                        "on the faulty run (baseline stays serial)")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "metrics",
        help="run an instrumented workload and print the telemetry it "
             "recorded (text, --json, or Prometheus exposition)")
    p.add_argument("--workload", default="FT transfer",
                   help="workload name as in `repro bench fig14`")
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--users", type=int, default=48)
    p.add_argument("--txns", type=int, default=60,
                   help="transactions per epoch")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--executor", default=None,
                   choices=["serial", "thread", "process"])
    fmt = p.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true",
                     help="registry snapshot as JSON")
    fmt.add_argument("--prom", action="store_true",
                     help="Prometheus text exposition format")
    p.add_argument("--deterministic-only", action="store_true",
                   help="restrict --json to the reproducible subset")
    p.add_argument("--trace", action="store_true",
                   help="also print the epoch span tree (text mode)")
    p.set_defaults(func=cmd_metrics)

    def add_durable_args(p, with_crash_hooks: bool) -> None:
        p.add_argument("--data-dir", required=True,
                       help="directory for WAL segments and snapshots")
        p.add_argument("--workload", default="FT transfer")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--epochs", type=int, default=3)
        p.add_argument("--shards", type=int, default=4)
        p.add_argument("--users", type=int, default=12)
        p.add_argument("--txns", type=int, default=10,
                       help="transactions per epoch")
        p.add_argument("--fault-seed", type=int, default=None,
                       help="also inject a seeded FaultPlan")
        p.add_argument("--executor", default=None,
                       choices=["serial", "thread", "process"])
        p.add_argument("--fsync", default="commit",
                       choices=["always", "commit", "never"])
        p.add_argument("--snapshot-every", type=int, default=4,
                       help="epoch commits between durable snapshots")
        p.add_argument("--keep-snapshots", type=int, default=3)
        p.add_argument("--json", action="store_true",
                       help="machine-readable result on stdout")
        if with_crash_hooks:
            p.add_argument("--crash-at-barrier", type=int, default=None,
                           help="SIGKILL self after the Nth WAL barrier "
                                "(crash testing)")
            p.add_argument("--crash-at-append", type=int, default=None,
                           help="SIGKILL self halfway through the Nth "
                                "WAL append (torn-write testing)")

    p = sub.add_parser(
        "run",
        help="run a workload with WAL-backed durability (resumes "
             "automatically if the data dir already holds a log)")
    add_durable_args(p, with_crash_hooks=True)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "resume",
        help="continue a durable run from its data dir (fails if "
             "there is nothing to resume)")
    add_durable_args(p, with_crash_hooks=True)
    p.set_defaults(func=cmd_resume)

    p = sub.add_parser(
        "torture",
        help="crash-torture proof: SIGKILL a durable run at random "
             "WAL barriers, resume, and verify the final state "
             "matches an uninterrupted run")
    p.add_argument("--workload", default="FT transfer")
    p.add_argument("--all", action="store_true",
                   help="torture all eight Fig. 14 workloads")
    p.add_argument("--kills", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--users", type=int, default=12)
    p.add_argument("--txns", type=int, default=10)
    p.add_argument("--fault-seed", type=int, default=None)
    p.add_argument("--executor", default=None,
                   choices=["serial", "thread", "process"])
    p.add_argument("--rng-seed", type=int, default=0,
                   help="seed for choosing the kill points")
    p.set_defaults(func=cmd_torture)

    p = sub.add_parser(
        "serve",
        help="run a bounded service-mode session: a workload (or a "
             "loadgen stream) is submitted through the admission "
             "mempool and drained by the continuous service loop")
    p.add_argument("--workload", default="FT transfer @scale")
    p.add_argument("--stream", default=None, metavar="FILE",
                   help="serve a `repro loadgen` stream instead of "
                        "generating load ('-' reads stdin)")
    p.add_argument("--population", type=int, default=10_000,
                   help="sender address-space size")
    p.add_argument("--ticks", type=int, default=24)
    p.add_argument("--txns", type=int, default=200,
                   help="offered transactions per tick")
    p.add_argument("--shards", type=int, default=4)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--capacity", type=int, default=None,
                   help="mempool capacity (default: 8x --txns)")
    p.add_argument("--per-sender", type=int, default=None,
                   help="per-sender queue cap")
    p.add_argument("--batch-max", type=int, default=None,
                   help="epoch batch ceiling (default: --txns)")
    p.add_argument("--flood-rate", type=float, default=0.0,
                   help="per-tick probability of a FLOOD burst "
                        "(2-4x offered load)")
    p.add_argument("--stall-rate", type=float, default=0.0,
                   help="per-tick probability of a stalled consumer")
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument("--drain-ticks", type=int, default=64,
                   help="extra ticks granted to finish admitted work")
    p.add_argument("--executor", default=None,
                   choices=["serial", "thread", "process"])
    p.add_argument("--data-dir", default=None,
                   help="attach WAL-backed durability")
    p.add_argument("--state-backend", default=None,
                   choices=["none", "memory", "sqlite"],
                   help="out-of-core page store for contract map "
                        "state (default: REPRO_STATE_BACKEND env, "
                        "else in-memory dicts)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report on stdout")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="record a workload as a JSONL tick stream for "
             "`repro serve --stream`")
    p.add_argument("--out", default="-", metavar="FILE",
                   help="output path ('-' writes stdout)")
    p.add_argument("--workload", default="FT transfer @scale")
    p.add_argument("--population", type=int, default=10_000)
    p.add_argument("--ticks", type=int, default=24)
    p.add_argument("--txns", type=int, default=200,
                   help="transactions per tick")
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_loadgen)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
