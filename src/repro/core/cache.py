"""Content-addressed cache of deployment-pipeline results.

Every contract-deploying transaction makes *every* miner run the full
parse → typecheck → analyse pipeline (Sec. 4.3), and the miner-side
signature validation repeats it once more.  But the pipeline is a pure
function of the source text, so its result can be cached under the
SHA-256 of the source — redeployments of a popular contract (the
common case on a real chain: token clones, proxy factories) and every
``validate_signature`` call then cost one hash instead of a re-parse
and a re-analysis.

Keys also fold in :data:`ANALYSIS_VERSION` and whether the analysis
phase ran, so bumping the version after any semantic change to the
analysis atomically invalidates every stale entry — a cached summary
can never outlive the code that produced it (see
:meth:`SummaryCache.set_version` and ``tests/test_summary_cache.py``).

The cache is thread-safe and deduplicating: concurrent requests for
the same source block on one computation and all receive the *same*
:class:`~repro.core.pipeline.DeploymentResult` object.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..obs.metrics import NS_BUCKETS, NULL_REGISTRY

# Bump on any change to parsing, type checking, or the sharding
# analysis that can alter a DeploymentResult.  Folded into every cache
# key, so old entries become unreachable immediately.
ANALYSIS_VERSION = "cosplit-analysis-1"


@dataclass
class CacheStats:
    """Hit/miss counters; ``snapshot()`` gives an immutable copy."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions)


class SummaryCache:
    """LRU cache of :class:`DeploymentResult`, keyed by source hash.

    ``maxsize`` bounds the number of retained results (LRU eviction);
    ``None`` disables the bound.  All operations are protected by one
    reentrant lock, and the pipeline itself runs *under* the lock so a
    burst of identical requests performs exactly one analysis.

    ``metrics`` optionally attaches a
    :class:`~repro.obs.metrics.MetricsRegistry`: hits, misses and
    evictions then also land in ``pipeline.cache.*`` counters, and
    each actual pipeline run contributes its per-phase wall time to
    the ``pipeline.{parse,typecheck,analysis}_ns`` histograms.  With
    no registry the instrument handles are shared no-ops.
    """

    def __init__(self, maxsize: int | None = 512,
                 version: str = ANALYSIS_VERSION, metrics=None):
        self.maxsize = maxsize
        self.version = version
        self.stats = CacheStats()
        self._lock = threading.RLock()
        # key -> (version, DeploymentResult); ordered for LRU.
        self._entries: OrderedDict[str, tuple[str, object]] = OrderedDict()
        m = NULL_REGISTRY if metrics is None else metrics
        self._m_hits = m.counter("pipeline.cache.hits")
        self._m_misses = m.counter("pipeline.cache.misses")
        self._m_evictions = m.counter("pipeline.cache.evictions",
                                      deterministic=False)
        self._m_runs = m.counter("pipeline.runs")
        # Durations are wall-clock, hence never deterministic.
        self._m_parse_ns = m.histogram("pipeline.parse_ns", NS_BUCKETS,
                                       deterministic=False)
        self._m_typecheck_ns = m.histogram("pipeline.typecheck_ns",
                                           NS_BUCKETS, deterministic=False)
        self._m_analysis_ns = m.histogram("pipeline.analysis_ns",
                                          NS_BUCKETS, deterministic=False)

    # -- keys -----------------------------------------------------------------

    def key(self, source: str, with_analysis: bool = True) -> str:
        """The content address: version ⊕ analysis flag ⊕ source hash.

        Any single-character change to the source yields a different
        SHA-256, hence a different key — stale summaries cannot be
        returned for mutated code.
        """
        digest = hashlib.sha256()
        digest.update(self.version.encode())
        digest.update(b"\x00")
        digest.update(b"1" if with_analysis else b"0")
        digest.update(b"\x00")
        digest.update(source.encode())
        return digest.hexdigest()

    # -- lookup / insert ------------------------------------------------------

    def lookup(self, source: str, with_analysis: bool = True):
        """Return the cached result or ``None`` (counts hit/miss)."""
        key = self.key(source, with_analysis)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry[0] != self.version:
                self.stats.misses += 1
                self._m_misses.inc()
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self._m_hits.inc()
            return entry[1]

    def put(self, source: str, result, with_analysis: bool = True) -> None:
        key = self.key(source, with_analysis)
        with self._lock:
            self._entries[key] = (self.version, result)
            self._entries.move_to_end(key)
            self._evict()

    def get_or_compute(self, source: str, name: str = "<deploy>",
                       with_analysis: bool = True):
        """The cached result, computing (and caching) it on a miss.

        Runs the pipeline while holding the lock: concurrent callers
        with the same source get the one shared result and the
        analysis happens exactly once (``stats.misses`` counts actual
        pipeline runs).
        """
        from .pipeline import run_pipeline

        key = self.key(source, with_analysis)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] == self.version:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                self._m_hits.inc()
                return entry[1]
            self.stats.misses += 1
            self._m_misses.inc()
            result = run_pipeline(source, name, with_analysis)
            self._observe_run(result)
            self._entries[key] = (self.version, result)
            self._evict()
            return result

    def _observe_run(self, result) -> None:
        """Record one actual pipeline run's per-phase wall times."""
        self._m_runs.inc()
        timings = result.timings
        self._m_parse_ns.observe(timings.parse * 1e9)
        self._m_typecheck_ns.observe(timings.typecheck * 1e9)
        self._m_analysis_ns.observe(timings.analysis * 1e9)

    # -- maintenance ----------------------------------------------------------

    def set_version(self, version: str) -> int:
        """Switch to a new analysis version, flushing stale entries.

        Returns the number of entries purged.  Entries written under
        the old version would be unreachable anyway (the version is in
        the key); purging them eagerly releases the memory.
        """
        with self._lock:
            if version == self.version:
                return 0
            self.version = version
            stale = [k for k, (v, _) in self._entries.items()
                     if v != version]
            for k in stale:
                del self._entries[k]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def _evict(self) -> None:
        if self.maxsize is None:
            return
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._m_evictions.inc()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# The process-wide default cache, shared by ``run_pipeline_cached``,
# ``validate_signature`` and ``Network.deploy``.  Each worker process
# of the parallel executors gets its own copy (module state is
# per-process), which is exactly the right scope: a miner caches for
# itself.
GLOBAL_CACHE = SummaryCache()
