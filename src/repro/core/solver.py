"""Sharding query solver: good-enough signatures (Defs. 5.1–5.3).

The developer-facing half of CoSplit (Fig. 11): given the per-
transition summaries of a contract, explore selections of transitions,
derive a signature for each, and classify signatures as *good enough*
(GE) — allowing some contract state in which all selected transitions
can run in parallel in different shards — and *maximal GE* (not a
proper subset of another GE selection).

Computing all maximal signatures naively takes Σ (n choose k)
derivations; the paper notes this is impractical at mining time but
fine offline.  We exploit two structural facts to make even the
18-transition corpus contracts fast:

* a transition's constraints depend on the selection only through the
  sets of fields the selection writes and IntMerges, so per-transition
  hog sets can be *memoised per context*;
* hog sets grow monotonically with the selection, so good-enough-ness
  (for k ≥ 2) is downward closed and the maximal GE sets can be found
  top-down, without visiting every subset.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dc_field

from .constraints import hogged_fields, is_bot
from .effects import Summary
from .signature import (
    ShardingSignature, WEAK_READS_AUTO, _transition_constraints,
    selection_context, signature_for,
)


@dataclass
class GEReport:
    """Good-enough statistics for one contract (one Fig. 13 data point)."""

    contract: str
    n_transitions: int
    largest_ge_size: int
    largest_ge: tuple[str, ...]
    maximal_ge: list[tuple[str, ...]] = dc_field(default_factory=list)

    @property
    def n_maximal(self) -> int:
        return len(self.maximal_ge)


def is_good_enough(sig: ShardingSignature) -> bool:
    """Def. 5.2: k = 1 — the transition hogs no field; k > 1 — every
    field is hogged by at most one selected transition.  Transitions
    with an unsatisfiable (⊥) constraint set are never GE."""
    if any(is_bot(cs) for cs in sig.constraints.values()):
        return False
    hogs_per_transition = {t: sig.hogs(t) for t in sig.selected}
    if len(sig.selected) == 1:
        (only,) = sig.selected
        return not hogs_per_transition[only]
    hog_count: dict[str, int] = {}
    for hogs in hogs_per_transition.values():
        for f in hogs:
            hog_count[f] = hog_count.get(f, 0) + 1
    return all(count <= 1 for count in hog_count.values())


class ShardingSolver:
    """Enumerates and ranks sharding signatures for one contract."""

    def __init__(self, contract_name: str, summaries: dict[str, Summary],
                 weak_reads=WEAK_READS_AUTO):
        self.contract_name = contract_name
        self.summaries = summaries
        self.weak_reads = weak_reads
        self._cache: dict[tuple[str, ...], ShardingSignature] = {}
        # (transition, written∩touched, intmerge∩touched) → hog fields.
        self._hog_cache: dict[tuple, frozenset[str]] = {}
        self._bot_cache: dict[str, bool] = {}
        self._touched: dict[str, frozenset[str]] = {
            t: frozenset({e.pf.field for e in s.reads()}
                         | s.written_fields())
            for t, s in summaries.items()
        }

    # -- exact signatures (cached) -------------------------------------------

    def signature(self, selected: tuple[str, ...]) -> ShardingSignature:
        key = tuple(sorted(selected))
        if key not in self._cache:
            sig = signature_for(self.contract_name, self.summaries, key,
                                self.weak_reads)
            assert sig is not None
            self._cache[key] = sig
        return self._cache[key]

    # -- fast per-context hog computation ----------------------------------------

    def _is_bot(self, transition: str) -> bool:
        if transition not in self._bot_cache:
            sig = self.signature((transition,))
            self._bot_cache[transition] = not sig.is_parallelisable(
                transition)
        return self._bot_cache[transition]

    def _hogs(self, transition: str, written: frozenset[str],
              intmerge: frozenset[str]) -> frozenset[str]:
        touched = self._touched[transition]
        key = (transition, written & touched, intmerge & touched)
        if key not in self._hog_cache:
            cs, _ = _transition_constraints(
                self.summaries[transition], key[1], key[2])
            self._hog_cache[key] = frozenset(hogged_fields(cs))
        return self._hog_cache[key]

    def _ge_fast(self, selection: frozenset[str]) -> bool:
        """Def. 5.2 via memoised per-context hogs (no full derivation)."""
        selected = tuple(sorted(selection))
        written, intmerge, _joins = selection_context(
            self.summaries, selected,
            allow_commutativity=self.weak_reads == WEAK_READS_AUTO
            or bool(self.weak_reads))
        hog_count: dict[str, int] = {}
        for t in selected:
            hogs = self._hogs(t, written, intmerge)
            if len(selected) == 1 and hogs:
                return False
            for f in hogs:
                hog_count[f] = hog_count.get(f, 0) + 1
        return all(count <= 1 for count in hog_count.values())

    # -- public queries --------------------------------------------------------------

    def shardable_transitions(self) -> list[str]:
        """Transitions whose singleton signature is satisfiable."""
        return [t for t in self.summaries if not self._is_bot(t)]

    def ge_selections(self, max_n: int = 14) -> list[tuple[str, ...]]:
        """All good-enough selections (exhaustive; small contracts)."""
        candidates = sorted(self.shardable_transitions())
        if len(candidates) > max_n:
            raise ValueError(
                f"{len(candidates)} candidates; exhaustive enumeration "
                f"capped at {max_n} — use maximal_ge_selections()")
        out: list[tuple[str, ...]] = []
        for k in range(1, len(candidates) + 1):
            for combo in itertools.combinations(candidates, k):
                if self._ge_fast(frozenset(combo)):
                    out.append(combo)
        return out

    def maximal_ge_selections(self) -> list[tuple[str, ...]]:
        """All maximal GE selections, found top-down.

        Good-enough-ness is downward closed for k ≥ 2 (hogs grow
        monotonically with the selection), so starting from the full
        candidate set and removing one transition at a time visits
        only the frontier above the maximal sets.
        """
        candidates = frozenset(self.shardable_transitions())
        if not candidates:
            return []
        maximal: list[frozenset[str]] = []
        visited: set[frozenset[str]] = set()
        stack: list[frozenset[str]] = [candidates]
        while stack:
            selection = stack.pop()
            if selection in visited or not selection:
                continue
            visited.add(selection)
            if any(selection < m for m in maximal) or \
                    any(selection == m for m in maximal):
                continue  # already dominated
            if self._ge_fast(selection):
                maximal = [m for m in maximal if not (m < selection)]
                if not any(selection <= m for m in maximal):
                    maximal.append(selection)
                continue
            if len(selection) == 1:
                continue
            for t in selection:
                smaller = selection - {t}
                if smaller not in visited:
                    stack.append(smaller)
        return sorted((tuple(sorted(m)) for m in maximal),
                      key=lambda m: (len(m), m))

    def report(self) -> GEReport:
        """Largest-GE and maximal-GE statistics (Fig. 13a / 13b)."""
        maximal = self.maximal_ge_selections()
        largest: tuple[str, ...] = max(maximal, key=len) if maximal else ()
        return GEReport(
            contract=self.contract_name,
            n_transitions=len(self.summaries),
            largest_ge_size=len(largest),
            largest_ge=largest,
            maximal_ge=maximal,
        )
