"""Parallel contract analysis and shared executor pools.

The deployment pipeline is embarrassingly parallel across contracts —
each ``run_pipeline`` call is a pure function of one source text — so
a miner catching up on a block of deployments (or this repo's own
benchmarks re-analysing the corpus) can fan the work out over a
process pool.  :func:`analyze_corpus` does exactly that, with a
content-addressed :class:`~repro.core.cache.SummaryCache` in front so
only cache *misses* are shipped to the pool.

This module also owns the lazily-created, process-wide executor pools
that the sharded network simulator reuses for its parallel shard
lanes (:mod:`repro.chain.lanes`): pools are expensive to spin up, so
every Network instance in a process shares them.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field as dc_field

from ..obs.metrics import NS_BUCKETS, NULL_REGISTRY
from .cache import CacheStats, GLOBAL_CACHE, SummaryCache
from .pipeline import DeploymentResult

EXECUTORS = ("serial", "thread", "process")


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` env override, else CPU count."""
    env = os.environ.get("REPRO_WORKERS", "")
    if env.isdigit() and int(env) > 0:
        return int(env)
    return os.cpu_count() or 1


# --------------------------------------------------------------------------
# Shared pools (reused across Network instances and corpus analyses).
# --------------------------------------------------------------------------

_pool_lock = threading.Lock()
_process_pool: ProcessPoolExecutor | None = None
_process_pool_workers = 0
_thread_pool: ThreadPoolExecutor | None = None


def shared_process_pool(workers: int | None = None) -> ProcessPoolExecutor:
    """The process pool, created lazily and grown on demand."""
    global _process_pool, _process_pool_workers
    wanted = workers or default_workers()
    with _pool_lock:
        if _process_pool is None or _process_pool_workers < wanted:
            if _process_pool is not None:
                _process_pool.shutdown(wait=False, cancel_futures=True)
            _process_pool = ProcessPoolExecutor(max_workers=wanted)
            _process_pool_workers = wanted
        return _process_pool


def shared_thread_pool(workers: int | None = None) -> ThreadPoolExecutor:
    global _thread_pool
    with _pool_lock:
        if _thread_pool is None:
            _thread_pool = ThreadPoolExecutor(
                max_workers=workers or max(4, default_workers()),
                thread_name_prefix="repro-lane")
        return _thread_pool


def reset_process_pool() -> None:
    """Discard a (possibly broken) process pool; next use recreates it."""
    global _process_pool, _process_pool_workers
    with _pool_lock:
        if _process_pool is not None:
            _process_pool.shutdown(wait=False, cancel_futures=True)
        _process_pool = None
        _process_pool_workers = 0


def kill_process_pool() -> None:
    """Forcibly reap the process pool, SIGKILLing its workers.

    ``reset_process_pool`` asks workers to exit, which a *hung* worker
    never does — its process would linger (and on a small machine keep
    a core busy) long after the pool object is discarded.  The lane
    supervisor calls this instead when a worker blows its deadline:
    kill the worker processes outright, then let the next
    :func:`shared_process_pool` call build a fresh pool.
    """
    global _process_pool, _process_pool_workers
    with _pool_lock:
        pool = _process_pool
        _process_pool = None
        _process_pool_workers = 0
    if pool is None:
        return
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.kill()
        except (OSError, ValueError):  # already gone
            pass
    # No cancel_futures: the pool's own broken-pool reaper sets an
    # exception on every pending future once the kills land, and
    # cancelling them first would make that raise in its thread.
    pool.shutdown(wait=False)


# --------------------------------------------------------------------------
# Resident lane slots (repro.chain.resident).
# --------------------------------------------------------------------------

class ResidentSlotPool:
    """Per-lane single-worker executor slots for resident shard workers.

    Why not one big pool: a resident replica lives in whichever worker
    installed it, so a lane's every message (installs, epoch tasks,
    sync pushes) must land on *that* worker.  A slot is a lazily
    created one-worker executor; ``lane % n_slots`` pins each lane to
    a slot, giving both worker affinity and per-lane FIFO ordering — a
    sync push enqueued before the next epoch's task is applied before
    it, which is what makes fire-and-forget syncs safe.

    ``kill_slot`` / ``reset_slot`` are the watchdog hooks: they discard
    one slot (SIGKILLing a hung slot's process) without touching its
    siblings, so reaping a wedged lane no longer costs every worker's
    warm state.
    """

    def __init__(self, kind: str, n_slots: int):
        self.kind = kind            # "thread" | "process"
        self._lock = threading.Lock()
        self._slots: list = [None] * max(1, n_slots)

    @property
    def n_slots(self) -> int:
        return len(self._slots)

    def slot_for(self, lane: int) -> int:
        return lane % len(self._slots)

    def grow(self, n_slots: int) -> None:
        """Widen the slot table (never shrinks).  Lanes whose mapping
        shifts simply look stale to their new worker and reinstall."""
        with self._lock:
            if n_slots > len(self._slots):
                self._slots.extend(
                    [None] * (n_slots - len(self._slots)))

    def _slot(self, index: int):
        with self._lock:
            executor = self._slots[index]
            if executor is None:
                if self.kind == "process":
                    executor = ProcessPoolExecutor(max_workers=1)
                else:
                    executor = ThreadPoolExecutor(
                        max_workers=1,
                        thread_name_prefix=f"repro-resident-{index}")
                self._slots[index] = executor
            return executor

    def submit(self, lane: int, fn, *args):
        return self._slot(self.slot_for(lane)).submit(fn, *args)

    def kill_slot(self, lane: int) -> None:
        """Forcibly reap one slot, SIGKILLing its worker process (a
        hung worker never honours a polite shutdown)."""
        index = self.slot_for(lane)
        with self._lock:
            executor = self._slots[index]
            self._slots[index] = None
        if executor is None:
            return
        for proc in list(getattr(executor, "_processes", {}).values()):
            try:
                proc.kill()
            except (OSError, ValueError):  # already gone
                pass
        executor.shutdown(wait=False)

    def reset_slot(self, lane: int) -> None:
        """Discard one (possibly broken) slot; next use recreates it."""
        index = self.slot_for(lane)
        with self._lock:
            executor = self._slots[index]
            self._slots[index] = None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        with self._lock:
            slots, self._slots = self._slots, [None] * len(self._slots)
        for executor in slots:
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)


_resident_pools: dict[str, ResidentSlotPool] = {}


def get_resident_pool(kind: str, slots: int | None = None
                      ) -> ResidentSlotPool:
    """The process-wide resident slot pool for ``kind`` ("thread" or
    "process"), created lazily and grown in place when a wider network
    asks for more slots."""
    wanted = slots or (default_workers() if kind == "process"
                       else max(4, default_workers()))
    with _pool_lock:
        pool = _resident_pools.get(kind)
        if pool is None:
            pool = ResidentSlotPool(kind, wanted)
            _resident_pools[kind] = pool
    if wanted > pool.n_slots:
        pool.grow(wanted)
    return pool


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter exit
    global _process_pool, _thread_pool
    if _process_pool is not None:
        _process_pool.shutdown(wait=False, cancel_futures=True)
        _process_pool = None
    if _thread_pool is not None:
        _thread_pool.shutdown(wait=False, cancel_futures=True)
        _thread_pool = None
    for pool in list(_resident_pools.values()):
        pool.shutdown()
    _resident_pools.clear()


# --------------------------------------------------------------------------
# Parallel corpus analysis.
# --------------------------------------------------------------------------

@dataclass
class CorpusAnalysis:
    """The result of one :func:`analyze_corpus` run."""

    results: dict[str, DeploymentResult] = dc_field(default_factory=dict)
    wall_s: float = 0.0
    workers: int = 1
    executor: str = "serial"
    analyzed: int = 0          # pipeline runs actually performed
    cache_stats: CacheStats = dc_field(default_factory=CacheStats)
    fell_back: bool = False    # pool failed; completed serially
    fallback_error: str | None = None  # what the pool actually raised

    @property
    def n_contracts(self) -> int:
        return len(self.results)


def _analyze_one(item: tuple[str, str, bool]) -> tuple[str, DeploymentResult]:
    """Worker entry point: one pipeline run, via the worker's cache.

    Each worker process has its own ``GLOBAL_CACHE``, so duplicated
    sources inside one batch (token clones) are analysed once per
    worker at most.
    """
    name, source, with_analysis = item
    from .pipeline import run_pipeline_cached
    return name, run_pipeline_cached(source, name, with_analysis)


def analyze_corpus(sources: dict[str, str],
                   workers: int | None = None,
                   executor: str = "process",
                   cache: SummaryCache | None = None,
                   with_analysis: bool = True,
                   metrics=None) -> CorpusAnalysis:
    """Run the deployment pipeline over many contracts concurrently.

    ``sources`` maps contract names to source text.  The front cache
    (default: the process-wide one) is consulted first; only misses
    are dispatched, deduplicated by source text.  All results are
    installed into the cache, so a subsequent call is pure cache hits.

    ``executor`` is ``"process"`` (default; true CPU parallelism),
    ``"thread"`` (useful when results must share object identity with
    the caller), or ``"serial"``.  Pool failures (e.g. an unpicklable
    result) degrade to a serial run rather than raising.

    ``metrics`` optionally records ``corpus.*`` telemetry into a
    :class:`~repro.obs.metrics.MetricsRegistry`: contracts requested,
    front-cache hits, actual pipeline runs, pool fallbacks, and the
    sweep's wall time.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; "
                         f"expected one of {EXECUTORS}")
    cache = GLOBAL_CACHE if cache is None else cache
    workers = workers or default_workers()
    m = NULL_REGISTRY if metrics is None else metrics
    m_requested = m.counter("corpus.requested")
    m_front_hits = m.counter("corpus.front_cache_hits")
    m_runs = m.counter("corpus.pipeline_runs")
    m_fallbacks = m.counter("corpus.pool_fallbacks", deterministic=False)
    m_wall = m.histogram("corpus.wall_ns", NS_BUCKETS,
                         deterministic=False)
    t0 = time.perf_counter()
    out = CorpusAnalysis(workers=workers, executor=executor)

    # Front-cache pass: collect hits, dedupe misses by source text.
    misses: dict[str, list[str]] = {}   # source -> names wanting it
    for name, source in sources.items():
        hit = cache.lookup(source, with_analysis)
        if hit is not None:
            out.results[name] = hit
        else:
            misses.setdefault(source, []).append(name)

    def _serially(items):
        from .pipeline import run_pipeline
        return [(name, run_pipeline(source, name, wa))
                for name, source, wa in items]

    if executor == "serial" or workers <= 1 or len(misses) <= 1:
        computed = _serially([(names[0], source, with_analysis)
                              for source, names in misses.items()])
    else:
        items = [(names[0], source, with_analysis)
                 for source, names in misses.items()]
        try:
            pool = (shared_thread_pool(workers) if executor == "thread"
                    else shared_process_pool(workers))
            computed = list(pool.map(_analyze_one, items))
        except Exception as exc:
            if executor == "process":
                reset_process_pool()
            out.fell_back = True
            out.fallback_error = f"{type(exc).__name__}: {exc!r}"
            computed = _serially(items)

    by_first_name = dict(computed)
    for source, names in misses.items():
        result = by_first_name[names[0]]
        cache.put(source, result, with_analysis)
        for name in names:
            out.results[name] = result
    out.analyzed = len(misses)
    out.wall_s = time.perf_counter() - t0
    out.cache_stats = cache.stats.snapshot()
    m_requested.inc(len(sources))
    m_front_hits.inc(len(sources) - sum(len(n) for n in misses.values()))
    m_runs.inc(len(misses))
    if out.fell_back:
        m_fallbacks.inc()
    m_wall.observe(out.wall_s * 1e9)
    return out
