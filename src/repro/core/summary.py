"""Transition-summary inference (Sec. 3.2–3.4 of the paper).

A compositional abstract interpretation over Scilla transitions that
computes, per transition, a set of effects (:mod:`repro.core.effects`)
annotated with contribution types (:mod:`repro.core.domain`).

The implementation follows the rules of Fig. 7: reads introduce
``Field`` contribution sources, builtins record operations, function
application substitutes formals, and ``match`` joins branch
contributions via ``MatchC``/``AdaptC`` — with the option-peel special
case that keeps the canonical ERC20 transfer exactly summarisable.
Procedure calls are inlined with argument aliasing, giving the
inter-procedural analysis the paper describes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dc_field

from ..scilla import ast
from ..scilla.ast import (
    Accept, App, Atom, Bind, BinderPat, Builtin, CallProc, Constr, ConstructorPat, Event, Expr, Fun, Let,
    LibTypeDef, LitAtom, Literal, Load, MapDelete, MapGet,
    MapGetExists, MapUpdate, MatchExpr, MatchStmt, MessageExpr, Module,
    ReadBlockchain, Send, Stmt, Store, TApp, TFun, Throw, Var,
    WildcardPat,
)
from ..scilla.interpreter import NATIVE_ARITIES, _prelude
from ..scilla.types import MapType, ScillaType
from .domain import (
    BOT, CT, ConstKey, ContribType, EFun, Key, ParamKey, PseudoField, TOP, TopContrib, const_ct,
    ct_add_op, ct_apply, ct_join_all, ct_mark_cond, ct_plus, ct_sum,
    field_ct, formal_ct,
)
from .effects import (
    AcceptFunds, Condition, MsgInfo, RECIP_CONST, RECIP_PARAM,
    RECIP_SENDER, RECIP_UNKNOWN, Read, SendMsg, Summary, TopEffect,
    Write,
)

IMPLICIT_PARAMS = ("_sender", "_origin", "_amount")


@dataclass(frozen=True)
class AbsVal:
    """Abstract value: contribution type plus auxiliary structure.

    ``key``  — when the value can serve as a statically-describable map
    key (it is a transition parameter or constant), its symbolic form.
    ``msgs`` — message-shape info when the value is (or contains) known
    messages; ``None`` when it provably contains no messages; the empty
    tuple when it may contain messages of unknown shape.
    """

    ct: ContribType
    key: Key | None = None
    msgs: tuple[MsgInfo, ...] | None = None
    may_have_msgs: bool = False


def _merge_msgs(values: list[AbsVal]) -> tuple[tuple[MsgInfo, ...] | None, bool]:
    msgs: list[MsgInfo] = []
    may = False
    for v in values:
        if v.msgs:
            msgs.extend(v.msgs)
        may = may or v.may_have_msgs
    return (tuple(msgs) if msgs else None), may or bool(msgs)


class SummaryAnalyzer:
    """Infers effect summaries for every transition of a module."""

    def __init__(self, module: Module):
        self.module = module
        self.contract = module.contract
        self.field_depths = {
            f.name: _map_depth(f.typ) for f in self.contract.fields
        }
        self._formal_counter = itertools.count()
        self.lib_env = self._analyze_libraries()

    # -- library --------------------------------------------------------------

    def _fresh_formal(self, base: str) -> str:
        return f"{base}#{next(self._formal_counter)}"

    def _analyze_libraries(self) -> dict[str, AbsVal]:
        env: dict[str, AbsVal] = {}
        for name in NATIVE_ARITIES:
            # Natives (folds etc.) behave as unknown functions: applying
            # them scales arguments by ω, inexactly — sound and simple.
            env[name] = AbsVal(BOT)
        for lib in (_prelude().library, self.module.library):
            if lib is None:
                continue
            for entry in lib.entries:
                if isinstance(entry, LibTypeDef):
                    continue
                env[entry.name] = self._expr(entry.expr, env, summary=None)
        return env

    # -- per-transition entry point ----------------------------------------------

    def analyze_transition(self, name: str) -> Summary:
        component = self.contract.component(name)
        summary = Summary(name, tuple(p.name for p in component.params))
        env = dict(self.lib_env)
        for p in self.contract.params:
            env[p.name] = AbsVal(const_ct(f"cparam:{p.name}"),
                                 key=ConstKey(f"cparam:{p.name}"))
        env["_this_address"] = AbsVal(const_ct("_this_address"),
                                      key=ConstKey("_this_address"))
        env["_sender"] = AbsVal(formal_ct("_sender"), key=ParamKey("_sender"))
        env["_origin"] = AbsVal(formal_ct("_origin"), key=ParamKey("_origin"))
        env["_amount"] = AbsVal(formal_ct("_amount"))
        for p in component.params:
            env[p.name] = AbsVal(formal_ct(p.name), key=ParamKey(p.name))
        self._stmts(component.body, env, summary, call_stack=(name,))
        summary.dedupe_conditions()
        return summary

    def analyze_all(self) -> dict[str, Summary]:
        return {
            t.name: self.analyze_transition(t.name)
            for t in self.contract.transitions
        }

    # -- atoms ------------------------------------------------------------------

    def _atom(self, atom: Atom, env: dict[str, AbsVal]) -> AbsVal:
        if isinstance(atom, LitAtom):
            return AbsVal(const_ct(_const_repr(atom)),
                          key=ConstKey(_const_repr(atom)))
        value = env.get(atom.name)
        if value is None:
            return AbsVal(TOP)
        return value

    def _key_of(self, atom: Atom, env: dict[str, AbsVal]) -> Key | None:
        return self._atom(atom, env).key

    # -- expressions (pure) ---------------------------------------------------------

    def _expr(self, expr: Expr, env: dict[str, AbsVal],
              summary: Summary | None) -> AbsVal:
        if isinstance(expr, Literal):
            r = _const_repr(expr)
            return AbsVal(const_ct(r), key=ConstKey(r))
        if isinstance(expr, Var):
            return env.get(expr.name, AbsVal(TOP))
        if isinstance(expr, MessageExpr):
            vals = [self._atom(a, env) for _, a in expr.fields]
            ct = ct_sum(v.ct for v in vals)
            info = self._msg_info(expr, env)
            return AbsVal(ct, msgs=(info,), may_have_msgs=True)
        if isinstance(expr, Constr):
            vals = [self._atom(a, env) for a in expr.args]
            msgs, may = _merge_msgs(vals)
            return AbsVal(ct_sum(v.ct for v in vals), msgs=msgs,
                          may_have_msgs=may)
        if isinstance(expr, Builtin):
            vals = [self._atom(a, env) for a in expr.args]
            ct = ct_add_op(ct_sum(v.ct for v in vals), expr.name)
            return AbsVal(ct)
        if isinstance(expr, Let):
            bound = self._expr(expr.bound, env, summary)
            inner = dict(env)
            inner[expr.name] = bound
            return self._expr(expr.body, inner, summary)
        if isinstance(expr, Fun):
            formal = self._fresh_formal(expr.param)
            inner = dict(env)
            inner[expr.param] = AbsVal(formal_ct(formal))
            body = self._expr(expr.body, inner, summary)
            return AbsVal(EFun(formal, body.ct), msgs=body.msgs,
                          may_have_msgs=body.may_have_msgs)
        if isinstance(expr, App):
            func = env.get(expr.func.name, AbsVal(TOP))
            ct = func.ct
            vals = [self._atom(a, env) for a in expr.args]
            for v in vals:
                ct = ct_apply(ct, v.ct)
            msgs, may = _merge_msgs([func] + vals)
            return AbsVal(ct, msgs=msgs, may_have_msgs=may)
        if isinstance(expr, MatchExpr):
            return self._match_expr(expr, env, summary)
        if isinstance(expr, TFun):
            body = self._expr(expr.body, env, summary)
            return body
        if isinstance(expr, TApp):
            return env.get(expr.func.name, AbsVal(TOP))
        return AbsVal(TOP)

    def _match_expr(self, expr: MatchExpr, env: dict[str, AbsVal],
                    summary: Summary | None) -> AbsVal:
        scrut = env.get(expr.scrutinee.name, AbsVal(TOP))
        peel = _is_peel(expr.clauses)
        clause_vals: list[AbsVal] = []
        for pat, body in expr.clauses:
            inner = dict(env)
            for binder in ast.pattern_binders(pat):
                inner[binder] = AbsVal(scrut.ct)
            clause_vals.append(self._expr(body, inner, summary))
        joined = ct_join_all(v.ct for v in clause_vals)
        if peel:
            joined = _check_zero_consistency(
                scrut.ct, [v.ct for v in clause_vals], joined)
        elif len(expr.clauses) > 1:
            same_vars = _same_vars([v.ct for v in clause_vals])
            joined = ct_plus(joined, ct_mark_cond(scrut.ct, same_vars))
        msgs, may = _merge_msgs(clause_vals)
        return AbsVal(joined, msgs=msgs, may_have_msgs=may)

    def _msg_info(self, expr: MessageExpr, env: dict[str, AbsVal]) -> MsgInfo:
        recipient_kind = RECIP_UNKNOWN
        recipient: str | None = None
        amount_zero = True
        fields = dict(expr.fields)
        is_event = ast.MSG_EVENTNAME in fields or ast.MSG_EXCEPTION in fields
        if is_event:
            # Events/exceptions never leave the contract.
            return MsgInfo(RECIP_CONST, None, True)
        recip = fields.get(ast.MSG_RECIPIENT)
        if recip is not None:
            if isinstance(recip, LitAtom):
                recipient_kind = RECIP_CONST
                recipient = _const_repr(recip)
            elif recip.name == "_sender" or recip.name == "_origin":
                recipient_kind = RECIP_SENDER
            else:
                aval = self._atom(recip, env)
                if isinstance(aval.key, ParamKey):
                    recipient_kind = RECIP_PARAM
                    recipient = aval.key.name
                elif isinstance(aval.key, ConstKey):
                    recipient_kind = RECIP_CONST
                    recipient = aval.key.repr
        amount = fields.get(ast.MSG_AMOUNT)
        if amount is not None:
            if isinstance(amount, LitAtom):
                amount_zero = amount.value == 0
            else:
                aval = self._atom(amount, env)
                amount_zero = (isinstance(aval.key, ConstKey)
                               and aval.key.repr.endswith("|0"))
        return MsgInfo(recipient_kind, recipient, amount_zero)

    # -- statements ------------------------------------------------------------------

    def _stmts(self, stmts: tuple[Stmt, ...], env: dict[str, AbsVal],
               summary: Summary, call_stack: tuple[str, ...]) -> None:
        env = dict(env)
        for stmt in stmts:
            self._stmt(stmt, env, summary, call_stack)

    def _field_written(self, summary: Summary, pf: PseudoField) -> bool:
        """Was this *syntactic* pseudo-field written earlier (MapGet rule)?

        Distinct parameter keys (e.g. ``balances[_sender]`` vs
        ``balances[to]``) do not block summarisation — their potential
        runtime aliasing is discharged by the ``NoAliases`` constraint
        at dispatch time (Fig. 9).  A whole-field access overlaps every
        keyed access of the same field.
        """
        for w in summary.writes():
            if w.pf.field != pf.field:
                continue
            if w.pf.keys == pf.keys or not w.pf.keys or not pf.keys:
                return True
        return False

    def _resolve_keys(self, keys: tuple[Atom, ...],
                      env: dict[str, AbsVal]) -> tuple[Key, ...] | None:
        out: list[Key] = []
        for atom in keys:
            key = self._key_of(atom, env)
            if key is None:
                return None
            out.append(key)
        return tuple(out)

    def _can_summarise(self, mapname: str, keys: tuple[Atom, ...],
                       env: dict[str, AbsVal]) -> tuple[Key, ...] | None:
        """CanSummarise from the MapGet/MapUpdate rules.

        Keys must be transition parameters or constants, and the access
        must be bottom-level (reach a non-map value).
        """
        resolved = self._resolve_keys(keys, env)
        if resolved is None:
            return None
        depth = self.field_depths.get(mapname)
        if depth is None or len(keys) != depth:
            return None
        return resolved

    def _stmt(self, stmt: Stmt, env: dict[str, AbsVal], summary: Summary,
              call_stack: tuple[str, ...]) -> None:
        if isinstance(stmt, Bind):
            env[stmt.lhs] = self._expr(stmt.expr, env, summary)
            return
        if isinstance(stmt, Load):
            pf = PseudoField(stmt.field)
            if self._field_written(summary, pf):
                env[stmt.lhs] = AbsVal(TOP)
                summary.add(TopEffect(f"read-after-write of {stmt.field}"))
                return
            summary.add(Read(pf))
            env[stmt.lhs] = AbsVal(field_ct(pf))
            return
        if isinstance(stmt, Store):
            value = self._atom(stmt.rhs, env)
            summary.add(Write(PseudoField(stmt.field), value.ct))
            return
        if isinstance(stmt, (MapGet, MapGetExists)):
            keys = self._can_summarise(stmt.map, stmt.keys, env)
            pf = PseudoField(stmt.map, keys) if keys is not None else None
            if (pf is None or self._field_written(summary, pf)):
                env[stmt.lhs] = AbsVal(TOP)
                summary.add(TopEffect(f"unsummarisable read of {stmt.map}"))
                return
            summary.add(Read(pf))
            ops = frozenset({"exists"}) if isinstance(stmt, MapGetExists) \
                else frozenset()
            env[stmt.lhs] = AbsVal(field_ct(pf, ops))
            return
        if isinstance(stmt, MapUpdate):
            keys = self._can_summarise(stmt.map, stmt.keys, env)
            if keys is None:
                summary.add(TopEffect(f"unsummarisable write of {stmt.map}"))
                return
            value = self._atom(stmt.rhs, env)
            summary.add(Write(PseudoField(stmt.map, keys), value.ct))
            return
        if isinstance(stmt, MapDelete):
            keys = self._can_summarise(stmt.map, stmt.keys, env)
            if keys is None:
                summary.add(TopEffect(f"unsummarisable delete in {stmt.map}"))
                return
            summary.add(Write(PseudoField(stmt.map, keys),
                              const_ct("delete"), is_delete=True))
            return
        if isinstance(stmt, ReadBlockchain):
            env[stmt.lhs] = AbsVal(const_ct(stmt.entry),
                                   key=ConstKey(stmt.entry))
            return
        if isinstance(stmt, MatchStmt):
            self._match_stmt(stmt, env, summary, call_stack)
            return
        if isinstance(stmt, Accept):
            summary.add(AcceptFunds())
            return
        if isinstance(stmt, Send):
            value = self._atom(stmt.arg, env)
            if value.msgs:
                summary.add(SendMsg(value.msgs, value.ct))
            else:
                summary.add(SendMsg((), value.ct))  # SendMsg(⊤)
            return
        if isinstance(stmt, Event):
            return  # Events do not touch replicated state.
        if isinstance(stmt, Throw):
            return  # Aborts roll back; no sharding-relevant effect.
        if isinstance(stmt, CallProc):
            self._call_proc(stmt, env, summary, call_stack)
            return
        summary.add(TopEffect(f"unknown statement {type(stmt).__name__}"))

    def _match_stmt(self, stmt: MatchStmt, env: dict[str, AbsVal],
                    summary: Summary, call_stack: tuple[str, ...]) -> None:
        scrut = env.get(stmt.scrutinee.name, AbsVal(TOP))
        peel = _is_peel(stmt.clauses)
        if not peel and len(stmt.clauses) > 1:
            if isinstance(scrut.ct, TopContrib):
                summary.add(Condition(TOP))
            else:
                summary.add(Condition(ct_mark_cond(scrut.ct, True)))
        for pat, body in stmt.clauses:
            inner = dict(env)
            for binder in ast.pattern_binders(pat):
                inner[binder] = AbsVal(scrut.ct)
            self._stmts(body, inner, summary, call_stack)

    def _call_proc(self, stmt: CallProc, env: dict[str, AbsVal],
                   summary: Summary, call_stack: tuple[str, ...]) -> None:
        try:
            proc = self.contract.component(stmt.proc)
        except KeyError:
            summary.add(TopEffect(f"unknown procedure {stmt.proc}"))
            return
        if proc.is_transition or stmt.proc in call_stack:
            summary.add(TopEffect(f"bad procedure call {stmt.proc}"))
            return
        if len(stmt.args) != len(proc.params):
            summary.add(TopEffect(f"arity mismatch calling {stmt.proc}"))
            return
        # Inline the procedure body, aliasing its formals to the actual
        # arguments (so parameter-derived map keys stay summarisable).
        inner = dict(self.lib_env)
        for name in ("_sender", "_origin", "_amount", "_this_address"):
            if name in env:
                inner[name] = env[name]
        for p in self.contract.params:
            if p.name in env:
                inner[p.name] = env[p.name]
        for param, atom in zip(proc.params, stmt.args):
            inner[param.name] = self._atom(atom, env)
        self._stmts(proc.body, inner, summary, call_stack + (stmt.proc,))


# --------------------------------------------------------------------------
# Helpers.
# --------------------------------------------------------------------------

def _map_depth(t: ScillaType) -> int:
    depth = 0
    while isinstance(t, MapType):
        depth += 1
        t = t.value
    return depth


def _const_repr(lit) -> str:
    # Format must agree with repro.chain.dispatch.key_token so that
    # constant keys compare correctly against runtime values.
    return f"{lit.typ}|{lit.value}"


def _is_peel(clauses) -> bool:
    """IsKnownOp: the match merely peels an Option constructor (or has a
    single catch-all clause), inducing no data-dependent control flow
    that the analysis needs to track."""
    if len(clauses) == 1:
        pat = clauses[0][0]
        return isinstance(pat, (WildcardPat, BinderPat)) or (
            isinstance(pat, ConstructorPat))
    for pat, _body in clauses:
        if isinstance(pat, WildcardPat):
            continue
        if isinstance(pat, ConstructorPat) and pat.constructor == "Some":
            if all(isinstance(a, (BinderPat, WildcardPat)) for a in pat.args):
                continue
            return False
        if isinstance(pat, ConstructorPat) and pat.constructor == "None":
            continue
        return False
    return True


def _is_zero_const(source) -> bool:
    from .domain import ConstSource
    return isinstance(source, ConstSource) and source.repr.endswith("|0")


def _check_zero_consistency(scrut_ct, clause_cts, joined):
    """Guard the option-peel special case (IsKnownOp) for soundness.

    The ERC20 idiom ``match o with Some b => add b v | None => v end``
    stays commutative only because the None branch equals the Some
    branch with the absent entry *treated as zero* — the convention the
    IntMerge join applies to absent entries.  A peel whose None branch
    computes anything else (``None => big``, ``None => mul v two``)
    must not present the field contribution as exact, or the write
    would be mis-classified as commutative (demonstrated unsound by
    tests/test_zero_consistency.py).

    A None-like clause (no field contribution) is zero-consistent with
    a Some-like clause iff every one of its sources also appears in the
    Some clause with the same cardinality and an operation superset —
    extra zero-literal constants aside.
    """
    from .domain import Contrib, FieldSource
    if not isinstance(scrut_ct, CT) or not isinstance(joined, CT):
        return joined
    field_sources = {s for s, _ in scrut_ct.sources
                     if isinstance(s, FieldSource)}
    if not field_sources:
        return joined
    some_like = []
    none_like = []
    for ct in clause_cts:
        if not isinstance(ct, CT):
            return joined  # ⊤ already poisons downstream
        sources = {s for s, _ in ct.sources}
        (some_like if sources & field_sources else none_like).append(ct)
    consistent = True
    for none_ct in none_like:
        live_sources = [s for s, _ in none_ct.sources
                        if not _is_zero_const(s)]
        matched = False
        for some_ct in some_like:
            ok = True
            if live_sources:
                # A non-trivial default only substitutes correctly for
                # the absent-entry case when the field enters through
                # pure additions: under sub, the Some branch contributes
                # the default's sources with flipped sign, so nothing
                # but zero constants can be consistent.
                field_ops = frozenset().union(*(
                    some_ct.get(f).ops for f in field_sources)) \
                    if field_sources else frozenset()
                if not field_ops <= frozenset({"add"}):
                    ok = False
            if ok:
                for source, contrib in none_ct.sources:
                    if _is_zero_const(source):
                        continue
                    ref = some_ct.get(source)
                    if ref.card != contrib.card or \
                            not contrib.ops <= ref.ops:
                        ok = False
                        break
            if ok:
                matched = True
                break
        if some_like and not matched:
            consistent = False
            break
    if consistent:
        return joined
    out = {}
    for source, contrib in joined.sources:
        if source in field_sources:
            contrib = Contrib(contrib.card, contrib.ops, exact=False)
        out[source] = contrib
    return CT.of(out)


def _same_vars(cts: list[ContribType]) -> bool:
    """SameVars: do all clause types mention the same sources?"""
    source_sets = []
    for ct in cts:
        if isinstance(ct, CT):
            source_sets.append(frozenset(s for s, _ in ct.sources))
        else:
            return False
    return len(set(source_sets)) <= 1


def analyze_module(module: Module) -> dict[str, Summary]:
    """Convenience: infer summaries for all transitions of a module."""
    return SummaryAnalyzer(module).analyze_all()
