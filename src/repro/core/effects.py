"""Effect summaries (Fig. 6/8 of the paper).

A transition summary is a set of effects describing how the transition
interacts with blockchain state: reads/writes of statically-describable
state components (pseudo-fields), control-flow conditions, fund
acceptance and outgoing messages.  ``⊤`` is the uninformative effect —
a transition whose summary contains it cannot be sharded.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from .domain import (
    CT, ContribType, FieldSource, PseudoField, TopContrib,
)


class Effect:
    __slots__ = ()


@dataclass(frozen=True)
class Read(Effect):
    pf: PseudoField

    def __str__(self) -> str:
        return f"Read({self.pf})"


@dataclass(frozen=True)
class Write(Effect):
    pf: PseudoField
    contrib: ContribType
    is_delete: bool = False

    def __str__(self) -> str:
        tag = "Delete" if self.is_delete else "Write"
        return f"{tag}({self.pf}, {self.contrib})"


@dataclass(frozen=True)
class Condition(Effect):
    contrib: ContribType

    def __str__(self) -> str:
        return f"Condition({self.contrib})"


@dataclass(frozen=True)
class AcceptFunds(Effect):
    def __str__(self) -> str:
        return "AcceptFunds"


# How the analysis classified a message's recipient.
RECIP_PARAM = "param"      # a transition parameter (data: its name)
RECIP_SENDER = "sender"    # the _sender implicit
RECIP_CONST = "const"      # a literal / contract parameter
RECIP_UNKNOWN = "unknown"  # statically undetermined


@dataclass(frozen=True)
class MsgInfo:
    """Shape of one outgoing message, as far as statically known."""

    recipient_kind: str = RECIP_UNKNOWN
    recipient: str | None = None   # parameter name when kind == param
    amount_zero: bool = False      # True iff provably zero funds

    def __str__(self) -> str:
        amt = "0" if self.amount_zero else "≠0?"
        who = self.recipient or self.recipient_kind
        return f"(to={who}, funds={amt})"


@dataclass(frozen=True)
class SendMsg(Effect):
    """A ``send``; ``msgs`` empty means statically unknown (⊤ message)."""

    msgs: tuple[MsgInfo, ...] = ()
    contrib: ContribType = CT()

    @property
    def is_top(self) -> bool:
        return not self.msgs

    def __str__(self) -> str:
        if self.is_top:
            return "SendMsg(⊤)"
        return f"SendMsg{''.join(str(m) for m in self.msgs)}"


@dataclass(frozen=True)
class TopEffect(Effect):
    reason: str = ""

    def __str__(self) -> str:
        return f"⊤({self.reason})" if self.reason else "⊤"


@dataclass
class Summary:
    """The inferred summary of one transition."""

    transition: str
    params: tuple[str, ...]
    effects: list[Effect] = dc_field(default_factory=list)

    def add(self, effect: Effect) -> None:
        if effect not in self.effects:
            self.effects.append(effect)

    @property
    def has_top(self) -> bool:
        return any(isinstance(e, TopEffect) for e in self.effects) or any(
            isinstance(e, SendMsg) and e.is_top for e in self.effects) or any(
            isinstance(e, Write) and isinstance(e.contrib, TopContrib)
            for e in self.effects)

    def reads(self) -> list[Read]:
        return [e for e in self.effects if isinstance(e, Read)]

    def writes(self) -> list[Write]:
        return [e for e in self.effects if isinstance(e, Write)]

    def conditions(self) -> list[Condition]:
        return [e for e in self.effects if isinstance(e, Condition)]

    def sends(self) -> list[SendMsg]:
        return [e for e in self.effects if isinstance(e, SendMsg)]

    def accepts_funds(self) -> bool:
        return any(isinstance(e, AcceptFunds) for e in self.effects)

    def written_fields(self) -> set[str]:
        return {e.pf.field for e in self.writes()}

    def dedupe_conditions(self) -> None:
        """Drop Condition effects subsumed by another Condition.

        A condition is subsumed when its source set is contained in
        another condition's source set (matches the presentation of
        Fig. 8, where only the strongest condition is shown).
        """
        conds = self.conditions()

        def sources(c: Condition) -> frozenset:
            # Constants never matter for the weak-read/ownership logic,
            # so subsumption compares field and formal sources only.
            if isinstance(c.contrib, CT):
                from .domain import ConstSource
                return frozenset(s for s, _ in c.contrib.sources
                                 if not isinstance(s, ConstSource))
            return frozenset({"⊤"})

        keep: list[Condition] = []
        for c in conds:
            cs = sources(c)
            if any(cs < sources(o) for o in conds):
                continue
            if any(cs == sources(o) for o in keep):
                continue
            keep.append(c)
        self.effects = [e for e in self.effects
                        if not isinstance(e, Condition)] + list(keep)

    def __str__(self) -> str:
        inner = "\n  ".join(str(e) for e in self.effects)
        return f"Summary({self.transition}):\n  {inner}"


def condition_mentions(summary: Summary, pf: PseudoField) -> bool:
    """Whether any Condition's contribution mentions the pseudo-field."""
    for cond in summary.conditions():
        if isinstance(cond.contrib, TopContrib):
            return True
        if isinstance(cond.contrib, CT):
            for s, _ in cond.contrib.sources:
                if isinstance(s, FieldSource) and s.pf.may_alias(pf):
                    return True
    return False
