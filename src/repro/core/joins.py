"""Per-field join operations ⊎f (Fig. 9) and the state-delta PCM.

Two joins are supported, matching the paper:

* ``OwnOverwrite`` — disjoint union of written entries: each shard owns
  the entries it writes, and the merge overwrites them in the global
  state (deletes included).  Defined only when shards wrote disjoint
  entries — which the ownership constraints guarantee.
* ``IntMerge``     — integer deltas: each shard contributes the signed
  difference against the epoch-start value; the merge sums deltas.
  Commutative and associative by construction.

:func:`merge_leaf` is the three-way merge used by the DS committee.
"""

from __future__ import annotations

import enum

from ..scilla.errors import ExecError
from ..scilla.state import MISSING, _Missing
from ..scilla.values import IntVal, Value


class JoinKind(enum.Enum):
    OWN_OVERWRITE = "OwnOverwrite"
    INT_MERGE = "IntMerge"

    def __str__(self) -> str:
        return self.value


class MergeConflict(ExecError):
    """Raised when two shard deltas are not logically disjoint.

    Under a valid sharding signature this never happens; it is an
    assertion of the paper's soundness claim and is exercised by tests
    that deliberately mis-shard.

    Carries a structured payload so callers (the DS committee, the
    recovery layer, tests) can tell *what* conflicted: the contract
    address, the state location, and the shard ids involved.  All
    fields are optional because some conflicts (e.g. a type error
    inside ``apply_int_delta``) lack part of the context.
    """

    def __init__(self, message: str, *, contract: str | None = None,
                 key=None, shards: tuple[int, ...] = ()):
        super().__init__(message)
        self.contract = contract
        self.key = key
        self.shards = tuple(shards)


def int_delta(base: Value | _Missing, new: Value | _Missing) -> int:
    """The signed contribution of one shard to an IntMerge field."""
    base_v = base.value if isinstance(base, IntVal) else 0
    new_v = new.value if isinstance(new, IntVal) else 0
    return new_v - base_v


def apply_int_delta(base: Value | _Missing, delta: int,
                    template: Value) -> Value:
    """Apply a summed delta to the epoch-start value.

    ``template`` supplies the integer type (some shard's final value).
    Absent entries count as zero, matching the ``None => amount``
    convention of token contracts.
    """
    if not isinstance(template, IntVal):
        raise MergeConflict(f"IntMerge on non-integer value {template}")
    base_v = base.value if isinstance(base, IntVal) else 0
    return IntVal(base_v + delta, template.typ)
