"""The contract-deployment pipeline: parse → typecheck → analyse.

This is the code path every miner runs on a contract-deploying
transaction (Sec. 4.3 / Fig. 12): the sharding analysis is an optional
extra phase after type checking, and its cost relative to parsing and
type checking is what Fig. 12 measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field

from ..scilla.ast import Module
from ..scilla.parser import parse_module
from ..scilla.typechecker import typecheck_module
from .cache import GLOBAL_CACHE, SummaryCache
from .effects import Summary
from .signature import (
    ShardingSignature, WEAK_READS_AUTO, signature_for, signatures_equal,
)
from .solver import ShardingSolver
from .summary import analyze_module


@dataclass
class PipelineTimings:
    """Wall-clock seconds spent in each deployment stage."""

    parse: float = 0.0
    typecheck: float = 0.0
    analysis: float = 0.0

    @property
    def total(self) -> float:
        return self.parse + self.typecheck + self.analysis

    def as_microseconds(self) -> dict[str, float]:
        return {
            "parse": self.parse * 1e6,
            "typecheck": self.typecheck * 1e6,
            "analysis": self.analysis * 1e6,
        }


@dataclass
class DeploymentResult:
    module: Module
    summaries: dict[str, Summary]
    timings: PipelineTimings
    warnings: list[str] = dc_field(default_factory=list)

    @property
    def contract_name(self) -> str:
        return self.module.contract.name

    def solver(self, weak_reads=WEAK_READS_AUTO) -> ShardingSolver:
        return ShardingSolver(self.contract_name, self.summaries, weak_reads)

    def signature(self, selected: tuple[str, ...],
                  weak_reads=WEAK_READS_AUTO,
                  allow_commutativity: bool = True) -> ShardingSignature:
        sig = signature_for(self.contract_name, self.summaries,
                            tuple(sorted(selected)), weak_reads,
                            allow_commutativity)
        assert sig is not None
        return sig


def run_pipeline(source: str, name: str = "<deploy>",
                 with_analysis: bool = True) -> DeploymentResult:
    """Run the full deployment pipeline on contract source text."""
    t0 = time.perf_counter()
    module = parse_module(source, name)
    t1 = time.perf_counter()
    warnings = typecheck_module(module)
    t2 = time.perf_counter()
    summaries = analyze_module(module) if with_analysis else {}
    t3 = time.perf_counter()
    analysis_time = (t3 - t2) if with_analysis else 0.0
    return DeploymentResult(
        module=module,
        summaries=summaries,
        timings=PipelineTimings(t1 - t0, t2 - t1, analysis_time),
        warnings=warnings,
    )


def run_pipeline_cached(source: str, name: str = "<deploy>",
                        with_analysis: bool = True,
                        cache: SummaryCache | None = None
                        ) -> DeploymentResult:
    """Cache-backed pipeline: the miner's hot path.

    Identical sources resolve to the *same* :class:`DeploymentResult`
    object (content-addressed by SHA-256 of the source plus the
    analysis version), so repeat deployments and signature validations
    skip parsing, type checking and the sharding analysis entirely.
    Parse/type errors are not cached — they propagate as usual.
    """
    cache = GLOBAL_CACHE if cache is None else cache
    return cache.get_or_compute(source, name, with_analysis)


def validate_signature(source: str, proposed: ShardingSignature,
                       weak_reads=WEAK_READS_AUTO) -> bool:
    """Miner-side validation: recompute the signature and compare.

    The set of sharded transitions is recoverable from the proposed
    constraints (Sec. 4.3), so miners need to validate exactly one
    signature rather than search the selection space.  The recomputed
    pipeline result comes from the content-addressed summary cache —
    a validator re-checking a known contract pays one hash, not a
    re-analysis.
    """
    result = run_pipeline_cached(source)
    if not set(proposed.selected) <= set(result.summaries):
        return False  # proposal names transitions the contract lacks
    recomputed = signature_for(result.contract_name, result.summaries,
                               tuple(sorted(proposed.selected)), weak_reads)
    return recomputed is not None and signatures_equal(recomputed, proposed)
