"""CoSplit: ownership and commutativity analysis for Scilla contracts.

The paper's primary contribution: a compositional static analysis that
infers per-transition effect summaries and derives sharding signatures
used by the chain substrate (:mod:`repro.chain`) to parallelise
contract transactions across shards.
"""

from .constraints import (
    Bot, Constraint, ContractShard, NoAliases, Owns, SenderShard,
    UserAddr, hogged_fields, is_bot,
)
from .domain import (
    Card, ConstKey, Contrib, ContribType, CT, EFun, FieldSource,
    FormalSource, ConstSource, ParamKey, PseudoField,
)
from .effects import (
    AcceptFunds, Condition, MsgInfo, Read, SendMsg, Summary, TopEffect,
    Write,
)
from .cache import ANALYSIS_VERSION, CacheStats, GLOBAL_CACHE, SummaryCache
from .joins import JoinKind, MergeConflict
from .parallel import CorpusAnalysis, analyze_corpus, default_workers
from .pipeline import (
    DeploymentResult, PipelineTimings, run_pipeline, run_pipeline_cached,
    validate_signature,
)
from .signature import (
    ShardingSignature, StaleReadsRejected, WEAK_READS_AUTO,
    derive_signature, is_commutative_write, signature_for,
    signatures_equal,
)
from .solver import GEReport, ShardingSolver, is_good_enough
from .summary import SummaryAnalyzer, analyze_module

__all__ = [
    "Bot", "Constraint", "ContractShard", "NoAliases", "Owns",
    "SenderShard", "UserAddr", "hogged_fields", "is_bot",
    "Card", "ConstKey", "Contrib", "ContribType", "CT", "EFun",
    "FieldSource", "FormalSource", "ConstSource", "ParamKey",
    "PseudoField",
    "AcceptFunds", "Condition", "MsgInfo", "Read", "SendMsg", "Summary",
    "TopEffect", "Write",
    "ANALYSIS_VERSION", "CacheStats", "GLOBAL_CACHE", "SummaryCache",
    "JoinKind", "MergeConflict",
    "CorpusAnalysis", "analyze_corpus", "default_workers",
    "DeploymentResult", "PipelineTimings", "run_pipeline",
    "run_pipeline_cached", "validate_signature",
    "ShardingSignature", "StaleReadsRejected", "WEAK_READS_AUTO",
    "derive_signature", "is_commutative_write", "signature_for",
    "signatures_equal",
    "GEReport", "ShardingSolver", "is_good_enough",
    "SummaryAnalyzer", "analyze_module",
]
