"""Ownership and environment constraints (Fig. 9, top).

Constraints are static symbolic conditions checked at dispatch time
against a concrete transaction; :mod:`repro.chain.dispatch` evaluates
them.  ``Bot`` marks a transition that cannot be executed in parallel
with other transactions over the same contract — it is always routed
to the DS committee.
"""

from __future__ import annotations

from dataclasses import dataclass

from .domain import PseudoField


class Constraint:
    __slots__ = ()


@dataclass(frozen=True)
class Owns(Constraint):
    """The executing shard must own this state component."""

    pf: PseudoField

    def __str__(self) -> str:
        return f"Owns({self.pf})"


@dataclass(frozen=True)
class UserAddr(Constraint):
    """The named parameter (or ``_sender``) must be a user address,
    so a zero-fund message to it is a no-op notification."""

    param: str

    def __str__(self) -> str:
        return f"UserAddr({self.param})"


@dataclass(frozen=True)
class NoAliases(Constraint):
    """Two symbolic map keys must not coincide at runtime."""

    x: str
    y: str

    def __str__(self) -> str:
        return f"NoAliases(⟨{self.x}, {self.y}⟩)"


@dataclass(frozen=True)
class SenderShard(Constraint):
    """Must run in the sender's home shard (fund acceptance)."""

    def __str__(self) -> str:
        return "SenderShard"


@dataclass(frozen=True)
class ContractShard(Constraint):
    """Must run in the contract's home shard (fund-bearing sends)."""

    def __str__(self) -> str:
        return "ContractShard"


@dataclass(frozen=True)
class Bot(Constraint):
    """Unsatisfiable: the transition cannot be sharded."""

    reason: str = ""

    def __str__(self) -> str:
        return f"⊥({self.reason})" if self.reason else "⊥"


def is_bot(constraints: frozenset[Constraint]) -> bool:
    return any(isinstance(c, Bot) for c in constraints)


def owned_components(constraints: frozenset[Constraint]) -> list[PseudoField]:
    return sorted((c.pf for c in constraints if isinstance(c, Owns)),
                  key=str)


def hogged_fields(constraints: frozenset[Constraint]) -> set[str]:
    """Fields the transition *hogs* (Def. 5.1): whole-field ownership.

    Keyed ownership (``Owns(balances[_sender])``) is partial — only the
    entry is owned — whereas ``Owns(f)`` with no keys forces a single
    shard to own all of ``f``.
    """
    return {c.pf.field for c in constraints
            if isinstance(c, Owns) and c.pf.is_whole_field}
