"""Automated contract repair (Sec. 6, "Automated Contract Repair").

The analysis can only summarise map accesses whose keys are transition
parameters.  A recurring unshardable pattern reads an owner from the
contract state and uses it as a map key (e.g. the NFT contract's
``approvals[tokenOwner]``).  The paper proposes repairing this by
making the state-derived value a *parameter* and checking the supplied
value against the state — compare-and-swap style — before proceeding.

This module implements that repair:

* :func:`diagnose` explains, per transition, why the analysis gave up
  (state-derived map keys, unknown message recipients, …);
* :func:`repair_transition` mechanically rewrites the transition: for
  each state-derived binder used as a map key it adds an ``expected_*``
  parameter, inserts a guard (``RequireEq*`` procedure) right after the
  binder is bound, and re-keys the map accesses with the parameter.
  The rewrite preserves semantics for callers that supply the correct
  current value and rejects all others.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from ..scilla import ast
from ..scilla.ast import (
    Bind, CallProc, Component, ConstructorPat, Contract, Ident, LitAtom,
    Load, MapDelete, MapGet, MapGetExists, MapUpdate, MatchStmt, Module,
    Param, Stmt, )
from ..scilla.types import MapType, PrimType, ScillaType
from .summary import analyze_module
from .signature import derive_signature
from .constraints import is_bot


@dataclass
class Diagnosis:
    """Why a transition cannot be sharded, with repair candidates."""

    transition: str
    shardable: bool
    reasons: list[str] = dc_field(default_factory=list)
    repairable_binders: list[str] = dc_field(default_factory=list)


def _field_types(contract: Contract) -> dict[str, ScillaType]:
    return {f.name: f.typ for f in contract.fields}


def _key_type(field_type: ScillaType | None, depth: int) -> ScillaType:
    t = field_type
    for _ in range(depth):
        if isinstance(t, MapType):
            if depth == 1:
                return t.key
            t = t.value
            depth -= 1
    if isinstance(t, MapType):
        return t.key
    return PrimType("ByStr20")


class _Provenance:
    """Tracks which locals are (peels of) values read from state."""

    def __init__(self) -> None:
        self.state_derived: set[str] = set()
        self.param_like: set[str] = set()

    def scan(self, stmts: tuple[Stmt, ...]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (Load, MapGet, MapGetExists)):
                self.state_derived.add(stmt.lhs)
            elif isinstance(stmt, MatchStmt):
                scrut_tainted = stmt.scrutinee.name in self.state_derived
                for pat, body in stmt.clauses:
                    if scrut_tainted:
                        for binder in ast.pattern_binders(pat):
                            self.state_derived.add(binder)
                    self.scan(body)
            elif isinstance(stmt, Bind):
                # A bind of a tainted variable propagates taint.
                if isinstance(stmt.expr, ast.Var) and \
                        stmt.expr.name in self.state_derived:
                    self.state_derived.add(stmt.lhs)


def _state_derived_keys(component: Component,
                        field_types: dict[str, ScillaType],
                        contract: Contract | None = None
                        ) -> list[tuple[str, str, int, str]]:
    """(binder, map field, key position, via) for every state-derived
    map key.  ``via`` is the procedure name when the pattern sits
    inside a procedure the component calls (diagnosis only — the
    mechanical repair is transition-local), or "" when local.
    """
    out: list[tuple[str, str, int, str]] = []
    seen_procs: set[str] = set()

    def scan_component(comp: Component, via: str) -> None:
        prov = _Provenance()
        prov.scan(comp.body)

        def walk(stmts: tuple[Stmt, ...]) -> None:
            for stmt in stmts:
                keys = ()
                mapname = None
                if isinstance(stmt, (MapGet, MapGetExists, MapUpdate,
                                     MapDelete)):
                    keys, mapname = stmt.keys, stmt.map
                for pos, key in enumerate(keys):
                    if isinstance(key, Ident) and \
                            key.name in prov.state_derived:
                        entry = (key.name, mapname, pos, via)
                        if entry not in out:
                            out.append(entry)
                if isinstance(stmt, MatchStmt):
                    for _pat, body in stmt.clauses:
                        walk(body)
                if isinstance(stmt, CallProc) and contract is not None \
                        and stmt.proc not in seen_procs:
                    seen_procs.add(stmt.proc)
                    try:
                        proc = contract.component(stmt.proc)
                    except KeyError:
                        continue
                    if not proc.is_transition:
                        scan_component(proc, stmt.proc)

        walk(comp.body)

    scan_component(component, "")
    return out


def diagnose(module: Module) -> list[Diagnosis]:
    """Explain, per transition, whether and why sharding fails."""
    summaries = analyze_module(module)
    field_types = _field_types(module.contract)
    out: list[Diagnosis] = []
    for transition in module.contract.transitions:
        summary = summaries[transition.name]
        sig = derive_signature(module.contract.name, summaries,
                               (transition.name,))
        constraints = sig.constraints[transition.name]
        shardable = not is_bot(constraints)
        reasons = []
        for eff in summary.effects:
            from .effects import SendMsg, TopEffect
            if isinstance(eff, TopEffect):
                reasons.append(eff.reason)
            elif isinstance(eff, SendMsg) and eff.is_top:
                reasons.append("send of statically-unknown message")
        binders = sorted({
            b if not via else f"{b} (in procedure {via})"
            for b, _, _, via in _state_derived_keys(
                transition, field_types, module.contract)})
        out.append(Diagnosis(transition.name, shardable, reasons,
                             binders))
    return out


# --------------------------------------------------------------------------
# The rewrite.
# --------------------------------------------------------------------------

def _guard_proc_name(typ: ScillaType) -> str:
    return "RequireEq" + str(typ).replace(" ", "").replace("(", "") \
        .replace(")", "")


def _make_guard_procedure(typ: ScillaType) -> Component:
    """``procedure RequireEqT (expected: T, actual: T)``."""
    check = Bind("cas_ok", ast.Builtin(
        "eq", (Ident("expected"), Ident("actual"))))
    fail_body = (
        Bind("cas_e", ast.MessageExpr(
            (("_exception", LitAtom("CompareAndSwapFailed",
                                    PrimType("String"))),))),
        ast.Throw(Ident("cas_e")),
    )
    match = MatchStmt(Ident("cas_ok"), (
        (ConstructorPat("True"), ()),
        (ConstructorPat("False"), fail_body),
    ))
    return Component(
        "procedure", _guard_proc_name(typ),
        (Param("expected", typ), Param("actual", typ)),
        (check, match))


def _rewrite_stmts(stmts: tuple[Stmt, ...], binder: str, param: str,
                   guard_proc: str, tainting: set[str]) -> tuple[Stmt, ...]:
    """Re-key accesses using ``binder`` and insert the guard after the
    statement (or clause) that binds it."""

    def rekey(stmt: Stmt) -> Stmt:
        def fix(keys):
            return tuple(
                Ident(param) if isinstance(k, Ident) and k.name == binder
                else k for k in keys)
        if isinstance(stmt, MapGet):
            return MapGet(stmt.lhs, stmt.map, fix(stmt.keys), stmt.loc)
        if isinstance(stmt, MapGetExists):
            return MapGetExists(stmt.lhs, stmt.map, fix(stmt.keys),
                                stmt.loc)
        if isinstance(stmt, MapUpdate):
            return MapUpdate(stmt.map, fix(stmt.keys), stmt.rhs, stmt.loc)
        if isinstance(stmt, MapDelete):
            return MapDelete(stmt.map, fix(stmt.keys), stmt.loc)
        return stmt

    out: list[Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, MatchStmt):
            clauses = []
            for pat, body in stmt.clauses:
                binders = ast.pattern_binders(pat)
                new_body = _rewrite_stmts(body, binder, param,
                                          guard_proc, tainting)
                if binder in binders and \
                        stmt.scrutinee.name in tainting:
                    guard = CallProc(guard_proc,
                                     (Ident(param), Ident(binder)))
                    new_body = (guard,) + new_body
                clauses.append((pat, new_body))
            out.append(MatchStmt(stmt.scrutinee, tuple(clauses),
                                 stmt.loc))
            continue
        out.append(rekey(stmt))
        if isinstance(stmt, (Load, MapGet)) and stmt.lhs == binder:
            out.append(CallProc(guard_proc,
                                (Ident(param), Ident(binder))))
    return tuple(out)


def repair_transition(module: Module, transition: str) -> tuple[Module,
                                                                list[str]]:
    """Apply the compare-and-swap repair to one transition.

    Returns the rewritten module and a human-readable change log.  If
    the transition has no state-derived map keys, the module is
    returned unchanged with an empty log.
    """
    contract = module.contract
    component = contract.component(transition)
    field_types = _field_types(contract)
    candidates = [(b, m, pos) for b, m, pos, via in
                  _state_derived_keys(component, field_types)
                  if not via]
    if not candidates:
        return module, []

    prov = _Provenance()
    prov.scan(component.body)

    changes: list[str] = []
    new_params = list(component.params)
    body = component.body
    guard_procs: dict[str, Component] = {}
    for binder, mapname, pos in candidates:
        key_t = _key_type(field_types.get(mapname), pos + 1)
        param_name = f"expected_{binder}"
        if all(p.name != param_name for p in new_params):
            new_params.append(Param(param_name, key_t))
            changes.append(
                f"added parameter {param_name}: {key_t} (compare-and-"
                f"swap for state-derived key {binder!r} of {mapname})")
        proc = _make_guard_procedure(key_t)
        guard_procs[proc.name] = proc
        body = _rewrite_stmts(body, binder, param_name, proc.name,
                              prov.state_derived)
        changes.append(
            f"re-keyed {mapname}[{binder}] as {mapname}[{param_name}] "
            f"and guarded with {proc.name}")

    new_component = Component(component.kind, component.name,
                              tuple(new_params), body, component.loc)
    components = tuple(
        new_component if c.name == transition else c
        for c in contract.components)
    for proc in guard_procs.values():
        if all(c.name != proc.name for c in components):
            components = (proc,) + components
    new_contract = Contract(contract.name, contract.params,
                            contract.fields, components, contract.loc)
    return Module(module.version, module.library, new_contract,
                  module.source_name + "+repaired"), changes


def repair_module(module: Module) -> tuple[Module, dict[str, list[str]]]:
    """Repair every transition that has state-derived map keys."""
    log: dict[str, list[str]] = {}
    for transition in [t.name for t in module.contract.transitions]:
        module, changes = repair_transition(module, transition)
        if changes:
            log[transition] = changes
    return module, log
