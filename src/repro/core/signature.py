"""Sharding-signature derivation — Algorithm 3.1 of the paper.

Given effect summaries for a *selection* of transitions (chosen by the
contract developer) and the set of fields whose reads the developer
accepts may be stale, derive:

* per-transition ownership/environment constraints (Fig. 9), and
* per-field join operations (``OwnOverwrite`` / ``IntMerge``).

The algorithm proceeds exactly as in the paper: constant fields are
identified and their reads dropped; commutative writes are detected
from contribution types; joins are consolidated globally across the
selection; reads that flow only into commutative writes are removed;
the stale-read gate is checked; and the remaining effects translate to
constraints via the Fig. 9 table.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from ..scilla.builtins import COMMUTATIVE_ADDITIVE
from .constraints import (
    Bot, Constraint, ContractShard, NoAliases, Owns, SenderShard,
    UserAddr, hogged_fields, is_bot,
)
from .domain import (
    CT, Card, ConstSource, Contrib, ContribType, EFun,
    FieldSource, Key, PseudoField, Source, TopContrib,
)
from .effects import (
    Condition, Read, RECIP_CONST, RECIP_PARAM, RECIP_SENDER,
    RECIP_UNKNOWN, SendMsg, Summary, TopEffect, Write,
)
from .joins import JoinKind

# Sentinel: accept whatever weak reads the derivation needs.
WEAK_READS_AUTO = "auto"


@dataclass(frozen=True)
class ShardingSignature:
    """The artefact a contract deployer submits with the contract."""

    contract: str
    selected: tuple[str, ...]
    constraints: dict[str, frozenset[Constraint]]
    joins: dict[str, JoinKind]
    weak_reads: frozenset[str]

    def is_parallelisable(self, transition: str) -> bool:
        cs = self.constraints.get(transition)
        return cs is not None and not is_bot(cs)

    def hogs(self, transition: str) -> set[str]:
        cs = self.constraints.get(transition, frozenset())
        return hogged_fields(cs)

    def describe(self) -> str:
        lines = [f"ShardingSignature({self.contract})"]
        for t in self.selected:
            cs = sorted(self.constraints[t], key=str)
            lines.append(f"  {t}: {{{', '.join(str(c) for c in cs)}}}")
        for f, j in sorted(self.joins.items()):
            lines.append(f"  ⊎{f} = {j}")
        if self.weak_reads:
            lines.append(f"  weak reads: {sorted(self.weak_reads)}")
        return "\n".join(lines)


class StaleReadsRejected(Exception):
    """The derivation needs weak reads the developer did not accept."""

    def __init__(self, needed: set[str]):
        self.needed = needed
        super().__init__(
            f"derivation requires accepting stale reads of {sorted(needed)}")


# --------------------------------------------------------------------------
# Commutativity of writes (the Sec. 3.4 query).
# --------------------------------------------------------------------------

def is_commutative_write(write: Write) -> bool:
    """Is the write's effect on its target additive-commutative?

    Per the paper: the written field's own initial value must
    contribute exactly once (cardinality 1, exact) through additive
    builtins only; all other contributions act as per-transaction
    constants.  Control-flow (``Cond``) dependence on the target
    defeats commutativity.
    """
    if write.is_delete:
        return False
    ct = write.contrib
    if not isinstance(ct, CT):
        return False
    self_contrib: Contrib | None = None
    for source, contrib in ct.sources:
        if isinstance(source, FieldSource) and source.pf == write.pf:
            if self_contrib is not None:
                return False
            self_contrib = contrib
    if self_contrib is None:
        return False
    return (
        self_contrib.card is Card.ONE
        and self_contrib.exact
        and bool(self_contrib.ops)
        and self_contrib.ops <= COMMUTATIVE_ADDITIVE
    )


# --------------------------------------------------------------------------
# Summary transformations used by Algorithm 3.1.
# --------------------------------------------------------------------------

def _mark_constants_in_ct(ct: ContribType, cfs: set[str]) -> ContribType:
    if isinstance(ct, EFun):
        return EFun(ct.param, _mark_constants_in_ct(ct.body, cfs))
    if not isinstance(ct, CT):
        return ct
    out: dict[Source, Contrib] = {}
    for source, contrib in ct.sources:
        if isinstance(source, FieldSource) and source.pf.field in cfs:
            source = ConstSource(f"field:{source.pf}")
        if source in out:
            prev = out[source]
            out[source] = Contrib(
                max(prev.card, contrib.card), prev.ops | contrib.ops,
                prev.exact and contrib.exact)
        else:
            out[source] = contrib
    return CT.of(out)


def _mark_constants(summary: Summary, cfs: set[str]) -> Summary:
    """Drop reads of constant fields; demote their sources to Const."""
    out = Summary(summary.transition, summary.params)
    for eff in summary.effects:
        if isinstance(eff, Read) and eff.pf.field in cfs:
            continue
        if isinstance(eff, Write):
            eff = Write(eff.pf, _mark_constants_in_ct(eff.contrib, cfs),
                        eff.is_delete)
        elif isinstance(eff, Condition):
            eff = Condition(_mark_constants_in_ct(eff.contrib, cfs))
        elif isinstance(eff, SendMsg):
            eff = SendMsg(eff.msgs, _mark_constants_in_ct(eff.contrib, cfs))
        out.add(eff)
    return out


def _source_mentions(ct: ContribType, pf: PseudoField) -> bool:
    if isinstance(ct, EFun):
        return _source_mentions(ct.body, pf)
    if isinstance(ct, TopContrib):
        return True
    if not isinstance(ct, CT):
        return False
    return any(isinstance(s, FieldSource) and s.pf == pf
               for s, _ in ct.sources)


def _transition_constraints(
    summary: Summary,
    written_fields: frozenset[str],
    intmerge_fields: frozenset[str],
) -> tuple[frozenset[Constraint], frozenset[str]]:
    """Constraints of one transition in a selection *context*.

    The context is fully described by which fields the selection
    writes (everything else is constant) and which of those fields
    consolidated to IntMerge.  Returns (constraints, stale-read
    fields).  Used both by :func:`derive_signature` and, memoised, by
    the solver's fast good-enough search.
    """
    cfs = {r.pf.field for r in summary.reads()} - set(written_fields)
    summary = _mark_constants(summary, cfs)

    cws: set[int] = set()
    for w in summary.writes():
        if w.pf.field in intmerge_fields and is_commutative_write(w):
            cws.add(id(w))

    def read_is_spurious(read: Read) -> bool:
        for eff in summary.effects:
            if isinstance(eff, Write):
                if id(eff) in cws and eff.pf == read.pf:
                    continue  # its own commutative self-contribution
                if _source_mentions(eff.contrib, read.pf):
                    # Flowing into any other write — commutative or not —
                    # makes the read observable (its value affects the
                    # written amount), so ownership must be kept.
                    return False
            elif isinstance(eff, (Condition, SendMsg)):
                if _source_mentions(eff.contrib, read.pf):
                    return False
        # The read must flow somewhere commutative (or nowhere at all).
        return True

    pruned = Summary(summary.transition, summary.params)
    for eff in summary.effects:
        if isinstance(eff, Read) and read_is_spurious(eff):
            continue
        pruned.add(eff)
    summary = pruned

    stale = frozenset(
        r.pf.field for r in summary.reads()
        if r.pf.field in intmerge_fields)

    cs: set[Constraint] = set()
    if summary.has_top:
        reasons = [e.reason for e in summary.effects
                   if isinstance(e, TopEffect)]
        cs.add(Bot(reasons[0] if reasons else "⊤ effect"))
    if summary.accepts_funds():
        cs.add(SenderShard())
    for send in summary.sends():
        if send.is_top:
            cs.add(Bot("send of unknown message"))
            continue
        for msg in send.msgs:
            if not msg.amount_zero:
                cs.add(ContractShard())
            if msg.recipient_kind == RECIP_PARAM:
                assert msg.recipient is not None
                cs.add(UserAddr(msg.recipient))
            elif msg.recipient_kind == RECIP_SENDER:
                cs.add(UserAddr("_sender"))
            elif msg.recipient_kind == RECIP_CONST:
                if msg.recipient is not None:
                    cs.add(UserAddr(msg.recipient))
            elif msg.recipient_kind == RECIP_UNKNOWN:
                cs.add(Bot("message recipient statically unknown"))
    # NoAliases between distinct symbolic key paths of one field.
    cs |= _alias_constraints(summary)
    # Ownership: every remaining read, every non-commutative write.
    for r in summary.reads():
        cs.add(Owns(r.pf))
    for w in summary.writes():
        if id(w) not in cws:
            cs.add(Owns(w.pf))
    return frozenset(cs), stale


def selection_context(
    summaries: dict[str, Summary],
    selected: tuple[str, ...],
    allow_commutativity: bool = True,
) -> tuple[frozenset[str], frozenset[str], dict[str, JoinKind]]:
    """The (written, IntMerge, joins) context of a selection.

    A field consolidates to IntMerge iff *every* selected write to it
    is commutative (TryConsolidateJoinsGlobally).
    """
    written: set[str] = set()
    noncomm: set[str] = set()
    for t in selected:
        for w in summaries[t].writes():
            written.add(w.pf.field)
            if not is_commutative_write(w):
                noncomm.add(w.pf.field)
    intmerge = (written - noncomm) if allow_commutativity else set()
    joins = {
        f: (JoinKind.INT_MERGE if f in intmerge else JoinKind.OWN_OVERWRITE)
        for f in written
    }
    return frozenset(written), frozenset(intmerge), joins


def derive_signature(
    contract_name: str,
    summaries: dict[str, Summary],
    selected: tuple[str, ...],
    weak_reads: set[str] | str = WEAK_READS_AUTO,
    allow_commutativity: bool = True,
) -> ShardingSignature:
    """Algorithm 3.1: derive constraints and joins for a selection.

    ``weak_reads`` is the set of *field names* whose reads the
    developer accepts may be stale, or :data:`WEAK_READS_AUTO` to
    accept whatever the derivation needs.  If commutativity would need
    unaccepted stale reads, :class:`StaleReadsRejected` is raised.
    """
    written, intmerge, joins = selection_context(
        summaries, selected, allow_commutativity)

    constraints: dict[str, frozenset[Constraint]] = {}
    all_stale: set[str] = set()
    for t in selected:
        cs, stale = _transition_constraints(summaries[t], written, intmerge)
        constraints[t] = cs
        all_stale |= stale

    # StaleReads gate: remaining reads of IntMerge-joined fields will
    # observe values other shards are concurrently bumping.
    if weak_reads != WEAK_READS_AUTO:
        assert isinstance(weak_reads, set)
        if not all_stale <= weak_reads:
            raise StaleReadsRejected(all_stale - weak_reads)

    return ShardingSignature(
        contract_name, tuple(selected), constraints, joins,
        frozenset(all_stale))


def _alias_constraints(summary: Summary) -> set[Constraint]:
    """Fig. 9 bottom row: accesses m[x], m[y] need NoAliases⟨x, y⟩."""
    by_field: dict[str, set[tuple[Key, ...]]] = {}
    for eff in summary.effects:
        pf = None
        if isinstance(eff, (Read, Write)):
            pf = eff.pf
        if pf is not None and pf.keys:
            by_field.setdefault(pf.field, set()).add(pf.keys)
    out: set[Constraint] = set()
    for paths in by_field.values():
        ordered = sorted(paths, key=str)
        for i, p1 in enumerate(ordered):
            for p2 in ordered[i + 1:]:
                if len(p1) != len(p2):
                    continue
                # Proven disjoint by differing constants at any position?
                from .domain import ConstKey
                disjoint = any(
                    isinstance(a, ConstKey) and isinstance(b, ConstKey)
                    and a != b for a, b in zip(p1, p2))
                if disjoint or p1 == p2:
                    continue
                for a, b in zip(p1, p2):
                    if a != b:
                        out.add(NoAliases(str(a), str(b)))
    return out


def signature_for(
    contract_name: str,
    summaries: dict[str, Summary],
    selected: tuple[str, ...],
    weak_reads: set[str] | str = WEAK_READS_AUTO,
    allow_commutativity: bool = True,
) -> ShardingSignature | None:
    """Like :func:`derive_signature`, but falls back to the pure
    ownership strategy (Strategy 1) when stale reads are rejected."""
    try:
        return derive_signature(contract_name, summaries, selected,
                                weak_reads, allow_commutativity)
    except StaleReadsRejected:
        return derive_signature(contract_name, summaries, selected,
                                weak_reads, allow_commutativity=False)


def signatures_equal(a: ShardingSignature, b: ShardingSignature) -> bool:
    """Used by miners to validate a submitted signature (Sec. 4.3)."""
    return (a.contract == b.contract and set(a.selected) == set(b.selected)
            and a.constraints == b.constraints and a.joins == b.joins)
