"""The CoSplit abstract domain (Fig. 6 of the paper).

Contribution types describe, for an expression's value, *which sources*
(initial field values, constants, formal parameters) flow into it, *how
many times* each contributes (cardinality 0/1/ω), and *through which
operations* (builtins and control-flow ``Cond``).  The three operators
are:

* ``⊕`` (:func:`ct_plus`) — combining contributions of sub-expressions
  (cardinalities add);
* ``⊔`` (:func:`ct_join`) — joining control-flow branches
  (cardinalities max, precision may drop);
* ``⊗`` (:func:`ct_scale`) — scaling by a (cardinality, ops) factor at
  function application sites (cardinalities multiply).

We refine the paper's single per-type precision bit into a per-source
``exact`` flag: joining branches where a source is applied *different*
operation sets (both with non-zero cardinality) makes that source
inexact, while sources merely absent from one branch stay exact.  This
keeps the canonical ERC20 ``match … Some b => add b amount | None =>
amount`` write exactly summarisable, as Fig. 8 requires.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Union


class Card(enum.IntEnum):
    """Cardinality lattice 0 ⊑ 1 ⊑ ω."""

    ZERO = 0
    ONE = 1
    MANY = 2

    def __str__(self) -> str:
        return {0: "0", 1: "1", 2: "ω"}[int(self)]


def card_plus(a: Card, b: Card) -> Card:
    """⊕ : 0 is the unit; 1 ⊕ 1 = ω."""
    if a is Card.ZERO:
        return b
    if b is Card.ZERO:
        return a
    return Card.MANY


def card_join(a: Card, b: Card) -> Card:
    """⊔ : least upper bound."""
    return Card(max(int(a), int(b)))


def card_mult(a: Card, b: Card) -> Card:
    """⊗ : 0 annihilates; 1 is the unit."""
    if a is Card.ZERO or b is Card.ZERO:
        return Card.ZERO
    if a is Card.ONE:
        return b
    if b is Card.ONE:
        return a
    return Card.MANY


# --------------------------------------------------------------------------
# Operations (applied to contribution sources).
# --------------------------------------------------------------------------

COND_OP = "Cond"  # control-flow dependence pseudo-operation


# --------------------------------------------------------------------------
# Keys of pseudo-fields (map entries indexed by transition parameters).
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ParamKey:
    """A map key that is a transition parameter (incl. ``_sender``)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConstKey:
    """A map key that is a compile-time constant (literal or contract
    parameter)."""

    repr: str

    def __str__(self) -> str:
        return self.repr


Key = Union[ParamKey, ConstKey]


@dataclass(frozen=True)
class PseudoField:
    """A statically-describable state component: field plus key path.

    ``keys == ()`` denotes the whole field.  ``balances[_sender]`` is
    ``PseudoField("balances", (ParamKey("_sender"),))``.
    """

    field: str
    keys: tuple[Key, ...] = ()

    def __str__(self) -> str:
        return self.field + "".join(f"[{k}]" for k in self.keys)

    @property
    def is_whole_field(self) -> bool:
        return not self.keys

    def same_field(self, other: "PseudoField") -> bool:
        return self.field == other.field

    def may_alias(self, other: "PseudoField") -> bool:
        """Whether two pseudo-fields may denote the same location.

        Distinct constant keys at the same position prove disjointness;
        everything else (including distinct parameter names) may alias
        at runtime and needs a ``NoAliases`` check.
        """
        if self.field != other.field:
            return False
        for a, b in zip(self.keys, other.keys):
            if isinstance(a, ConstKey) and isinstance(b, ConstKey) and a != b:
                return False
        return True


# --------------------------------------------------------------------------
# Contribution sources.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class FieldSource:
    """The initial (transition-entry) value of a state component."""

    pf: PseudoField

    def __str__(self) -> str:
        return f"Field {self.pf}"


@dataclass(frozen=True)
class ConstSource:
    """A literal constant or immutable contract parameter."""

    repr: str = "c"

    def __str__(self) -> str:
        return f"Const {self.repr}"


@dataclass(frozen=True)
class FormalSource:
    """A transition parameter, or a function formal during analysis."""

    name: str

    def __str__(self) -> str:
        return f"Formal {self.name}"


Source = Union[FieldSource, ConstSource, FormalSource]


@dataclass(frozen=True)
class Contrib:
    """What one source contributes: cardinality, ops applied, exactness."""

    card: Card
    ops: frozenset[str] = frozenset()
    exact: bool = True

    def __str__(self) -> str:
        ops = ",".join(sorted(self.ops)) or "∅"
        mark = "" if self.exact else "~"
        return f"({self.card}, {{{ops}}}){mark}"


def contrib_plus(a: Contrib, b: Contrib) -> Contrib:
    return Contrib(card_plus(a.card, b.card), a.ops | b.ops, a.exact and b.exact)


def contrib_join(a: Contrib, b: Contrib) -> Contrib:
    # Op sets differing across branches with both contributions live is
    # the precision loss the paper's Inexact flag records.
    exact = a.exact and b.exact
    if a.card is not Card.ZERO and b.card is not Card.ZERO and a.ops != b.ops:
        exact = False
    return Contrib(card_join(a.card, b.card), a.ops | b.ops, exact)


def contrib_mult(a: Contrib, factor: Contrib) -> Contrib:
    return Contrib(
        card_mult(a.card, factor.card), a.ops | factor.ops,
        a.exact and factor.exact)


# --------------------------------------------------------------------------
# Contribution types.
# --------------------------------------------------------------------------

class ContribType:
    """Base class: CT (a source map), EFun, ⊤ or ⊥."""

    __slots__ = ()


@dataclass(frozen=True)
class CT(ContribType):
    """A finite map from sources to contributions."""

    sources: tuple[tuple[Source, Contrib], ...] = ()

    @staticmethod
    def of(mapping: dict[Source, Contrib]) -> "CT":
        items = tuple(sorted(
            ((s, c) for s, c in mapping.items() if c.card is not Card.ZERO
             or c.ops),
            key=lambda sc: str(sc[0])))
        return CT(items)

    def as_dict(self) -> dict[Source, Contrib]:
        return dict(self.sources)

    def get(self, source: Source) -> Contrib:
        for s, c in self.sources:
            if s == source:
                return c
        return Contrib(Card.ZERO)

    def field_sources(self) -> list[tuple[FieldSource, Contrib]]:
        return [(s, c) for s, c in self.sources if isinstance(s, FieldSource)]

    def __str__(self) -> str:
        if not self.sources:
            return "⟨⟩"
        inner = ", ".join(f"{s} ↦ {c}" for s, c in self.sources)
        return f"⟨{inner}⟩"


@dataclass(frozen=True)
class EFun(ContribType):
    """An analysis-level function: formal id plus body contribution."""

    param: str
    body: ContribType

    def __str__(self) -> str:
        return f"EFun {self.param}. {self.body}"


@dataclass(frozen=True)
class TopContrib(ContribType):
    def __str__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class BotContrib(ContribType):
    def __str__(self) -> str:
        return "⊥"


TOP = TopContrib()
BOT = BotContrib()
EMPTY = CT()


def const_ct(repr_: str = "c") -> CT:
    return CT.of({ConstSource(repr_): Contrib(Card.ONE)})


def formal_ct(name: str) -> CT:
    return CT.of({FormalSource(name): Contrib(Card.ONE)})


def field_ct(pf: PseudoField, ops: frozenset[str] = frozenset()) -> CT:
    return CT.of({FieldSource(pf): Contrib(Card.ONE, ops)})


def _binop(a: ContribType, b: ContribType, combine) -> ContribType:
    if isinstance(a, TopContrib) or isinstance(b, TopContrib):
        return TOP
    if isinstance(a, BotContrib):
        return b
    if isinstance(b, BotContrib):
        return a
    if isinstance(a, EFun) or isinstance(b, EFun):
        # Combining function values from different branches or operands:
        # degrade unless they are structurally identical.
        if a == b:
            return a
        return TOP
    assert isinstance(a, CT) and isinstance(b, CT)
    out = a.as_dict()
    for s, c in b.sources:
        out[s] = combine(out[s], c) if s in out else c
    return CT.of(out)


def ct_plus(a: ContribType, b: ContribType) -> ContribType:
    """⊕ — combine contributions of independent sub-expressions."""
    return _binop(a, b, contrib_plus)


def ct_join(a: ContribType, b: ContribType) -> ContribType:
    """⊔ — join contributions of alternative control-flow branches."""
    if isinstance(a, TopContrib) or isinstance(b, TopContrib):
        return TOP
    if isinstance(a, BotContrib):
        return b
    if isinstance(b, BotContrib):
        return a
    if isinstance(a, EFun) or isinstance(b, EFun):
        return a if a == b else TOP
    assert isinstance(a, CT) and isinstance(b, CT)
    out: dict[Source, Contrib] = {}
    zero = Contrib(Card.ZERO)
    for s in {s for s, _ in a.sources} | {s for s, _ in b.sources}:
        out[s] = contrib_join(a.get(s) or zero, b.get(s) or zero)
    return CT.of(out)


def ct_scale(a: ContribType, factor: Contrib) -> ContribType:
    """⊗ — scale by a (cardinality, ops) factor."""
    if isinstance(a, TopContrib):
        return TOP
    if isinstance(a, BotContrib):
        return BOT
    if isinstance(a, EFun):
        return EFun(a.param, ct_scale(a.body, factor))
    assert isinstance(a, CT)
    return CT.of({s: contrib_mult(c, factor) for s, c in a.sources})


def ct_add_op(a: ContribType, op: str) -> ContribType:
    """Record an operation applied to every source (the Builtin rule)."""
    if isinstance(a, (TopContrib, BotContrib)):
        return a
    if isinstance(a, EFun):
        return EFun(a.param, ct_add_op(a.body, op))
    assert isinstance(a, CT)
    return CT.of({s: Contrib(c.card, c.ops | {op}, c.exact)
                  for s, c in a.sources})


def ct_mark_cond(a: ContribType, exact: bool) -> ContribType:
    """AdaptC — demote to a pure control-flow contribution.

    Every source keeps its identity but with cardinality 0 and the
    ``Cond`` pseudo-op, recording that it influenced control flow.
    """
    if isinstance(a, (TopContrib, BotContrib)):
        return a
    if isinstance(a, EFun):
        return ct_mark_cond(a.body, exact)
    assert isinstance(a, CT)
    return CT.of({s: Contrib(Card.ZERO, frozenset({COND_OP}), exact and c.exact)
                  for s, c in a.sources})


def subst_formal(ct: ContribType, formal: str, arg: ContribType) -> ContribType:
    """Substitute a formal's contribution by the actual argument's.

    Used when applying an :class:`EFun`: every occurrence of
    ``Formal formal`` with contribution (card, ops) is replaced by
    ``arg ⊗ (card, ops)``.
    """
    if isinstance(ct, (TopContrib, BotContrib)):
        return ct
    if isinstance(ct, EFun):
        return EFun(ct.param, subst_formal(ct.body, formal, arg))
    assert isinstance(ct, CT)
    target = FormalSource(formal)
    rest: dict[Source, Contrib] = {}
    hit: Contrib | None = None
    for s, c in ct.sources:
        if s == target:
            hit = c
        else:
            rest[s] = c
    result: ContribType = CT.of(rest)
    if hit is not None:
        result = ct_plus(result, ct_scale(arg, hit))
    return result


def ct_apply(func: ContribType, arg: ContribType) -> ContribType:
    """Apply a contribution-level function to an argument (App rule)."""
    if isinstance(func, EFun):
        return subst_formal(func.body, func.param, arg)
    if isinstance(func, TopContrib):
        return TOP
    if isinstance(func, BotContrib):
        return ct_scale(arg, Contrib(Card.MANY, frozenset(), False))
    # Applying an unknown/first-class function value: assume the argument
    # may contribute many times through unknown operations.
    scaled = ct_scale(arg, Contrib(Card.MANY, frozenset(), False))
    return ct_plus(ct_scale(func, Contrib(Card.MANY, frozenset(), False)), scaled)


def ct_sum(items: Iterable[ContribType]) -> ContribType:
    out: ContribType = EMPTY
    for item in items:
        out = ct_plus(out, item)
    return out


def ct_join_all(items: Iterable[ContribType]) -> ContribType:
    out: ContribType = BOT
    for item in items:
        out = ct_join(out, item)
    return out
