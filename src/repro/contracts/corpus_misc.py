"""Remaining corpus contracts: infrastructure, UD family, and the
small demo contracts from the bottom of Fig. 12."""

# Map_cornercases: exercises nested maps, deletes, whole-map stores.
MAP_CORNERCASES = """
scilla_version 0

library MapCornercases

let zero = Uint128 0

contract MapCornercases (admin: ByStr20)

field shallow : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field nested : Map ByStr20 (Map String Uint128) =
  Emp ByStr20 (Map String Uint128)
field scratch : Map ByStr20 Uint128 = Emp ByStr20 Uint128

transition PutShallow (key: ByStr20, value: Uint128)
  shallow[key] := value
end

transition PutNested (key: ByStr20, subkey: String, value: Uint128)
  nested[key][subkey] := value
end

transition DeleteNested (key: ByStr20, subkey: String)
  present <- exists nested[key][subkey];
  match present with
  | False =>
    e = { _exception : "NoSuchEntry" };
    throw e
  | True =>
    delete nested[key][subkey]
  end
end

transition ResetScratch ()
  ok = builtin eq _sender admin;
  match ok with
  | False =>
    e = { _exception : "NotAdmin" };
    throw e
  | True =>
    empty = Emp ByStr20 Uint128;
    scratch := empty
  end
end

transition CopyEntry (from_key: ByStr20, to_key: ByStr20)
  v_opt <- shallow[from_key];
  match v_opt with
  | None =>
    e = { _exception : "NoSuchEntry" };
    throw e
  | Some v =>
    scratch[to_key] := v
  end
end
"""

# HTLC: hash time-locked contract for atomic cross-chain swaps.
HTLC = """
scilla_version 0

library HTLC

let zero = Uint128 0

contract HTLC (beneficiary: ByStr20, hashlock: ByStr32, timelock: BNum)

field funded_amount : Uint128 = Uint128 0
field depositor : ByStr20 = beneficiary
field claimed : Bool = False

transition Fund ()
  current <- funded_amount;
  already = builtin lt zero current;
  match already with
  | True =>
    e = { _exception : "AlreadyFunded" };
    throw e
  | False =>
    accept;
    funded_amount := _amount;
    depositor := _sender
  end
end

transition Claim (preimage: String)
  done <- claimed;
  match done with
  | True =>
    e = { _exception : "AlreadyClaimed" };
    throw e
  | False =>
    digest = builtin sha256hash preimage;
    matches = builtin eq digest hashlock;
    match matches with
    | False =>
      e = { _exception : "WrongPreimage" };
      throw e
    | True =>
      amount <- funded_amount;
      flag = True;
      claimed := flag;
      msg = { _tag : "HTLCClaim"; _recipient : beneficiary;
              _amount : amount };
      msgs = one_msg msg;
      send msgs
    end
  end
end

transition Refund ()
  blk <- & BLOCKNUMBER;
  early = builtin blt blk timelock;
  match early with
  | True =>
    e = { _exception : "TimelockActive" };
    throw e
  | False =>
    done <- claimed;
    match done with
    | True =>
      e = { _exception : "AlreadyClaimed" };
      throw e
    | False =>
      amount <- funded_amount;
      original_depositor <- depositor;
      flag = True;
      claimed := flag;
      msg = { _tag : "HTLCRefund"; _recipient : original_depositor;
              _amount : amount };
      msgs = one_msg msg;
      send msgs
    end
  end
end
"""

# Multisig: 2-phase wallet — submit then confirm, nested-map votes.
MULTISIG = """
scilla_version 0

library Multisig

let one = Uint32 1
let zero32 = Uint32 0

contract Multisig
(
  owner_a: ByStr20,
  owner_b: ByStr20,
  owner_c: ByStr20,
  required: Uint32
)

field proposals : Map Uint32 ByStr20 = Emp Uint32 ByStr20
field amounts : Map Uint32 Uint128 = Emp Uint32 Uint128
field confirmations : Map Uint32 (Map ByStr20 Bool) =
  Emp Uint32 (Map ByStr20 Bool)
field confirmation_counts : Map Uint32 Uint32 = Emp Uint32 Uint32
field executed : Map Uint32 Bool = Emp Uint32 Bool

procedure ThrowIfNotOwner ()
  is_a = builtin eq _sender owner_a;
  is_b = builtin eq _sender owner_b;
  is_c = builtin eq _sender owner_c;
  ab = orb is_a is_b;
  ok = orb ab is_c;
  match ok with
  | True =>
  | False =>
    e = { _exception : "NotAnOwner" };
    throw e
  end
end

transition Deposit ()
  accept
end

transition Submit (proposal_id: Uint32, destination: ByStr20,
                   amount: Uint128)
  ThrowIfNotOwner;
  taken <- exists proposals[proposal_id];
  match taken with
  | True =>
    e = { _exception : "ProposalExists" };
    throw e
  | False =>
    proposals[proposal_id] := destination;
    amounts[proposal_id] := amount;
    confirmation_counts[proposal_id] := zero32
  end
end

transition Confirm (proposal_id: Uint32)
  ThrowIfNotOwner;
  known <- exists proposals[proposal_id];
  match known with
  | False =>
    e = { _exception : "NoSuchProposal" };
    throw e
  | True =>
    voted <- exists confirmations[proposal_id][_sender];
    match voted with
    | True =>
      e = { _exception : "AlreadyConfirmed" };
      throw e
    | False =>
      flag = True;
      confirmations[proposal_id][_sender] := flag;
      count_opt <- confirmation_counts[proposal_id];
      new_count = match count_opt with
                  | Some c => builtin add c one
                  | None => one
                  end;
      confirmation_counts[proposal_id] := new_count
    end
  end
end

transition Execute (proposal_id: Uint32)
  ThrowIfNotOwner;
  done <- exists executed[proposal_id];
  match done with
  | True =>
    e = { _exception : "AlreadyExecuted" };
    throw e
  | False =>
    count_opt <- confirmation_counts[proposal_id];
    count = match count_opt with
            | Some c => c
            | None => zero32
            end;
    short = builtin lt count required;
    match short with
    | True =>
      e = { _exception : "NotEnoughConfirmations" };
      throw e
    | False =>
      dest_opt <- proposals[proposal_id];
      amount_opt <- amounts[proposal_id];
      match dest_opt with
      | None =>
        e = { _exception : "NoSuchProposal" };
        throw e
      | Some dest =>
        amount = match amount_opt with
                 | Some a => a
                 | None => Uint128 0
                 end;
        flag = True;
        executed[proposal_id] := flag;
        msg = { _tag : "MultisigPayout"; _recipient : dest;
                _amount : amount };
        msgs = one_msg msg;
        send msgs
      end
    end
  end
end
"""

# LandMRToken: land parcels with rental yield accrual.
LAND_MR_TOKEN = """
scilla_version 0

library LandMRToken

let zero = Uint128 0

contract LandMRToken (land_office: ByStr20)

field parcels : Map Uint256 ByStr20 = Emp Uint256 ByStr20
field rents : Map Uint256 Uint128 = Emp Uint256 Uint128
field yield_owed : Map ByStr20 Uint128 = Emp ByStr20 Uint128

transition GrantParcel (parcel_id: Uint256, owner: ByStr20, rent: Uint128)
  ok = builtin eq _sender land_office;
  match ok with
  | False =>
    e = { _exception : "NotLandOffice" };
    throw e
  | True =>
    taken <- exists parcels[parcel_id];
    match taken with
    | True =>
      e = { _exception : "ParcelTaken" };
      throw e
    | False =>
      parcels[parcel_id] := owner;
      rents[parcel_id] := rent
    end
  end
end

transition PayRent (parcel_id: Uint256, landlord: ByStr20)
  owner_opt <- parcels[parcel_id];
  match owner_opt with
  | None =>
    e = { _exception : "UnknownParcel" };
    throw e
  | Some owner =>
    rightful = builtin eq owner landlord;
    match rightful with
    | False =>
      e = { _exception : "WrongLandlord" };
      throw e
    | True =>
      rent_opt <- rents[parcel_id];
      rent = match rent_opt with
             | Some r => r
             | None => zero
             end;
      underpaid = builtin lt _amount rent;
      match underpaid with
      | True =>
        e = { _exception : "RentUnderpaid" };
        throw e
      | False =>
        accept;
        owed_opt <- yield_owed[landlord];
        new_owed = match owed_opt with
                   | Some o => builtin add o _amount
                   | None => _amount
                   end;
        yield_owed[landlord] := new_owed
      end
    end
  end
end

transition CollectYield ()
  owed_opt <- yield_owed[_sender];
  match owed_opt with
  | None =>
    e = { _exception : "NothingOwed" };
    throw e
  | Some owed =>
    delete yield_owed[_sender];
    msg = { _tag : "YieldPayout"; _recipient : _sender; _amount : owed };
    msgs = one_msg msg;
    send msgs
  end
end
"""

# ProxyContract: forwards calls to an upgradable implementation —
# the forwarding target is read from state, so calls are unsummarisable.
PROXY_CONTRACT = """
scilla_version 0

library ProxyContract

let zero = Uint128 0

contract ProxyContract (proxy_admin: ByStr20, initial_impl: ByStr20)

field implementation : ByStr20 = initial_impl
field forwarded : Uint128 = Uint128 0

transition Forward (tag: String)
  impl <- implementation;
  n <- forwarded;
  one = Uint128 1;
  new_n = builtin add n one;
  forwarded := new_n;
  msg = { _tag : "ProxiedCall"; _recipient : impl; _amount : _amount;
          original_sender : _sender; original_tag : tag };
  msgs = one_msg msg;
  send msgs
end

transition Upgrade (new_impl: ByStr20)
  ok = builtin eq _sender proxy_admin;
  match ok with
  | False =>
    e = { _exception : "NotProxyAdmin" };
    throw e
  | True =>
    implementation := new_impl
  end
end
"""

# UD_operator_contract: per-user operator permissions for the registry.
UD_OPERATOR_CONTRACT = """
scilla_version 0

library UDOperatorContract

contract UDOperatorContract (registry: ByStr20)

field permissions : Map ByStr20 (Map ByStr20 Bool) =
  Emp ByStr20 (Map ByStr20 Bool)

transition Allow (operator: ByStr20)
  flag = True;
  permissions[_sender][operator] := flag;
  e = { _eventname : "OperatorAllowed"; operator : operator };
  event e
end

transition Revoke (operator: ByStr20)
  delete permissions[_sender][operator];
  e = { _eventname : "OperatorRevoked"; operator : operator };
  event e
end
"""

# UD_resolver: record storage for one domain owner.
UD_RESOLVER = """
scilla_version 0

library UDResolver

contract UDResolver (resolver_owner: ByStr20, node: ByStr32)

field records : Map String String = Emp String String

procedure ThrowIfNotResolverOwner ()
  ok = builtin eq _sender resolver_owner;
  match ok with
  | True =>
  | False =>
    e = { _exception : "NotResolverOwner" };
    throw e
  end
end

transition Set (key: String, value: String)
  ThrowIfNotResolverOwner;
  records[key] := value;
  e = { _eventname : "RecordSet"; key : key };
  event e
end

transition Unset (key: String)
  ThrowIfNotResolverOwner;
  present <- exists records[key];
  match present with
  | False =>
    e = { _exception : "NoSuchRecord" };
    throw e
  | True =>
    delete records[key];
    e = { _eventname : "RecordUnset"; key : key };
    event e
  end
end
"""

# UD_primitive_version: minimal name → address mapping.
UD_PRIMITIVE_VERSION = """
scilla_version 0

library UDPrimitiveVersion

contract UDPrimitiveVersion (registrar: ByStr20)

field names : Map String ByStr20 = Emp String ByStr20

transition Claim (name: String)
  taken <- exists names[name];
  match taken with
  | True =>
    e = { _exception : "NameTaken" };
    throw e
  | False =>
    names[name] := _sender
  end
end

transition Forfeit (name: String)
  owner_opt <- names[name];
  match owner_opt with
  | None =>
    e = { _exception : "NoSuchName" };
    throw e
  | Some owner =>
    is_owner = builtin eq _sender owner;
    match is_owner with
    | False =>
      e = { _exception : "NotYourName" };
      throw e
    | True =>
      delete names[name]
    end
  end
end
"""

# UD_escrow: escrowed domain sales with buyer/seller settlement.
UD_ESCROW = """
scilla_version 0

library UDEscrow

let zero = Uint128 0

contract UDEscrow (arbiter: ByStr20)

field listings : Map ByStr32 ByStr20 = Emp ByStr32 ByStr20
field asking_prices : Map ByStr32 Uint128 = Emp ByStr32 Uint128
field escrowed : Map ByStr32 ByStr20 = Emp ByStr32 ByStr20
field escrow_amounts : Map ByStr32 Uint128 = Emp ByStr32 Uint128

transition ListDomain (node: ByStr32, price: Uint128)
  taken <- exists listings[node];
  match taken with
  | True =>
    e = { _exception : "AlreadyListed" };
    throw e
  | False =>
    listings[node] := _sender;
    asking_prices[node] := price
  end
end

transition DepositPayment (node: ByStr32)
  price_opt <- asking_prices[node];
  match price_opt with
  | None =>
    e = { _exception : "NotListed" };
    throw e
  | Some price =>
    underpaid = builtin lt _amount price;
    match underpaid with
    | True =>
      e = { _exception : "Underpaid" };
      throw e
    | False =>
      accept;
      escrowed[node] := _sender;
      escrow_amounts[node] := _amount
    end
  end
end

transition ReleaseToSeller (node: ByStr32)
  ok = builtin eq _sender arbiter;
  match ok with
  | False =>
    e = { _exception : "NotArbiter" };
    throw e
  | True =>
    seller_opt <- listings[node];
    amount_opt <- escrow_amounts[node];
    match seller_opt with
    | None =>
      e = { _exception : "NotListed" };
      throw e
    | Some seller =>
      amount = match amount_opt with
               | Some a => a
               | None => zero
               end;
      delete listings[node];
      delete asking_prices[node];
      delete escrowed[node];
      delete escrow_amounts[node];
      msg = { _tag : "EscrowRelease"; _recipient : seller;
              _amount : amount };
      msgs = one_msg msg;
      send msgs
    end
  end
end

transition RefundBuyer (node: ByStr32)
  ok = builtin eq _sender arbiter;
  match ok with
  | False =>
    e = { _exception : "NotArbiter" };
    throw e
  | True =>
    buyer_opt <- escrowed[node];
    amount_opt <- escrow_amounts[node];
    match buyer_opt with
    | None =>
      e = { _exception : "NothingEscrowed" };
      throw e
    | Some buyer =>
      amount = match amount_opt with
               | Some a => a
               | None => zero
               end;
      delete escrowed[node];
      delete escrow_amounts[node];
      msg = { _tag : "EscrowRefund"; _recipient : buyer;
              _amount : amount };
      msgs = one_msg msg;
      send msgs
    end
  end
end
"""

# HelloWorld: the canonical first Scilla contract.
HELLO_WORLD = """
scilla_version 0

library HelloWorld

let hello = "Hello world!"

contract HelloWorld (contract_owner: ByStr20)

field welcome_msg : String = ""

transition SetHello (msg: String)
  is_owner = builtin eq _sender contract_owner;
  match is_owner with
  | False =>
    e = { _exception : "NotOwner" };
    throw e
  | True =>
    welcome_msg := msg;
    e = { _eventname : "SetHello" };
    event e
  end
end

transition GetHello ()
  greeting <- welcome_msg;
  e = { _eventname : "GetHello"; msg : greeting };
  event e
end
"""

# Schnorr: signature verification playground.
SCHNORR = """
scilla_version 0

library Schnorr

contract Schnorr (trusted_key: ByStr)

field verified_count : Uint64 = Uint64 0

transition Verify (message: ByStr32, signature: ByStr32)
  ok = builtin schnorr_verify trusted_key message signature;
  match ok with
  | False =>
    e = { _exception : "BadSignature" };
    throw e
  | True =>
    n <- verified_count;
    one = Uint64 1;
    new_n = builtin add n one;
    verified_count := new_n;
    e = { _eventname : "Verified"; message : message };
    event e
  end
end
"""

# FirstContract: a counter everyone can bump.
FIRST_CONTRACT = """
scilla_version 0

library FirstContract

let one = Uint128 1

contract FirstContract (deployer: ByStr20)

field counter : Uint128 = Uint128 0

transition Increment ()
  c <- counter;
  new_c = builtin add c one;
  counter := new_c
end
"""

# TestSender: sends notification messages around (zero funds).
TEST_SENDER = """
scilla_version 0

library TestSender

let zero = Uint128 0

contract TestSender (buddy: ByStr20)

field pings : Uint128 = Uint128 0

transition Ping (target: ByStr20)
  p <- pings;
  one = Uint128 1;
  new_p = builtin add p one;
  pings := new_p;
  msg = { _tag : "Ping"; _recipient : target; _amount : zero;
          from : _sender };
  msgs = one_msg msg;
  send msgs
end

transition PingBuddy ()
  p <- pings;
  one = Uint128 1;
  new_p = builtin add p one;
  pings := new_p;
  msg = { _tag : "Ping"; _recipient : buddy; _amount : zero;
          from : _sender };
  msgs = one_msg msg;
  send msgs
end
"""
