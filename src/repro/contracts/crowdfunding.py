"""Crowdfunding — the classic Scilla campaign contract.

Three transitions; the only possible sharding selection is
{Donate, ClaimBack} (GetFunds notifies the beneficiary read from a
field, which the analysis cannot summarise).  ``raised`` is an
IntMerge field whose reads in ClaimBack are weak (monotone: other
shards can only increase it).
"""

CROWDFUNDING = """
scilla_version 0

library Crowdfunding

let zero = Uint128 0

let one_msg = fun (msg: Message) =>
  let nil_msg = Nil {Message} in
  Cons {Message} msg nil_msg

contract Crowdfunding
(
  campaign_owner: ByStr20,
  goal: Uint128,
  deadline: BNum
)

field backers : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field beneficiary : ByStr20 = campaign_owner
field raised : Uint128 = Uint128 0
field collected : Bool = False

procedure ThrowIfAfterDeadline ()
  blk <- & BLOCKNUMBER;
  after = builtin blt deadline blk;
  match after with
  | True =>
    e = { _exception : "DeadlinePassed" };
    throw e
  | False =>
  end
end

transition Donate ()
  ThrowIfAfterDeadline;
  already <- exists backers[_sender];
  match already with
  | True =>
    e = { _exception : "AlreadyBacked" };
    throw e
  | False =>
    accept;
    backers[_sender] := _amount;
    r <- raised;
    new_raised = builtin add r _amount;
    raised := new_raised;
    e = { _eventname : "DonationReceived"; donor : _sender;
          amount : _amount };
    event e
  end
end

transition GetFunds ()
  is_owner = builtin eq _sender campaign_owner;
  match is_owner with
  | False =>
    e = { _exception : "NotCampaignOwner" };
    throw e
  | True =>
    blk <- & BLOCKNUMBER;
    before = builtin blt blk deadline;
    match before with
    | True =>
      e = { _exception : "CampaignStillRunning" };
      throw e
    | False =>
      r <- raised;
      failed = builtin lt r goal;
      match failed with
      | True =>
        e = { _exception : "GoalNotReached" };
        throw e
      | False =>
        done = True;
        collected := done;
        payout_target <- beneficiary;
        msg = { _tag : "CampaignFunds"; _recipient : payout_target;
                _amount : r };
        msgs = one_msg msg;
        send msgs
      end
    end
  end
end

transition ClaimBack ()
  blk <- & BLOCKNUMBER;
  before = builtin blt blk deadline;
  match before with
  | True =>
    e = { _exception : "CampaignStillRunning" };
    throw e
  | False =>
    r <- raised;
    reached = builtin lt r goal;
    match reached with
    | False =>
      e = { _exception : "GoalReached" };
      throw e
    | True =>
      donation_opt <- backers[_sender];
      match donation_opt with
      | None =>
        e = { _exception : "NotABacker" };
        throw e
      | Some donation =>
        delete backers[_sender];
        new_raised = builtin sub r donation;
        raised := new_raised;
        msg = { _tag : "Refund"; _recipient : _sender;
                _amount : donation };
        msgs = one_msg msg;
        send msgs
      end
    end
  end
end
"""
