"""FungibleToken — Zilliqa's ERC20 equivalent (ZRC-2 style).

The paper's headline contract: 10 transitions, of which the 6 token
operations form the largest good-enough signature ({Mint, Burn,
Transfer, TransferFrom, IncreaseAllowance, DecreaseAllowance}); the
administrative transitions hog the configuration fields.  The paper's
evaluation shards Mint, Transfer and TransferFrom.
"""

FUNGIBLE_TOKEN = """
scilla_version 0

library FungibleToken

let zero = Uint128 0

let one_msg = fun (msg: Message) =>
  let nil_msg = Nil {Message} in
  Cons {Message} msg nil_msg

contract FungibleToken
(
  contract_owner: ByStr20,
  name: String,
  symbol: String,
  decimals: Uint32,
  init_supply: Uint128
)

field total_supply : Uint128 = init_supply

field balances : Map ByStr20 Uint128 =
  let emp = Emp ByStr20 Uint128 in
  builtin put emp contract_owner init_supply

field allowances : Map ByStr20 (Map ByStr20 Uint128) =
  Emp ByStr20 (Map ByStr20 Uint128)

field owner : ByStr20 = contract_owner
field treasury : ByStr20 = contract_owner
field paused : Bool = False

(* ------------------------------------------------------------------ *)
(* Access-control and safety procedures                               *)
(* ------------------------------------------------------------------ *)

procedure ThrowIfPaused ()
  p <- paused;
  match p with
  | True =>
    e = { _exception : "ContractPaused" };
    throw e
  | False =>
  end
end

procedure ThrowIfNotOwner ()
  current_owner <- owner;
  is_owner = builtin eq _sender current_owner;
  match is_owner with
  | True =>
  | False =>
    e = { _exception : "NotOwner" };
    throw e
  end
end

procedure MoveBalance (from: ByStr20, to: ByStr20, amount: Uint128)
  bal_opt <- balances[from];
  bal = match bal_opt with
        | Some b => b
        | None => zero
        end;
  insufficient = builtin lt bal amount;
  match insufficient with
  | True =>
    e = { _exception : "InsufficientFunds" };
    throw e
  | False =>
    new_from_bal = builtin sub bal amount;
    balances[from] := new_from_bal;
    to_bal_opt <- balances[to];
    new_to_bal = match to_bal_opt with
                 | Some b => builtin add b amount
                 | None => amount
                 end;
    balances[to] := new_to_bal
  end
end

(* ------------------------------------------------------------------ *)
(* Token transitions (the shardable core)                             *)
(* ------------------------------------------------------------------ *)

transition Mint (recipient: ByStr20, amount: Uint128)
  ThrowIfPaused;
  ThrowIfNotOwner;
  bal_opt <- balances[recipient];
  new_bal = match bal_opt with
            | Some b => builtin add b amount
            | None => amount
            end;
  balances[recipient] := new_bal;
  supply <- total_supply;
  new_supply = builtin add supply amount;
  total_supply := new_supply;
  e = { _eventname : "Minted"; minter : _sender;
        recipient : recipient; amount : amount };
  event e
end

transition Burn (amount: Uint128)
  ThrowIfPaused;
  bal_opt <- balances[_sender];
  bal = match bal_opt with
        | Some b => b
        | None => zero
        end;
  insufficient = builtin lt bal amount;
  match insufficient with
  | True =>
    e = { _exception : "InsufficientFunds" };
    throw e
  | False =>
    new_bal = builtin sub bal amount;
    balances[_sender] := new_bal;
    supply <- total_supply;
    new_supply = builtin sub supply amount;
    total_supply := new_supply;
    ev = { _eventname : "Burnt"; burner : _sender; amount : amount };
    event ev
  end
end

transition Transfer (to: ByStr20, amount: Uint128)
  ThrowIfPaused;
  MoveBalance _sender to amount;
  e = { _eventname : "TransferSuccess"; sender : _sender;
        recipient : to; amount : amount };
  event e;
  msg_to_recipient = { _tag : "RecipientAcceptTransfer"; _recipient : to;
                       _amount : zero; sender : _sender; amount : amount };
  msgs = one_msg msg_to_recipient;
  send msgs
end

transition TransferFrom (from: ByStr20, to: ByStr20, amount: Uint128)
  ThrowIfPaused;
  allowance_opt <- allowances[from][_sender];
  allowance = match allowance_opt with
              | Some a => a
              | None => zero
              end;
  not_allowed = builtin lt allowance amount;
  match not_allowed with
  | True =>
    e = { _exception : "InsufficientAllowance" };
    throw e
  | False =>
    new_allowance = builtin sub allowance amount;
    allowances[from][_sender] := new_allowance;
    MoveBalance from to amount;
    e = { _eventname : "TransferFromSuccess"; initiator : _sender;
          sender : from; recipient : to; amount : amount };
    event e
  end
end

transition IncreaseAllowance (spender: ByStr20, amount: Uint128)
  ThrowIfPaused;
  current_opt <- allowances[_sender][spender];
  new_allowance = match current_opt with
                  | Some a => builtin add a amount
                  | None => amount
                  end;
  allowances[_sender][spender] := new_allowance;
  e = { _eventname : "IncreasedAllowance"; token_owner : _sender;
        spender : spender; new_allowance : new_allowance };
  event e
end

transition DecreaseAllowance (spender: ByStr20, amount: Uint128)
  ThrowIfPaused;
  current_opt <- allowances[_sender][spender];
  current = match current_opt with
            | Some a => a
            | None => zero
            end;
  too_much = builtin lt current amount;
  match too_much with
  | True =>
    e = { _exception : "AllowanceBelowZero" };
    throw e
  | False =>
    new_allowance = builtin sub current amount;
    allowances[_sender][spender] := new_allowance;
    e = { _eventname : "DecreasedAllowance"; token_owner : _sender;
          spender : spender; new_allowance : new_allowance };
    event e
  end
end

(* ------------------------------------------------------------------ *)
(* Administrative transitions                                          *)
(* ------------------------------------------------------------------ *)

transition Pause ()
  ThrowIfNotOwner;
  new_state = True;
  paused := new_state;
  e = { _eventname : "Paused" };
  event e
end

transition Unpause ()
  ThrowIfNotOwner;
  new_state = False;
  paused := new_state;
  e = { _eventname : "Unpaused" };
  event e
end

transition ChangeOwner (new_owner: ByStr20)
  ThrowIfNotOwner;
  owner := new_owner;
  e = { _eventname : "OwnerChanged"; new_owner : new_owner };
  event e
end

transition ChangeTreasury (new_treasury: ByStr20)
  ThrowIfNotOwner;
  old_treasury <- treasury;
  treasury := new_treasury;
  msg = { _tag : "TreasuryChanged"; _recipient : old_treasury;
          _amount : zero; new_treasury : new_treasury };
  msgs = one_msg msg;
  send msgs
end
"""
