"""Unstoppable Domains registry — the most popular Zilliqa contract.

Eleven transitions; per the paper's evaluation, the high-traffic ones
(Bestow — granting a new domain — and the record-configuration
transitions, ~90% of usage) are sharded, while ownership transfers use
operator authorisation keyed by owners read from the state and cannot
be (⊥).
"""

UD_REGISTRY = """
scilla_version 0

library UDRegistry

let zero = Uint128 0
let true = True

contract UDRegistry
(
  initial_admin: ByStr20,
  initial_registrar: ByStr20
)

field records : Map ByStr32 ByStr20 = Emp ByStr32 ByStr20
field resolvers : Map ByStr32 ByStr20 = Emp ByStr32 ByStr20
field registered_at : Map ByStr32 BNum = Emp ByStr32 BNum
field approvals : Map ByStr32 ByStr20 = Emp ByStr32 ByStr20
field operators : Map ByStr20 (Map ByStr20 Bool) =
  Emp ByStr20 (Map ByStr20 Bool)
field invites : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field admin : ByStr20 = initial_admin
field registrar : ByStr20 = initial_registrar

(* ------------------------------------------------------------------ *)
(* Authorisation procedures                                            *)
(* ------------------------------------------------------------------ *)

procedure ThrowIfNotAdmin ()
  a <- admin;
  ok = builtin eq _sender a;
  match ok with
  | True =>
  | False =>
    e = { _exception : "NotAdmin" };
    throw e
  end
end

procedure RequireOwnerOrAdmin (node: ByStr32)
  owner_opt <- records[node];
  match owner_opt with
  | None =>
    e = { _exception : "UnknownNode" };
    throw e
  | Some owner =>
    is_owner = builtin eq _sender owner;
    a <- admin;
    is_admin = builtin eq _sender a;
    ok = orb is_owner is_admin;
    match ok with
    | True =>
    | False =>
      e = { _exception : "NotAuthorized" };
      throw e
    end
  end
end

(* ------------------------------------------------------------------ *)
(* Sharded in the evaluation: bestow + configuration                   *)
(* ------------------------------------------------------------------ *)

transition Bestow (node: ByStr32, owner: ByStr20, resolver: ByStr20)
  r <- registrar;
  is_registrar = builtin eq _sender r;
  match is_registrar with
  | False =>
    e = { _exception : "NotRegistrar" };
    throw e
  | True =>
    taken <- exists records[node];
    match taken with
    | True =>
      e = { _exception : "NodeTaken" };
      throw e
    | False =>
      records[node] := owner;
      resolvers[node] := resolver;
      blk <- & BLOCKNUMBER;
      registered_at[node] := blk;
      e = { _eventname : "Bestowed"; node : node; owner : owner };
      event e
    end
  end
end

transition ConfigureNode (node: ByStr32, new_owner: ByStr20)
  RequireOwnerOrAdmin node;
  records[node] := new_owner;
  e = { _eventname : "NodeConfigured"; node : node;
        new_owner : new_owner };
  event e
end

transition ConfigureResolver (node: ByStr32, new_resolver: ByStr20)
  RequireOwnerOrAdmin node;
  resolvers[node] := new_resolver;
  e = { _eventname : "ResolverConfigured"; node : node;
        new_resolver : new_resolver };
  event e
end

transition Approve (node: ByStr32, spender: ByStr20)
  RequireOwnerOrAdmin node;
  approvals[node] := spender;
  e = { _eventname : "Approved"; node : node; spender : spender };
  event e
end

transition SetOperator (operator: ByStr20, enabled: Bool)
  operators[_sender][operator] := enabled;
  e = { _eventname : "OperatorSet"; operator : operator };
  event e
end

transition SendInvite (friend: ByStr20)
  count_opt <- invites[friend];
  new_count = match count_opt with
              | Some c =>
                let one = Uint128 1 in
                builtin add c one
              | None => Uint128 1
              end;
  invites[friend] := new_count;
  msg = { _tag : "InviteReceived"; _recipient : friend;
          _amount : zero; from : _sender };
  msgs = one_msg msg;
  send msgs
end

transition SetRegistrar (new_registrar: ByStr20)
  ThrowIfNotAdmin;
  registrar := new_registrar;
  e = { _eventname : "RegistrarChanged"; new_registrar : new_registrar };
  event e
end

(* ------------------------------------------------------------------ *)
(* Not shardable: operator authorisation reads owners from the state   *)
(* ------------------------------------------------------------------ *)

procedure RequireControl (node: ByStr32)
  owner_opt <- records[node];
  match owner_opt with
  | None =>
    e = { _exception : "UnknownNode" };
    throw e
  | Some owner =>
    is_owner = builtin eq _sender owner;
    op_opt <- operators[owner][_sender];
    is_operator = match op_opt with
                  | Some flag => flag
                  | None => False
                  end;
    ok = orb is_owner is_operator;
    match ok with
    | True =>
    | False =>
      e = { _exception : "NotAuthorized" };
      throw e
    end
  end
end

transition Transfer (node: ByStr32, new_owner: ByStr20)
  RequireControl node;
  records[node] := new_owner;
  delete approvals[node];
  e = { _eventname : "Transferred"; node : node; new_owner : new_owner };
  event e
end

transition Assign (node: ByStr32, parent: ByStr32, new_owner: ByStr20)
  RequireControl parent;
  records[node] := new_owner;
  e = { _eventname : "Assigned"; node : node; new_owner : new_owner };
  event e
end

transition Release (node: ByStr32)
  RequireControl node;
  delete records[node];
  delete resolvers[node];
  delete approvals[node];
  e = { _eventname : "Released"; node : node };
  event e
end

transition SetAdmin (new_admin: ByStr20)
  ThrowIfNotAdmin;
  old_admin <- admin;
  admin := new_admin;
  msg = { _tag : "AdminHandover"; _recipient : old_admin;
          _amount : zero; new_admin : new_admin };
  msgs = one_msg msg;
  send msgs
end
"""
