"""XSGD — the regulated Singapore-dollar stablecoin (18 transitions).

The largest contract in the corpus, matching the tail of the paper's
Sec. 5.1.2 histogram.  A full compliance-grade token: issuance and
redemption, third-party transfers with allowances, blacklisting with
law-enforcement fund wipes, per-account freezes, pausing, transfer
limits, and two administrative roles (issuer and compliance officer)
held in mutable fields.
"""

XSGD = """
scilla_version 0

library XSGD

let zero = Uint128 0
let true = True

contract XSGD (initial_issuer: ByStr20)

field balances : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field allowances : Map ByStr20 (Map ByStr20 Uint128) =
  Emp ByStr20 (Map ByStr20 Uint128)
field blacklist : Map ByStr20 Bool = Emp ByStr20 Bool
field frozen : Map ByStr20 Bool = Emp ByStr20 Bool
field supply : Uint128 = Uint128 0
field issuer : ByStr20 = initial_issuer
field compliance_officer : ByStr20 = initial_issuer
field fee_collector : ByStr20 = initial_issuer
field paused : Bool = False
field transfer_limit : Uint128 = Uint128 1000000000000

(* ------------------------------------------------------------------ *)
(* Guards                                                              *)
(* ------------------------------------------------------------------ *)

procedure ThrowIfPaused ()
  p <- paused;
  match p with
  | True =>
    e = { _exception : "Paused" };
    throw e
  | False =>
  end
end

procedure ThrowIfNotIssuer ()
  i <- issuer;
  ok = builtin eq _sender i;
  match ok with
  | True =>
  | False =>
    e = { _exception : "NotIssuer" };
    throw e
  end
end

procedure ThrowIfNotCompliance ()
  officer <- compliance_officer;
  ok = builtin eq _sender officer;
  match ok with
  | True =>
  | False =>
    e = { _exception : "NotComplianceOfficer" };
    throw e
  end
end

procedure ThrowIfBlacklisted (who: ByStr20)
  bad <- exists blacklist[who];
  match bad with
  | True =>
    e = { _exception : "Blacklisted" };
    throw e
  | False =>
  end
end

procedure ThrowIfFrozen (who: ByStr20)
  ice <- exists frozen[who];
  match ice with
  | True =>
    e = { _exception : "AccountFrozen" };
    throw e
  | False =>
  end
end

procedure ThrowIfOverLimit (amount: Uint128)
  limit <- transfer_limit;
  over = builtin lt limit amount;
  match over with
  | True =>
    e = { _exception : "OverTransferLimit" };
    throw e
  | False =>
  end
end

procedure MoveBalance (from: ByStr20, to: ByStr20, amount: Uint128)
  bal_opt <- balances[from];
  bal = match bal_opt with
        | Some b => b
        | None => zero
        end;
  insufficient = builtin lt bal amount;
  match insufficient with
  | True =>
    e = { _exception : "InsufficientFunds" };
    throw e
  | False =>
    new_from = builtin sub bal amount;
    balances[from] := new_from;
    to_opt <- balances[to];
    new_to = match to_opt with
             | Some b => builtin add b amount
             | None => amount
             end;
    balances[to] := new_to
  end
end

(* ------------------------------------------------------------------ *)
(* Issuance and redemption                                             *)
(* ------------------------------------------------------------------ *)

transition Issue (to: ByStr20, amount: Uint128)
  ThrowIfNotIssuer;
  ThrowIfPaused;
  ThrowIfBlacklisted to;
  bal_opt <- balances[to];
  new_bal = match bal_opt with
            | Some b => builtin add b amount
            | None => amount
            end;
  balances[to] := new_bal;
  s <- supply;
  new_s = builtin add s amount;
  supply := new_s;
  e = { _eventname : "Issued"; to : to; amount : amount };
  event e
end

transition Redeem (amount: Uint128)
  ThrowIfPaused;
  ThrowIfBlacklisted _sender;
  bal_opt <- balances[_sender];
  bal = match bal_opt with
        | Some b => b
        | None => zero
        end;
  insufficient = builtin lt bal amount;
  match insufficient with
  | True =>
    e = { _exception : "InsufficientFunds" };
    throw e
  | False =>
    new_bal = builtin sub bal amount;
    balances[_sender] := new_bal;
    s <- supply;
    new_s = builtin sub s amount;
    supply := new_s;
    e = { _eventname : "Redeemed"; who : _sender; amount : amount };
    event e
  end
end

(* ------------------------------------------------------------------ *)
(* Transfers                                                           *)
(* ------------------------------------------------------------------ *)

transition Transfer (to: ByStr20, amount: Uint128)
  ThrowIfPaused;
  ThrowIfBlacklisted _sender;
  ThrowIfBlacklisted to;
  ThrowIfFrozen _sender;
  ThrowIfOverLimit amount;
  MoveBalance _sender to amount
end

transition TransferFrom (from: ByStr20, to: ByStr20, amount: Uint128)
  ThrowIfPaused;
  ThrowIfBlacklisted from;
  ThrowIfBlacklisted to;
  ThrowIfFrozen from;
  ThrowIfOverLimit amount;
  allow_opt <- allowances[from][_sender];
  allow = match allow_opt with
          | Some a => a
          | None => zero
          end;
  short = builtin lt allow amount;
  match short with
  | True =>
    e = { _exception : "InsufficientAllowance" };
    throw e
  | False =>
    new_allow = builtin sub allow amount;
    allowances[from][_sender] := new_allow;
    MoveBalance from to amount
  end
end

transition IncreaseAllowance (spender: ByStr20, amount: Uint128)
  ThrowIfPaused;
  ThrowIfBlacklisted _sender;
  cur_opt <- allowances[_sender][spender];
  new_allow = match cur_opt with
              | Some a => builtin add a amount
              | None => amount
              end;
  allowances[_sender][spender] := new_allow
end

transition DecreaseAllowance (spender: ByStr20, amount: Uint128)
  ThrowIfPaused;
  ThrowIfBlacklisted _sender;
  cur_opt <- allowances[_sender][spender];
  cur = match cur_opt with
        | Some a => a
        | None => zero
        end;
  too_much = builtin lt cur amount;
  match too_much with
  | True =>
    e = { _exception : "AllowanceBelowZero" };
    throw e
  | False =>
    new_allow = builtin sub cur amount;
    allowances[_sender][spender] := new_allow
  end
end

(* ------------------------------------------------------------------ *)
(* Compliance                                                          *)
(* ------------------------------------------------------------------ *)

transition Blacklist (target: ByStr20)
  ThrowIfNotCompliance;
  blacklist[target] := true;
  e = { _eventname : "Blacklisted"; target : target };
  event e
end

transition Unblacklist (target: ByStr20)
  ThrowIfNotCompliance;
  delete blacklist[target];
  e = { _eventname : "Unblacklisted"; target : target };
  event e
end

transition WipeBlacklistedFunds (target: ByStr20)
  ThrowIfNotCompliance;
  bad <- exists blacklist[target];
  match bad with
  | False =>
    e = { _exception : "NotBlacklisted" };
    throw e
  | True =>
    bal_opt <- balances[target];
    bal = match bal_opt with
          | Some b => b
          | None => zero
          end;
    delete balances[target];
    s <- supply;
    new_s = builtin sub s bal;
    supply := new_s;
    e = { _eventname : "FundsWiped"; target : target; amount : bal };
    event e
  end
end

transition FreezeAccount (target: ByStr20)
  ThrowIfNotCompliance;
  frozen[target] := true
end

transition UnfreezeAccount (target: ByStr20)
  ThrowIfNotCompliance;
  delete frozen[target]
end

(* ------------------------------------------------------------------ *)
(* Administration                                                      *)
(* ------------------------------------------------------------------ *)

transition Pause ()
  ThrowIfNotIssuer;
  flag = True;
  paused := flag
end

transition Unpause ()
  ThrowIfNotIssuer;
  flag = False;
  paused := flag
end

transition SetIssuer (new_issuer: ByStr20)
  ThrowIfNotIssuer;
  issuer := new_issuer
end

transition SetComplianceOfficer (officer: ByStr20)
  ThrowIfNotIssuer;
  compliance_officer := officer
end

transition SetFeeCollector (collector: ByStr20)
  ThrowIfNotIssuer;
  fee_collector := collector
end

transition SetTransferLimit (limit: Uint128)
  ThrowIfNotIssuer;
  transfer_limit := limit
end

transition CollectDust (holder: ByStr20)
  (* Sweep sub-unit dust from a consenting holder to the collector —
     the collector address is read from the state, so the transition
     sends to a statically-unknown recipient and is unsharded. *)
  ThrowIfNotIssuer;
  collector <- fee_collector;
  bal_opt <- balances[holder];
  bal = match bal_opt with
        | Some b => b
        | None => zero
        end;
  msg = { _tag : "DustReport"; _recipient : collector;
          _amount : zero; holder : holder; amount : bal };
  msgs = one_msg msg;
  send msgs
end
"""
