"""ProofIPFS — a notary contract registering IPFS content hashes.

Ten transitions.  Register both notarises the hash (keyed by the hash)
and appends to the per-user index (keyed by the sender) — two state
components owned by different shards, so although the transition is
*shardable*, most of its transactions end up in the DS committee.
This reproduces the paper's "ProofIPFS register" workload, which does
not scale with shard count (Fig. 14).
"""

PROOF_IPFS = """
scilla_version 0

library ProofIPFS

let zero = Uint128 0
let true = True

contract ProofIPFS
(
  initial_admin: ByStr20
)

field registry : Map ByStr32 ByStr20 = Emp ByStr32 ByStr20
field registered_at : Map ByStr32 BNum = Emp ByStr32 BNum
field user_files : Map ByStr20 (Map ByStr32 Bool) =
  Emp ByStr20 (Map ByStr32 Bool)
field admin : ByStr20 = initial_admin
field registration_fee : Uint128 = Uint128 0
field quota : Uint128 = Uint128 100
field service_description : String = "ProofIPFS notary"
field withdraw_limit : Uint128 = Uint128 1000000

procedure ThrowIfNotAdmin ()
  a <- admin;
  is_admin = builtin eq _sender a;
  match is_admin with
  | True =>
  | False =>
    e = { _exception : "NotAdmin" };
    throw e
  end
end

procedure ThrowIfNotFileOwner (ipfs_hash: ByStr32)
  owner_opt <- registry[ipfs_hash];
  match owner_opt with
  | None =>
    e = { _exception : "HashNotRegistered" };
    throw e
  | Some owner =>
    is_owner = builtin eq _sender owner;
    match is_owner with
    | True =>
    | False =>
      e = { _exception : "NotFileOwner" };
      throw e
    end
  end
end

transition Register (ipfs_hash: ByStr32)
  taken <- exists registry[ipfs_hash];
  match taken with
  | True =>
    e = { _exception : "AlreadyRegistered" };
    throw e
  | False =>
    registry[ipfs_hash] := _sender;
    blk <- & BLOCKNUMBER;
    registered_at[ipfs_hash] := blk;
    user_files[_sender][ipfs_hash] := true;
    e = { _eventname : "Registered"; item : ipfs_hash;
          owner : _sender };
    event e
  end
end

transition Deregister (ipfs_hash: ByStr32)
  ThrowIfNotFileOwner ipfs_hash;
  delete registry[ipfs_hash];
  delete registered_at[ipfs_hash];
  delete user_files[_sender][ipfs_hash];
  e = { _eventname : "Deregistered"; item : ipfs_hash };
  event e
end

transition TransferFile (ipfs_hash: ByStr32, new_owner: ByStr20)
  ThrowIfNotFileOwner ipfs_hash;
  registry[ipfs_hash] := new_owner;
  delete user_files[_sender][ipfs_hash];
  user_files[new_owner][ipfs_hash] := true;
  e = { _eventname : "FileTransferred"; item : ipfs_hash;
        new_owner : new_owner };
  event e
end

transition RenewRegistration (ipfs_hash: ByStr32)
  ThrowIfNotFileOwner ipfs_hash;
  blk <- & BLOCKNUMBER;
  registered_at[ipfs_hash] := blk;
  e = { _eventname : "Renewed"; item : ipfs_hash };
  event e
end

transition SetRegistrationFee (new_fee: Uint128)
  ThrowIfNotAdmin;
  registration_fee := new_fee;
  e = { _eventname : "FeeChanged"; new_fee : new_fee };
  event e
end

transition SetQuota (new_quota: Uint128)
  ThrowIfNotAdmin;
  quota := new_quota;
  e = { _eventname : "QuotaChanged"; new_quota : new_quota };
  event e
end

transition SetDescription (description: String)
  ThrowIfNotAdmin;
  service_description := description;
  e = { _eventname : "DescriptionChanged" };
  event e
end

transition SetWithdrawLimit (new_limit: Uint128)
  ThrowIfNotAdmin;
  withdraw_limit := new_limit;
  e = { _eventname : "WithdrawLimitChanged"; new_limit : new_limit };
  event e
end

transition ChangeAdmin (new_admin: ByStr20)
  ThrowIfNotAdmin;
  admin := new_admin;
  e = { _eventname : "AdminChanged"; new_admin : new_admin };
  event e
end

transition RegisterBatch (hashes: List ByStr32)
  (* The registry key is computed (a digest of the batch), not a
     transition parameter: the analysis cannot summarise these
     accesses, so the transition gets the unsatisfiable constraint ⊥
     and is always processed by the DS committee. *)
  length_op = @list_length ByStr32;
  count = length_op hashes;
  batch_digest = builtin sha256hash hashes;
  taken <- exists registry[batch_digest];
  match taken with
  | True =>
    e = { _exception : "AlreadyRegistered" };
    throw e
  | False =>
    registry[batch_digest] := _sender;
    user_files[_sender][batch_digest] := true;
    e = { _eventname : "BatchAccepted"; count : count };
    event e
  end
end
"""
