"""The contract corpus: Scilla sources mirroring the paper's dataset.

The paper analyses the 49 unique contracts of Zilliqa mainnet/testnet
(Fig. 12).  Those sources are not all public, so this corpus re-creates
them from their names and published descriptions: the five contracts
of the throughput evaluation in full, plus token, application and
infrastructure contracts covering the same range of shapes (1–11
transitions, fungible and non-fungible state, additive counters,
escrows, registries, unsummarisable patterns).

``CORPUS`` maps contract name → Scilla source.  ``EVAL_CONTRACTS``
lists the five contracts of Sec. 5.2 with the sharding selections the
paper uses.
"""

from .crowdfunding import CROWDFUNDING
from .fungible_token import FUNGIBLE_TOKEN
from .nonfungible_token import NONFUNGIBLE_TOKEN
from .proof_ipfs import PROOF_IPFS
from .ud_registry import UD_REGISTRY
from . import corpus_apps as _apps
from . import corpus_misc as _misc
from . import corpus_tokens as _tokens
from .xsgd import XSGD

CORPUS: dict[str, str] = {
    # The five contracts of the throughput evaluation (Sec. 5.2).
    "FungibleToken": FUNGIBLE_TOKEN,
    "Crowdfunding": CROWDFUNDING,
    "NonfungibleToken": NONFUNGIBLE_TOKEN,
    "ProofIPFS": PROOF_IPFS,
    "UD_registry": UD_REGISTRY,
    # Token family.
    "XSGD": XSGD,
    "Superplayer_token": _tokens.SUPERPLAYER_TOKEN,
    "OTS200": _tokens.OTS200,
    "Hybrid_Euro": _tokens.HYBRID_EURO,
    "Zeecash": _tokens.ZEECASH,
    "DPSTokenHub": _tokens.DPS_TOKEN_HUB,
    "SimpleBondingCurve": _tokens.SIMPLE_BONDING_CURVE,
    "MyRewardsToken": _tokens.MY_REWARDS_TOKEN,
    "ZKToken": _tokens.ZK_TOKEN,
    "LUY_Cambodia": _tokens.LUY_CAMBODIA,
    "OceanRumble_minion_token": _tokens.OCEAN_RUMBLE_MINION_TOKEN,
    "Cryptoman": _tokens.CRYPTOMAN,
    # Applications.
    "Blackjack": _apps.BLACKJACK,
    "CelebrityNFT": _apps.CELEBRITY_NFT,
    "DBond": _apps.DBOND,
    "Oracle": _apps.ORACLE,
    "AuctionRegistrar": _apps.AUCTION_REGISTRAR,
    "SwapContract": _apps.SWAP_CONTRACT,
    "DinoMighty": _apps.DINO_MIGHTY,
    "OceanRumble_crate": _apps.OCEAN_RUMBLE_CRATE,
    "SocialPay": _apps.SOCIAL_PAY,
    "RoadDamage": _apps.ROAD_DAMAGE,
    "IOU": _apps.IOU,
    "HydraXSettlement": _apps.HYDRAX_SETTLEMENT,
    "PayRespect": _apps.PAY_RESPECT,
    "Bookstore": _apps.BOOKSTORE,
    "LikeMaster": _apps.LIKE_MASTER,
    "BoltAnalytics": _apps.BOLT_ANALYTICS,
    "Voting": _apps.VOTING,
    "LoveZilliqa": _apps.LOVE_ZILLIQA,
    "Quizbot": _apps.QUIZBOT,
    "BunkeringLog": _apps.BUNKERING_LOG,
    "Soundario": _apps.SOUNDARIO,
    "GoFundMi": _apps.GO_FUND_MI,
    # Infrastructure, UD family, and demo contracts.
    "Map_cornercases": _misc.MAP_CORNERCASES,
    "HTLC": _misc.HTLC,
    "Multisig": _misc.MULTISIG,
    "LandMRToken": _misc.LAND_MR_TOKEN,
    "ProxyContract": _misc.PROXY_CONTRACT,
    "UD_operator_contract": _misc.UD_OPERATOR_CONTRACT,
    "UD_resolver": _misc.UD_RESOLVER,
    "UD_primitive_version": _misc.UD_PRIMITIVE_VERSION,
    "UD_escrow": _misc.UD_ESCROW,
    "HelloWorld": _misc.HELLO_WORLD,
    "Schnorr": _misc.SCHNORR,
    "FirstContract": _misc.FIRST_CONTRACT,
    "TestSender": _misc.TEST_SENDER,
}

# The paper's Sec. 5.2 evaluation: contract → the "reasonable" sharding
# selection informed by expected usage.
EVAL_CONTRACTS: dict[str, tuple[str, ...]] = {
    "FungibleToken": ("Mint", "Transfer", "TransferFrom"),
    "Crowdfunding": ("Donate", "ClaimBack"),
    "NonfungibleToken": ("Mint", "Transfer"),
    "ProofIPFS": ("Register",),
    "UD_registry": ("Bestow", "ConfigureNode", "ConfigureResolver"),
}


def get_source(name: str) -> str:
    """Fetch a corpus contract's Scilla source by name."""
    if name not in CORPUS:
        raise KeyError(f"unknown corpus contract {name!r}")
    return CORPUS[name]


def contract_loc(name: str) -> int:
    """Non-blank lines of code of a corpus contract."""
    return sum(1 for line in CORPUS[name].splitlines() if line.strip())
