"""NonfungibleToken — Zilliqa's ERC-721 equivalent (ZRC-1 style).

Five transitions.  Transfer follows the paper's Sec. 6 rewrite: the
token owner is a *parameter* checked compare-and-swap style against
the state, so every state component it touches is keyed by the token
id and the transition shards cleanly.  Approve keeps the original
pattern the paper calls out as unshardable: it maintains an index
keyed by the owner *read from the contract state*, which the analysis
cannot summarise (⊥).
"""

NONFUNGIBLE_TOKEN = """
scilla_version 0

library NonfungibleToken

let zero = Uint128 0
let one = Uint128 1

contract NonfungibleToken
(
  contract_owner: ByStr20,
  name: String,
  symbol: String
)

field minter : ByStr20 = contract_owner
field token_owners : Map Uint256 ByStr20 = Emp Uint256 ByStr20
field owned_token_count : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field token_approvals : Map Uint256 ByStr20 = Emp Uint256 ByStr20
field approvals_index : Map ByStr20 (Map Uint256 ByStr20) =
  Emp ByStr20 (Map Uint256 ByStr20)
field total_tokens : Uint128 = Uint128 0

procedure ThrowIfNotMinter ()
  m <- minter;
  is_minter = builtin eq _sender m;
  match is_minter with
  | True =>
  | False =>
    e = { _exception : "NotMinter" };
    throw e
  end
end

procedure IncrementCount (holder: ByStr20)
  count_opt <- owned_token_count[holder];
  new_count = match count_opt with
              | Some c => builtin add c one
              | None => one
              end;
  owned_token_count[holder] := new_count
end

procedure DecrementCount (holder: ByStr20)
  count_opt <- owned_token_count[holder];
  new_count = match count_opt with
              | Some c => builtin sub c one
              | None => zero
              end;
  owned_token_count[holder] := new_count
end

transition Mint (to: ByStr20, token_id: Uint256)
  ThrowIfNotMinter;
  taken <- exists token_owners[token_id];
  match taken with
  | True =>
    e = { _exception : "TokenExists" };
    throw e
  | False =>
    token_owners[token_id] := to;
    IncrementCount to;
    count <- total_tokens;
    new_total = builtin add count one;
    total_tokens := new_total;
    e = { _eventname : "MintSuccess"; to : to; token_id : token_id };
    event e
  end
end

transition Transfer (token_owner: ByStr20, to: ByStr20, token_id: Uint256)
  (* Compare-and-swap rewrite (Sec. 6): the caller supplies the owner
     and the transition verifies it against the state. *)
  owner_opt <- token_owners[token_id];
  match owner_opt with
  | None =>
    e = { _exception : "TokenNotFound" };
    throw e
  | Some actual_owner =>
    owner_matches = builtin eq actual_owner token_owner;
    approved_opt <- token_approvals[token_id];
    approved = match approved_opt with
               | Some spender => builtin eq spender _sender
               | None => False
               end;
    is_owner = builtin eq _sender token_owner;
    authorized = orb is_owner approved;
    allowed = andb owner_matches authorized;
    match allowed with
    | False =>
      e = { _exception : "NotAuthorized" };
      throw e
    | True =>
      token_owners[token_id] := to;
      delete token_approvals[token_id];
      DecrementCount token_owner;
      IncrementCount to;
      e = { _eventname : "TransferSuccess"; from : token_owner;
            to : to; token_id : token_id };
      event e
    end
  end
end

transition Burn (token_owner: ByStr20, token_id: Uint256)
  owner_opt <- token_owners[token_id];
  match owner_opt with
  | None =>
    e = { _exception : "TokenNotFound" };
    throw e
  | Some actual_owner =>
    owner_matches = builtin eq actual_owner token_owner;
    is_owner = builtin eq _sender token_owner;
    allowed = andb owner_matches is_owner;
    match allowed with
    | False =>
      e = { _exception : "NotAuthorized" };
      throw e
    | True =>
      delete token_owners[token_id];
      delete token_approvals[token_id];
      DecrementCount token_owner;
      count <- total_tokens;
      new_total = builtin sub count one;
      total_tokens := new_total;
      e = { _eventname : "BurnSuccess"; from : token_owner;
            token_id : token_id };
      event e
    end
  end
end

transition Approve (to: ByStr20, token_id: Uint256)
  (* Original (non-rewritten) pattern the paper cannot shard: the
     owner is read from the contract state and used as a map key. *)
  owner_opt <- token_owners[token_id];
  match owner_opt with
  | None =>
    e = { _exception : "TokenNotFound" };
    throw e
  | Some actual_owner =>
    is_owner = builtin eq _sender actual_owner;
    match is_owner with
    | False =>
      e = { _exception : "NotAuthorized" };
      throw e
    | True =>
      token_approvals[token_id] := to;
      approvals_index[actual_owner][token_id] := to;
      e = { _eventname : "ApproveSuccess"; approved : to;
            token_id : token_id };
      event e
    end
  end
end

transition ConfigureMinter (new_minter: ByStr20)
  current <- minter;
  is_owner = builtin eq _sender contract_owner;
  match is_owner with
  | False =>
    e = { _exception : "NotContractOwner" };
    throw e
  | True =>
    minter := new_minter;
    e = { _eventname : "MinterConfigured"; old_minter : current;
          new_minter : new_minter };
    event e
  end
end
"""
