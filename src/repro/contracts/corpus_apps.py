"""Application corpus contracts (games, markets, registries, social).

Mirrors the application names of Fig. 12.  These exercise a wide range
of analysis features: escrows with deadlines, auctions with refund
messages, multisig with nested maps, hash-timelock contracts, voting
with both per-voter ownership and commutative tallies, and analytics
with purely additive counters.
"""

# Blackjack: simple casino rounds keyed by player.
BLACKJACK = """
scilla_version 0

library Blackjack

let zero = Uint128 0
let two = Uint128 2

contract Blackjack (dealer: ByStr20)

field bets : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field house_bank : Uint128 = Uint128 0

transition FundBank ()
  ok = builtin eq _sender dealer;
  match ok with
  | False =>
    e = { _exception : "NotDealer" };
    throw e
  | True =>
    accept;
    bank <- house_bank;
    new_bank = builtin add bank _amount;
    house_bank := new_bank
  end
end

transition PlaceBet ()
  open <- exists bets[_sender];
  match open with
  | True =>
    e = { _exception : "RoundInProgress" };
    throw e
  | False =>
    accept;
    bets[_sender] := _amount;
    bank <- house_bank;
    new_bank = builtin add bank _amount;
    house_bank := new_bank
  end
end

transition Payout (player: ByStr20, won: Bool)
  ok = builtin eq _sender dealer;
  match ok with
  | False =>
    e = { _exception : "NotDealer" };
    throw e
  | True =>
    bet_opt <- bets[player];
    match bet_opt with
    | None =>
      e = { _exception : "NoOpenRound" };
      throw e
    | Some bet =>
      delete bets[player];
      match won with
      | False =>
      | True =>
        prize = builtin mul bet two;
        bank <- house_bank;
        new_bank = builtin sub bank prize;
        house_bank := new_bank;
        msg = { _tag : "Winnings"; _recipient : player; _amount : prize };
        msgs = one_msg msg;
        send msgs
      end
    end
  end
end
"""

# CelebrityNFT: one-of-one autographs minted by a celebrity.
CELEBRITY_NFT = """
scilla_version 0

library CelebrityNFT

contract CelebrityNFT (celebrity: ByStr20)

field autographs : Map Uint256 ByStr20 = Emp Uint256 ByStr20
field dedications : Map Uint256 String = Emp Uint256 String

transition Autograph (token_id: Uint256, fan: ByStr20, dedication: String)
  ok = builtin eq _sender celebrity;
  match ok with
  | False =>
    e = { _exception : "NotTheCelebrity" };
    throw e
  | True =>
    taken <- exists autographs[token_id];
    match taken with
    | True =>
      e = { _exception : "AlreadySigned" };
      throw e
    | False =>
      autographs[token_id] := fan;
      dedications[token_id] := dedication
    end
  end
end

transition Regift (token_id: Uint256, to: ByStr20)
  owner_opt <- autographs[token_id];
  match owner_opt with
  | None =>
    e = { _exception : "NoSuchAutograph" };
    throw e
  | Some owner =>
    is_owner = builtin eq _sender owner;
    match is_owner with
    | False =>
      e = { _exception : "NotYours" };
      throw e
    | True =>
      autographs[token_id] := to
    end
  end
end
"""

# DBond: digital bonds with coupon accrual and redemption.
DBOND = """
scilla_version 0

library DBond

let zero = Uint128 0

contract DBond (issuer: ByStr20, coupon: Uint128, maturity: BNum)

field holdings : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field accrued : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field outstanding : Uint128 = Uint128 0

transition Subscribe ()
  accept;
  held_opt <- holdings[_sender];
  new_held = match held_opt with
             | Some h => builtin add h _amount
             | None => _amount
             end;
  holdings[_sender] := new_held;
  o <- outstanding;
  new_o = builtin add o _amount;
  outstanding := new_o
end

transition PayCoupon (holder: ByStr20)
  ok = builtin eq _sender issuer;
  match ok with
  | False =>
    e = { _exception : "NotIssuer" };
    throw e
  | True =>
    held_opt <- holdings[holder];
    match held_opt with
    | None =>
      e = { _exception : "NotAHolder" };
      throw e
    | Some held =>
      payment = builtin mul held coupon;
      acc_opt <- accrued[holder];
      new_acc = match acc_opt with
                | Some a => builtin add a payment
                | None => payment
                end;
      accrued[holder] := new_acc
    end
  end
end

transition Redeem ()
  blk <- & BLOCKNUMBER;
  early = builtin blt blk maturity;
  match early with
  | True =>
    e = { _exception : "NotMatured" };
    throw e
  | False =>
    held_opt <- holdings[_sender];
    match held_opt with
    | None =>
      e = { _exception : "NotAHolder" };
      throw e
    | Some held =>
      acc_opt <- accrued[_sender];
      acc = match acc_opt with
            | Some a => a
            | None => zero
            end;
      total = builtin add held acc;
      delete holdings[_sender];
      delete accrued[_sender];
      o <- outstanding;
      new_o = builtin sub o held;
      outstanding := new_o;
      msg = { _tag : "BondRedemption"; _recipient : _sender;
              _amount : total };
      msgs = one_msg msg;
      send msgs
    end
  end
end
"""

# Oracle: admin posts off-chain prices; anyone reads via message.
ORACLE = """
scilla_version 0

library Oracle

let zero = Uint128 0

contract Oracle (data_provider: ByStr20)

field prices : Map String Uint128 = Emp String Uint128
field last_update : BNum = BNum 0

transition PostPrice (ticker: String, price: Uint128)
  ok = builtin eq _sender data_provider;
  match ok with
  | False =>
    e = { _exception : "NotProvider" };
    throw e
  | True =>
    prices[ticker] := price;
    blk <- & BLOCKNUMBER;
    last_update := blk;
    e = { _eventname : "PricePosted"; ticker : ticker; price : price };
    event e
  end
end

transition QueryPrice (ticker: String)
  price_opt <- prices[ticker];
  match price_opt with
  | None =>
    e = { _exception : "UnknownTicker" };
    throw e
  | Some price =>
    msg = { _tag : "PriceResponse"; _recipient : _sender;
            _amount : zero; ticker : ticker; price : price };
    msgs = one_msg msg;
    send msgs
  end
end
"""

# AuctionRegistrar: open-outcry auction with refunds to outbid bidders.
AUCTION_REGISTRAR = """
scilla_version 0

library AuctionRegistrar

let zero = Uint128 0

contract AuctionRegistrar (auctioneer: ByStr20, closing: BNum)

field highest_bid : Uint128 = Uint128 0
field highest_bidder : ByStr20 = auctioneer
field pending_refunds : Map ByStr20 Uint128 = Emp ByStr20 Uint128

transition Bid ()
  blk <- & BLOCKNUMBER;
  closed = builtin blt closing blk;
  match closed with
  | True =>
    e = { _exception : "AuctionClosed" };
    throw e
  | False =>
    current <- highest_bid;
    too_low = builtin lt _amount current;
    match too_low with
    | True =>
      e = { _exception : "BidTooLow" };
      throw e
    | False =>
      accept;
      previous <- highest_bidder;
      refund_opt <- pending_refunds[previous];
      new_refund = match refund_opt with
                   | Some r => builtin add r current
                   | None => current
                   end;
      pending_refunds[previous] := new_refund;
      highest_bid := _amount;
      highest_bidder := _sender
    end
  end
end

transition WithdrawRefund ()
  refund_opt <- pending_refunds[_sender];
  match refund_opt with
  | None =>
    e = { _exception : "NothingToRefund" };
    throw e
  | Some refund =>
    delete pending_refunds[_sender];
    msg = { _tag : "BidRefund"; _recipient : _sender; _amount : refund };
    msgs = one_msg msg;
    send msgs
  end
end

transition Settle ()
  blk <- & BLOCKNUMBER;
  closed = builtin blt closing blk;
  match closed with
  | False =>
    e = { _exception : "AuctionStillOpen" };
    throw e
  | True =>
    winning <- highest_bid;
    msg = { _tag : "AuctionProceeds"; _recipient : auctioneer;
            _amount : winning };
    msgs = one_msg msg;
    send msgs
  end
end
"""

# SwapContract: atomic swap order book between two parties.
SWAP_CONTRACT = """
scilla_version 0

library SwapContract

let zero = Uint128 0

contract SwapContract (operator: ByStr20)

field offers : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field asks : Map ByStr20 Uint128 = Emp ByStr20 Uint128

transition MakeOffer (ask_amount: Uint128)
  open <- exists offers[_sender];
  match open with
  | True =>
    e = { _exception : "OfferExists" };
    throw e
  | False =>
    accept;
    offers[_sender] := _amount;
    asks[_sender] := ask_amount
  end
end

transition TakeOffer (maker: ByStr20)
  offer_opt <- offers[maker];
  match offer_opt with
  | None =>
    e = { _exception : "NoSuchOffer" };
    throw e
  | Some offered =>
    ask_opt <- asks[maker];
    ask = match ask_opt with
          | Some a => a
          | None => zero
          end;
    underpaid = builtin lt _amount ask;
    match underpaid with
    | True =>
      e = { _exception : "AskNotMet" };
      throw e
    | False =>
      accept;
      delete offers[maker];
      delete asks[maker];
      pay_maker = { _tag : "SwapProceeds"; _recipient : maker;
                    _amount : _amount };
      pay_taker = { _tag : "SwapAsset"; _recipient : _sender;
                    _amount : offered };
      msgs = two_msgs pay_maker pay_taker;
      send msgs
    end
  end
end

transition CancelOffer ()
  offer_opt <- offers[_sender];
  match offer_opt with
  | None =>
    e = { _exception : "NoOpenOffer" };
    throw e
  | Some offered =>
    delete offers[_sender];
    delete asks[_sender];
    msg = { _tag : "OfferReturned"; _recipient : _sender;
            _amount : offered };
    msgs = one_msg msg;
    send msgs
  end
end
"""

# DinoMighty: dino battles — experience accrues per dino.
DINO_MIGHTY = """
scilla_version 0

library DinoMighty

let zero = Uint128 0
let xp_per_win = Uint128 10

contract DinoMighty (arena_master: ByStr20)

field dinos : Map Uint256 ByStr20 = Emp Uint256 ByStr20
field experience : Map Uint256 Uint128 = Emp Uint256 Uint128

transition Hatch (dino_id: Uint256, owner: ByStr20)
  ok = builtin eq _sender arena_master;
  match ok with
  | False =>
    e = { _exception : "NotArenaMaster" };
    throw e
  | True =>
    taken <- exists dinos[dino_id];
    match taken with
    | True =>
      e = { _exception : "DinoExists" };
      throw e
    | False =>
      dinos[dino_id] := owner;
      experience[dino_id] := zero
    end
  end
end

transition RecordWin (dino_id: Uint256)
  ok = builtin eq _sender arena_master;
  match ok with
  | False =>
    e = { _exception : "NotArenaMaster" };
    throw e
  | True =>
    xp_opt <- experience[dino_id];
    new_xp = match xp_opt with
             | Some xp => builtin add xp xp_per_win
             | None => xp_per_win
             end;
    experience[dino_id] := new_xp
  end
end

transition TradeDino (dino_id: Uint256, to: ByStr20)
  owner_opt <- dinos[dino_id];
  match owner_opt with
  | None =>
    e = { _exception : "NoSuchDino" };
    throw e
  | Some owner =>
    is_owner = builtin eq _sender owner;
    match is_owner with
    | False =>
      e = { _exception : "NotYourDino" };
      throw e
    | True =>
      dinos[dino_id] := to
    end
  end
end
"""

# OceanRumble_crate: loot crates opened with a server-signed receipt.
OCEAN_RUMBLE_CRATE = """
scilla_version 0

library OceanRumbleCrate

let zero = Uint128 0

contract OceanRumbleCrate (game_server: ByStr20, crate_price: Uint128)

field crates : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field opened : Map ByStr32 Bool = Emp ByStr32 Bool

transition BuyCrate ()
  underpaid = builtin lt _amount crate_price;
  match underpaid with
  | True =>
    e = { _exception : "Underpaid" };
    throw e
  | False =>
    accept;
    have_opt <- crates[_sender];
    one = Uint128 1;
    new_have = match have_opt with
               | Some c => builtin add c one
               | None => one
               end;
    crates[_sender] := new_have
  end
end

transition OpenCrate (receipt_id: ByStr32, signature: ByStr32)
  seen <- exists opened[receipt_id];
  match seen with
  | True =>
    e = { _exception : "ReceiptUsed" };
    throw e
  | False =>
    have_opt <- crates[_sender];
    have = match have_opt with
           | Some c => c
           | None => zero
           end;
    one = Uint128 1;
    none_left = builtin lt have one;
    match none_left with
    | True =>
      e = { _exception : "NoCrates" };
      throw e
    | False =>
      new_have = builtin sub have one;
      crates[_sender] := new_have;
      flag = True;
      opened[receipt_id] := flag;
      e = { _eventname : "CrateOpened"; receipt : receipt_id };
      event e
    end
  end
end
"""

# SocialPay: hashtag campaign payouts with per-user claim tracking.
SOCIAL_PAY = """
scilla_version 0

library SocialPay

let zero = Uint128 0

contract SocialPay (campaign_manager: ByStr20, reward: Uint128)

field claimed : Map ByStr20 Bool = Emp ByStr20 Bool
field campaign_pool : Uint128 = Uint128 0
field claims_count : Uint128 = Uint128 0

transition FundCampaign ()
  ok = builtin eq _sender campaign_manager;
  match ok with
  | False =>
    e = { _exception : "NotManager" };
    throw e
  | True =>
    accept;
    pool <- campaign_pool;
    new_pool = builtin add pool _amount;
    campaign_pool := new_pool
  end
end

transition ClaimReward (participant: ByStr20)
  ok = builtin eq _sender campaign_manager;
  match ok with
  | False =>
    e = { _exception : "NotManager" };
    throw e
  | True =>
    done <- exists claimed[participant];
    match done with
    | True =>
      e = { _exception : "AlreadyClaimed" };
      throw e
    | False =>
      pool <- campaign_pool;
      exhausted = builtin lt pool reward;
      match exhausted with
      | True =>
        e = { _exception : "PoolExhausted" };
        throw e
      | False =>
        flag = True;
        claimed[participant] := flag;
        new_pool = builtin sub pool reward;
        campaign_pool := new_pool;
        n <- claims_count;
        one = Uint128 1;
        new_n = builtin add n one;
        claims_count := new_n;
        msg = { _tag : "SocialReward"; _recipient : participant;
                _amount : reward };
        msgs = one_msg msg;
        send msgs
      end
    end
  end
end
"""

# RoadDamage: civic reporting of road damage with de-duplication.
ROAD_DAMAGE = """
scilla_version 0

library RoadDamage

let one = Uint128 1

contract RoadDamage (authority: ByStr20)

field reports : Map ByStr32 ByStr20 = Emp ByStr32 ByStr20
field report_counts : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field resolved : Map ByStr32 Bool = Emp ByStr32 Bool

transition Report (location_hash: ByStr32)
  known <- exists reports[location_hash];
  match known with
  | True =>
    e = { _exception : "AlreadyReported" };
    throw e
  | False =>
    reports[location_hash] := _sender;
    count_opt <- report_counts[_sender];
    new_count = match count_opt with
                | Some c => builtin add c one
                | None => one
                end;
    report_counts[_sender] := new_count
  end
end

transition Resolve (location_hash: ByStr32)
  ok = builtin eq _sender authority;
  match ok with
  | False =>
    e = { _exception : "NotAuthority" };
    throw e
  | True =>
    known <- exists reports[location_hash];
    match known with
    | False =>
      e = { _exception : "NoSuchReport" };
      throw e
    | True =>
      flag = True;
      resolved[location_hash] := flag
    end
  end
end
"""

# IOU: peer-to-peer debt ledger with netting.
IOU = """
scilla_version 0

library IOUContract

let zero = Uint128 0

contract IOUContract (notary: ByStr20)

field debts : Map ByStr20 (Map ByStr20 Uint128) =
  Emp ByStr20 (Map ByStr20 Uint128)

transition Owe (creditor: ByStr20, amount: Uint128)
  debt_opt <- debts[_sender][creditor];
  new_debt = match debt_opt with
             | Some d => builtin add d amount
             | None => amount
             end;
  debts[_sender][creditor] := new_debt;
  e = { _eventname : "DebtRecorded"; debtor : _sender;
        creditor : creditor; amount : amount };
  event e
end

transition Settle (creditor: ByStr20, amount: Uint128)
  debt_opt <- debts[_sender][creditor];
  debt = match debt_opt with
         | Some d => d
         | None => zero
         end;
  too_much = builtin lt debt amount;
  match too_much with
  | True =>
    e = { _exception : "OverSettling" };
    throw e
  | False =>
    new_debt = builtin sub debt amount;
    debts[_sender][creditor] := new_debt;
    e = { _eventname : "DebtSettled"; debtor : _sender;
          creditor : creditor; amount : amount };
    event e
  end
end
"""

# HydraXSettlement: netted settlement instructions from a clearinghouse.
HYDRAX_SETTLEMENT = """
scilla_version 0

library HydraXSettlement

let zero = Uint128 0

contract HydraXSettlement (clearinghouse: ByStr20)

field positions : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field settled_batches : Map ByStr32 Bool = Emp ByStr32 Bool

transition Credit (batch_id: ByStr32, account: ByStr20, amount: Uint128)
  ok = builtin eq _sender clearinghouse;
  match ok with
  | False =>
    e = { _exception : "NotClearinghouse" };
    throw e
  | True =>
    done <- exists settled_batches[batch_id];
    match done with
    | True =>
      e = { _exception : "BatchSettled" };
      throw e
    | False =>
      pos_opt <- positions[account];
      new_pos = match pos_opt with
                | Some p => builtin add p amount
                | None => amount
                end;
      positions[account] := new_pos
    end
  end
end

transition MarkSettled (batch_id: ByStr32)
  ok = builtin eq _sender clearinghouse;
  match ok with
  | False =>
    e = { _exception : "NotClearinghouse" };
    throw e
  | True =>
    flag = True;
    settled_batches[batch_id] := flag
  end
end

transition Withdraw (amount: Uint128)
  pos_opt <- positions[_sender];
  pos = match pos_opt with
        | Some p => p
        | None => zero
        end;
  insufficient = builtin lt pos amount;
  match insufficient with
  | True =>
    e = { _exception : "InsufficientPosition" };
    throw e
  | False =>
    new_pos = builtin sub pos amount;
    positions[_sender] := new_pos;
    msg = { _tag : "SettlementPayout"; _recipient : _sender;
            _amount : amount };
    msgs = one_msg msg;
    send msgs
  end
end
"""

# PayRespect: tip jar — everyone can pay respects with a donation.
PAY_RESPECT = """
scilla_version 0

library PayRespect

let one = Uint128 1

contract PayRespect (memorial: String)

field respects : Uint128 = Uint128 0
field donations : Uint128 = Uint128 0

transition Press ()
  accept;
  r <- respects;
  new_r = builtin add r one;
  respects := new_r;
  d <- donations;
  new_d = builtin add d _amount;
  donations := new_d;
  e = { _eventname : "RespectsPaid"; total : new_r };
  event e
end
"""

# Bookstore: a full shop (12 transitions) — inventory, pricing,
# clerks, store credit, discounts, and administration.
BOOKSTORE = """
scilla_version 0

library Bookstore

let zero = Uint128 0
let one = Uint128 1
let true = True

contract Bookstore (store_owner: ByStr20)

field inventory : Map String Uint128 = Emp String Uint128
field book_prices : Map String Uint128 = Emp String Uint128
field revenue : Uint128 = Uint128 0
field clerks : Map ByStr20 Bool = Emp ByStr20 Bool
field store_credit : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field discount : Uint128 = Uint128 0
field closed : Bool = False

procedure ThrowIfNotStoreOwner ()
  ok = builtin eq _sender store_owner;
  match ok with
  | True =>
  | False =>
    e = { _exception : "NotStoreOwner" };
    throw e
  end
end

procedure ThrowIfNotStaff ()
  is_owner = builtin eq _sender store_owner;
  is_clerk <- exists clerks[_sender];
  ok = orb is_owner is_clerk;
  match ok with
  | True =>
  | False =>
    e = { _exception : "NotStaff" };
    throw e
  end
end

procedure ThrowIfClosed ()
  c <- closed;
  match c with
  | True =>
    e = { _exception : "StoreClosed" };
    throw e
  | False =>
  end
end

(* ------------------------------------------------------------------ *)
(* Inventory                                                           *)
(* ------------------------------------------------------------------ *)

transition Stock (isbn: String, count: Uint128, price: Uint128)
  ThrowIfNotStaff;
  have_opt <- inventory[isbn];
  new_have = match have_opt with
             | Some h => builtin add h count
             | None => count
             end;
  inventory[isbn] := new_have;
  book_prices[isbn] := price
end

transition SetPrice (isbn: String, price: Uint128)
  ThrowIfNotStaff;
  known <- exists book_prices[isbn];
  match known with
  | False =>
    e = { _exception : "UnknownBook" };
    throw e
  | True =>
    book_prices[isbn] := price
  end
end

transition RemoveBook (isbn: String)
  ThrowIfNotStoreOwner;
  delete inventory[isbn];
  delete book_prices[isbn]
end

(* ------------------------------------------------------------------ *)
(* Sales                                                               *)
(* ------------------------------------------------------------------ *)

transition Buy (isbn: String)
  ThrowIfClosed;
  price_opt <- book_prices[isbn];
  match price_opt with
  | None =>
    e = { _exception : "UnknownBook" };
    throw e
  | Some price =>
    d <- discount;
    charged = builtin sub price d;
    underpaid = builtin lt _amount charged;
    match underpaid with
    | True =>
      e = { _exception : "Underpaid" };
      throw e
    | False =>
      have_opt <- inventory[isbn];
      have = match have_opt with
             | Some h => h
             | None => zero
             end;
      out_of_stock = builtin lt have one;
      match out_of_stock with
      | True =>
        e = { _exception : "OutOfStock" };
        throw e
      | False =>
        accept;
        new_have = builtin sub have one;
        inventory[isbn] := new_have;
        r <- revenue;
        new_r = builtin add r charged;
        revenue := new_r
      end
    end
  end
end

transition GrantStoreCredit (customer: ByStr20, amount: Uint128)
  ThrowIfNotStaff;
  c_opt <- store_credit[customer];
  new_c = match c_opt with
          | Some c => builtin add c amount
          | None => amount
          end;
  store_credit[customer] := new_c
end

transition BuyWithCredit (isbn: String)
  ThrowIfClosed;
  price_opt <- book_prices[isbn];
  match price_opt with
  | None =>
    e = { _exception : "UnknownBook" };
    throw e
  | Some price =>
    c_opt <- store_credit[_sender];
    credit = match c_opt with
             | Some c => c
             | None => zero
             end;
    short = builtin lt credit price;
    match short with
    | True =>
      e = { _exception : "InsufficientCredit" };
      throw e
    | False =>
      have_opt <- inventory[isbn];
      have = match have_opt with
             | Some h => h
             | None => zero
             end;
      out_of_stock = builtin lt have one;
      match out_of_stock with
      | True =>
        e = { _exception : "OutOfStock" };
        throw e
      | False =>
        new_credit = builtin sub credit price;
        store_credit[_sender] := new_credit;
        new_have = builtin sub have one;
        inventory[isbn] := new_have
      end
    end
  end
end

(* ------------------------------------------------------------------ *)
(* Staff and administration                                            *)
(* ------------------------------------------------------------------ *)

transition AddClerk (clerk: ByStr20)
  ThrowIfNotStoreOwner;
  clerks[clerk] := true
end

transition RemoveClerk (clerk: ByStr20)
  ThrowIfNotStoreOwner;
  delete clerks[clerk]
end

transition SetDiscount (amount: Uint128)
  ThrowIfNotStoreOwner;
  discount := amount
end

transition CloseStore ()
  ThrowIfNotStoreOwner;
  flag = True;
  closed := flag
end

transition OpenStore ()
  ThrowIfNotStoreOwner;
  flag = False;
  closed := flag
end

transition WithdrawRevenue ()
  ThrowIfNotStoreOwner;
  r <- revenue;
  revenue := zero;
  msg = { _tag : "Revenue"; _recipient : store_owner; _amount : r };
  msgs = one_msg msg;
  send msgs
end
"""

# LikeMaster: social likes — purely commutative counters.
LIKE_MASTER = """
scilla_version 0

library LikeMaster

let one = Uint128 1

contract LikeMaster (platform: ByStr20)

field likes : Map ByStr32 Uint128 = Emp ByStr32 Uint128
field user_activity : Map ByStr20 Uint128 = Emp ByStr20 Uint128

transition Like (post_id: ByStr32)
  count_opt <- likes[post_id];
  new_count = match count_opt with
              | Some c => builtin add c one
              | None => one
              end;
  likes[post_id] := new_count;
  activity_opt <- user_activity[_sender];
  new_activity = match activity_opt with
                 | Some a => builtin add a one
                 | None => one
                 end;
  user_activity[_sender] := new_activity
end

transition RemovePost (post_id: ByStr32)
  ok = builtin eq _sender platform;
  match ok with
  | False =>
    e = { _exception : "NotPlatform" };
    throw e
  | True =>
    delete likes[post_id]
  end
end
"""

# BoltAnalytics: usage metering — additive counters per app and user.
BOLT_ANALYTICS = """
scilla_version 0

library BoltAnalytics

let one = Uint64 1

contract BoltAnalytics (operator: ByStr20)

field app_events : Map String Uint64 = Emp String Uint64
field user_events : Map ByStr20 Uint64 = Emp ByStr20 Uint64
field total_events : Uint64 = Uint64 0

transition Track (app: String)
  app_opt <- app_events[app];
  new_app = match app_opt with
            | Some c => builtin add c one
            | None => one
            end;
  app_events[app] := new_app;
  user_opt <- user_events[_sender];
  new_user = match user_opt with
             | Some c => builtin add c one
             | None => one
             end;
  user_events[_sender] := new_user;
  t <- total_events;
  new_t = builtin add t one;
  total_events := new_t
end

transition ResetApp (app: String)
  ok = builtin eq _sender operator;
  match ok with
  | False =>
    e = { _exception : "NotOperator" };
    throw e
  | True =>
    delete app_events[app]
  end
end
"""

# Voting: per-voter ownership + commutative tallies (Sec. 5.2.3's
# example of a contract benefiting from both strategies).
VOTING = """
scilla_version 0

library Voting

let one = Uint128 1

contract Voting (election_admin: ByStr20, closing: BNum)

field voted : Map ByStr20 Bool = Emp ByStr20 Bool
field tallies : Map String Uint128 = Emp String Uint128
field registered : Map ByStr20 Bool = Emp ByStr20 Bool

transition RegisterVoter (voter: ByStr20)
  ok = builtin eq _sender election_admin;
  match ok with
  | False =>
    e = { _exception : "NotElectionAdmin" };
    throw e
  | True =>
    flag = True;
    registered[voter] := flag
  end
end

transition Vote (candidate: String)
  blk <- & BLOCKNUMBER;
  closed = builtin blt closing blk;
  match closed with
  | True =>
    e = { _exception : "ElectionClosed" };
    throw e
  | False =>
    eligible <- exists registered[_sender];
    match eligible with
    | False =>
      e = { _exception : "NotRegistered" };
      throw e
    | True =>
      already <- exists voted[_sender];
      match already with
      | True =>
        e = { _exception : "AlreadyVoted" };
        throw e
      | False =>
        flag = True;
        voted[_sender] := flag;
        tally_opt <- tallies[candidate];
        new_tally = match tally_opt with
                    | Some t => builtin add t one
                    | None => one
                    end;
        tallies[candidate] := new_tally
      end
    end
  end
end
"""

# LoveZilliqa: guestbook of declarations, one per sender.
LOVE_ZILLIQA = """
scilla_version 0

library LoveZilliqa

contract LoveZilliqa (curator: ByStr20)

field declarations : Map ByStr20 String = Emp ByStr20 String

transition Declare (message: String)
  declarations[_sender] := message;
  e = { _eventname : "LoveDeclared"; from : _sender };
  event e
end

transition Moderate (author: ByStr20)
  ok = builtin eq _sender curator;
  match ok with
  | False =>
    e = { _exception : "NotCurator" };
    throw e
  | True =>
    delete declarations[author]
  end
end
"""

# Quizbot: quiz with hash-committed answers and a prize per question.
QUIZBOT = """
scilla_version 0

library Quizbot

let zero = Uint128 0

contract Quizbot (quizmaster: ByStr20)

field answer_hashes : Map Uint32 ByStr32 = Emp Uint32 ByStr32
field prizes : Map Uint32 Uint128 = Emp Uint32 Uint128
field winners : Map Uint32 ByStr20 = Emp Uint32 ByStr20

transition PostQuestion (qid: Uint32, answer_hash: ByStr32)
  ok = builtin eq _sender quizmaster;
  match ok with
  | False =>
    e = { _exception : "NotQuizmaster" };
    throw e
  | True =>
    accept;
    answer_hashes[qid] := answer_hash;
    prizes[qid] := _amount
  end
end

transition SubmitAnswer (qid: Uint32, answer: String)
  won <- exists winners[qid];
  match won with
  | True =>
    e = { _exception : "AlreadyWon" };
    throw e
  | False =>
    expected_opt <- answer_hashes[qid];
    match expected_opt with
    | None =>
      e = { _exception : "NoSuchQuestion" };
      throw e
    | Some expected =>
      actual = builtin sha256hash answer;
      correct = builtin eq actual expected;
      match correct with
      | False =>
        e = { _exception : "WrongAnswer" };
        throw e
      | True =>
        winners[qid] := _sender;
        prize_opt <- prizes[qid];
        prize = match prize_opt with
                | Some p => p
                | None => zero
                end;
        msg = { _tag : "QuizPrize"; _recipient : _sender;
                _amount : prize };
        msgs = one_msg msg;
        send msgs
      end
    end
  end
end
"""

# BunkeringLog: maritime fuel-delivery log entries, append-only.
BUNKERING_LOG = """
scilla_version 0

library BunkeringLog

let one = Uint64 1

contract BunkeringLog (port_authority: ByStr20)

field deliveries : Map ByStr32 String = Emp ByStr32 String
field vessel_counts : Map String Uint64 = Emp String Uint64

transition LogDelivery (delivery_id: ByStr32, vessel: String,
                        details: String)
  known <- exists deliveries[delivery_id];
  match known with
  | True =>
    e = { _exception : "DuplicateDelivery" };
    throw e
  | False =>
    deliveries[delivery_id] := details;
    count_opt <- vessel_counts[vessel];
    new_count = match count_opt with
                | Some c => builtin add c one
                | None => one
                end;
    vessel_counts[vessel] := new_count
  end
end

transition Amend (delivery_id: ByStr32, details: String)
  ok = builtin eq _sender port_authority;
  match ok with
  | False =>
    e = { _exception : "NotPortAuthority" };
    throw e
  | True =>
    known <- exists deliveries[delivery_id];
    match known with
    | False =>
      e = { _exception : "NoSuchDelivery" };
      throw e
    | True =>
      deliveries[delivery_id] := details
    end
  end
end
"""

# Soundario: music rights — plays accrue royalties to rights holders.
SOUNDARIO = """
scilla_version 0

library Soundario

let zero = Uint128 0

contract Soundario (platform: ByStr20, royalty_per_play: Uint128)

field track_owners : Map ByStr32 ByStr20 = Emp ByStr32 ByStr20
field royalties : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field play_counts : Map ByStr32 Uint128 = Emp ByStr32 Uint128

transition PublishTrack (track_id: ByStr32)
  taken <- exists track_owners[track_id];
  match taken with
  | True =>
    e = { _exception : "TrackExists" };
    throw e
  | False =>
    track_owners[track_id] := _sender
  end
end

transition RecordPlay (track_id: ByStr32, rights_holder: ByStr20)
  ok = builtin eq _sender platform;
  match ok with
  | False =>
    e = { _exception : "NotPlatform" };
    throw e
  | True =>
    owner_opt <- track_owners[track_id];
    match owner_opt with
    | None =>
      e = { _exception : "UnknownTrack" };
      throw e
    | Some owner =>
      rightful = builtin eq owner rights_holder;
      match rightful with
      | False =>
        e = { _exception : "WrongRightsHolder" };
        throw e
      | True =>
        one = Uint128 1;
        plays_opt <- play_counts[track_id];
        new_plays = match plays_opt with
                    | Some p => builtin add p one
                    | None => one
                    end;
        play_counts[track_id] := new_plays;
        owed_opt <- royalties[rights_holder];
        new_owed = match owed_opt with
                   | Some o => builtin add o royalty_per_play
                   | None => royalty_per_play
                   end;
        royalties[rights_holder] := new_owed
      end
    end
  end
end

transition ClaimRoyalties ()
  owed_opt <- royalties[_sender];
  match owed_opt with
  | None =>
    e = { _exception : "NothingOwed" };
    throw e
  | Some owed =>
    delete royalties[_sender];
    msg = { _tag : "RoyaltyPayout"; _recipient : _sender;
            _amount : owed };
    msgs = one_msg msg;
    send msgs
  end
end
"""

# GoFundMi: milestone-based crowdfunding with partial releases.
GO_FUND_MI = """
scilla_version 0

library GoFundMi

let zero = Uint128 0

contract GoFundMi (project_owner: ByStr20, milestone_amount: Uint128)

field contributions : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field total_raised : Uint128 = Uint128 0
field released : Uint128 = Uint128 0

transition Contribute ()
  accept;
  c_opt <- contributions[_sender];
  new_c = match c_opt with
          | Some c => builtin add c _amount
          | None => _amount
          end;
  contributions[_sender] := new_c;
  t <- total_raised;
  new_t = builtin add t _amount;
  total_raised := new_t
end

transition ReleaseMilestone ()
  ok = builtin eq _sender project_owner;
  match ok with
  | False =>
    e = { _exception : "NotProjectOwner" };
    throw e
  | True =>
    t <- total_raised;
    r <- released;
    new_released = builtin add r milestone_amount;
    over = builtin lt t new_released;
    match over with
    | True =>
      e = { _exception : "NotEnoughRaised" };
      throw e
    | False =>
      released := new_released;
      msg = { _tag : "MilestonePayment"; _recipient : project_owner;
              _amount : milestone_amount };
      msgs = one_msg msg;
      send msgs
    end
  end
end
"""
