"""Token-family corpus contracts (Fig. 12 names).

Each is a genuinely distinct token design — capped supply, blacklist,
fee-on-transfer, hub-and-spoke, bonding curve, burn-to-redeem — so the
analysis sees a spread of summarisable and unsummarisable patterns.
"""

# Superplayer_token: a full game-economy token (15 transitions) —
# fee-on-transfer, allowances, staking, bonuses, and administration.
SUPERPLAYER_TOKEN = """
scilla_version 0

library SuperplayerToken

let zero = Uint128 0
let fee = Uint128 2

contract SuperplayerToken (house: ByStr20, init_supply: Uint128)

field balances : Map ByStr20 Uint128 =
  let emp = Emp ByStr20 Uint128 in
  builtin put emp house init_supply

field allowances : Map ByStr20 (Map ByStr20 Uint128) =
  Emp ByStr20 (Map ByStr20 Uint128)
field stakes : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field reward_points : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field house_cut : Uint128 = Uint128 0
field total_staked : Uint128 = Uint128 0
field manager : ByStr20 = house
field bonus_rate : Uint128 = Uint128 1
field paused : Bool = False

(* ------------------------------------------------------------------ *)

procedure ThrowIfNotHouse ()
  ok = builtin eq _sender house;
  match ok with
  | True =>
  | False =>
    e = { _exception : "NotHouse" };
    throw e
  end
end

procedure ThrowIfNotManager ()
  m <- manager;
  ok = builtin eq _sender m;
  match ok with
  | True =>
  | False =>
    e = { _exception : "NotManager" };
    throw e
  end
end

procedure ThrowIfPaused ()
  p <- paused;
  match p with
  | True =>
    e = { _exception : "Paused" };
    throw e
  | False =>
  end
end

procedure Debit (from: ByStr20, amount: Uint128)
  bal_opt <- balances[from];
  bal = match bal_opt with
        | Some b => b
        | None => zero
        end;
  insufficient = builtin lt bal amount;
  match insufficient with
  | True =>
    e = { _exception : "InsufficientFunds" };
    throw e
  | False =>
    new_bal = builtin sub bal amount;
    balances[from] := new_bal
  end
end

procedure Credit (to: ByStr20, amount: Uint128)
  bal_opt <- balances[to];
  new_bal = match bal_opt with
            | Some b => builtin add b amount
            | None => amount
            end;
  balances[to] := new_bal
end

(* ------------------------------------------------------------------ *)
(* Token operations                                                    *)
(* ------------------------------------------------------------------ *)

transition Transfer (to: ByStr20, amount: Uint128)
  bal_opt <- balances[_sender];
  bal = match bal_opt with
        | Some b => b
        | None => zero
        end;
  total = builtin add amount fee;
  insufficient = builtin lt bal total;
  match insufficient with
  | True =>
    e = { _exception : "InsufficientFunds" };
    throw e
  | False =>
    new_from = builtin sub bal total;
    balances[_sender] := new_from;
    Credit to amount;
    cut <- house_cut;
    new_cut = builtin add cut fee;
    house_cut := new_cut
  end
end

transition TransferFrom (from: ByStr20, to: ByStr20, amount: Uint128)
  ThrowIfPaused;
  allow_opt <- allowances[from][_sender];
  allow = match allow_opt with
          | Some a => a
          | None => zero
          end;
  short = builtin lt allow amount;
  match short with
  | True =>
    e = { _exception : "InsufficientAllowance" };
    throw e
  | False =>
    new_allow = builtin sub allow amount;
    allowances[from][_sender] := new_allow;
    Debit from amount;
    Credit to amount
  end
end

transition IncreaseAllowance (spender: ByStr20, amount: Uint128)
  cur_opt <- allowances[_sender][spender];
  new_allow = match cur_opt with
              | Some a => builtin add a amount
              | None => amount
              end;
  allowances[_sender][spender] := new_allow
end

transition DecreaseAllowance (spender: ByStr20, amount: Uint128)
  cur_opt <- allowances[_sender][spender];
  cur = match cur_opt with
        | Some a => a
        | None => zero
        end;
  too_much = builtin lt cur amount;
  match too_much with
  | True =>
    e = { _exception : "AllowanceBelowZero" };
    throw e
  | False =>
    new_allow = builtin sub cur amount;
    allowances[_sender][spender] := new_allow
  end
end

transition Mint (to: ByStr20, amount: Uint128)
  ThrowIfNotHouse;
  Credit to amount
end

transition Burn (amount: Uint128)
  ThrowIfPaused;
  Debit _sender amount
end

(* ------------------------------------------------------------------ *)
(* Game economy                                                        *)
(* ------------------------------------------------------------------ *)

transition Stake (amount: Uint128)
  ThrowIfPaused;
  Debit _sender amount;
  st_opt <- stakes[_sender];
  new_st = match st_opt with
           | Some st => builtin add st amount
           | None => amount
           end;
  stakes[_sender] := new_st;
  t <- total_staked;
  new_t = builtin add t amount;
  total_staked := new_t
end

transition Unstake (amount: Uint128)
  st_opt <- stakes[_sender];
  st = match st_opt with
       | Some v => v
       | None => zero
       end;
  short = builtin lt st amount;
  match short with
  | True =>
    e = { _exception : "NotEnoughStaked" };
    throw e
  | False =>
    new_st = builtin sub st amount;
    stakes[_sender] := new_st;
    t <- total_staked;
    new_t = builtin sub t amount;
    total_staked := new_t;
    Credit _sender amount
  end
end

transition AwardBonus (player: ByStr20, points: Uint128)
  ThrowIfNotManager;
  rate <- bonus_rate;
  scaled = builtin mul points rate;
  rp_opt <- reward_points[player];
  new_rp = match rp_opt with
           | Some rp => builtin add rp scaled
           | None => scaled
           end;
  reward_points[player] := new_rp
end

transition RedeemPoints (points: Uint128)
  rp_opt <- reward_points[_sender];
  rp = match rp_opt with
       | Some v => v
       | None => zero
       end;
  short = builtin lt rp points;
  match short with
  | True =>
    e = { _exception : "NotEnoughPoints" };
    throw e
  | False =>
    new_rp = builtin sub rp points;
    reward_points[_sender] := new_rp;
    Credit _sender points
  end
end

transition CollectHouseCut ()
  ThrowIfNotHouse;
  cut <- house_cut;
  Credit house cut;
  house_cut := zero
end

(* ------------------------------------------------------------------ *)
(* Administration                                                      *)
(* ------------------------------------------------------------------ *)

transition SetManager (new_manager: ByStr20)
  ThrowIfNotHouse;
  manager := new_manager
end

transition SetBonusRate (rate: Uint128)
  ThrowIfNotManager;
  bonus_rate := rate
end

transition PauseGame ()
  ThrowIfNotManager;
  flag = True;
  paused := flag
end

transition UnpauseGame ()
  ThrowIfNotManager;
  flag = False;
  paused := flag
end
"""

# OTS200: a token with per-holder transfer locks until a block number.
OTS200 = """
scilla_version 0

library OTS200

let zero = Uint128 0

contract OTS200 (admin: ByStr20)

field balances : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field locks : Map ByStr20 BNum = Emp ByStr20 BNum

procedure ThrowIfLocked ()
  lock_opt <- locks[_sender];
  match lock_opt with
  | None =>
  | Some until =>
    blk <- & BLOCKNUMBER;
    still_locked = builtin blt blk until;
    match still_locked with
    | True =>
      e = { _exception : "TokensLocked" };
      throw e
    | False =>
    end
  end
end

transition Grant (to: ByStr20, amount: Uint128, lock_until: BNum)
  ok = builtin eq _sender admin;
  match ok with
  | False =>
    e = { _exception : "NotAdmin" };
    throw e
  | True =>
    bal_opt <- balances[to];
    new_bal = match bal_opt with
              | Some b => builtin add b amount
              | None => amount
              end;
    balances[to] := new_bal;
    locks[to] := lock_until
  end
end

transition Transfer (to: ByStr20, amount: Uint128)
  ThrowIfLocked;
  bal_opt <- balances[_sender];
  bal = match bal_opt with
        | Some b => b
        | None => zero
        end;
  insufficient = builtin lt bal amount;
  match insufficient with
  | True =>
    e = { _exception : "InsufficientFunds" };
    throw e
  | False =>
    new_from = builtin sub bal amount;
    balances[_sender] := new_from;
    to_opt <- balances[to];
    new_to = match to_opt with
             | Some b => builtin add b amount
             | None => amount
             end;
    balances[to] := new_to
  end
end
"""

# Hybrid_Euro: mint/burn pegged token with reserve ratio check.
HYBRID_EURO = """
scilla_version 0

library HybridEuro

let zero = Uint128 0
let hundred = Uint128 100

contract HybridEuro (treasurer: ByStr20, reserve_ratio: Uint128)

field balances : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field supply : Uint128 = Uint128 0
field reserves : Uint128 = Uint128 0

procedure ThrowIfNotTreasurer ()
  ok = builtin eq _sender treasurer;
  match ok with
  | True =>
  | False =>
    e = { _exception : "NotTreasurer" };
    throw e
  end
end

transition DepositReserves ()
  ThrowIfNotTreasurer;
  accept;
  r <- reserves;
  new_r = builtin add r _amount;
  reserves := new_r
end

transition MintEuro (to: ByStr20, amount: Uint128)
  ThrowIfNotTreasurer;
  s <- supply;
  r <- reserves;
  new_s = builtin add s amount;
  required = builtin mul new_s reserve_ratio;
  required_scaled = builtin div required hundred;
  under_reserved = builtin lt r required_scaled;
  match under_reserved with
  | True =>
    e = { _exception : "InsufficientReserves" };
    throw e
  | False =>
    supply := new_s;
    bal_opt <- balances[to];
    new_bal = match bal_opt with
              | Some b => builtin add b amount
              | None => amount
              end;
    balances[to] := new_bal
  end
end

transition Transfer (to: ByStr20, amount: Uint128)
  bal_opt <- balances[_sender];
  bal = match bal_opt with
        | Some b => b
        | None => zero
        end;
  insufficient = builtin lt bal amount;
  match insufficient with
  | True =>
    e = { _exception : "InsufficientFunds" };
    throw e
  | False =>
    new_from = builtin sub bal amount;
    balances[_sender] := new_from;
    to_opt <- balances[to];
    new_to = match to_opt with
             | Some b => builtin add b amount
             | None => amount
             end;
    balances[to] := new_to
  end
end
"""

# Zeecash: privacy-flavoured token — commitments registry plus pool.
ZEECASH = """
scilla_version 0

library Zeecash

let zero = Uint128 0
let true = True

contract Zeecash (operator: ByStr20, denomination: Uint128)

field commitments : Map ByStr32 Bool = Emp ByStr32 Bool
field nullifiers : Map ByStr32 Bool = Emp ByStr32 Bool
field pool : Uint128 = Uint128 0

transition Shield (commitment: ByStr32)
  known <- exists commitments[commitment];
  match known with
  | True =>
    e = { _exception : "DuplicateCommitment" };
    throw e
  | False =>
    accept;
    wrong_amount = builtin eq _amount denomination;
    match wrong_amount with
    | False =>
      e = { _exception : "WrongDenomination" };
      throw e
    | True =>
      commitments[commitment] := true;
      p <- pool;
      new_pool = builtin add p denomination;
      pool := new_pool
    end
  end
end

transition Unshield (nullifier: ByStr32, recipient: ByStr20)
  spent <- exists nullifiers[nullifier];
  match spent with
  | True =>
    e = { _exception : "DoubleSpend" };
    throw e
  | False =>
    nullifiers[nullifier] := true;
    p <- pool;
    new_pool = builtin sub p denomination;
    pool := new_pool;
    msg = { _tag : "UnshieldPayout"; _recipient : recipient;
            _amount : denomination };
    msgs = one_msg msg;
    send msgs
  end
end
"""

# DPSTokenHub: hub distributing rewards to many game token pools.
DPS_TOKEN_HUB = """
scilla_version 0

library DPSTokenHub

let zero = Uint128 0

contract DPSTokenHub (game_master: ByStr20)

field pools : Map String Uint128 = Emp String Uint128
field player_rewards : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field paused : Bool = False

procedure ThrowIfNotGameMaster ()
  ok = builtin eq _sender game_master;
  match ok with
  | True =>
  | False =>
    e = { _exception : "NotGameMaster" };
    throw e
  end
end

procedure ThrowIfPaused ()
  p <- paused;
  match p with
  | True =>
    e = { _exception : "Paused" };
    throw e
  | False =>
  end
end

transition FundPool (pool_name: String, amount: Uint128)
  ThrowIfNotGameMaster;
  pool_opt <- pools[pool_name];
  new_pool = match pool_opt with
             | Some p => builtin add p amount
             | None => amount
             end;
  pools[pool_name] := new_pool
end

transition AwardPlayer (pool_name: String, player: ByStr20, amount: Uint128)
  ThrowIfNotGameMaster;
  ThrowIfPaused;
  pool_opt <- pools[pool_name];
  pool = match pool_opt with
         | Some p => p
         | None => zero
         end;
  insufficient = builtin lt pool amount;
  match insufficient with
  | True =>
    e = { _exception : "PoolExhausted" };
    throw e
  | False =>
    new_pool = builtin sub pool amount;
    pools[pool_name] := new_pool;
    reward_opt <- player_rewards[player];
    new_reward = match reward_opt with
                 | Some r => builtin add r amount
                 | None => amount
                 end;
    player_rewards[player] := new_reward
  end
end

transition SetPaused (value: Bool)
  ThrowIfNotGameMaster;
  paused := value
end
"""

# SimpleBondingCurve: price grows with supply; buy/sell against curve.
SIMPLE_BONDING_CURVE = """
scilla_version 0

library SimpleBondingCurve

let zero = Uint128 0
let one = Uint128 1

contract SimpleBondingCurve (creator: ByStr20, base_price: Uint128)

field balances : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field supply : Uint128 = Uint128 0

transition Buy ()
  s <- supply;
  price = builtin add base_price s;
  enough = builtin lt _amount price;
  match enough with
  | True =>
    e = { _exception : "PriceNotMet" };
    throw e
  | False =>
    accept;
    new_supply = builtin add s one;
    supply := new_supply;
    bal_opt <- balances[_sender];
    new_bal = match bal_opt with
              | Some b => builtin add b one
              | None => one
              end;
    balances[_sender] := new_bal
  end
end

transition Sell (amount: Uint128)
  bal_opt <- balances[_sender];
  bal = match bal_opt with
        | Some b => b
        | None => zero
        end;
  insufficient = builtin lt bal amount;
  match insufficient with
  | True =>
    e = { _exception : "InsufficientTokens" };
    throw e
  | False =>
    new_bal = builtin sub bal amount;
    balances[_sender] := new_bal;
    s <- supply;
    new_supply = builtin sub s amount;
    supply := new_supply;
    payout = builtin mul amount base_price;
    msg = { _tag : "SellPayout"; _recipient : _sender;
            _amount : payout };
    msgs = one_msg msg;
    send msgs
  end
end
"""

# MyRewardsToken: merchants grant points; customers redeem in-store.
MY_REWARDS_TOKEN = """
scilla_version 0

library MyRewardsToken

let zero = Uint128 0

contract MyRewardsToken (brand: ByStr20)

field points : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field merchants : Map ByStr20 Bool = Emp ByStr20 Bool
field total_issued : Uint128 = Uint128 0

procedure ThrowIfNotMerchant ()
  ok <- exists merchants[_sender];
  match ok with
  | True =>
  | False =>
    e = { _exception : "NotMerchant" };
    throw e
  end
end

transition AddMerchant (merchant: ByStr20)
  ok = builtin eq _sender brand;
  match ok with
  | False =>
    e = { _exception : "NotBrand" };
    throw e
  | True =>
    flag = True;
    merchants[merchant] := flag
  end
end

transition GrantPoints (customer: ByStr20, amount: Uint128)
  ThrowIfNotMerchant;
  p_opt <- points[customer];
  new_points = match p_opt with
               | Some p => builtin add p amount
               | None => amount
               end;
  points[customer] := new_points;
  t <- total_issued;
  new_total = builtin add t amount;
  total_issued := new_total
end

transition RedeemPoints (amount: Uint128)
  p_opt <- points[_sender];
  p = match p_opt with
      | Some v => v
      | None => zero
      end;
  insufficient = builtin lt p amount;
  match insufficient with
  | True =>
    e = { _exception : "InsufficientPoints" };
    throw e
  | False =>
    new_points = builtin sub p amount;
    points[_sender] := new_points;
    e = { _eventname : "Redeemed"; customer : _sender; amount : amount };
    event e
  end
end
"""

# ZKToken: transfers authorised by a (stand-in) Schnorr signature.
ZK_TOKEN = """
scilla_version 0

library ZKToken

let zero = Uint128 0

contract ZKToken (verifier_key: ByStr)

field balances : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field used_proofs : Map ByStr32 Bool = Emp ByStr32 Bool

transition Deposit ()
  accept;
  bal_opt <- balances[_sender];
  new_bal = match bal_opt with
            | Some b => builtin add b _amount
            | None => _amount
            end;
  balances[_sender] := new_bal
end

transition ProvenTransfer (to: ByStr20, amount: Uint128,
                           proof_id: ByStr32, proof: ByStr32)
  seen <- exists used_proofs[proof_id];
  match seen with
  | True =>
    e = { _exception : "ProofReplayed" };
    throw e
  | False =>
    valid = builtin schnorr_verify verifier_key proof_id proof;
    match valid with
    | False =>
      e = { _exception : "InvalidProof" };
      throw e
    | True =>
      flag = True;
      used_proofs[proof_id] := flag;
      bal_opt <- balances[_sender];
      bal = match bal_opt with
            | Some b => b
            | None => zero
            end;
      insufficient = builtin lt bal amount;
      match insufficient with
      | True =>
        e = { _exception : "InsufficientFunds" };
        throw e
      | False =>
        new_from = builtin sub bal amount;
        balances[_sender] := new_from;
        to_opt <- balances[to];
        new_to = match to_opt with
                 | Some b => builtin add b amount
                 | None => amount
                 end;
        balances[to] := new_to
      end
    end
  end
end
"""

# LUY_Cambodia: remittance token with daily caps per corridor agent.
LUY_CAMBODIA = """
scilla_version 0

library LUYCambodia

let zero = Uint128 0

contract LUYCambodia (central_agent: ByStr20, daily_cap: Uint128)

field balances : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field sent_today : Map ByStr20 Uint128 = Emp ByStr20 Uint128

transition IssueLUY (agent: ByStr20, amount: Uint128)
  ok = builtin eq _sender central_agent;
  match ok with
  | False =>
    e = { _exception : "NotCentralAgent" };
    throw e
  | True =>
    bal_opt <- balances[agent];
    new_bal = match bal_opt with
              | Some b => builtin add b amount
              | None => amount
              end;
    balances[agent] := new_bal
  end
end

transition Remit (to: ByStr20, amount: Uint128)
  sent_opt <- sent_today[_sender];
  sent = match sent_opt with
         | Some s => s
         | None => zero
         end;
  new_sent = builtin add sent amount;
  over_cap = builtin lt daily_cap new_sent;
  match over_cap with
  | True =>
    e = { _exception : "DailyCapExceeded" };
    throw e
  | False =>
    sent_today[_sender] := new_sent;
    bal_opt <- balances[_sender];
    bal = match bal_opt with
          | Some b => b
          | None => zero
          end;
    insufficient = builtin lt bal amount;
    match insufficient with
    | True =>
      e = { _exception : "InsufficientFunds" };
      throw e
    | False =>
      new_from = builtin sub bal amount;
      balances[_sender] := new_from;
      to_opt <- balances[to];
      new_to = match to_opt with
               | Some b => builtin add b amount
               | None => amount
               end;
      balances[to] := new_to
    end
  end
end

transition ResetDay (agent: ByStr20)
  ok = builtin eq _sender central_agent;
  match ok with
  | False =>
    e = { _exception : "NotCentralAgent" };
    throw e
  | True =>
    delete sent_today[agent]
  end
end
"""

# OceanRumble_minion_token: game items as fungible minion stacks.
OCEAN_RUMBLE_MINION_TOKEN = """
scilla_version 0

library OceanRumbleMinionToken

let zero = Uint128 0

contract OceanRumbleMinionToken (game: ByStr20)

field minions : Map ByStr20 (Map Uint32 Uint128) =
  Emp ByStr20 (Map Uint32 Uint128)

transition AwardMinions (player: ByStr20, kind: Uint32, count: Uint128)
  ok = builtin eq _sender game;
  match ok with
  | False =>
    e = { _exception : "NotGame" };
    throw e
  | True =>
    have_opt <- minions[player][kind];
    new_count = match have_opt with
                | Some c => builtin add c count
                | None => count
                end;
    minions[player][kind] := new_count
  end
end

transition SacrificeMinions (kind: Uint32, count: Uint128)
  have_opt <- minions[_sender][kind];
  have = match have_opt with
         | Some c => c
         | None => zero
         end;
  insufficient = builtin lt have count;
  match insufficient with
  | True =>
    e = { _exception : "NotEnoughMinions" };
    throw e
  | False =>
    new_count = builtin sub have count;
    minions[_sender][kind] := new_count;
    e = { _eventname : "Sacrificed"; kind : kind; count : count };
    event e
  end
end

transition GiftMinions (to: ByStr20, kind: Uint32, count: Uint128)
  have_opt <- minions[_sender][kind];
  have = match have_opt with
         | Some c => c
         | None => zero
         end;
  insufficient = builtin lt have count;
  match insufficient with
  | True =>
    e = { _exception : "NotEnoughMinions" };
    throw e
  | False =>
    new_count = builtin sub have count;
    minions[_sender][kind] := new_count;
    theirs_opt <- minions[to][kind];
    new_theirs = match theirs_opt with
                 | Some c => builtin add c count
                 | None => count
                 end;
    minions[to][kind] := new_theirs
  end
end
"""

# Cryptoman: collectible packs bought with native token.
CRYPTOMAN = """
scilla_version 0

library Cryptoman

let zero = Uint128 0
let pack_size = Uint128 3

contract Cryptoman (publisher: ByStr20, pack_price: Uint128)

field collection : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field packs_sold : Uint128 = Uint128 0

transition BuyPack ()
  underpaid = builtin lt _amount pack_price;
  match underpaid with
  | True =>
    e = { _exception : "Underpaid" };
    throw e
  | False =>
    accept;
    have_opt <- collection[_sender];
    new_have = match have_opt with
               | Some c => builtin add c pack_size
               | None => pack_size
               end;
    collection[_sender] := new_have;
    sold <- packs_sold;
    new_sold = builtin add sold pack_size;
    packs_sold := new_sold
  end
end

transition TradeCard (to: ByStr20, count: Uint128)
  have_opt <- collection[_sender];
  have = match have_opt with
         | Some c => c
         | None => zero
         end;
  insufficient = builtin lt have count;
  match insufficient with
  | True =>
    e = { _exception : "NotEnoughCards" };
    throw e
  | False =>
    new_have = builtin sub have count;
    collection[_sender] := new_have;
    theirs_opt <- collection[to];
    new_theirs = match theirs_opt with
                 | Some c => builtin add c count
                 | None => count
                 end;
    collection[to] := new_theirs
  end
end
"""
