"""Hand-written lexer for the Scilla concrete syntax.

Produces a flat token stream.  Comments ``(* ... *)`` nest, as in
OCaml.  Identifier classes follow Scilla: lowercase identifiers for
variables/fields, capitalised identifiers (CIDs) for constructors,
types and component names, and ``'A``-style type variables.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast import Loc
from .errors import LexError

KEYWORDS = {
    "scilla_version", "library", "contract", "field", "transition",
    "procedure", "let", "in", "fun", "tfun", "match", "with", "end",
    "builtin", "accept", "send", "event", "throw", "delete", "exists",
    "Emp", "of", "type", "import", "forall",
}

# Multi-character symbols, longest first so the scanner is greedy.
SYMBOLS = [
    ":=", "<-", "=>", "->", "{", "}", "(", ")", "[", "]", ";", ":",
    ",", "=", "|", "&", "@", "_",
]


@dataclass(frozen=True)
class Token:
    kind: str       # keyword | id | cid | tvar | int | string | hex | sym | eof
    value: str
    loc: Loc

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.loc})"


def tokenize(source: str) -> list[Token]:
    """Convert a source string into a list of tokens ending with EOF."""
    tokens: list[Token] = []
    i = 0
    line, col = 1, 1
    n = len(source)

    def loc() -> Loc:
        return Loc(line, col)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        # Whitespace.
        if ch in " \t\r\n":
            advance(1)
            continue
        # Nested comments.
        if source.startswith("(*", i):
            start = loc()
            depth = 0
            while i < n:
                if source.startswith("(*", i):
                    depth += 1
                    advance(2)
                elif source.startswith("*)", i):
                    depth -= 1
                    advance(2)
                    if depth == 0:
                        break
                else:
                    advance(1)
            if depth != 0:
                raise LexError("unterminated comment", start)
            continue
        # String literals.
        if ch == '"':
            start = loc()
            advance(1)
            chars: list[str] = []
            while i < n and source[i] != '"':
                if source[i] == "\\" and i + 1 < n:
                    esc = source[i + 1]
                    chars.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
                    advance(2)
                else:
                    chars.append(source[i])
                    advance(1)
            if i >= n:
                raise LexError("unterminated string literal", start)
            advance(1)  # closing quote
            tokens.append(Token("string", "".join(chars), start))
            continue
        # Hex literals (addresses, hashes).
        if source.startswith("0x", i) or source.startswith("0X", i):
            start = loc()
            j = i + 2
            while j < n and (source[j] in "0123456789abcdefABCDEF"):
                j += 1
            if j == i + 2:
                raise LexError("malformed hex literal", start)
            text = source[i:j].lower()
            advance(j - i)
            tokens.append(Token("hex", text, start))
            continue
        # Numbers (optionally negative handled at parse level via '-').
        if ch.isdigit() or (ch == "-" and i + 1 < n and source[i + 1].isdigit()):
            start = loc()
            j = i + 1
            while j < n and source[j].isdigit():
                j += 1
            text = source[i:j]
            advance(j - i)
            tokens.append(Token("int", text, start))
            continue
        # Type variables 'A.
        if ch == "'":
            start = loc()
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            if j == i + 1:
                raise LexError("malformed type variable", start)
            text = source[i:j]
            advance(j - i)
            tokens.append(Token("tvar", text, start))
            continue
        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            start = loc()
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            # A lone underscore is the wildcard symbol, not an identifier.
            if text == "_":
                advance(1)
                tokens.append(Token("sym", "_", start))
                continue
            advance(j - i)
            if text in KEYWORDS:
                tokens.append(Token("keyword", text, start))
            elif text[0].isupper():
                tokens.append(Token("cid", text, start))
            else:
                tokens.append(Token("id", text, start))
            continue
        # Symbols.
        for sym in SYMBOLS:
            if source.startswith(sym, i):
                start = loc()
                advance(len(sym))
                tokens.append(Token("sym", sym, start))
                break
        else:
            raise LexError(f"unexpected character {ch!r}", loc())

    tokens.append(Token("eof", "", loc()))
    return tokens
