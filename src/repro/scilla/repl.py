"""A small Scilla expression REPL.

Evaluates pure Scilla expressions interactively with persistent
``let``-style bindings, the prelude and the native library in scope.
Used by ``python -m repro repl`` and handy when writing corpus
contracts.

Commands:

* ``:type <expr>`` — infer and print the expression's type;
* ``:let <name> = <expr>`` — evaluate and bind for later inputs;
* ``:env`` — list current bindings;
* ``:quit`` — leave.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from .errors import ScillaError
from .interpreter import Interpreter, NATIVE_ARITIES
from .parser import parse_expression, parse_module
from .typechecker import NATIVE_TYPES, TypeChecker, TypeEnv
from .values import Env, Value

_EMPTY_MODULE = """
scilla_version 0
contract Repl (owner: ByStr20)
transition Nop ()
end
"""


@dataclass
class ReplSession:
    """Holds evaluation and typing environments across inputs."""

    interpreter: Interpreter = dc_field(
        default_factory=lambda: Interpreter(
            parse_module(_EMPTY_MODULE, "<repl>")))
    bindings: list[tuple[str, Value]] = dc_field(default_factory=list)

    def _env(self) -> Env:
        env = self.interpreter.lib_env
        for name, value in self.bindings:
            env = env.bind(name, value)
        return env

    def _type_env(self) -> TypeEnv:
        checker = TypeChecker(self.interpreter.module)
        env = checker.check_module()
        for name, value in self.bindings:
            # Bindings were produced by evaluation; recover their types
            # best-effort for :type queries.
            from .values import type_of_value
            try:
                env.bind(name, type_of_value(value))
            except ScillaError:
                pass
        return env

    def eval(self, source: str) -> Value:
        """Evaluate one expression in the current environment."""
        expr = parse_expression(source)
        return self.interpreter.eval_expr(expr, self._env())

    def type_of(self, source: str) -> str:
        expr = parse_expression(source)
        checker = TypeChecker(self.interpreter.module)
        return str(checker.infer_expr(expr, self._type_env()))

    def let(self, name: str, source: str) -> Value:
        value = self.eval(source)
        self.bindings.append((name, value))
        return value

    def handle(self, line: str) -> str | None:
        """Process one REPL line; returns the text to display, or
        None for :quit."""
        line = line.strip()
        if not line:
            return ""
        if line in (":quit", ":q"):
            return None
        if line == ":env":
            if not self.bindings:
                return "(no bindings)"
            return "\n".join(f"{name} = {value}"
                             for name, value in self.bindings)
        if line == ":help":
            return (":type <expr>   infer a type\n"
                    ":let n = expr  bind a value\n"
                    ":env           list bindings\n"
                    ":quit          exit")
        try:
            if line.startswith(":type "):
                return self.type_of(line.removeprefix(":type "))
            if line.startswith(":let "):
                body = line.removeprefix(":let ")
                name, _, source = body.partition("=")
                name = name.strip()
                if not name or not source.strip():
                    return "usage: :let <name> = <expr>"
                value = self.let(name, source.strip())
                return f"{name} = {value}"
            return str(self.eval(line))
        except ScillaError as exc:
            return f"error: {exc}"


def run_repl(stdin=None, stdout=None) -> None:  # pragma: no cover - I/O
    import sys
    stdin = stdin or sys.stdin
    stdout = stdout or sys.stdout
    session = ReplSession()
    stdout.write("Scilla REPL — :help for commands\n")
    while True:
        stdout.write("scilla> ")
        stdout.flush()
        line = stdin.readline()
        if not line:
            break
        output = session.handle(line)
        if output is None:
            break
        if output:
            stdout.write(output + "\n")
