"""Recursive-descent parser for Scilla.

The accepted grammar follows the real Scilla concrete syntax closely:
A-normal-form expressions, ``let``/``fun``/``tfun``/``match``/
``builtin``, message records in braces, and the statement forms of
Fig. 4 (loads, stores, map operations, ``accept``/``send``/``event``/
``throw``, and procedure calls).
"""

from __future__ import annotations

from .ast import (
    Accept, App, Atom, Bind, BinderPat, Builtin, CallProc, Component,
    Constr, ConstructorPat, Contract, Event, Expr, Field, Fun, Ident,
    Let, LibEntry, LibTypeDef, Library, LitAtom, Literal, Load, MapDelete, MapGet, MapGetExists, MapUpdate, MatchExpr, MatchStmt,
    MessageExpr, Module, Param, Pattern, ReadBlockchain, Send, Stmt,
    Store, TApp, TFun, Throw, Var, WildcardPat,
)
from .errors import ParseError
from .lexer import Token, tokenize
from .types import (
    ADTType, FunType, MapType, PrimType, ScillaType, TypeVar,
    BYSTR_NAMES, INT_TYPE_NAMES, PRIM_TYPE_NAMES, STRING, int_bounds,
)

BLOCKCHAIN_ENTRIES = {"BLOCKNUMBER", "TIMESTAMP", "CHAINID"}


class Parser:
    def __init__(self, tokens: list[Token], source_name: str = "<unknown>"):
        self.tokens = tokens
        self.pos = 0
        self.source_name = source_name

    # -- token helpers ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, value: str | None = None, offset: int = 0) -> bool:
        tok = self.peek(offset)
        return tok.kind == kind and (value is None or tok.value == value)

    def expect(self, kind: str, value: str | None = None) -> Token:
        tok = self.peek()
        if not self.at(kind, value):
            want = value if value is not None else kind
            raise ParseError(f"expected {want!r}, found {tok.value!r}", tok.loc)
        return self.next()

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.peek().loc)

    # -- types --------------------------------------------------------------

    def parse_type(self) -> ScillaType:
        left = self.parse_type_app()
        if self.at("sym", "->"):
            self.next()
            return FunType(left, self.parse_type())
        return left

    def parse_type_app(self) -> ScillaType:
        tok = self.peek()
        if tok.kind == "cid":
            name = tok.value
            if name == "Map":
                self.next()
                kt = self.parse_type_atom()
                vt = self.parse_type_atom()
                return MapType(kt, vt)
            if name in PRIM_TYPE_NAMES:
                self.next()
                return PrimType(name)
            # ADT, possibly applied to type atoms.
            self.next()
            targs: list[ScillaType] = []
            while self._at_type_atom():
                targs.append(self.parse_type_atom())
            return ADTType(name, tuple(targs))
        return self.parse_type_atom()

    def _at_type_atom(self) -> bool:
        return self.at("cid") or self.at("tvar") or self.at("sym", "(")

    def parse_type_atom(self) -> ScillaType:
        tok = self.peek()
        if tok.kind == "tvar":
            self.next()
            return TypeVar(tok.value)
        if tok.kind == "cid":
            name = tok.value
            self.next()
            if name == "Map":
                raise ParseError("Map requires parentheses in atom position", tok.loc)
            if name in PRIM_TYPE_NAMES:
                return PrimType(name)
            return ADTType(name)
        if self.at("sym", "("):
            self.next()
            t = self.parse_type()
            self.expect("sym", ")")
            return t
        raise self.error(f"expected a type, found {tok.value!r}")

    # -- atoms and literals --------------------------------------------------

    def _int_literal(self, type_name: str) -> LitAtom:
        """Parse ``Uint128 42``-style literal; the CID was just consumed."""
        tok = self.expect("int")
        value = int(tok.value)
        typ = PrimType(type_name)
        if type_name != "BNum":
            lo, hi = int_bounds(typ)
            if not lo <= value <= hi:
                raise ParseError(
                    f"literal {value} out of range for {type_name}", tok.loc)
        elif value < 0:
            raise ParseError("block numbers cannot be negative", tok.loc)
        return LitAtom(value, typ, tok.loc)

    def _hex_literal(self, tok: Token) -> LitAtom:
        body = tok.value[2:]
        if len(body) % 2 != 0:
            raise ParseError("hex literal must have an even number of digits", tok.loc)
        nbytes = len(body) // 2
        name = f"ByStr{nbytes}" if f"ByStr{nbytes}" in BYSTR_NAMES else "ByStr"
        return LitAtom(tok.value, PrimType(name), tok.loc)

    def _at_atom(self) -> bool:
        if self.at("id") or self.at("string") or self.at("hex"):
            return True
        # ``Uint128 42`` literal in atom position.
        return (
            self.at("cid")
            and (self.peek().value in INT_TYPE_NAMES
                 or self.peek().value == "BNum")
            and self.at("int", offset=1)
        )

    def parse_atom(self) -> Atom:
        tok = self.peek()
        if tok.kind == "id":
            self.next()
            return Ident(tok.value, tok.loc)
        if tok.kind == "string":
            self.next()
            return LitAtom(tok.value, STRING, tok.loc)
        if tok.kind == "hex":
            self.next()
            return self._hex_literal(tok)
        if tok.kind == "cid" and (tok.value in INT_TYPE_NAMES
                                  or tok.value == "BNum"):
            self.next()
            return self._int_literal(tok.value)
        raise self.error(
            f"expected an atom (identifier or literal), found {tok.value!r}"
        )

    # -- patterns ------------------------------------------------------------

    def parse_pattern(self) -> Pattern:
        tok = self.peek()
        if tok.kind == "cid":
            self.next()
            args: list[Pattern] = []
            while self._at_pattern_atom():
                args.append(self.parse_pattern_atom())
            return ConstructorPat(tok.value, tuple(args), tok.loc)
        return self.parse_pattern_atom()

    def _at_pattern_atom(self) -> bool:
        return (
            self.at("id") or self.at("cid") or self.at("sym", "_")
            or self.at("sym", "(")
        )

    def parse_pattern_atom(self) -> Pattern:
        tok = self.peek()
        if tok.kind == "sym" and tok.value == "_":
            self.next()
            return WildcardPat(tok.loc)
        if tok.kind == "id":
            self.next()
            return BinderPat(tok.value, tok.loc)
        if tok.kind == "cid":
            self.next()
            return ConstructorPat(tok.value, (), tok.loc)
        if tok.kind == "sym" and tok.value == "(":
            self.next()
            pat = self.parse_pattern()
            self.expect("sym", ")")
            return pat
        raise self.error(f"expected a pattern, found {tok.value!r}")

    # -- expressions ----------------------------------------------------------

    def parse_expr(self) -> Expr:
        tok = self.peek()
        if tok.kind == "keyword":
            if tok.value == "let":
                return self._parse_let()
            if tok.value == "fun":
                return self._parse_fun()
            if tok.value == "tfun":
                return self._parse_tfun()
            if tok.value == "match":
                return self._parse_match_expr()
            if tok.value == "builtin":
                return self._parse_builtin()
            if tok.value == "Emp":
                return self._parse_emp()
        if tok.kind == "sym" and tok.value == "{":
            return self._parse_message()
        if tok.kind == "sym" and tok.value == "@":
            return self._parse_tapp()
        return self._parse_app_or_atom()

    def _parse_let(self) -> Let:
        loc = self.expect("keyword", "let").loc
        name = self.expect("id").value
        annot: ScillaType | None = None
        if self.at("sym", ":"):
            self.next()
            annot = self.parse_type()
        self.expect("sym", "=")
        bound = self.parse_expr()
        self.expect("keyword", "in")
        body = self.parse_expr()
        return Let(name, annot, bound, body, loc)

    def _parse_fun(self) -> Fun:
        loc = self.expect("keyword", "fun").loc
        self.expect("sym", "(")
        name = self.expect("id").value
        self.expect("sym", ":")
        typ = self.parse_type()
        self.expect("sym", ")")
        self.expect("sym", "=>")
        body = self.parse_expr()
        return Fun(name, typ, body, loc)

    def _parse_tfun(self) -> TFun:
        loc = self.expect("keyword", "tfun").loc
        tv = self.expect("tvar").value
        self.expect("sym", "=>")
        body = self.parse_expr()
        return TFun(tv, body, loc)

    def _parse_match_expr(self) -> MatchExpr:
        loc = self.expect("keyword", "match").loc
        scrutinee = self.expect("id")
        self.expect("keyword", "with")
        clauses: list[tuple[Pattern, Expr]] = []
        while self.at("sym", "|"):
            self.next()
            pat = self.parse_pattern()
            self.expect("sym", "=>")
            clauses.append((pat, self.parse_expr()))
        self.expect("keyword", "end")
        if not clauses:
            raise ParseError("match expression with no clauses", loc)
        return MatchExpr(Ident(scrutinee.value, scrutinee.loc), tuple(clauses), loc)

    def _parse_builtin(self) -> Builtin:
        loc = self.expect("keyword", "builtin").loc
        name_tok = self.peek()
        if name_tok.kind not in ("id", "keyword"):
            raise self.error(f"expected builtin name, found {name_tok.value!r}")
        self.next()
        args: list[Atom] = [self.parse_atom()]
        while self._at_atom():
            args.append(self.parse_atom())
        return Builtin(name_tok.value, tuple(args), loc)

    def _parse_emp(self) -> Literal:
        loc = self.expect("keyword", "Emp").loc
        kt = self.parse_type_atom()
        vt = self.parse_type_atom()
        return Literal({}, MapType(kt, vt), loc)

    def _parse_message(self) -> MessageExpr:
        loc = self.expect("sym", "{").loc
        fields: list[tuple[str, Atom]] = []
        while not self.at("sym", "}"):
            name = self.expect("id").value
            self.expect("sym", ":")
            fields.append((name, self.parse_atom()))
            if self.at("sym", ";"):
                self.next()
            else:
                break
        self.expect("sym", "}")
        return MessageExpr(tuple(fields), loc)

    def _parse_tapp(self) -> Expr:
        loc = self.expect("sym", "@").loc
        func = self.expect("id")
        targs: list[ScillaType] = []
        while self._at_type_atom():
            targs.append(self.parse_type_atom())
        if not targs:
            raise ParseError("type application requires at least one type", loc)
        return TApp(Ident(func.value, func.loc), tuple(targs), loc)

    def _parse_app_or_atom(self) -> Expr:
        tok = self.peek()
        if tok.kind == "cid":
            # Either an integer literal (``Uint128 1``) or a constructor.
            if (tok.value in INT_TYPE_NAMES or tok.value == "BNum") \
                    and self.at("int", offset=1):
                self.next()
                lit = self._int_literal(tok.value)
                return Literal(lit.value, lit.typ, tok.loc)
            return self._parse_constr()
        if tok.kind == "string":
            self.next()
            return Literal(tok.value, STRING, tok.loc)
        if tok.kind == "hex":
            self.next()
            lit = self._hex_literal(tok)
            return Literal(lit.value, lit.typ, tok.loc)
        if tok.kind == "id":
            self.next()
            func = Ident(tok.value, tok.loc)
            args: list[Atom] = []
            while self._at_atom():
                args.append(self.parse_atom())
            if args:
                return App(func, tuple(args), tok.loc)
            return Var(tok.value, tok.loc)
        raise self.error(f"expected an expression, found {tok.value!r}")

    def _parse_constr(self) -> Constr:
        tok = self.expect("cid")
        targs: list[ScillaType] = []
        # Both Scilla styles are accepted: one brace group with all the
        # type arguments (`Pair {T U}`) or one group per argument
        # (`Pair {T} {U}`, the upstream concrete syntax).
        while self.at("sym", "{"):
            self.next()
            while not self.at("sym", "}"):
                targs.append(self.parse_type_atom())
            self.expect("sym", "}")
        args: list[Atom] = []
        while self._at_atom():
            args.append(self.parse_atom())
        return Constr(tok.value, tuple(targs), tuple(args), tok.loc)

    # -- statements ------------------------------------------------------------

    def parse_statements(self, terminators: tuple[str, ...]) -> tuple[Stmt, ...]:
        """Parse ``;``-separated statements until a terminator token."""
        stmts: list[Stmt] = []
        while True:
            tok = self.peek()
            if tok.kind == "eof":
                break
            if tok.kind == "keyword" and tok.value in terminators:
                break
            if tok.kind == "sym" and tok.value in terminators:
                break
            stmts.append(self.parse_statement())
            if self.at("sym", ";"):
                self.next()
            else:
                break
        return tuple(stmts)

    def parse_statement(self) -> Stmt:
        tok = self.peek()
        if tok.kind == "keyword":
            if tok.value == "accept":
                self.next()
                return Accept(tok.loc)
            if tok.value == "send":
                self.next()
                return Send(self.parse_atom(), tok.loc)
            if tok.value == "event":
                self.next()
                return Event(self.parse_atom(), tok.loc)
            if tok.value == "throw":
                self.next()
                arg = self.parse_atom() if self._at_atom() else None
                return Throw(arg, tok.loc)
            if tok.value == "delete":
                self.next()
                mapname = self.expect("id").value
                keys = self._parse_map_keys(required=True)
                return MapDelete(mapname, keys, tok.loc)
            if tok.value == "match":
                return self._parse_match_stmt()
        if tok.kind == "cid":
            # Procedure call: CID atom*
            self.next()
            args: list[Atom] = []
            while self._at_atom():
                args.append(self.parse_atom())
            return CallProc(tok.value, tuple(args), tok.loc)
        if tok.kind == "id":
            return self._parse_id_statement()
        raise self.error(f"expected a statement, found {tok.value!r}")

    def _parse_map_keys(self, required: bool = False) -> tuple[Atom, ...]:
        keys: list[Atom] = []
        while self.at("sym", "["):
            self.next()
            keys.append(self.parse_atom())
            self.expect("sym", "]")
        if required and not keys:
            raise self.error("expected at least one map key")
        return tuple(keys)

    def _parse_id_statement(self) -> Stmt:
        name_tok = self.expect("id")
        name = name_tok.value
        if self.at("sym", "<-"):
            self.next()
            if self.at("sym", "&"):
                self.next()
                entry = self.expect("cid").value
                if entry not in BLOCKCHAIN_ENTRIES:
                    raise ParseError(f"unknown blockchain entry {entry}", name_tok.loc)
                return ReadBlockchain(name, entry, name_tok.loc)
            if self.at("keyword", "exists"):
                self.next()
                mapname = self.expect("id").value
                keys = self._parse_map_keys(required=True)
                return MapGetExists(name, mapname, keys, name_tok.loc)
            src = self.expect("id").value
            keys = self._parse_map_keys()
            if keys:
                return MapGet(name, src, keys, name_tok.loc)
            return Load(name, src, name_tok.loc)
        if self.at("sym", "["):
            keys = self._parse_map_keys(required=True)
            self.expect("sym", ":=")
            return MapUpdate(name, keys, self.parse_atom(), name_tok.loc)
        if self.at("sym", ":="):
            self.next()
            return Store(name, self.parse_atom(), name_tok.loc)
        if self.at("sym", "="):
            self.next()
            return Bind(name, self.parse_expr(), name_tok.loc)
        raise self.error(f"malformed statement starting with {name!r}")

    def _parse_match_stmt(self) -> MatchStmt:
        loc = self.expect("keyword", "match").loc
        scrutinee = self.expect("id")
        self.expect("keyword", "with")
        clauses: list[tuple[Pattern, tuple[Stmt, ...]]] = []
        while self.at("sym", "|"):
            self.next()
            pat = self.parse_pattern()
            self.expect("sym", "=>")
            body = self.parse_statements(terminators=("end", "|"))
            clauses.append((pat, body))
        self.expect("keyword", "end")
        if not clauses:
            raise ParseError("match statement with no clauses", loc)
        return MatchStmt(Ident(scrutinee.value, scrutinee.loc), tuple(clauses), loc)

    # -- top level ----------------------------------------------------------------

    def parse_params(self) -> tuple[Param, ...]:
        self.expect("sym", "(")
        params: list[Param] = []
        while not self.at("sym", ")"):
            name_tok = self.expect("id")
            self.expect("sym", ":")
            typ = self.parse_type()
            params.append(Param(name_tok.value, typ, name_tok.loc))
            if self.at("sym", ","):
                self.next()
        self.expect("sym", ")")
        return tuple(params)

    def parse_library(self) -> Library:
        self.expect("keyword", "library")
        name = self.expect("cid").value
        entries: list[LibEntry | LibTypeDef] = []
        while True:
            if self.at("keyword", "let"):
                loc = self.next().loc
                ename = self.expect("id").value
                annot: ScillaType | None = None
                if self.at("sym", ":"):
                    self.next()
                    annot = self.parse_type()
                self.expect("sym", "=")
                entries.append(LibEntry(ename, annot, self.parse_expr(), loc))
            elif self.at("keyword", "type"):
                loc = self.next().loc
                tname = self.expect("cid").value
                constructors: list[tuple[str, tuple[ScillaType, ...]]] = []
                if self.at("sym", "="):
                    self.next()
                    while self.at("sym", "|"):
                        self.next()
                        cname = self.expect("cid").value
                        arg_types: list[ScillaType] = []
                        if self.at("keyword", "of"):
                            self.next()
                            arg_types.append(self.parse_type_atom())
                            while self._at_type_atom():
                                arg_types.append(self.parse_type_atom())
                        constructors.append((cname, tuple(arg_types)))
                entries.append(LibTypeDef(tname, tuple(constructors), loc))
            else:
                break
        return Library(name, tuple(entries))

    def parse_contract(self) -> Contract:
        loc = self.expect("keyword", "contract").loc
        name = self.expect("cid").value
        params = self.parse_params() if self.at("sym", "(") else ()
        fields: list[Field] = []
        while self.at("keyword", "field"):
            floc = self.next().loc
            fname = self.expect("id").value
            self.expect("sym", ":")
            ftyp = self.parse_type()
            self.expect("sym", "=")
            fields.append(Field(fname, ftyp, self.parse_expr(), floc))
        components: list[Component] = []
        while self.at("keyword", "transition") or self.at("keyword", "procedure"):
            kind_tok = self.next()
            cname = self.expect("cid").value
            cparams = self.parse_params() if self.at("sym", "(") else ()
            body = self.parse_statements(terminators=("end",))
            self.expect("keyword", "end")
            components.append(
                Component(kind_tok.value, cname, cparams, body, kind_tok.loc)
            )
        return Contract(name, params, tuple(fields), tuple(components), loc)

    def parse_module(self) -> Module:
        version = 0
        if self.at("keyword", "scilla_version"):
            self.next()
            version = int(self.expect("int").value)
        library = self.parse_library() if self.at("keyword", "library") else None
        contract = self.parse_contract()
        self.expect("eof")
        return Module(version, library, contract, self.source_name)


def parse_module(source: str, source_name: str = "<unknown>") -> Module:
    """Parse a complete ``.scilla`` module from source text."""
    return Parser(tokenize(source), source_name).parse_module()


def parse_expression(source: str) -> Expr:
    """Parse a standalone Scilla expression (used in tests and the REPL)."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expr()
    parser.expect("eof")
    return expr


def parse_type_str(source: str) -> ScillaType:
    """Parse a standalone Scilla type."""
    parser = Parser(tokenize(source))
    typ = parser.parse_type()
    parser.expect("eof")
    return typ
