"""Runtime values for the Scilla definitional interpreter.

Values are deliberately simple wrappers.  Primitive values are frozen
(hashable, usable as map keys); maps are mutable dictionaries owned by
the contract state.  Maps copy structurally (copy-on-write): a
``copy()`` is O(1) and shares the entry dict with its source until one
side is first written (see docs/STATE.md for the aliasing invariant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from . import types as ty
from .ast import Expr
from .errors import EvalError
from .types import PrimType, ScillaType


class Value:
    """Base class for all runtime values."""

    __slots__ = ()


@dataclass(frozen=True)
class IntVal(Value):
    """A bounded signed/unsigned integer."""

    value: int
    typ: PrimType

    def __post_init__(self) -> None:
        lo, hi = ty.int_bounds(self.typ)
        if not lo <= self.value <= hi:
            raise EvalError(f"integer {self.value} out of bounds for {self.typ}")

    def __str__(self) -> str:
        return f"{self.typ} {self.value}"


@dataclass(frozen=True)
class StringVal(Value):
    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class ByStrVal(Value):
    """A byte string, stored as a ``0x…`` lowercase hex literal."""

    hex: str
    typ: PrimType

    def __post_init__(self) -> None:
        if not self.hex.startswith("0x"):
            raise EvalError(f"malformed byte string {self.hex!r}")

    @property
    def nbytes(self) -> int:
        return (len(self.hex) - 2) // 2

    def __str__(self) -> str:
        return self.hex


@dataclass(frozen=True)
class BNumVal(Value):
    """A block number."""

    value: int

    def __str__(self) -> str:
        return f"BNum {self.value}"


@dataclass(frozen=True)
class ADTVal(Value):
    """A saturated constructor application (Bool, Option, List, …)."""

    adt: str
    constructor: str
    targs: tuple[ScillaType, ...]
    args: tuple[Value, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.constructor
        return f"({self.constructor} {' '.join(str(a) for a in self.args)})"


# Process-wide count of copy-on-write materialisations (``_own`` dict
# copies).  Read by the chain telemetry (``state.cow.copies``) and by
# the CI bench smoke guarding that checkpoint ``take`` stays O(1).
COW_COPIES = 0


@dataclass
class MapVal(Value):
    """A mutable finite map; contract state owns these.

    Copies share structure: ``copy()`` returns a new wrapper over the
    *same* entry dict, marking both sides copy-on-write.  The first
    write through either wrapper materialises a private shallow copy
    of the dict (``_own``), re-wrapping map-valued children so the
    protection propagates lazily down the tree.  The invariant: a
    ``MapVal`` whose ``_cow`` flag is clear is referenced by exactly
    one owner chain, so in-place mutation of its dict is private.

    Mutate only through :meth:`put` / :meth:`remove` or the owned
    write paths of ``ContractState``; writing ``entries`` directly is
    safe only on a freshly constructed map that was never copied.
    """

    key_type: ScillaType
    value_type: ScillaType
    entries: dict[Value, Value] = field(default_factory=dict)
    _cow: bool = field(default=False, repr=False, compare=False)

    def copy(self) -> "MapVal":
        """O(1) structural-sharing copy (both sides become CoW)."""
        self._cow = True
        fork = MapVal(self.key_type, self.value_type, self.entries)
        fork._cow = True
        return fork

    def _own(self) -> None:
        """Make this wrapper the sole owner of its entry dict.

        Map-valued children are re-wrapped in fresh CoW forks: the
        other holder of the old dict still references the original
        child objects, so handing out the same objects unflagged
        would alias two logical owners.
        """
        if self._cow:
            global COW_COPIES
            COW_COPIES += 1
            entries = self.entries
            private_copy = getattr(entries, "private_copy", None)
            if private_copy is not None:
                # Paged map (repro.scilla.backend.PagedDict): copy the
                # resident overlay only; both sides keep sharing the
                # backend rows read-only.
                self.entries = private_copy()
            else:
                self.entries = {
                    k: (v.copy() if type(v) is MapVal else v)
                    for k, v in entries.items()
                }
            self._cow = False

    def put(self, key: Value, value: Value) -> None:
        self._own()
        self.entries[key] = value

    def remove(self, key: Value) -> None:
        self._own()
        self.entries.pop(key, None)

    def __str__(self) -> str:
        inner = ", ".join(f"{k} => {v}" for k, v in self.entries.items())
        return f"{{{inner}}}"


@dataclass(frozen=True)
class Closure(Value):
    """A function value with its captured environment."""

    param: str
    param_type: ScillaType
    body: Expr
    env: "Env"

    def __str__(self) -> str:
        return f"<fun ({self.param}: {self.param_type})>"


@dataclass(frozen=True)
class TypeClosure(Value):
    """A type-function value (``tfun``)."""

    tvar: str
    body: Expr
    env: "Env"

    def __str__(self) -> str:
        return f"<tfun {self.tvar}>"


@dataclass(frozen=True)
class MsgVal(Value):
    """A message, event or exception record."""

    fields: tuple[tuple[str, Value], ...]

    def get(self, name: str) -> Value | None:
        for k, v in self.fields:
            if k == name:
                return v
        return None

    def __str__(self) -> str:
        inner = "; ".join(f"{k}: {v}" for k, v in self.fields)
        return f"{{{inner}}}"


@dataclass(frozen=True)
class Env:
    """An immutable chained environment for closures.

    A plain persistent association structure: lookups walk parent
    chains.  Kept tiny because Scilla contracts have shallow scopes.
    """

    bindings: tuple[tuple[str, Value], ...] = ()
    parent: "Env | None" = None

    def bind(self, name: str, value: Value) -> "Env":
        return Env(((name, value),), self)

    def bind_many(self, pairs: list[tuple[str, Value]]) -> "Env":
        return Env(tuple(pairs), self) if pairs else self

    def lookup(self, name: str) -> Value | None:
        env: Env | None = self
        while env is not None:
            for k, v in env.bindings:
                if k == name:
                    return v
            env = env.parent
        return None


# --------------------------------------------------------------------------
# Convenience constructors used across the codebase.
# --------------------------------------------------------------------------

TRUE = ADTVal("Bool", "True", ())
FALSE = ADTVal("Bool", "False", ())


def bool_val(flag: bool) -> ADTVal:
    return TRUE if flag else FALSE


def some(value: Value, typ: ScillaType) -> ADTVal:
    return ADTVal("Option", "Some", (typ,), (value,))


def none(typ: ScillaType) -> ADTVal:
    return ADTVal("Option", "None", (typ,))


def nil(typ: ScillaType) -> ADTVal:
    return ADTVal("List", "Nil", (typ,))


def cons(head: Value, tail: Value, typ: ScillaType) -> ADTVal:
    return ADTVal("List", "Cons", (typ,), (head, tail))


def list_to_value(items: list[Value], typ: ScillaType) -> ADTVal:
    out = nil(typ)
    for item in reversed(items):
        out = cons(item, out, typ)
    return out


def value_to_list(v: Value) -> list[Value]:
    items: list[Value] = []
    while isinstance(v, ADTVal) and v.constructor == "Cons":
        items.append(v.args[0])
        v = v.args[1]
    return items


def pair(a: Value, b: Value, ta: ScillaType, tb: ScillaType) -> ADTVal:
    return ADTVal("Pair", "Pair", (ta, tb), (a, b))


def uint(value: int, width: int = 128) -> IntVal:
    return IntVal(value, PrimType(f"Uint{width}"))


def sint(value: int, width: int = 128) -> IntVal:
    return IntVal(value, PrimType(f"Int{width}"))


def addr(hexstr: str) -> ByStrVal:
    """Build a ByStr20 address value from a hex string (0x-prefixed)."""
    body = hexstr[2:] if hexstr.startswith("0x") else hexstr
    body = body.rjust(40, "0").lower()
    return ByStrVal("0x" + body, ty.BYSTR20)


def type_of_value(v: Value) -> ScillaType:
    """Recover the Scilla type of a runtime value (best effort)."""
    if isinstance(v, IntVal):
        return v.typ
    if isinstance(v, StringVal):
        return ty.STRING
    if isinstance(v, ByStrVal):
        return v.typ
    if isinstance(v, BNumVal):
        return ty.BNUM
    if isinstance(v, ADTVal):
        return ty.ADTType(v.adt, v.targs)
    if isinstance(v, MapVal):
        return ty.MapType(v.key_type, v.value_type)
    if isinstance(v, MsgVal):
        return ty.MESSAGE
    if isinstance(v, Closure):
        return ty.FunType(v.param_type, ty.TypeVar("'_ret"))
    raise EvalError(f"cannot type value {v!r}")


def values_equal(a: Value, b: Value) -> bool:
    """Structural equality used by ``builtin eq`` and map keys."""
    if isinstance(a, MapVal) and isinstance(b, MapVal):
        if set(a.entries) != set(b.entries):
            return False
        return all(values_equal(v, b.entries[k]) for k, v in a.entries.items())
    return a == b


def canonical(v: Value) -> Any:
    """A canonical, JSON-ish representation used for hashing/serialisation."""
    if isinstance(v, IntVal):
        return {"t": str(v.typ), "v": v.value}
    if isinstance(v, StringVal):
        return {"t": "String", "v": v.value}
    if isinstance(v, ByStrVal):
        return {"t": str(v.typ), "v": v.hex}
    if isinstance(v, BNumVal):
        return {"t": "BNum", "v": v.value}
    if isinstance(v, ADTVal):
        return {
            "t": v.adt,
            "c": v.constructor,
            "a": [canonical(a) for a in v.args],
        }
    if isinstance(v, MapVal):
        items = sorted(
            ((repr(canonical(k)), canonical(val)) for k, val in v.entries.items()),
            key=lambda kv: kv[0],
        )
        return {"t": "Map", "v": items}
    if isinstance(v, MsgVal):
        return {"t": "Msg", "v": [(k, canonical(val)) for k, val in v.fields]}
    raise EvalError(f"cannot serialise value {v!r}")
