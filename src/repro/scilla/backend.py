"""Pluggable out-of-core storage backends for contract map state.

Every byte of contract state historically lived in in-memory dicts
(``MapVal.entries``), capping the "millions of users" north star at
RAM.  This module introduces the paged alternative: a
:class:`StateBackend` holds the authoritative key/value rows of a map
on (or off) the heap, and :class:`PagedDict` — a drop-in replacement
for ``MapVal``'s entry dict — keeps only a bounded working set
resident:

* **Hot entries** stay in a per-map LRU overlay; reads that miss fault
  the row in from the backend (``state.backend.faults``).
* **Dirty entries** (writes, deletes) accumulate in the overlay and
  are written back in batches when the network commits an epoch —
  never earlier, so the :class:`~repro.scilla.state.StateJournal`
  rollback contract survives unchanged: undo replays into the overlay
  and the overlay always wins over the backend.
* **Clean scalar entries** beyond the cache limit are evicted
  (``state.backend.evictions``); map-valued entries are pinned while
  resident so in-place nested mutation keeps its identity semantics.
* **CoW forks** stay O(1): ``MapVal.copy()`` shares the ``PagedDict``
  wrapper exactly as it shared the dict, and the first write through
  either side materialises a private *overlay* (``private_copy``) —
  never the backing rows, which both sides keep sharing read-only.

Two backends ship, both dependency-free:

* :class:`MemoryBackend` — encoded rows in nested dicts.  Used by the
  property battery to prove the paged map is observationally identical
  to the plain dict under arbitrary op interleavings.
* :class:`SqliteBackend` — a stdlib :mod:`sqlite3` KV table.  The live
  file is a cache, not a durability artifact: crash recovery always
  rebuilds from the snapshot sidecar plus WAL replay
  (:mod:`repro.chain.store`), so the live connection runs with
  fsync-free pragmas.

Values cross the boundary through the same JSON wire format durable
snapshots use (:mod:`repro.chain.serialization`), so backend blobs and
snapshot payloads can never disagree about representation.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import sqlite3
import tempfile
import threading
import time
import weakref
from typing import Any, Iterable, Iterator

from .values import MapVal, Value

# Resident entries a single paged map keeps before evicting clean
# scalar rows, oldest-touched first.  Override per-network with
# REPRO_PAGE_CACHE.
DEFAULT_PAGE_CACHE = 4096

# SQLite's default host-parameter ceiling is 999; stay far under it.
_IN_CHUNK = 400


def _cache_limit_from_env() -> int:
    raw = os.environ.get("REPRO_PAGE_CACHE", "")
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_PAGE_CACHE
    return value if raw and value > 0 else DEFAULT_PAGE_CACHE


# --------------------------------------------------------------------------
# Row codec (shared with the snapshot wire format).
# --------------------------------------------------------------------------

def encode_value(value: Value) -> str:
    """Deterministic text blob for a map key or value."""
    from ..chain.serialization import value_to_json
    return json.dumps(value_to_json(value), sort_keys=True,
                      separators=(",", ":"))


def decode_value(text: str) -> Value:
    from ..chain.serialization import value_from_json
    return value_from_json(json.loads(text))


encode_key = encode_value
decode_key = decode_value


# --------------------------------------------------------------------------
# Backends.
# --------------------------------------------------------------------------

class BackendStats:
    """Cumulative counters one backend instance accrues; the network
    drains deltas into ``state.backend.*`` instruments each commit."""

    __slots__ = ("faults", "evictions", "writebacks",
                 "prefetch_requested", "prefetch_hits",
                 "read_ns", "write_ns")

    def __init__(self) -> None:
        self.faults = 0
        self.evictions = 0
        self.writebacks = 0
        self.prefetch_requested = 0
        self.prefetch_hits = 0
        self.read_ns = 0
        self.write_ns = 0

    def snapshot(self) -> tuple[int, ...]:
        return (self.faults, self.evictions, self.writebacks,
                self.prefetch_requested, self.prefetch_hits,
                self.read_ns, self.write_ns)


class StateBackend:
    """Authoritative row store for paged maps.

    Rows are ``(map_id, key_token) -> value_blob`` with both sides
    text (see :func:`encode_value`).  ``external`` backends keep rows
    off the Python heap and are snapshotted as sidecar files; the
    in-memory backend serialises inline with the snapshot JSON.
    """

    external = False
    kind = "abstract"

    def __init__(self) -> None:
        self.stats = BackendStats()

    # -- row API (implemented by subclasses) ----------------------------

    def new_map(self) -> int:
        raise NotImplementedError

    def reserve(self, map_id: int) -> None:
        """Mark ``map_id`` as taken (snapshot restore re-binds maps by
        id; later ``new_map`` calls must never collide — an *empty*
        restored map leaves no rows to infer the watermark from)."""
        if map_id >= self._next_map:
            self._next_map = map_id + 1

    def get(self, map_id: int, token: str) -> str | None:
        raise NotImplementedError

    def get_many(self, map_id: int, tokens: list[str]) -> dict[str, str]:
        raise NotImplementedError

    def put_many(self, map_id: int,
                 items: Iterable[tuple[str, str]]) -> None:
        raise NotImplementedError

    def delete_many(self, map_id: int, tokens: Iterable[str]) -> None:
        raise NotImplementedError

    def contains(self, map_id: int, token: str) -> bool:
        raise NotImplementedError

    def count(self, map_id: int) -> int:
        raise NotImplementedError

    def iter_items(self, map_id: int) -> Iterator[tuple[str, str]]:
        """All rows of one map, ordered by key token (deterministic)."""
        raise NotImplementedError

    def close(self) -> None:
        pass

    # -- digest ---------------------------------------------------------

    def _iter_all_rows(self) -> Iterator[tuple[int, str, str]]:
        raise NotImplementedError

    def digest(self) -> str:
        """Logical content digest over every row, order-independent of
        physical layout (rows stream sorted by (map_id, key))."""
        h = hashlib.sha256()
        for map_id, token, blob in self._iter_all_rows():
            h.update(f"{map_id}\x1f{token}\x1f{blob}\x1e".encode())
        return h.hexdigest()


class MemoryBackend(StateBackend):
    """Encoded rows in nested dicts — the in-memory reference backend."""

    external = False
    kind = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._maps: dict[int, dict[str, str]] = {}
        self._next_map = 0

    def new_map(self) -> int:
        map_id = self._next_map
        self._next_map += 1
        self._maps[map_id] = {}
        return map_id

    def get(self, map_id: int, token: str) -> str | None:
        t0 = time.perf_counter_ns()
        out = self._maps.get(map_id, {}).get(token)
        self.stats.read_ns += time.perf_counter_ns() - t0
        return out

    def get_many(self, map_id: int, tokens: list[str]) -> dict[str, str]:
        t0 = time.perf_counter_ns()
        rows = self._maps.get(map_id, {})
        out = {t: rows[t] for t in tokens if t in rows}
        self.stats.read_ns += time.perf_counter_ns() - t0
        return out

    def put_many(self, map_id: int,
                 items: Iterable[tuple[str, str]]) -> None:
        t0 = time.perf_counter_ns()
        rows = self._maps.setdefault(map_id, {})
        for token, blob in items:
            rows[token] = blob
        self.stats.write_ns += time.perf_counter_ns() - t0

    def delete_many(self, map_id: int, tokens: Iterable[str]) -> None:
        t0 = time.perf_counter_ns()
        rows = self._maps.get(map_id, {})
        for token in tokens:
            rows.pop(token, None)
        self.stats.write_ns += time.perf_counter_ns() - t0

    def contains(self, map_id: int, token: str) -> bool:
        return token in self._maps.get(map_id, {})

    def count(self, map_id: int) -> int:
        return len(self._maps.get(map_id, {}))

    def iter_items(self, map_id: int) -> Iterator[tuple[str, str]]:
        yield from sorted(self._maps.get(map_id, {}).items())

    def _iter_all_rows(self) -> Iterator[tuple[int, str, str]]:
        for map_id in sorted(self._maps):
            for token, blob in sorted(self._maps[map_id].items()):
                yield map_id, token, blob


class SqliteBackend(StateBackend):
    """Stdlib sqlite3 KV store; the out-of-core backend.

    The live file is *not* trusted across a crash — ``Network.resume``
    rebuilds it from the newest snapshot's sidecar copy plus WAL
    replay — so the connection runs with ``journal_mode=MEMORY`` and
    ``synchronous=OFF``: page writes never fsync on the hot path, and
    durability comes from :meth:`save_copy`'s atomic-rename sidecars.
    A single connection is shared across lane threads behind a lock
    (worker processes never see the backend: payloads materialise to
    plain dicts when pickled).
    """

    external = True
    kind = "sqlite"

    def __init__(self, path: str | None = None, fresh: bool = False):
        super().__init__()
        self._tmpdir = None
        if path is None:
            self._tmpdir = tempfile.mkdtemp(prefix="repro-state-")
            path = os.path.join(self._tmpdir, "state.sqlite")
            self._cleanup = weakref.finalize(
                self, shutil.rmtree, self._tmpdir, ignore_errors=True)
        if fresh:
            for suffix in ("", "-journal", "-wal", "-shm"):
                try:
                    os.unlink(path + suffix)
                except OSError:
                    pass
        self.path = path
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=MEMORY")
        self._conn.execute("PRAGMA synchronous=OFF")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS kv ("
            " map_id INTEGER NOT NULL, k TEXT NOT NULL, v TEXT NOT NULL,"
            " PRIMARY KEY (map_id, k)) WITHOUT ROWID")
        self._conn.commit()
        row = self._conn.execute(
            "SELECT COALESCE(MAX(map_id), -1) FROM kv").fetchone()
        self._next_map = row[0] + 1

    def new_map(self) -> int:
        with self._lock:
            map_id = self._next_map
            self._next_map += 1
            return map_id

    def reserve(self, map_id: int) -> None:
        with self._lock:
            if map_id >= self._next_map:
                self._next_map = map_id + 1

    def get(self, map_id: int, token: str) -> str | None:
        t0 = time.perf_counter_ns()
        with self._lock:
            row = self._conn.execute(
                "SELECT v FROM kv WHERE map_id = ? AND k = ?",
                (map_id, token)).fetchone()
        self.stats.read_ns += time.perf_counter_ns() - t0
        return row[0] if row is not None else None

    def get_many(self, map_id: int, tokens: list[str]) -> dict[str, str]:
        t0 = time.perf_counter_ns()
        out: dict[str, str] = {}
        with self._lock:
            for i in range(0, len(tokens), _IN_CHUNK):
                chunk = tokens[i:i + _IN_CHUNK]
                marks = ",".join("?" * len(chunk))
                rows = self._conn.execute(
                    f"SELECT k, v FROM kv WHERE map_id = ? AND k IN"
                    f" ({marks})", (map_id, *chunk)).fetchall()
                out.update(rows)
        self.stats.read_ns += time.perf_counter_ns() - t0
        return out

    def put_many(self, map_id: int,
                 items: Iterable[tuple[str, str]]) -> None:
        t0 = time.perf_counter_ns()
        with self._lock:
            self._conn.executemany(
                "INSERT OR REPLACE INTO kv (map_id, k, v) VALUES (?, ?, ?)",
                ((map_id, token, blob) for token, blob in items))
            self._conn.commit()
        self.stats.write_ns += time.perf_counter_ns() - t0

    def delete_many(self, map_id: int, tokens: Iterable[str]) -> None:
        t0 = time.perf_counter_ns()
        with self._lock:
            self._conn.executemany(
                "DELETE FROM kv WHERE map_id = ? AND k = ?",
                ((map_id, token) for token in tokens))
            self._conn.commit()
        self.stats.write_ns += time.perf_counter_ns() - t0

    def contains(self, map_id: int, token: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM kv WHERE map_id = ? AND k = ?",
                (map_id, token)).fetchone()
        return row is not None

    def count(self, map_id: int) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM kv WHERE map_id = ?",
                (map_id,)).fetchone()
        return row[0]

    def iter_items(self, map_id: int) -> Iterator[tuple[str, str]]:
        # Chunked so an O(n) walk (fingerprints, snapshots) never holds
        # the whole map in memory nor the lock across the iteration.
        last = ""
        first = True
        while True:
            with self._lock:
                if first:
                    rows = self._conn.execute(
                        "SELECT k, v FROM kv WHERE map_id = ?"
                        " ORDER BY k LIMIT 1024", (map_id,)).fetchall()
                else:
                    rows = self._conn.execute(
                        "SELECT k, v FROM kv WHERE map_id = ? AND k > ?"
                        " ORDER BY k LIMIT 1024", (map_id, last)).fetchall()
            if not rows:
                return
            yield from rows
            last = rows[-1][0]
            first = False

    def _iter_all_rows(self) -> Iterator[tuple[int, str, str]]:
        last: tuple[int, str] | None = None
        while True:
            with self._lock:
                if last is None:
                    rows = self._conn.execute(
                        "SELECT map_id, k, v FROM kv"
                        " ORDER BY map_id, k LIMIT 1024").fetchall()
                else:
                    rows = self._conn.execute(
                        "SELECT map_id, k, v FROM kv"
                        " WHERE map_id > ? OR (map_id = ? AND k > ?)"
                        " ORDER BY map_id, k LIMIT 1024",
                        (last[0], last[0], last[1])).fetchall()
            if not rows:
                return
            yield from rows
            last = (rows[-1][0], rows[-1][1])

    # -- durability spine hooks -----------------------------------------

    def save_copy(self, dst: str) -> str:
        """Copy the live database to ``dst`` atomically (tmp + rename)
        and return the logical digest of the copied content."""
        tmp = dst + ".tmp"
        with self._lock:
            target = sqlite3.connect(tmp)
            try:
                self._conn.backup(target)
                target.commit()
            finally:
                target.close()
        fd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, dst)
        dirfd = os.open(os.path.dirname(dst) or ".", os.O_RDONLY)
        try:
            os.fsync(dirfd)
        finally:
            os.close(dirfd)
        return self.digest_path(dst)

    @staticmethod
    def digest_path(path: str) -> str:
        """Logical digest of a database file at rest (sidecar verify)."""
        conn = sqlite3.connect(path)
        try:
            h = hashlib.sha256()
            last: tuple[int, str] | None = None
            while True:
                if last is None:
                    rows = conn.execute(
                        "SELECT map_id, k, v FROM kv"
                        " ORDER BY map_id, k LIMIT 1024").fetchall()
                else:
                    rows = conn.execute(
                        "SELECT map_id, k, v FROM kv"
                        " WHERE map_id > ? OR (map_id = ? AND k > ?)"
                        " ORDER BY map_id, k LIMIT 1024",
                        (last[0], last[0], last[1])).fetchall()
                if not rows:
                    break
                for map_id, token, blob in rows:
                    h.update(f"{map_id}\x1f{token}\x1f{blob}\x1e".encode())
                last = (rows[-1][0], rows[-1][1])
            return h.hexdigest()
        except sqlite3.DatabaseError as exc:
            raise ValueError(f"unreadable backend file {path}: {exc}")
        finally:
            conn.close()

    def close(self) -> None:
        try:
            self._conn.close()
        except sqlite3.Error:
            pass
        if self._tmpdir is not None:
            self._cleanup()


def resolve_backend(spec, data_dir: str | None = None
                    ) -> StateBackend | None:
    """Build (or pass through) a backend from a knob value.

    ``spec`` is a :class:`StateBackend` instance, a kind string
    (``"memory"`` / ``"sqlite"`` / ``"none"``), or None, which defers
    to the ``REPRO_STATE_BACKEND`` environment variable; empty/unset
    means no backend (plain dict state, the default).
    """
    if isinstance(spec, StateBackend):
        return spec
    if spec is None:
        spec = os.environ.get("REPRO_STATE_BACKEND", "")
    kind = str(spec).strip().lower()
    if kind in ("", "none", "0", "off", "dict"):
        return None
    if kind in ("memory", "mem"):
        return MemoryBackend()
    if kind == "sqlite":
        path = os.path.join(data_dir, "state.sqlite") if data_dir else None
        return SqliteBackend(path, fresh=True)
    raise ValueError(f"unknown state backend {spec!r}")


# --------------------------------------------------------------------------
# The paged entry container.
# --------------------------------------------------------------------------

class PagedDict:
    """Dict-protocol view over (backend, map_id) with a resident overlay.

    Drop-in for ``MapVal.entries``: every consumer in the tree uses
    plain dict protocol (``in``, ``[k]``, ``.get``, ``.pop``,
    ``.items()``, ``len``, iteration, ``==``), and this class provides
    each with fault-on-miss semantics.  Resolution order for a read:

    1. ``_deleted`` tombstones (the key is logically absent),
    2. the ``_local`` overlay (dirty writes, pinned nested maps,
       clean cached scalars — LRU-touched on hit),
    3. the backend (fault: decode, cache as clean, count it).

    Writes land in the overlay only; :meth:`flush` pushes dirty rows
    and tombstones down in one batch (the network calls it at epoch
    commit, when the journal is empty, so no rollback can ever cross a
    writeback).  Pickling materialises to a plain dict — worker
    processes never share a backend with the coordinator.
    """

    __slots__ = ("backend", "map_id", "cache_limit",
                 "_local", "_dirty", "_deleted", "_count")

    def __init__(self, backend: StateBackend, map_id: int, *,
                 count: int, cache_limit: int | None = None):
        self.backend = backend
        self.map_id = map_id
        self.cache_limit = (cache_limit if cache_limit is not None
                            else _cache_limit_from_env())
        self._local: dict[Value, Value] = {}
        self._dirty: set[Value] = set()
        self._deleted: set[Value] = set()
        self._count = count

    @classmethod
    def adopt(cls, backend: StateBackend, entries: dict, *,
              cache_limit: int | None = None) -> "PagedDict":
        """Move a plain entry dict into the backend.

        Scalar rows go straight down and drop out of memory; map-valued
        entries are also written (as blobs) but stay pinned in the
        overlay so existing references keep their identity.
        """
        map_id = backend.new_map()
        rows = []
        pinned: dict[Value, Value] = {}
        for k, v in entries.items():
            rows.append((encode_key(k), encode_value(v)))
            if isinstance(v, MapVal):
                pinned[k] = v
        if rows:
            backend.put_many(map_id, rows)
        paged = cls(backend, map_id, count=len(entries),
                    cache_limit=cache_limit)
        paged._local = pinned
        return paged

    # -- internal helpers ----------------------------------------------

    def _present(self, key: Value) -> bool:
        if key in self._deleted:
            return False
        if key in self._local:
            return True
        return self.backend.contains(self.map_id, encode_key(key))

    def _evict(self) -> None:
        limit = self.cache_limit
        excess = len(self._local) - limit
        if excess <= 0:
            return
        victims = []
        for k, v in self._local.items():
            if k not in self._dirty and not isinstance(v, MapVal):
                victims.append(k)
                if len(victims) >= excess:
                    break
        for k in victims:
            del self._local[k]
        self.backend.stats.evictions += len(victims)

    # -- dict protocol ---------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __contains__(self, key: Value) -> bool:
        return self._present(key)

    def __getitem__(self, key: Value) -> Value:
        if key in self._deleted:
            raise KeyError(key)
        local = self._local
        if key in local:
            value = local.pop(key)      # LRU touch: move to the end
            local[key] = value
            return value
        blob = self.backend.get(self.map_id, encode_key(key))
        if blob is None:
            raise KeyError(key)
        self.backend.stats.faults += 1
        value = decode_value(blob)
        local[key] = value
        self._evict()
        return value

    def get(self, key: Value, default=None):
        try:
            return self[key]
        except KeyError:
            return default

    def __setitem__(self, key: Value, value: Value) -> None:
        if not self._present(key):
            self._count += 1
        self._deleted.discard(key)
        self._local[key] = value
        self._dirty.add(key)
        self._evict()

    def pop(self, key: Value, *default):
        if key in self._deleted:
            if default:
                return default[0]
            raise KeyError(key)
        token = encode_key(key)
        in_backend = self.backend.contains(self.map_id, token)
        if key in self._local:
            value = self._local.pop(key)
            self._dirty.discard(key)
            if in_backend:
                self._deleted.add(key)
            self._count -= 1
            return value
        if in_backend:
            self.backend.stats.faults += 1
            value = decode_value(self.backend.get(self.map_id, token))
            self._deleted.add(key)
            self._count -= 1
            return value
        if default:
            return default[0]
        raise KeyError(key)

    def __delitem__(self, key: Value) -> None:
        self.pop(key)

    def __iter__(self) -> Iterator[Value]:
        for k, _ in self.items():
            yield k

    def keys(self) -> Iterator[Value]:
        return iter(self)

    def values(self) -> Iterator[Value]:
        for _, v in self.items():
            yield v

    def items(self) -> Iterator[tuple[Value, Value]]:
        """Every logical entry, backend rows first (sorted by token),
        then the overlay.  Backend values are decoded streaming and
        *not* cached — a full walk must never blow the resident set."""
        local = self._local
        deleted = self._deleted
        for token, blob in self.backend.iter_items(self.map_id):
            key = decode_key(token)
            if key in local or key in deleted:
                continue
            yield key, decode_value(blob)
        yield from list(local.items())

    def __eq__(self, other) -> bool:
        if other is self:
            return True
        if isinstance(other, (PagedDict, dict)):
            if len(other) != len(self):
                return False
            sentinel = object()
            for k, v in self.items():
                theirs = other.get(k, sentinel)
                if theirs is sentinel or theirs != v:
                    return False
            return True
        return NotImplemented

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __repr__(self) -> str:
        return (f"PagedDict(backend={self.backend.kind},"
                f" map={self.map_id}, n={self._count},"
                f" resident={len(self._local)}, dirty={len(self._dirty)})")

    # -- paging API ------------------------------------------------------

    def mark_dirty(self, key: Value) -> None:
        """An already-resident (nested-map) value is about to be
        mutated in place; make sure the row is written back."""
        if key in self._local:
            self._dirty.add(key)

    def prefetch(self, keys: Iterable[Value]) -> int:
        """Batch-fault ``keys`` into the overlay (footprint oracle).

        Returns the number of keys resident afterwards.  Deliberately
        skips eviction: the caller is about to read exactly these keys,
        and the next write or flush trims the overlay back down.
        """
        stats = self.backend.stats
        wanted: dict[str, Value] = {}
        hits = 0
        requested = 0
        for key in keys:
            requested += 1
            if key in self._deleted:
                continue
            if key in self._local:
                hits += 1
                continue
            wanted[encode_key(key)] = key
        stats.prefetch_requested += requested
        if wanted:
            found = self.backend.get_many(self.map_id, list(wanted))
            for token, blob in found.items():
                self._local[wanted[token]] = decode_value(blob)
            hits += len(found)
        stats.prefetch_hits += hits
        return hits

    def private_copy(self) -> "PagedDict":
        """The CoW materialisation step (``MapVal._own``): a private
        overlay over the *shared* backend rows.  O(resident), never
        O(map) — the double-materialisation the property battery
        forbids."""
        clone = PagedDict(self.backend, self.map_id, count=self._count,
                          cache_limit=self.cache_limit)
        local = {}
        for k, v in self._local.items():
            local[k] = v.copy() if isinstance(v, MapVal) else v
        clone._local = local
        clone._dirty = set(self._dirty)
        clone._deleted = set(self._deleted)
        return clone

    def flush(self) -> int:
        """Write dirty rows and tombstones back to the backend, then
        evict surplus clean scalars.  Only the network's commit path
        calls this, and only with an empty journal — a rollback can
        therefore never observe (or be corrupted by) a writeback."""
        wrote = 0
        if self._dirty:
            rows = [(encode_key(k), encode_value(self._local[k]))
                    for k in self._dirty]
            self.backend.put_many(self.map_id, rows)
            wrote += len(rows)
            self._dirty.clear()
        if self._deleted:
            tokens = [encode_key(k) for k in self._deleted]
            self.backend.delete_many(self.map_id, tokens)
            wrote += len(tokens)
            self._deleted.clear()
        self.backend.stats.writebacks += wrote
        self._evict()
        return wrote

    def materialize(self) -> dict:
        """A plain dict with every logical entry (pickle boundary)."""
        return dict(self.items())

    def __reduce__(self):
        return (dict, (list(self.items()),))
