"""Pretty-printer for Scilla ASTs.

Produces concrete syntax that the parser accepts, enabling
parse∘print round-trips (used by the property tests and by the
contract-repair suggester, which prints rewritten transitions).
"""

from __future__ import annotations

from .ast import (
    Accept, App, Atom, Bind, BinderPat, Builtin, CallProc, Component,
    Constr, ConstructorPat, Event, Expr, Fun, Ident,
    Let, LibTypeDef, Literal, Load,
    MapDelete, MapGet, MapGetExists, MapUpdate, MatchExpr, MatchStmt,
    MessageExpr, Module, Pattern, ReadBlockchain, Send, Stmt, Store,
    TApp, TFun, Throw, Var, WildcardPat,
)
from .types import MapType, PrimType, ScillaType, is_int_type

INDENT = "  "


def pp_literal_text(value: object, typ: ScillaType) -> str:
    if isinstance(typ, PrimType):
        if is_int_type(typ) or typ.name == "BNum":
            return f"{typ.name} {value}"
        if typ.name == "String":
            escaped = str(value).replace("\\", "\\\\").replace('"', '\\"')
            escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
            return f'"{escaped}"'
        if typ.name.startswith("ByStr"):
            return str(value)
    if isinstance(typ, MapType):
        return f"Emp {_type_atom(typ.key)} {_type_atom(typ.value)}"
    raise ValueError(f"cannot print literal of type {typ}")


def _type_atom(t: ScillaType) -> str:
    from .types import wrap
    return wrap(t)


def pp_atom(atom: Atom) -> str:
    if isinstance(atom, Ident):
        return atom.name
    return pp_literal_text(atom.value, atom.typ)


def pp_pattern(pat: Pattern, parens: bool = False) -> str:
    if isinstance(pat, WildcardPat):
        return "_"
    if isinstance(pat, BinderPat):
        return pat.name
    assert isinstance(pat, ConstructorPat)
    if not pat.args:
        return pat.constructor
    inner = " ".join(pp_pattern(a, parens=True) for a in pat.args)
    text = f"{pat.constructor} {inner}"
    return f"({text})" if parens else text


def pp_expr(expr: Expr, indent: int = 0) -> str:
    pad = INDENT * indent
    if isinstance(expr, Literal):
        return pp_literal_text(expr.value, expr.typ)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, MessageExpr):
        fields = "; ".join(f"{name} : {pp_atom(a)}"
                           for name, a in expr.fields)
        return f"{{ {fields} }}"
    if isinstance(expr, Constr):
        parts = [expr.constructor]
        if expr.type_args:
            targs = " ".join(_type_atom(t) for t in expr.type_args)
            parts.append(f"{{{targs}}}")
        parts.extend(pp_atom(a) for a in expr.args)
        return " ".join(parts)
    if isinstance(expr, Builtin):
        args = " ".join(pp_atom(a) for a in expr.args)
        return f"builtin {expr.name} {args}"
    if isinstance(expr, Let):
        annot = f" : {expr.annot}" if expr.annot else ""
        bound = pp_expr(expr.bound, indent + 1)
        body = pp_expr(expr.body, indent)
        return f"let {expr.name}{annot} = {bound} in\n{pad}{body}"
    if isinstance(expr, Fun):
        body = pp_expr(expr.body, indent)
        return f"fun ({expr.param}: {expr.param_type}) =>\n{pad}{body}"
    if isinstance(expr, App):
        args = " ".join(pp_atom(a) for a in expr.args)
        return f"{expr.func.name} {args}"
    if isinstance(expr, MatchExpr):
        clauses = []
        for pat, body in expr.clauses:
            clause_body = pp_expr(body, indent + 1)
            clauses.append(f"{pad}| {pp_pattern(pat)} => {clause_body}")
        inner = "\n".join(clauses)
        return f"match {expr.scrutinee.name} with\n{inner}\n{pad}end"
    if isinstance(expr, TFun):
        return f"tfun {expr.tvar} =>\n{pad}{pp_expr(expr.body, indent)}"
    if isinstance(expr, TApp):
        targs = " ".join(_type_atom(t) for t in expr.type_args)
        return f"@{expr.func.name} {targs}"
    raise ValueError(f"cannot print expression {expr!r}")


def pp_stmt(stmt: Stmt, indent: int = 0) -> str:
    pad = INDENT * indent
    if isinstance(stmt, Bind):
        return f"{pad}{stmt.lhs} = {pp_expr(stmt.expr, indent + 1)}"
    if isinstance(stmt, Load):
        return f"{pad}{stmt.lhs} <- {stmt.field}"
    if isinstance(stmt, Store):
        return f"{pad}{stmt.field} := {pp_atom(stmt.rhs)}"
    if isinstance(stmt, MapGet):
        keys = "".join(f"[{pp_atom(k)}]" for k in stmt.keys)
        return f"{pad}{stmt.lhs} <- {stmt.map}{keys}"
    if isinstance(stmt, MapGetExists):
        keys = "".join(f"[{pp_atom(k)}]" for k in stmt.keys)
        return f"{pad}{stmt.lhs} <- exists {stmt.map}{keys}"
    if isinstance(stmt, MapUpdate):
        keys = "".join(f"[{pp_atom(k)}]" for k in stmt.keys)
        return f"{pad}{stmt.map}{keys} := {pp_atom(stmt.rhs)}"
    if isinstance(stmt, MapDelete):
        keys = "".join(f"[{pp_atom(k)}]" for k in stmt.keys)
        return f"{pad}delete {stmt.map}{keys}"
    if isinstance(stmt, ReadBlockchain):
        return f"{pad}{stmt.lhs} <- & {stmt.entry}"
    if isinstance(stmt, MatchStmt):
        lines = [f"{pad}match {stmt.scrutinee.name} with"]
        for pat, body in stmt.clauses:
            lines.append(f"{pad}| {pp_pattern(pat)} =>")
            if body:
                lines.append(pp_stmts(body, indent + 1))
        lines.append(f"{pad}end")
        return "\n".join(line for line in lines if line)
    if isinstance(stmt, Accept):
        return f"{pad}accept"
    if isinstance(stmt, Send):
        return f"{pad}send {pp_atom(stmt.arg)}"
    if isinstance(stmt, Event):
        return f"{pad}event {pp_atom(stmt.arg)}"
    if isinstance(stmt, Throw):
        if stmt.arg is None:
            return f"{pad}throw"
        return f"{pad}throw {pp_atom(stmt.arg)}"
    if isinstance(stmt, CallProc):
        args = " ".join(pp_atom(a) for a in stmt.args)
        return f"{pad}{stmt.proc} {args}".rstrip()
    raise ValueError(f"cannot print statement {stmt!r}")


def pp_stmts(stmts: tuple[Stmt, ...], indent: int = 0) -> str:
    return ";\n".join(pp_stmt(s, indent) for s in stmts)


def pp_component(comp: Component, indent: int = 0) -> str:
    pad = INDENT * indent
    params = ", ".join(f"{p.name}: {p.typ}" for p in comp.params)
    header = f"{pad}{comp.kind} {comp.name} ({params})"
    body = pp_stmts(comp.body, indent + 1)
    if body:
        return f"{header}\n{body}\n{pad}end"
    return f"{header}\n{pad}end"


def pp_module(module: Module) -> str:
    lines = [f"scilla_version {module.version}", ""]
    if module.library is not None:
        lines.append(f"library {module.library.name}")
        lines.append("")
        for entry in module.library.entries:
            if isinstance(entry, LibTypeDef):
                lines.append(f"type {entry.name} =")
                for cname, args in entry.constructors:
                    if args:
                        types = " ".join(_type_atom(t) for t in args)
                        lines.append(f"| {cname} of {types}")
                    else:
                        lines.append(f"| {cname}")
            else:
                annot = f" : {entry.annot}" if entry.annot else ""
                lines.append(f"let {entry.name}{annot} = "
                             f"{pp_expr(entry.expr, 1)}")
            lines.append("")
    contract = module.contract
    params = ", ".join(f"{p.name}: {p.typ}" for p in contract.params)
    lines.append(f"contract {contract.name} ({params})")
    lines.append("")
    for field in contract.fields:
        lines.append(f"field {field.name} : {field.typ} = "
                     f"{pp_expr(field.init, 1)}")
    lines.append("")
    for comp in contract.components:
        lines.append(pp_component(comp))
        lines.append("")
    return "\n".join(lines)
