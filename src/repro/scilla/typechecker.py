"""Type checker for Scilla modules.

Scilla is explicitly typed: function parameters, contract fields and
component parameters all carry annotations, so checking needs no
unification — only instantiation of explicit type applications.  The
checker validates the whole module (library, fields, transitions,
procedures) and is one of the three deployment-pipeline stages whose
cost Fig. 12 of the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from . import types as ty
from .ast import (
    Accept, App, Atom, Bind, BinderPat, Builtin, CallProc, Component,
    Constr, ConstructorPat, Contract, Event, Expr, Fun, Ident, Let,
    LibTypeDef, Literal, Load, Loc, MapDelete,
    MapGet, MapGetExists, MapUpdate, MatchExpr, MatchStmt, MessageExpr,
    Module, NOLOC, Pattern, ReadBlockchain, Send, Stmt, Store, TApp,
    TFun, Throw, Var, WildcardPat,
)
from .builtins import get_builtin
from .errors import EvalError, TypeError_
from .interpreter import ADTRegistry, _prelude
from .types import (
    ADTType, FunType, MapType, PolyFun, ScillaType, TypeVar,
    BOOL, BNUM, MESSAGE, UINT32, UINT64, UINT128, is_storable,
    substitute,
)

# Typing schemes for the native standard-library functions.
_A, _B = TypeVar("'A"), TypeVar("'B")


def _poly(tvars: list[str], body: ScillaType) -> ScillaType:
    for tv in reversed(tvars):
        body = PolyFun(tv, body)
    return body


NATIVE_TYPES: dict[str, ScillaType] = {
    "list_foldl": _poly(["'A", "'B"], FunType(
        FunType(_B, FunType(_A, _B)),
        FunType(_B, FunType(ty.list_of(_A), _B)))),
    "list_foldr": _poly(["'A", "'B"], FunType(
        FunType(_A, FunType(_B, _B)),
        FunType(_B, FunType(ty.list_of(_A), _B)))),
    "list_map": _poly(["'A", "'B"], FunType(
        FunType(_A, _B), FunType(ty.list_of(_A), ty.list_of(_B)))),
    "list_filter": _poly(["'A"], FunType(
        FunType(_A, BOOL), FunType(ty.list_of(_A), ty.list_of(_A)))),
    "list_length": _poly(["'A"], FunType(ty.list_of(_A), UINT32)),
    "list_mem": _poly(["'A"], FunType(_A, FunType(ty.list_of(_A), BOOL))),
    "list_append": _poly(["'A"], FunType(
        ty.list_of(_A), FunType(ty.list_of(_A), ty.list_of(_A)))),
    "list_reverse": _poly(["'A"], FunType(ty.list_of(_A), ty.list_of(_A))),
    "nat_fold": _poly(["'B"], FunType(
        FunType(_B, _B), FunType(_B, FunType(ty.NAT, _B)))),
    "fst": _poly(["'A", "'B"], FunType(ty.pair_of(_A, _B), _A)),
    "snd": _poly(["'A", "'B"], FunType(ty.pair_of(_A, _B), _B)),
}

BLOCKCHAIN_ENTRY_TYPES = {
    "BLOCKNUMBER": BNUM,
    "TIMESTAMP": UINT64,
    "CHAINID": UINT32,
}


@dataclass
class TypeEnv:
    bindings: dict[str, ScillaType] = dc_field(default_factory=dict)

    def child(self) -> "TypeEnv":
        return TypeEnv(dict(self.bindings))

    def bind(self, name: str, typ: ScillaType) -> None:
        self.bindings[name] = typ

    def lookup(self, name: str, loc: Loc = NOLOC) -> ScillaType:
        if name not in self.bindings:
            raise TypeError_(f"unbound identifier {name!r}", loc)
        return self.bindings[name]


class TypeChecker:
    """Checks one module; raises :class:`TypeError_` on the first error."""

    def __init__(self, module: Module):
        self.module = module
        self.adts = ADTRegistry()
        self.warnings: list[str] = []

    # -- entry point ----------------------------------------------------------

    def check_module(self) -> TypeEnv:
        env = TypeEnv(dict(NATIVE_TYPES))
        for lib in (_prelude().library, self.module.library):
            if lib is None:
                continue
            for entry in lib.entries:
                if isinstance(entry, LibTypeDef):
                    self._check_typedef(entry)
                    self.adts.define(entry)
                else:
                    inferred = self.infer_expr(entry.expr, env)
                    if entry.annot is not None and entry.annot != inferred:
                        raise TypeError_(
                            f"library value {entry.name}: declared "
                            f"{entry.annot}, inferred {inferred}", entry.loc)
                    env.bind(entry.name, inferred)
        self._check_contract(self.module.contract, env)
        return env

    def _check_typedef(self, typedef: LibTypeDef) -> None:
        seen: set[str] = set()
        for cname, args in typedef.constructors:
            if cname in seen:
                raise TypeError_(
                    f"duplicate constructor {cname} in type {typedef.name}",
                    typedef.loc)
            seen.add(cname)
            for arg in args:
                self._check_wf(arg, typedef.loc)

    def _check_wf(self, t: ScillaType, loc: Loc) -> None:
        """Well-formedness: referenced ADTs exist, no free type vars."""
        if isinstance(t, ADTType):
            if t.name not in self.adts.adts:
                raise TypeError_(f"unknown type {t.name}", loc)
            adt = self.adts.adts[t.name]
            if len(t.targs) != len(adt.tparams):
                raise TypeError_(
                    f"type {t.name} expects {len(adt.tparams)} arguments, "
                    f"got {len(t.targs)}", loc)
            for a in t.targs:
                self._check_wf(a, loc)
        elif isinstance(t, MapType):
            self._check_wf(t.key, loc)
            self._check_wf(t.value, loc)
        elif isinstance(t, FunType):
            self._check_wf(t.arg, loc)
            self._check_wf(t.ret, loc)

    # -- contract ------------------------------------------------------------------

    def _check_contract(self, contract: Contract, env: TypeEnv) -> None:
        cenv = env.child()
        for p in contract.params:
            self._check_wf(p.typ, p.loc)
            if not is_storable(p.typ):
                raise TypeError_(
                    f"contract parameter {p.name} has non-storable type "
                    f"{p.typ}", p.loc)
            cenv.bind(p.name, p.typ)
        cenv.bind("_this_address", ty.BYSTR20)

        field_types: dict[str, ScillaType] = {}
        for fld in contract.fields:
            self._check_wf(fld.typ, fld.loc)
            if not is_storable(fld.typ):
                raise TypeError_(
                    f"field {fld.name} has non-storable type {fld.typ}",
                    fld.loc)
            inferred = self.infer_expr(fld.init, cenv)
            if inferred != fld.typ:
                raise TypeError_(
                    f"field {fld.name}: declared {fld.typ}, initialiser has "
                    f"type {inferred}", fld.loc)
            field_types[fld.name] = fld.typ

        seen_components: set[str] = set()
        for comp in contract.components:
            if comp.name in seen_components:
                raise TypeError_(f"duplicate component {comp.name}", comp.loc)
            seen_components.add(comp.name)
            self._check_component(contract, comp, cenv, field_types)

    def _check_component(self, contract: Contract, comp: Component,
                         cenv: TypeEnv, field_types: dict[str, ScillaType]) -> None:
        env = cenv.child()
        env.bind("_sender", ty.BYSTR20)
        env.bind("_origin", ty.BYSTR20)
        env.bind("_amount", UINT128)
        for p in comp.params:
            self._check_wf(p.typ, p.loc)
            env.bind(p.name, p.typ)
        self._check_stmts(contract, comp.body, env, field_types)

    # -- statements ------------------------------------------------------------------

    def _field_type(self, field_types: dict[str, ScillaType], name: str,
                    loc: Loc) -> ScillaType:
        if name not in field_types:
            raise TypeError_(f"unknown field {name!r}", loc)
        return field_types[name]

    def _map_path(self, field_types: dict[str, ScillaType], name: str,
                  keys: tuple[Atom, ...], env: TypeEnv, loc: Loc) -> ScillaType:
        """Check map keys along a path; return the type at the end."""
        t = self._field_type(field_types, name, loc)
        for key in keys:
            if not isinstance(t, MapType):
                raise TypeError_(f"too many keys for map field {name}", loc)
            kt = self._atom_type(key, env)
            if kt != t.key:
                raise TypeError_(
                    f"map {name} key has type {kt}, expected {t.key}", loc)
            t = t.value
        return t

    def _check_stmts(self, contract: Contract, stmts: tuple[Stmt, ...],
                     env: TypeEnv, field_types: dict[str, ScillaType]) -> None:
        env = env.child()
        for stmt in stmts:
            self._check_stmt(contract, stmt, env, field_types)

    def _check_stmt(self, contract: Contract, stmt: Stmt, env: TypeEnv,
                    field_types: dict[str, ScillaType]) -> None:
        if isinstance(stmt, Bind):
            env.bind(stmt.lhs, self.infer_expr(stmt.expr, env))
            return
        if isinstance(stmt, Load):
            env.bind(stmt.lhs, self._field_type(field_types, stmt.field, stmt.loc))
            return
        if isinstance(stmt, Store):
            ft = self._field_type(field_types, stmt.field, stmt.loc)
            at = self._atom_type(stmt.rhs, env)
            if at != ft:
                raise TypeError_(
                    f"storing {at} into field {stmt.field} of type {ft}",
                    stmt.loc)
            return
        if isinstance(stmt, MapGet):
            leaf = self._map_path(field_types, stmt.map, stmt.keys, env, stmt.loc)
            env.bind(stmt.lhs, ty.option_of(leaf))
            return
        if isinstance(stmt, MapGetExists):
            self._map_path(field_types, stmt.map, stmt.keys, env, stmt.loc)
            env.bind(stmt.lhs, BOOL)
            return
        if isinstance(stmt, MapUpdate):
            leaf = self._map_path(field_types, stmt.map, stmt.keys, env, stmt.loc)
            at = self._atom_type(stmt.rhs, env)
            if at != leaf:
                raise TypeError_(
                    f"writing {at} into map {stmt.map} entry of type {leaf}",
                    stmt.loc)
            return
        if isinstance(stmt, MapDelete):
            self._map_path(field_types, stmt.map, stmt.keys, env, stmt.loc)
            return
        if isinstance(stmt, ReadBlockchain):
            env.bind(stmt.lhs, BLOCKCHAIN_ENTRY_TYPES[stmt.entry])
            return
        if isinstance(stmt, MatchStmt):
            st = env.lookup(stmt.scrutinee.name, stmt.loc)
            for pat, body in stmt.clauses:
                bindings = self._check_pattern(pat, st, stmt.loc)
                inner = env.child()
                for name, t in bindings:
                    inner.bind(name, t)
                self._check_stmts(contract, body, inner, field_types)
            self._check_exhaustive(stmt.clauses, st, stmt.loc)
            return
        if isinstance(stmt, Accept):
            return
        if isinstance(stmt, Send):
            at = self._atom_type(stmt.arg, env)
            if at != ty.list_of(MESSAGE):
                raise TypeError_(f"send expects List Message, got {at}", stmt.loc)
            return
        if isinstance(stmt, Event):
            at = self._atom_type(stmt.arg, env)
            if at != MESSAGE:
                raise TypeError_(f"event expects Message, got {at}", stmt.loc)
            return
        if isinstance(stmt, Throw):
            if stmt.arg is not None:
                self._atom_type(stmt.arg, env)
            return
        if isinstance(stmt, CallProc):
            try:
                proc = contract.component(stmt.proc)
            except KeyError as exc:
                raise TypeError_(str(exc), stmt.loc) from exc
            if proc.is_transition:
                raise TypeError_(
                    f"cannot call transition {stmt.proc} as a procedure",
                    stmt.loc)
            if len(stmt.args) != len(proc.params):
                raise TypeError_(
                    f"procedure {stmt.proc} expects {len(proc.params)} "
                    f"arguments, got {len(stmt.args)}", stmt.loc)
            for atom, param in zip(stmt.args, proc.params):
                at = self._atom_type(atom, env)
                if at != param.typ:
                    raise TypeError_(
                        f"procedure {stmt.proc} argument {param.name}: "
                        f"expected {param.typ}, got {at}", stmt.loc)
            return
        raise TypeError_(f"unknown statement {stmt!r}", stmt.loc)

    def _check_exhaustive(self, clauses, scrut_type: ScillaType, loc: Loc) -> None:
        """Shallow exhaustiveness: warn if some constructor is unhandled."""
        if not isinstance(scrut_type, ADTType) or scrut_type.name not in self.adts.adts:
            return
        covered: set[str] = set()
        for pat, _body in clauses:
            if isinstance(pat, (WildcardPat, BinderPat)):
                return
            if isinstance(pat, ConstructorPat):
                covered.add(pat.constructor)
        all_ctors = {c.name for c in self.adts.adts[scrut_type.name].constructors}
        missing = all_ctors - covered
        if missing:
            self.warnings.append(
                f"{loc}: match on {scrut_type} does not cover "
                f"{sorted(missing)}")

    # -- patterns ------------------------------------------------------------------

    def _check_pattern(self, pat: Pattern, scrut: ScillaType,
                       loc: Loc) -> list[tuple[str, ScillaType]]:
        if isinstance(pat, WildcardPat):
            return []
        if isinstance(pat, BinderPat):
            return [(pat.name, scrut)]
        if isinstance(pat, ConstructorPat):
            if not isinstance(scrut, ADTType):
                raise TypeError_(
                    f"constructor pattern {pat.constructor} against "
                    f"non-ADT type {scrut}", loc)
            try:
                adt, cdef = self.adts.lookup_constructor(pat.constructor)
            except EvalError as exc:
                raise TypeError_(str(exc), loc) from exc
            if adt.name != scrut.name:
                raise TypeError_(
                    f"constructor {pat.constructor} belongs to {adt.name}, "
                    f"not {scrut.name}", loc)
            subst = dict(zip(adt.tparams, scrut.targs))
            arg_types = [substitute(t, subst) for t in cdef.arg_types]
            if pat.args and len(pat.args) != len(arg_types):
                raise TypeError_(
                    f"constructor {pat.constructor} pattern has "
                    f"{len(pat.args)} sub-patterns, expects {len(arg_types)}",
                    loc)
            bindings: list[tuple[str, ScillaType]] = []
            for sub, t in zip(pat.args, arg_types):
                bindings.extend(self._check_pattern(sub, t, loc))
            return bindings
        raise TypeError_(f"unknown pattern {pat!r}", loc)

    # -- expressions ------------------------------------------------------------------

    def _atom_type(self, atom: Atom, env: TypeEnv) -> ScillaType:
        if isinstance(atom, Ident):
            return env.lookup(atom.name, atom.loc)
        return atom.typ

    def infer_expr(self, expr: Expr, env: TypeEnv) -> ScillaType:
        if isinstance(expr, Literal):
            return expr.typ
        if isinstance(expr, Var):
            return env.lookup(expr.name, expr.loc)
        if isinstance(expr, MessageExpr):
            for _name, atom in expr.fields:
                self._atom_type(atom, env)
            return MESSAGE
        if isinstance(expr, Constr):
            return self._infer_constr(expr, env)
        if isinstance(expr, Builtin):
            try:
                defn = get_builtin(expr.name)
            except EvalError as exc:
                raise TypeError_(str(exc), expr.loc) from exc
            if len(expr.args) != defn.arity:
                raise TypeError_(
                    f"builtin {expr.name} expects {defn.arity} arguments, "
                    f"got {len(expr.args)}", expr.loc)
            arg_types = [self._atom_type(a, env) for a in expr.args]
            try:
                return defn.type_rule(arg_types)
            except EvalError as exc:
                raise TypeError_(str(exc), expr.loc) from exc
        if isinstance(expr, Let):
            bound = self.infer_expr(expr.bound, env)
            if expr.annot is not None and expr.annot != bound:
                raise TypeError_(
                    f"let {expr.name}: declared {expr.annot}, inferred "
                    f"{bound}", expr.loc)
            inner = env.child()
            inner.bind(expr.name, bound)
            return self.infer_expr(expr.body, inner)
        if isinstance(expr, Fun):
            self._check_wf(expr.param_type, expr.loc)
            inner = env.child()
            inner.bind(expr.param, expr.param_type)
            return FunType(expr.param_type, self.infer_expr(expr.body, inner))
        if isinstance(expr, App):
            ft = env.lookup(expr.func.name, expr.loc)
            for atom in expr.args:
                if not isinstance(ft, FunType):
                    raise TypeError_(
                        f"applying non-function {expr.func.name} of type "
                        f"{ft}", expr.loc)
                at = self._atom_type(atom, env)
                if at != ft.arg and not isinstance(ft.arg, TypeVar):
                    raise TypeError_(
                        f"argument of type {at} where {ft.arg} is expected "
                        f"(applying {expr.func.name})", expr.loc)
                ft = ft.ret
            return ft
        if isinstance(expr, MatchExpr):
            st = env.lookup(expr.scrutinee.name, expr.loc)
            result: ScillaType | None = None
            for pat, body in expr.clauses:
                bindings = self._check_pattern(pat, st, expr.loc)
                inner = env.child()
                for name, t in bindings:
                    inner.bind(name, t)
                bt = self.infer_expr(body, inner)
                if result is None or isinstance(result, TypeVar):
                    result = bt
                elif bt != result and not isinstance(bt, TypeVar):
                    raise TypeError_(
                        f"match clauses have different types: {result} vs "
                        f"{bt}", expr.loc)
            self._check_exhaustive(expr.clauses, st, expr.loc)
            assert result is not None
            return result
        if isinstance(expr, TFun):
            return PolyFun(expr.tvar, self.infer_expr(expr.body, env))
        if isinstance(expr, TApp):
            ft = env.lookup(expr.func.name, expr.loc)
            for targ in expr.type_args:
                if not isinstance(ft, PolyFun):
                    raise TypeError_(
                        f"type-applying non-polymorphic {expr.func.name} of "
                        f"type {ft}", expr.loc)
                self._check_wf(targ, expr.loc)
                ft = substitute(ft.body, {ft.tvar: targ})
            return ft
        raise TypeError_(f"unknown expression {expr!r}", expr.loc)

    def _infer_constr(self, expr: Constr, env: TypeEnv) -> ScillaType:
        try:
            adt, cdef = self.adts.lookup_constructor(expr.constructor)
        except EvalError as exc:
            raise TypeError_(str(exc), expr.loc) from exc
        if len(expr.type_args) != len(adt.tparams):
            raise TypeError_(
                f"constructor {expr.constructor} of {adt.name} expects "
                f"{len(adt.tparams)} type arguments, got "
                f"{len(expr.type_args)}", expr.loc)
        subst = dict(zip(adt.tparams, expr.type_args))
        arg_types = [substitute(t, subst) for t in cdef.arg_types]
        if len(expr.args) != len(arg_types):
            raise TypeError_(
                f"constructor {expr.constructor} expects {len(arg_types)} "
                f"arguments, got {len(expr.args)}", expr.loc)
        for atom, want in zip(expr.args, arg_types):
            got = self._atom_type(atom, env)
            if got != want and not isinstance(want, TypeVar):
                raise TypeError_(
                    f"constructor {expr.constructor} argument of type {got} "
                    f"where {want} is expected", expr.loc)
        return ADTType(adt.name, expr.type_args)


def typecheck_module(module: Module) -> list[str]:
    """Check a module; returns warnings, raises TypeError_ on failure."""
    checker = TypeChecker(module)
    checker.check_module()
    return checker.warnings
