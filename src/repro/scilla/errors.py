"""Exception hierarchy for the Scilla frontend and interpreter."""

from __future__ import annotations

from .ast import Loc, NOLOC


class ScillaError(Exception):
    """Base class for all errors raised by the Scilla toolchain."""

    def __init__(self, message: str, loc: Loc = NOLOC):
        self.loc = loc
        if loc is not NOLOC and (loc.line or loc.col):
            message = f"{loc}: {message}"
        super().__init__(message)


class LexError(ScillaError):
    """Raised on malformed input at the token level."""


class ParseError(ScillaError):
    """Raised on syntactically invalid programs."""


class TypeError_(ScillaError):
    """Raised on ill-typed programs (named to avoid shadowing builtins)."""


class EvalError(ScillaError):
    """Raised on runtime failures inside pure expression evaluation."""


class ExecError(ScillaError):
    """Raised when a transition aborts (failed builtin, throw, ...)."""


class GasError(ExecError):
    """Raised when a transition runs out of gas."""


class OutOfBoundsError(EvalError):
    """Integer overflow/underflow in a checked arithmetic builtin."""
