"""Scilla type representations.

Scilla is an explicitly-typed, ML-style language (System F without
recursion).  Types are immutable values used by the parser, the
typechecker, the interpreter (for literal construction and ``Emp``
maps), and the CoSplit analysis (which is type-agnostic but carries
types around in summaries for reporting).

The primitive numeric types mirror Zilliqa's: signed/unsigned integers
of widths 32/64/128/256, strings, fixed-width byte strings (``ByStr20``
is an address), and block numbers (``BNum``).  ``Bool``, ``Option``,
``List``, ``Pair`` and ``Nat`` are algebraic data types, exactly as in
the real language.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ScillaType:
    """Base class for all Scilla types."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class PrimType(ScillaType):
    """A primitive type such as ``Uint128`` or ``String``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class MapType(ScillaType):
    """``Map kt vt`` — a finite map stored in a contract field."""

    key: ScillaType
    value: ScillaType

    def __str__(self) -> str:
        return f"Map {wrap(self.key)} {wrap(self.value)}"


@dataclass(frozen=True)
class FunType(ScillaType):
    """``t1 -> t2`` — the type of pure (library) functions."""

    arg: ScillaType
    ret: ScillaType

    def __str__(self) -> str:
        return f"{wrap(self.arg)} -> {self.ret}"


@dataclass(frozen=True)
class ADTType(ScillaType):
    """An instantiated algebraic data type, e.g. ``Option Uint128``."""

    name: str
    targs: tuple[ScillaType, ...] = ()

    def __str__(self) -> str:
        if not self.targs:
            return self.name
        args = " ".join(wrap(t) for t in self.targs)
        return f"{self.name} {args}"


@dataclass(frozen=True)
class TypeVar(ScillaType):
    """A type variable bound by ``tfun``, written ``'A``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PolyFun(ScillaType):
    """``forall 'A. t`` — the type of a type function (``tfun``)."""

    tvar: str
    body: ScillaType

    def __str__(self) -> str:
        return f"forall {self.tvar}. {self.body}"


def wrap(t: ScillaType) -> str:
    """Parenthesise compound types when nested in another type."""
    if isinstance(t, (MapType, FunType, PolyFun)):
        return f"({t})"
    if isinstance(t, ADTType) and t.targs:
        return f"({t})"
    return str(t)


# --------------------------------------------------------------------------
# Well-known primitive types.
# --------------------------------------------------------------------------

INT_WIDTHS = (32, 64, 128, 256)

INT32 = PrimType("Int32")
INT64 = PrimType("Int64")
INT128 = PrimType("Int128")
INT256 = PrimType("Int256")
UINT32 = PrimType("Uint32")
UINT64 = PrimType("Uint64")
UINT128 = PrimType("Uint128")
UINT256 = PrimType("Uint256")
STRING = PrimType("String")
BNUM = PrimType("BNum")
BYSTR20 = PrimType("ByStr20")
BYSTR32 = PrimType("ByStr32")
BYSTR = PrimType("ByStr")
MESSAGE = PrimType("Message")
EVENT = PrimType("Event")
EXCEPTION = PrimType("Exception")

SIGNED_INT_NAMES = {f"Int{w}" for w in INT_WIDTHS}
UNSIGNED_INT_NAMES = {f"Uint{w}" for w in INT_WIDTHS}
INT_TYPE_NAMES = SIGNED_INT_NAMES | UNSIGNED_INT_NAMES
BYSTR_NAMES = {"ByStr20", "ByStr32", "ByStr64", "ByStr33", "ByStr"}
PRIM_TYPE_NAMES = (
    INT_TYPE_NAMES | BYSTR_NAMES
    | {"String", "BNum", "Message", "Event", "Exception"}
)


def is_int_type(t: ScillaType) -> bool:
    return isinstance(t, PrimType) and t.name in INT_TYPE_NAMES


def is_signed(t: ScillaType) -> bool:
    return isinstance(t, PrimType) and t.name in SIGNED_INT_NAMES


def is_unsigned(t: ScillaType) -> bool:
    return isinstance(t, PrimType) and t.name in UNSIGNED_INT_NAMES


def int_width(t: ScillaType) -> int:
    """Bit width of an integer type; raises for non-integers."""
    if not is_int_type(t):
        raise ValueError(f"not an integer type: {t}")
    assert isinstance(t, PrimType)
    return int(t.name.removeprefix("Uint").removeprefix("Int"))


def int_bounds(t: ScillaType) -> tuple[int, int]:
    """Inclusive (min, max) representable values of an integer type."""
    w = int_width(t)
    if is_signed(t):
        return -(1 << (w - 1)), (1 << (w - 1)) - 1
    return 0, (1 << w) - 1


def bystr_width(t: ScillaType) -> int | None:
    """Byte width of a fixed-size ByStr type, or None for ``ByStr``."""
    assert isinstance(t, PrimType) and t.name in BYSTR_NAMES
    suffix = t.name.removeprefix("ByStr")
    return int(suffix) if suffix else None


# --------------------------------------------------------------------------
# Built-in algebraic data types.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ConstructorDef:
    """One constructor of an ADT: name and argument types.

    Argument types may mention the ADT's type parameters as TypeVar.
    """

    name: str
    arg_types: tuple[ScillaType, ...] = ()


@dataclass(frozen=True)
class ADTDef:
    """Definition of an algebraic data type."""

    name: str
    tparams: tuple[str, ...]
    constructors: tuple[ConstructorDef, ...] = field(default=())

    def constructor(self, name: str) -> ConstructorDef:
        for c in self.constructors:
            if c.name == name:
                return c
        raise KeyError(f"ADT {self.name} has no constructor {name}")


BOOL_ADT = ADTDef("Bool", (), (ConstructorDef("True"), ConstructorDef("False")))
OPTION_ADT = ADTDef(
    "Option", ("'A",),
    (ConstructorDef("Some", (TypeVar("'A"),)), ConstructorDef("None")),
)
LIST_ADT = ADTDef(
    "List", ("'A",),
    (
        ConstructorDef("Cons", (TypeVar("'A"), ADTType("List", (TypeVar("'A"),)))),
        ConstructorDef("Nil"),
    ),
)
PAIR_ADT = ADTDef(
    "Pair", ("'A", "'B"),
    (ConstructorDef("Pair", (TypeVar("'A"), TypeVar("'B"))),),
)
NAT_ADT = ADTDef(
    "Nat", (),
    (ConstructorDef("Succ", (ADTType("Nat"),)), ConstructorDef("Zero")),
)

BUILTIN_ADTS: dict[str, ADTDef] = {
    adt.name: adt for adt in (BOOL_ADT, OPTION_ADT, LIST_ADT, PAIR_ADT, NAT_ADT)
}

BOOL = ADTType("Bool")
NAT = ADTType("Nat")


def option_of(t: ScillaType) -> ADTType:
    return ADTType("Option", (t,))


def list_of(t: ScillaType) -> ADTType:
    return ADTType("List", (t,))


def pair_of(a: ScillaType, b: ScillaType) -> ADTType:
    return ADTType("Pair", (a, b))


def substitute(t: ScillaType, subst: dict[str, ScillaType]) -> ScillaType:
    """Capture-avoiding substitution of type variables in ``t``."""
    if isinstance(t, TypeVar):
        return subst.get(t.name, t)
    if isinstance(t, MapType):
        return MapType(substitute(t.key, subst), substitute(t.value, subst))
    if isinstance(t, FunType):
        return FunType(substitute(t.arg, subst), substitute(t.ret, subst))
    if isinstance(t, ADTType):
        return ADTType(t.name, tuple(substitute(a, subst) for a in t.targs))
    if isinstance(t, PolyFun):
        inner = {k: v for k, v in subst.items() if k != t.tvar}
        return PolyFun(t.tvar, substitute(t.body, inner))
    return t


def free_tvars(t: ScillaType) -> set[str]:
    """The set of free type-variable names in ``t``."""
    if isinstance(t, TypeVar):
        return {t.name}
    if isinstance(t, MapType):
        return free_tvars(t.key) | free_tvars(t.value)
    if isinstance(t, FunType):
        return free_tvars(t.arg) | free_tvars(t.ret)
    if isinstance(t, ADTType):
        out: set[str] = set()
        for a in t.targs:
            out |= free_tvars(a)
        return out
    if isinstance(t, PolyFun):
        return free_tvars(t.body) - {t.tvar}
    return set()


def is_storable(t: ScillaType) -> bool:
    """Whether values of this type may be stored in a contract field.

    Functions, type functions and open types are not storable, in line
    with the real Scilla restrictions.
    """
    if isinstance(t, (FunType, PolyFun, TypeVar)):
        return False
    if isinstance(t, MapType):
        return is_storable(t.key) and is_storable(t.value)
    if isinstance(t, ADTType):
        return all(is_storable(a) for a in t.targs)
    if isinstance(t, PrimType):
        return t.name not in {"Message", "Event", "Exception"}
    return True
